// Figures 13-16: the thermal-hydraulics scaling study.
//
// Paper setup: Nek5000 twin-inlet mixing flow; sparse = 4,096 seeds on a
// 16^3 lattice through the box, dense = 22,000 seeds on a circle around
// one inlet (replicating stream-surface computation), short integration
// distance.  Expected shapes:
//   * sparse: all three algorithms within a whisker of each other
//     (Fig 13) — the easy case
//   * dense: Static Allocation runs OUT OF MEMORY (all seeds on one
//     processor's blocks); Load On Demand *beats* Hybrid because almost
//     no data is read and compute dominates (Fig 13, §5.3)
//   * LoD I/O does not scale but is hidden behind compute (Fig 14)

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = sf::bench::parse_options(argc, argv);

  auto field = std::make_shared<sf::ThermalHydraulicsField>();
  const auto data = sf::bench::make_bench_dataset("thermal", field);
  const auto& prm = field->params();

  // Sparse: the paper's 16x16x16 lattice, scaled by cube-root so the
  // lattice stays regular.
  const int lattice = std::max(
      2, static_cast<int>(16 * std::cbrt(opt.seeds_scale) + 0.5));
  auto sparse = sf::uniform_grid_seeds(field->bounds(), lattice, lattice,
                                       lattice);

  // Dense: the 22,000-seed circle around inlet 1.
  const auto dense_count =
      static_cast<std::size_t>(22000 * opt.seeds_scale);
  auto dense = sf::circle_seeds(prm.inlet1 + sf::Vec3{0.02, 0, 0},
                                {1, 0, 0}, prm.inlet_radius, dense_count);

  std::vector<sf::bench::Scenario> scenarios;
  scenarios.push_back({"sparse", std::move(sparse)});
  scenarios.push_back({"dense", std::move(dense)});

  sf::TraceLimits limits;
  limits.max_time = 6.0;  // "integrated the streamlines a short distance"
  limits.max_steps = 1200;

  sf::bench::run_figure_set(
      opt, data, scenarios, limits,
      "== Figures 13-16: thermal hydraulics dataset (wall clock / I/O "
      "time / communication time / block efficiency; dense Static "
      "Allocation is expected to fail with OOM) ==");
  return 0;
}
