// Compute/I-O overlap benchmark (the regression gate for the async
// block-I/O layer, DESIGN.md §10).
//
// Runs the three algorithms through the simulated runtime twice per
// scenario — synchronous demand loading vs. the async prefetch pipeline
// — and reports wall clock, demand-stall time, prefetch accuracy, cache
// hit rate and the paper's E-metric.  The simulation models overlap the
// same way the thread runtime realises it (prefetched reads burn disk
// channel time but never stall the rank; a demand that finds its block
// staged pays nothing), so the numbers are deterministic: one rep per
// cell, no timing noise, and the JSON is diffable run to run.
//
// Regimes:
//   constrained : the per-rank LRU holds a small fraction of the 512
//                 blocks — the paper's regime, where streamlines evict
//                 each other's working set and demand misses dominate.
//                 This is where overlap pays: the dense cell is the
//                 acceptance gate (async >= 1.5x over sync).
//   roomy       : a cache big enough that reloads are rare; async must
//                 not slow this down (prefetch work is nearly free).
//
// Results are written as JSON for tools/bench/compare.py.
//
// Flags:
//   --procs=N           simulated ranks (default 32)
//   --seeds=N           streamlines per scenario (default 3000)
//   --out=PATH          output JSON path (default BENCH_io.json)
//   --quick             smoke preset: 8 ranks, 600 seeds

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/driver.hpp"
#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"
#include "io/csv.hpp"

namespace {

struct Options {
  int procs = 32;
  std::size_t seeds = 3000;
  std::string out = "BENCH_io.json";
  bool quick = false;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--procs=", 0) == 0) {
      opt.procs = std::atoi(arg.substr(8).c_str());
    } else if (arg.rfind("--seeds=", 0) == 0) {
      opt.seeds = static_cast<std::size_t>(std::atoll(arg.substr(8).c_str()));
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out = arg.substr(6);
    } else if (arg == "--quick") {
      opt.quick = true;
      opt.procs = 8;
      opt.seeds = 600;
    } else {
      std::cerr << "unknown flag: " << arg << '\n';
      std::exit(2);
    }
  }
  return opt;
}

// An I/O-bound JaguarPF-like machine: 12 MB blocks behind a disk slow
// enough that a demand miss costs about as much as integrating the
// particles it unblocks.  Overlap can at best halve the wall clock in
// that balance; the gap between this bound and the measured speedup is
// the predictors' miss rate.
sf::MachineModel io_bound_machine() {
  sf::MachineModel m = sf::MachineModel::jaguar_like();
  m.io_bandwidth = 400.0 * (1 << 20);  // ~30 ms per 12 MB block
  m.io_latency = 5e-3;
  // Each simulated streamline stands in for many paper streamlines (cf.
  // bench_common's seeds_scale): charge its integration accordingly so
  // per-rank compute and per-rank I/O are the same order — the balance
  // the paper's machines ran at, and the one where overlap is decisive.
  m.seconds_per_step = 1e-4;
  m.particle_memory_bytes = 1ull << 30;  // memory pressure is not the topic
  return m;
}

struct Row {
  std::string algorithm, seeding, cache, mode;
  sf::RunMetrics m;
  double speedup = 1.0;  // async row: sync wall / async wall
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  auto field = std::make_shared<sf::SupernovaField>();
  const sf::BlockDecomposition decomp(field->bounds(), 8, 8, 8);  // 512
  auto dataset = std::make_shared<sf::BlockedDataset>(
      field, decomp, /*nodes_per_axis=*/9, /*ghost_cells=*/2);
  const sf::DatasetBlockSource source(dataset, /*modelled_bytes=*/12u << 20);

  sf::Rng rng(0x10ab5);
  struct Scenario {
    std::string name;
    std::vector<sf::Vec3> seeds;
  };
  const Scenario scenarios[] = {
      {"sparse", sf::random_seeds(field->bounds(), opt.seeds, rng)},
      // Dense: the paper's proto-neutron-star shell — the cohort moves
      // through the same few blocks together, the prefetcher's best and
      // the constrained LRU's worst case.
      {"dense", sf::cluster_seeds({0.25, 0.0, 0.0}, 0.18, opt.seeds, rng,
                                  field->bounds())},
  };

  struct Regime {
    std::string name;
    std::size_t cache_blocks;
  };
  const Regime regimes[] = {
      {"constrained", 12},
      {"roomy", 96},
  };

  constexpr sf::Algorithm kAlgorithms[] = {
      sf::Algorithm::kStaticAllocation, sf::Algorithm::kLoadOnDemand,
      sf::Algorithm::kHybridMasterSlave};

  sf::TraceLimits limits;
  limits.max_time = 15.0;
  limits.max_steps = opt.quick ? 500 : 1500;

  std::vector<Row> rows;
  for (const Regime& regime : regimes) {
    for (const Scenario& scenario : scenarios) {
      for (const sf::Algorithm algo : kAlgorithms) {
        sf::ExperimentConfig cfg;
        cfg.algorithm = algo;
        cfg.runtime.num_ranks = opt.procs;
        cfg.runtime.model = io_bound_machine();
        cfg.runtime.cache_blocks = regime.cache_blocks;
        cfg.limits = limits;

        double sync_wall = 0.0;
        for (const bool async : {false, true}) {
          cfg.runtime.async_io.enabled = async;
          cfg.runtime.async_io.prefetch_depth = 12;
          cfg.runtime.async_io.staging_blocks = 16;

          Row row;
          row.algorithm = sf::to_string(algo);
          row.seeding = scenario.name;
          row.cache = regime.name;
          row.mode = async ? "async" : "sync";
          row.m = sf::run_experiment(cfg, decomp, source, scenario.seeds);
          if (async) {
            row.speedup = sync_wall / row.m.wall_clock;
          } else {
            sync_wall = row.m.wall_clock;
          }
          std::cerr << "  done: " << regime.name << " " << scenario.name
                    << " " << row.algorithm << " " << row.mode << "  wall="
                    << row.m.wall_clock << '\n';
          rows.push_back(std::move(row));
        }
      }
    }
  }

  sf::Table table({"cache", "seeding", "algorithm", "mode", "wall_s",
                   "stall_s", "io_s", "block_E", "hit_rate", "loads",
                   "prefetches", "pf_hits", "pf_accuracy", "speedup"});
  for (const Row& row : rows) {
    table.add_row({row.cache, row.seeding, row.algorithm, row.mode,
                   row.m.wall_clock, row.m.total_stall_time(),
                   row.m.total_io_time(), row.m.block_efficiency(),
                   row.m.cache_hit_rate(),
                   static_cast<long long>(row.m.total_blocks_loaded()),
                   static_cast<long long>(row.m.total_prefetches_issued()),
                   static_cast<long long>(row.m.total_prefetch_hits()),
                   row.m.prefetch_accuracy(), row.speedup});
  }
  std::cout << "\n== Async block I/O: compute/I-O overlap ==\n"
            << "procs=" << opt.procs << "  seeds=" << opt.seeds
            << "  blocks=512 (12 MB modelled)\n";
  table.print(std::cout);

  std::ofstream out(opt.out);
  out << "{\n \"bench\": \"io_overlap\",\n"
      << " \"procs\": " << opt.procs << ",\n"
      << " \"seeds\": " << opt.seeds << ",\n"
      << " \"max_steps\": " << limits.max_steps << ",\n"
      << " \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "  {\n"
        << "   \"algorithm\": \"" << row.algorithm << "\",\n"
        << "   \"seeding\": \"" << row.seeding << "\",\n"
        << "   \"cache\": \"" << row.cache << "\",\n"
        << "   \"mode\": \"" << row.mode << "\",\n"
        << "   \"wall_s\": " << row.m.wall_clock << ",\n"
        << "   \"stall_s\": " << row.m.total_stall_time() << ",\n"
        << "   \"io_s\": " << row.m.total_io_time() << ",\n"
        << "   \"block_E\": " << row.m.block_efficiency() << ",\n"
        << "   \"hit_rate\": " << row.m.cache_hit_rate() << ",\n"
        << "   \"loads\": " << row.m.total_blocks_loaded() << ",\n"
        << "   \"purges\": " << row.m.total_blocks_purged() << ",\n"
        << "   \"prefetches\": " << row.m.total_prefetches_issued() << ",\n"
        << "   \"prefetch_hits\": " << row.m.total_prefetch_hits() << ",\n"
        << "   \"prefetch_accuracy\": " << row.m.prefetch_accuracy() << ",\n"
        << "   \"speedup_vs_sync\": " << row.speedup << "\n"
        << "  }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << " ]\n}\n";
  std::cout << "json written to " << opt.out << '\n';
  return 0;
}
