// Advection-core throughput bench (the regression gate for the fast
// path, see DESIGN.md §9).
//
// Measures particle-steps per second of the three advancement kernels
//   reference : Tracer::advance_reference — virtual VectorField::sample
//               per stage, BlockAccessFn lookup per accepted step
//   cursor    : Tracer::advance — block cursor + GridSampler cell cursor
//   batched   : Tracer::advance_batch — per-block rounds over the whole
//               cohort, sharing one cursor per round (scalar kernel
//               forced, so it stays the like-for-like baseline)
//   simd      : the same advance_batch with the 4-wide AVX2 DOPRI5
//               kernel forced (bit-identical trajectories; DESIGN.md
//               §14) — emitted when the host supports it, or always
//               under --kernel=simd, where a host without AVX2 must
//               fall back to scalar without crashing
// under sparse (ring) and dense (clustered) seeding, in two block-cache
// regimes:
//   resident    : every block preloaded in an LRU cache large enough to
//                 hold the dataset — pure compute, no loads.
//   constrained : an LRU cache holding 8 of the 64 blocks.  A miss
//                 rebuilds the block grid from scratch (exactly what
//                 BlockedDataset does on first touch) — the stand-in for
//                 fetching a block of a very large dataset from storage.
//                 This is the regime the paper is about: the orbits
//                 cycle through far more blocks than fit, so the
//                 per-particle kernels reload blocks on every crossing
//                 while the batched kernel amortises each load across
//                 every pending line in the cohort.
// Results are written as JSON for tools/bench/compare.py.
//
// Flags:
//   --min-time=S   minimum measured seconds per cell (default 1.0)
//   --out=PATH     output JSON path (default BENCH_advect.json)
//   --kernel=K     auto | scalar | simd — whether the simd cells are
//                  emitted (auto: only when the host has AVX2; simd:
//                  always, exercising the scalar fallback; scalar:
//                  never).  The reference/cursor/batched cells are
//                  always scalar.
//   --quick        smoke preset: --min-time=0.1 and a 2-rep floor
//
// Cells are measured in interleaved round-robin reps so every kernel
// samples the same stretch of machine noise; on a shared vCPU,
// measuring kernels one after another lets a background load swing the
// ratios by ±30%.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/analytic_fields.hpp"
#include "core/dataset.hpp"
#include "core/rng.hpp"
#include "core/seeds.hpp"
#include "core/tracer.hpp"
#include "runtime/block_cache.hpp"

namespace {

struct Options {
  double min_time = 1.0;
  std::uint64_t min_reps = 3;
  std::string out = "BENCH_advect.json";
  std::string kernel = "auto";
  double tol = 1e-6;
  int nodes = 17;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--min-time=", 0) == 0) {
      opt.min_time = std::atof(arg.substr(11).c_str());
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out = arg.substr(6);
    } else if (arg.rfind("--kernel=", 0) == 0) {
      opt.kernel = arg.substr(9);
      if (opt.kernel != "auto" && opt.kernel != "scalar" &&
          opt.kernel != "simd") {
        std::cerr << "bad --kernel (want auto|scalar|simd): " << opt.kernel
                  << '\n';
        std::exit(2);
      }
    } else if (arg.rfind("--tol=", 0) == 0) {
      opt.tol = std::atof(arg.substr(6).c_str());
    } else if (arg.rfind("--nodes=", 0) == 0) {
      opt.nodes = std::atoi(arg.substr(8).c_str());
    } else if (arg == "--quick") {
      opt.min_time = 0.1;
      opt.min_reps = 2;
    } else {
      std::cerr << "unknown flag: " << arg << '\n';
      std::exit(2);
    }
  }
  return opt;
}

// How many blocks the constrained cache holds, out of 4×4×4 = 64.  The
// tokamak ring orbits cross ~16 blocks per revolution, so at 8 the LRU
// is always one revolution behind — cyclic access is the classic LRU
// worst case, and exactly what a streamline tracing a large dataset
// does.
constexpr std::size_t kConstrainedCapacity = 8;

struct Result {
  std::string kernel;
  std::string seeding;
  std::string cache;
  std::size_t particles = 0;
  std::uint64_t reps = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t block_loads = 0;
  double seconds = 0.0;
  // Best single rep (steps/sec).  On shared machines the max over reps
  // is the least-perturbed estimate; the aggregate totals are kept in
  // the JSON for inspection.
  double best_rate = 0.0;
  // simd rows are host-dependent: compare.py treats them as optional so
  // a baseline recorded on an AVX2 host doesn't fail on one without.
  bool optional = false;
  double rate() const { return best_rate; }
};

std::vector<sf::Particle> make_particles(const std::vector<sf::Vec3>& seeds) {
  std::vector<sf::Particle> particles(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    particles[i].id = static_cast<std::uint32_t>(i);
    particles[i].pos = seeds[i];
  }
  return particles;
}

// One measured cell: a (kernel, seeding, cache) triple plus its
// accumulating result.
struct Cell {
  const std::vector<sf::Vec3>* seeds = nullptr;
  std::function<void(std::vector<sf::Particle>&)> run;
  const std::uint64_t* loads = nullptr;  // regime's block-load counter
  Result r;
  bool warmed = false;
  bool done(const Options& opt) const {
    return r.seconds >= opt.min_time && r.reps >= opt.min_reps;
  }
  void rep() {
    using clock = std::chrono::steady_clock;
    if (!warmed) {
      // Untimed warm-up (page in the grids, warm the caches).
      auto particles = make_particles(*seeds);
      run(particles);
      warmed = true;
    }
    auto particles = make_particles(*seeds);
    const std::uint64_t loads0 = loads != nullptr ? *loads : 0;
    const auto t0 = clock::now();
    run(particles);
    const auto t1 = clock::now();
    const double dt = std::chrono::duration<double>(t1 - t0).count();
    std::uint64_t rep_steps = 0;
    for (const sf::Particle& p : particles) rep_steps += p.steps;
    r.seconds += dt;
    r.total_steps += rep_steps;
    if (loads != nullptr) r.block_loads += *loads - loads0;
    r.best_rate = std::max(r.best_rate, static_cast<double>(rep_steps) / dt);
    ++r.reps;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  // The tokamak field: trajectories orbit the torus indefinitely, so
  // every kernel is measured in steady-state advection (no domain-exit
  // churn), and the field is nonlinear so the DOPRI5 controller actually
  // adapts.  A linear field (e.g. the rotor) would peg h at h_max, many
  // cells per step, which no real large dataset does.
  auto field = std::make_shared<sf::TokamakField>();
  const sf::BlockDecomposition decomp(field->bounds(), 4, 4, 4);
  auto dataset =
      std::make_shared<sf::BlockedDataset>(field, decomp, opt.nodes, 2);

  // Resident regime: every block preloaded, access is an LRU hash find +
  // recency touch (the way the runtimes see hot blocks).  The reference
  // kernel pays this lookup on every step; the cursor kernels only on a
  // block change.
  sf::BlockCache resident_cache(static_cast<std::size_t>(decomp.num_blocks()));
  for (sf::BlockId b = 0; b < decomp.num_blocks(); ++b) {
    resident_cache.insert(b, dataset->block(b));
  }
  const sf::BlockAccessFn access_resident = [&resident_cache](sf::BlockId id) {
    return resident_cache.find(id);
  };

  // Constrained regime: 8 of 64 blocks fit.  A miss rebuilds the block
  // grid from the field — the same work BlockedDataset::block does on
  // first touch (BlockedDataset itself memoises, so it can't be used to
  // model repeated loads).  Every advancement kernel shares this cache
  // and pays the identical per-load cost; only the *number* of loads
  // differs, which is the whole point.
  sf::BlockCache constrained_cache(kConstrainedCapacity);
  std::uint64_t constrained_loads = 0;
  const sf::BlockAccessFn access_constrained =
      [&](sf::BlockId id) -> const sf::StructuredGrid* {
    if (const sf::StructuredGrid* g = constrained_cache.find(id)) return g;
    const sf::AABB box = decomp.ghost_bounds(id, opt.nodes, /*ghost_cells=*/2);
    const int n = opt.nodes + 4;  // nodes + 2 * ghost_cells
    auto grid = std::make_shared<sf::StructuredGrid>(box, n, n, n);
    grid->sample_from(*field);
    ++constrained_loads;
    constrained_cache.insert(id, std::move(grid));
    return constrained_cache.find(id);
  };

  sf::IntegratorParams iparams;
  iparams.tol = opt.tol;
  sf::TraceLimits resident_limits;
  resident_limits.max_steps = 2000;
  resident_limits.max_time = 1e9;
  // Shorter trajectories in the constrained regime: the per-particle
  // kernels reload blocks on every crossing there, and 2000-step orbits
  // would put a single reference rep into the tens of seconds.
  sf::TraceLimits constrained_limits = resident_limits;
  constrained_limits.max_steps = 500;
  // The batched cell forces the scalar kernel so it stays the explicit
  // baseline; the simd cell forces the AVX2 kernel on a twin tracer.
  // When --kernel=simd is given on a host without AVX2 the forced
  // tracer must silently run scalar (the dispatch fallback) — the cell
  // is still emitted, tagged simd_active=false, so CI can assert the
  // flag never crashes anywhere.
  sf::Tracer tracer_resident(&decomp, iparams, resident_limits);
  sf::Tracer tracer_constrained(&decomp, iparams, constrained_limits);
  tracer_resident.set_kernel(sf::AdvectionKernel::kScalar);
  tracer_constrained.set_kernel(sf::AdvectionKernel::kScalar);
  const bool simd_cells =
      opt.kernel == "simd" ||
      (opt.kernel == "auto" && sf::simd_kernel_available());
  sf::Tracer tracer_resident_simd(&decomp, iparams, resident_limits);
  sf::Tracer tracer_constrained_simd(&decomp, iparams, constrained_limits);
  tracer_resident_simd.set_kernel(sf::AdvectionKernel::kSimd);
  tracer_constrained_simd.set_kernel(sf::AdvectionKernel::kSimd);

  sf::Rng rng(7);
  const double r0 = field->params().major_radius;
  std::map<std::string, std::vector<sf::Vec3>> seedings;
  // Sparse: a ring of seeds around the full torus — every azimuthal
  // block is touched, one or two lines each.  Dense: a cluster at one
  // toroidal location — the cohort orbits together, so at any moment a
  // few blocks own everything (the batched kernel's home turf).
  seedings["sparse"] = sf::circle_seeds({0, 0, 0}, {0, 0, 1}, r0, 64);
  seedings["dense"] =
      sf::cluster_seeds({r0, 0.0, 0.0}, 0.08, 256, rng, field->bounds());

  struct Regime {
    const char* name;
    const sf::Tracer* tracer;
    const sf::Tracer* simd_tracer;
    const sf::BlockAccessFn* access;
    const std::uint64_t* loads;
  };
  const Regime regimes[] = {
      {"resident", &tracer_resident, &tracer_resident_simd, &access_resident,
       nullptr},
      {"constrained", &tracer_constrained, &tracer_constrained_simd,
       &access_constrained, &constrained_loads},
  };

  std::vector<Cell> cells;
  for (const Regime& regime : regimes) {
    for (const auto& [seeding, seeds] : seedings) {
      const sf::Tracer& tracer = *regime.tracer;
      const sf::BlockAccessFn& access = *regime.access;
      auto add = [&](const char* kernel,
                     std::function<void(std::vector<sf::Particle>&)> run) {
        Cell c;
        c.r.kernel = kernel;
        c.r.seeding = seeding;
        c.r.cache = regime.name;
        c.r.particles = seeds.size();
        c.seeds = &seeds;
        c.loads = regime.loads;
        c.run = std::move(run);
        cells.push_back(std::move(c));
      };
      add("reference", [&tracer, &access](std::vector<sf::Particle>& ps) {
        for (sf::Particle& p : ps) tracer.advance_reference(p, access);
      });
      add("cursor", [&tracer, &access](std::vector<sf::Particle>& ps) {
        for (sf::Particle& p : ps) tracer.advance(p, access);
      });
      add("batched", [&tracer, &access](std::vector<sf::Particle>& ps) {
        tracer.advance_batch(ps, access);
      });
      if (simd_cells) {
        const sf::Tracer& simd_tracer = *regime.simd_tracer;
        add("simd", [&simd_tracer, &access](std::vector<sf::Particle>& ps) {
          simd_tracer.advance_batch(ps, access);
        });
        cells.back().r.optional = true;
      }
    }
  }

  // Interleaved rounds: one rep of every unfinished cell per pass.
  for (;;) {
    bool all_done = true;
    for (Cell& c : cells) {
      if (c.done(opt)) continue;
      all_done = false;
      c.rep();
    }
    if (all_done) break;
  }

  std::vector<Result> results;
  results.reserve(cells.size());
  for (Cell& c : cells) results.push_back(std::move(c.r));

  // Report, with the in-run speedups the regression gate keys on,
  // grouped per (seeding, cache).
  std::map<std::pair<std::string, std::string>, double> reference_rate;
  for (const Result& r : results) {
    if (r.kernel == "reference") reference_rate[{r.seeding, r.cache}] = r.rate();
  }
  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "cannot open " << opt.out << '\n';
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"advect_throughput\",\n"
      << "  \"kernel_mode\": \"" << opt.kernel << "\",\n"
      << "  \"simd_active\": " << (sf::simd_kernel_available() ? "true"
                                                               : "false")
      << ",\n"
      << "  \"field\": \"tokamak\",\n"
      << "  \"blocks\": [4, 4, 4],\n"
      << "  \"nodes_per_axis\": " << opt.nodes << ",\n"
      << "  \"tol\": " << iparams.tol << ",\n"
      << "  \"max_steps\": {\"resident\": " << resident_limits.max_steps
      << ", \"constrained\": " << constrained_limits.max_steps << "},\n"
      << "  \"constrained_capacity\": " << kConstrainedCapacity << ",\n"
      << "  \"min_time_s\": " << opt.min_time << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    const double speedup = r.rate() / reference_rate[{r.seeding, r.cache}];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"seeding\": \""
        << r.seeding << "\", \"cache\": \"" << r.cache
        << "\", \"particles\": " << r.particles << ", \"reps\": " << r.reps
        << ", \"total_steps\": " << r.total_steps
        << ", \"block_loads\": " << r.block_loads
        << ", \"seconds\": " << r.seconds
        << ", \"particle_steps_per_sec\": " << r.rate()
        << ", \"speedup_vs_reference\": " << speedup;
    if (r.optional) {
      out << ", \"optional\": true, \"simd_active\": "
          << (sf::simd_kernel_available() ? "true" : "false");
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << '\n';
    std::cout << r.cache << '\t' << r.seeding << '\t' << r.kernel << '\t'
              << r.rate() << " steps/s\t" << r.block_loads << " loads\t("
              << speedup << "x reference)\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << opt.out << '\n';
  return 0;
}
