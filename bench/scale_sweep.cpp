// Weak-scaling sweep of the hybrid runtime (DESIGN.md §15): hold the
// seed count per rank fixed and grow the machine from 64 to 16K ranks.
// The paper stops at 512 processors; the master tree plus the O(1)
// per-event coordination paths are what let the same runtime weak-scale
// past that.  Rows record wall clock, control-message volume *per rank*
// (the coordination cost the tree is meant to flatten) and the bytes
// funnelled into the termination counter at rank 0 (the root hot-spot).
//
// Flags (all optional):
//   --procs=64,256,...   rank counts to sweep
//   --seeds-per-rank=N   weak-scaling constant (default 4)
//   --out=PATH           output JSON path (default BENCH_scale.json)
//   --quick              small preset for the CI smoke job

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/driver.hpp"
#include "algorithms/hybrid.hpp"
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "io/csv.hpp"

namespace {

struct ScaleOptions {
  std::vector<int> procs = {64, 256, 1024, 4096, 16384};
  int seeds_per_rank = 4;
  std::size_t cache_blocks = 96;
  std::string out = "BENCH_scale.json";
  bool quick = false;
};

ScaleOptions parse(int argc, char** argv) {
  ScaleOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--procs=", 0) == 0) {
      opt.procs.clear();
      std::string list = arg.substr(8);
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        opt.procs.push_back(std::atoi(list.substr(pos, comma - pos).c_str()));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg.rfind("--seeds-per-rank=", 0) == 0) {
      opt.seeds_per_rank = std::atoi(arg.substr(17).c_str());
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out = arg.substr(6);
    } else if (arg == "--quick") {
      opt.quick = true;
      opt.procs = {64, 1024, 4096};
      opt.seeds_per_rank = 2;
    } else {
      std::cerr << "unknown flag: " << arg << '\n';
      std::exit(2);
    }
  }
  return opt;
}

struct Row {
  int procs = 0;
  int masters = 0;
  int roots = 0;
  std::size_t seeds = 0;
  sf::RunMetrics m;
};

}  // namespace

int main(int argc, char** argv) {
  const ScaleOptions opt = parse(argc, argv);

  sf::bench::BenchDataset data = sf::bench::make_bench_dataset(
      "supernova", std::make_shared<sf::SupernovaField>());

  sf::TraceLimits limits;
  limits.max_steps = 400;
  limits.max_time = 10.0;

  std::vector<Row> rows;
  for (const int procs : opt.procs) {
    // Weak scaling: the problem grows with the machine.  Every rank
    // count draws its seed prefix from the same stream, so smaller runs
    // are strict subsets of larger ones.
    sf::Rng seed_rng(2009);
    const auto seeds = sf::random_seeds(
        data.field->bounds(),
        static_cast<std::size_t>(procs) *
            static_cast<std::size_t>(opt.seeds_per_rank),
        seed_rng);

    sf::ExperimentConfig cfg;
    cfg.algorithm = sf::Algorithm::kHybridMasterSlave;
    cfg.runtime.num_ranks = procs;
    cfg.runtime.model = sf::bench::bench_machine(1.0);
    cfg.runtime.cache_blocks = opt.cache_blocks;
    cfg.limits = limits;

    const sf::HybridLayout layout = sf::HybridLayout::make(
        procs, cfg.hybrid.slaves_per_master, cfg.hybrid.root_fanout);

    Row row;
    row.procs = procs;
    row.masters = layout.num_masters;
    row.roots = layout.num_roots;
    row.seeds = seeds.size();
    row.m = sf::run_experiment(cfg, data.dataset->decomposition(),
                               *data.source, seeds);
    std::cerr << "  done: P=" << procs << " masters=" << row.masters
              << " roots=" << row.roots << "  wall=" << row.m.wall_clock
              << "  ctrl/rank="
              << static_cast<double>(row.m.total_control_messages()) /
                     static_cast<double>(procs)
              << (row.m.failed_oom ? "  [OOM]" : "") << '\n';
    rows.push_back(std::move(row));
  }

  sf::Table table({"procs", "masters", "roots", "seeds", "wall_s",
                   "ctrl_msgs_per_rank", "bytes_at_root", "messages",
                   "sent_MB", "status"});
  for (const Row& row : rows) {
    table.add_row(
        {static_cast<long long>(row.procs),
         static_cast<long long>(row.masters),
         static_cast<long long>(row.roots),
         static_cast<long long>(row.seeds),
         row.m.failed_oom ? -1.0 : row.m.wall_clock,
         static_cast<double>(row.m.total_control_messages()) /
             static_cast<double>(row.procs),
         static_cast<long long>(row.m.ranks[0].bytes_received),
         static_cast<long long>(row.m.total_messages()),
         static_cast<double>(row.m.total_bytes_sent()) / (1 << 20),
         std::string(row.m.failed_oom ? "OOM" : "ok")});
  }
  std::cout << "\n== Weak scaling: hybrid master tree ==\n"
            << "seeds-per-rank=" << opt.seeds_per_rank
            << "  blocks=512 (12 MB modelled)  cache=" << opt.cache_blocks
            << " blocks\n";
  table.print(std::cout);

  std::ofstream out(opt.out);
  out << "{\n \"bench\": \"scale_sweep\",\n"
      << " \"seeds_per_rank\": " << opt.seeds_per_rank << ",\n"
      << " \"max_steps\": " << limits.max_steps << ",\n"
      << " \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "  {\n"
        << "   \"procs\": " << row.procs << ",\n"
        << "   \"masters\": " << row.masters << ",\n"
        << "   \"roots\": " << row.roots << ",\n"
        << "   \"seeds\": " << row.seeds << ",\n"
        << "   \"wall_s\": " << row.m.wall_clock << ",\n"
        << "   \"ctrl_msgs_per_rank\": "
        << static_cast<double>(row.m.total_control_messages()) /
               static_cast<double>(row.procs)
        << ",\n"
        << "   \"bytes_at_root\": " << row.m.ranks[0].bytes_received
        << ",\n"
        << "   \"messages\": " << row.m.total_messages() << ",\n"
        << "   \"status\": \"" << (row.m.failed_oom ? "OOM" : "ok")
        << "\"\n"
        << "  }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << " ]\n}\n";
  std::cout << "json written to " << opt.out << '\n';
  return 0;
}
