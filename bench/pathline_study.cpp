// Pathline I/O study (§8 of the paper, future work): "computing
// pathlines leads to many small reads that can often overwhelm the file
// system".  This harness quantifies that with the Load-On-Demand
// pathline engine: I/O time and loads as the number of time slices and
// the cache capacity vary, against a steady (2-slice) baseline of the
// same flow.
//
// Flags: --seeds-scale (default 0.25 of 4,096 seeds), --procs=P (single
// value, default 64), --csv=DIR

#include <cmath>

#include "analysis/pathline_lod.hpp"
#include "analysis/time_field.hpp"
#include "bench_common.hpp"

namespace {

struct GyreFrozen final : public sf::VectorField {
  explicit GyreFrozen(double t) : t_(t) {}
  bool sample(const sf::Vec3& p, sf::Vec3& out) const override {
    return f_.sample(p, t_, out);
  }
  sf::AABB bounds() const override { return f_.bounds(); }
  sf::DoubleGyreField f_;
  double t_;
};

}  // namespace

int main(int argc, char** argv) {
  auto opt = sf::bench::parse_options(argc, argv);
  if (opt.procs.size() > 1) opt.procs = {64};
  const int procs = opt.procs.front();
  if (opt.seeds_scale == 0.5) opt.seeds_scale = 0.25;

  const sf::DoubleGyreField gyre;
  const sf::BlockDecomposition decomp(gyre.bounds(), 8, 8, 1);
  const double horizon = 10.0;

  auto make_slices = [&](int n) {
    std::pair<std::vector<sf::DatasetPtr>, std::vector<double>> out;
    for (int i = 0; i < n; ++i) {
      const double t = horizon * i / (n - 1);
      out.first.push_back(std::make_shared<sf::BlockedDataset>(
          std::make_shared<GyreFrozen>(t), decomp, 9, 2));
      out.second.push_back(t);
    }
    return out;
  };

  const auto n_seeds = static_cast<std::size_t>(4096 * opt.seeds_scale);
  sf::Rng rng2(0x9a71e);
  std::vector<sf::Vec3> seeds;
  for (std::size_t i = 0; i < n_seeds; ++i) {
    seeds.push_back(
        {rng2.uniform(0.1, 1.9), rng2.uniform(0.1, 0.9), 0.0});
  }

  sf::Table table({"slices", "cache_blocks", "wall_s", "io_total_s",
                   "blocks_loaded", "blocks_purged", "block_E", "status"});

  for (const int slices : {2, 5, 9, 17, 33}) {
    for (const std::size_t cache : {8ul, 24ul, 64ul}) {
      auto [data, times] = make_slices(slices);
      sf::PathlineExperimentConfig cfg;
      cfg.runtime.num_ranks = procs;
      cfg.runtime.model = sf::bench::bench_machine(opt.seeds_scale);
      cfg.runtime.cache_blocks = cache;
      cfg.limits.max_time = horizon;
      cfg.limits.max_steps = 3000;
      const sf::RunMetrics m = sf::run_pathline_experiment(
          cfg, decomp, std::move(data), std::move(times), seeds,
          /*modelled_block_bytes=*/12u << 20);
      table.add_row({static_cast<long long>(slices),
                     static_cast<long long>(cache),
                     m.failed_oom ? -1.0 : m.wall_clock, m.total_io_time(),
                     static_cast<long long>(m.total_blocks_loaded()),
                     static_cast<long long>(m.total_blocks_purged()),
                     m.block_efficiency(),
                     std::string(m.failed_oom ? "OOM" : "ok")});
      std::cerr << "  done: slices=" << slices << " cache=" << cache
                << '\n';
    }
  }

  std::cout << "\n== Pathline I/O study (double gyre, " << n_seeds
            << " pathlines, P=" << procs
            << ", Load On Demand over spacetime blocks) ==\n"
            << "The paper's §8 prediction: slice churn multiplies reads "
               "and overwhelms the I/O system unless the cache absorbs "
               "the working set.\n";
  table.print(std::cout);
  if (opt.csv_dir) table.write_csv(*opt.csv_dir + "/pathline_study.csv");
  return 0;
}
