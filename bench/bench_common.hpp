#pragma once

// Shared harness for the figure-reproduction binaries (bench/fig_*).
//
// Each binary regenerates the rows/series of the paper's figures for one
// dataset: wall clock, total I/O time, total communication time and
// block efficiency for all three algorithms across processor counts and
// sparse/dense seeding (Figures 5-16).  Absolute values come from the
// simulated JaguarPF-like machine (DESIGN.md §2); the *shapes* are the
// reproduction target and are recorded in EXPERIMENTS.md.
//
// Common flags (all optional):
//   --procs=64,128,256,512   processor counts to sweep
//   --seeds-scale=0.5        fraction of the paper's seed counts to run
//   --quick                  tiny preset for smoke runs
//   --csv=DIR                also write a CSV per figure set into DIR

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/driver.hpp"
#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"
#include "io/csv.hpp"

namespace sf::bench {

struct Options {
  std::vector<int> procs = {64, 128, 256, 512};
  double seeds_scale = 0.5;
  // Paper-scale nodes had ~1.3 GB/core for 12 MB blocks => ~100 blocks.
  std::size_t cache_blocks = 96;
  std::optional<std::string> csv_dir;
  bool quick = false;
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--procs=", 0) == 0) {
      opt.procs.clear();
      std::string list = arg.substr(8);
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        opt.procs.push_back(std::atoi(list.substr(pos, comma - pos).c_str()));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg.rfind("--seeds-scale=", 0) == 0) {
      opt.seeds_scale = std::atof(arg.substr(14).c_str());
    } else if (arg.rfind("--csv=", 0) == 0) {
      opt.csv_dir = arg.substr(6);
    } else if (arg == "--quick") {
      opt.quick = true;
      opt.procs = {16, 64};
      opt.seeds_scale = 0.02;
    } else {
      std::cerr << "unknown flag: " << arg << '\n';
      std::exit(2);
    }
  }
  return opt;
}

// The paper's data scale: 512 blocks of 1M cells (~12 MB of vector data
// per block).  We sample the analytic stand-in at reduced resolution but
// charge I/O at full block size.
struct BenchDataset {
  std::string name;
  FieldPtr field;
  DatasetPtr dataset;
  std::unique_ptr<DatasetBlockSource> source;
};

inline BenchDataset make_bench_dataset(std::string name, FieldPtr field,
                                       int nodes_per_axis = 9) {
  BenchDataset d;
  d.name = std::move(name);
  d.field = field;
  const BlockDecomposition decomp(field->bounds(), 8, 8, 8);  // 512 blocks
  d.dataset =
      std::make_shared<BlockedDataset>(field, decomp, nodes_per_axis, 2);
  d.source = std::make_unique<DatasetBlockSource>(
      d.dataset, /*modelled_bytes=*/12u << 20);
  return d;
}

// One seeding scenario of a figure set.
struct Scenario {
  std::string seeding;  // "sparse" / "dense"
  std::vector<Vec3> seeds;
};

inline MachineModel bench_machine(double seeds_scale) {
  MachineModel m = MachineModel::jaguar_like();
  // The per-rank particle memory budget scales with the seed downscale so
  // the paper-scale memory pressure (Figure 13's OOM) is preserved.
  m.particle_memory_bytes = static_cast<std::size_t>(
      static_cast<double>(512ull << 20) * seeds_scale);
  // A 2009-era VisIt streamline object (VTK polyline + attribute arrays
  // + solver bookkeeping) weighs tens of KB beyond its raw geometry.
  m.particle_overhead_bytes = 32 << 10;
  // Each simulated streamline stands for 1/scale paper streamlines:
  // charge its integration accordingly, so the compute-to-I/O balance —
  // which decides every crossover in §5 — matches the full-size runs.
  m.seconds_per_step /= seeds_scale;
  return m;
}

constexpr Algorithm kAllAlgorithms[] = {Algorithm::kStaticAllocation,
                                        Algorithm::kLoadOnDemand,
                                        Algorithm::kHybridMasterSlave};

// Run the full sweep for one dataset and print/persist the figure rows.
inline void run_figure_set(const Options& opt, const BenchDataset& data,
                           const std::vector<Scenario>& scenarios,
                           const TraceLimits& limits,
                           const std::string& figure_note) {
  Table table({"dataset", "seeding", "algorithm", "procs", "wall_s",
               "io_total_s", "stall_s", "comm_total_s", "block_E",
               "hit_rate", "blocks_loaded", "blocks_purged", "messages",
               "sent_MB", "status"});

  for (const Scenario& scenario : scenarios) {
    for (const Algorithm algo : kAllAlgorithms) {
      for (const int procs : opt.procs) {
        ExperimentConfig cfg;
        cfg.algorithm = algo;
        cfg.runtime.num_ranks = procs;
        cfg.runtime.model = bench_machine(opt.seeds_scale);
        cfg.runtime.cache_blocks = opt.cache_blocks;
        cfg.limits = limits;

        const RunMetrics m =
            run_experiment(cfg, data.dataset->decomposition(), *data.source,
                           scenario.seeds);

        table.add_row(
            {data.name, scenario.seeding, std::string(to_string(algo)),
             static_cast<long long>(procs),
             m.failed_oom ? -1.0 : m.wall_clock, m.total_io_time(),
             m.total_stall_time(), m.total_comm_time(),
             m.block_efficiency(), m.cache_hit_rate(),
             static_cast<long long>(m.total_blocks_loaded()),
             static_cast<long long>(m.total_blocks_purged()),
             static_cast<long long>(m.total_messages()),
             static_cast<double>(m.total_bytes_sent()) / (1 << 20),
             std::string(m.failed_oom ? "OOM" : "ok")});

        std::cerr << "  done: " << scenario.seeding << " "
                  << to_string(algo) << " P=" << procs
                  << (m.failed_oom ? "  [OOM]" : "") << '\n';
      }
    }
  }

  std::cout << '\n' << figure_note << '\n';
  std::cout << "dataset=" << data.name << "  blocks=512 (12 MB modelled)"
            << "  seeds-scale=" << opt.seeds_scale
            << "  cache=" << opt.cache_blocks << " blocks\n";
  table.print(std::cout);
  if (opt.csv_dir) {
    const std::string path = *opt.csv_dir + "/" + data.name + ".csv";
    table.write_csv(path);
    std::cout << "csv written to " << path << '\n';
  }
}

}  // namespace sf::bench
