// Figures 5-8: the astrophysics (supernova) scaling study.
//
// Paper setup: 512 blocks x 1M cells of GenASiS magnetic field, 20,000
// seeds placed sparsely (uniform through the volume) and densely (around
// the proto-neutron star), run on 64-512 JaguarPF cores.  Reported
// metrics: wall clock (Fig 5), total I/O time (Fig 6), block efficiency
// (Fig 7), total communication time (Fig 8).
//
// Expected shapes (see EXPERIMENTS.md for the measured reproduction):
//   * Hybrid fastest or tied for both seedings (Fig 5)
//   * Load On Demand ~an order of magnitude more I/O time (Fig 6)
//   * Static E = 1; Hybrid near-ideal; LoD lowest (Fig 7)
//   * Static communicates 20x (sparse) to >100x (dense) more than
//     Hybrid (Fig 8)

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = sf::bench::parse_options(argc, argv);

  auto field = std::make_shared<sf::SupernovaField>();
  const auto data =
      sf::bench::make_bench_dataset("astro", field);

  const auto seeds =
      static_cast<std::size_t>(20000 * opt.seeds_scale);  // paper: 20,000
  sf::Rng rng(0xa5720);
  std::vector<sf::bench::Scenario> scenarios;
  scenarios.push_back(
      {"sparse", sf::random_seeds(field->bounds(), seeds, rng)});
  // Dense: a shell just inside the shock front; the sweep disperses the
  // lines through the whole dataset like the paper's Figure 1 seeding.
  scenarios.push_back(
      {"dense", sf::cluster_seeds({0.25, 0.0, 0.0}, 0.18, seeds, rng,
                                  field->bounds())});

  sf::TraceLimits limits;
  limits.max_time = 15.0;
  limits.max_steps = 1500;

  sf::bench::run_figure_set(
      opt, data, scenarios, limits,
      "== Figures 5-8: astrophysics dataset (wall clock / I/O time / "
      "block efficiency / communication time) ==");
  return 0;
}
