// Microbenchmarks of the hot kernels (google-benchmark): analytic field
// evaluation, trilinear sampling, the integrators, the tracer's
// block-crossing loop, the LRU cache, the event queue, and the mailbox
// transports (lock-free SPSC ring vs the historical mutex mailbox).
//
// The BM_Mailbox* rows are the regression gate for the lock-free data
// plane (DESIGN.md §14): run with
//   --benchmark_filter=Mailbox --benchmark_out=BENCH_micro.json
//   --benchmark_out_format=json
// and diff with tools/bench/compare.py against the committed baseline.

#include <benchmark/benchmark.h>

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/analytic_fields.hpp"
#include "core/dataset.hpp"
#include "core/grid_sampler.hpp"
#include "core/integrator.hpp"
#include "core/rng.hpp"
#include "core/tracer.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/spsc_ring.hpp"
#include "sim/event_queue.hpp"

namespace {

const sf::AABB kUnit{{0, 0, 0}, {1, 1, 1}};

// Positions along an ABC streamline through the unit box, spaced about a
// quarter cell apart: the access pattern the cell cursor is built for
// (consecutive samples land in the same or an adjacent cell).
std::vector<sf::Vec3> streamline_walk(const sf::StructuredGrid& grid,
                                      std::size_t count) {
  const sf::ABCField field(1, 1, 1, kUnit);
  const double step = 0.25 / sf::norm(grid.inv_cell_size());
  std::vector<sf::Vec3> points;
  points.reserve(count);
  sf::Vec3 p{0.31, 0.42, 0.53};
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(p);
    sf::Vec3 v;
    field.sample(p, v);
    p = p + sf::normalized(v) * step;
    if (!grid.bounds().contains(p)) p = {0.31, 0.42, 0.53};
  }
  return points;
}

void BM_AnalyticSupernovaEval(benchmark::State& state) {
  const sf::SupernovaField field;
  sf::Rng rng(1);
  sf::Vec3 p{0.2, 0.1, -0.3}, v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.sample(p, v));
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_AnalyticSupernovaEval);

void BM_AnalyticTokamakEval(benchmark::State& state) {
  const sf::TokamakField field;
  sf::Vec3 p{1.2, 0.1, 0.1}, v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.sample(p, v));
  }
}
BENCHMARK(BM_AnalyticTokamakEval);

void BM_TrilinearSample(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)));
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  sf::Rng rng(2);
  sf::Vec3 v;
  std::vector<sf::Vec3> points(1024);
  for (auto& p : points) {
    p = {rng.next_double(), rng.next_double(), rng.next_double()};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.sample(points[i++ & 1023], v));
  }
}
BENCHMARK(BM_TrilinearSample)->Arg(8)->Arg(16)->Arg(64);

// The same slow-path sampler on a coherent walk: consecutive queries hit
// neighbouring cells, the pattern real advection produces.
void BM_TrilinearSampleCoherent(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)));
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  const auto points = streamline_walk(grid, 1024);
  sf::Vec3 v;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.sample(points[i++ & 1023], v));
  }
}
BENCHMARK(BM_TrilinearSampleCoherent)->Arg(8)->Arg(16)->Arg(64);

// The cell cursor on the same coherent walk: the anchor (and the eight
// gathered node values) survive from one query to the next.
void BM_CursorSampleCoherent(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)));
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  const auto points = streamline_walk(grid, 1024);
  sf::GridSampler sampler(grid);
  sf::Vec3 v;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(points[i++ & 1023], v));
  }
}
BENCHMARK(BM_CursorSampleCoherent)->Arg(8)->Arg(16)->Arg(64);

void BM_Rk4Step(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, 16, 16, 16);
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  sf::Vec3 p{0.5, 0.5, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sf::rk4_step(grid, p, 0.0, 1e-3));
  }
}
BENCHMARK(BM_Rk4Step);

void BM_Dopri5Step(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, 16, 16, 16);
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  sf::IntegratorParams prm;
  sf::Vec3 p{0.5, 0.5, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sf::dopri5_step(grid, p, 0.0, 1e-2, prm));
  }
}
BENCHMARK(BM_Dopri5Step);

// One DOPRI5 step through the cell cursor: all seven stages of a small
// step usually resolve against the same cached cell.
void BM_Dopri5StepCursor(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, 16, 16, 16);
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  sf::GridSampler sampler(grid);
  sf::IntegratorParams prm;
  sf::Vec3 p{0.5, 0.5, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sf::dopri5_step(sampler, p, 0.0, 1e-2, prm));
  }
}
BENCHMARK(BM_Dopri5StepCursor);

void BM_TracerFullStreamline(benchmark::State& state) {
  auto field = std::make_shared<sf::RotorField>();
  const sf::BlockDecomposition decomp(field->bounds(), 4, 4, 4);
  auto dataset = std::make_shared<sf::BlockedDataset>(field, decomp, 9, 2);
  std::vector<sf::GridPtr> grids;
  for (sf::BlockId b = 0; b < decomp.num_blocks(); ++b) {
    grids.push_back(dataset->block(b));
  }
  sf::TraceLimits limits;
  limits.max_time = 6.3;
  limits.max_steps = 100000;
  const sf::Tracer tracer(&decomp, sf::IntegratorParams{}, limits);
  for (auto _ : state) {
    sf::Particle particle;
    particle.pos = {1, 0, 0};
    const auto out = tracer.advance(
        particle, [&](sf::BlockId id) { return grids[id].get(); });
    benchmark::DoNotOptimize(out);
    state.counters["steps"] = static_cast<double>(particle.steps);
  }
}
BENCHMARK(BM_TracerFullStreamline);

// The historical virtual-dispatch loop over the same streamline, for a
// like-for-like fast-path comparison (see DESIGN.md §9).
void BM_TracerFullStreamlineReference(benchmark::State& state) {
  auto field = std::make_shared<sf::RotorField>();
  const sf::BlockDecomposition decomp(field->bounds(), 4, 4, 4);
  auto dataset = std::make_shared<sf::BlockedDataset>(field, decomp, 9, 2);
  std::vector<sf::GridPtr> grids;
  for (sf::BlockId b = 0; b < decomp.num_blocks(); ++b) {
    grids.push_back(dataset->block(b));
  }
  sf::TraceLimits limits;
  limits.max_time = 6.3;
  limits.max_steps = 100000;
  const sf::Tracer tracer(&decomp, sf::IntegratorParams{}, limits);
  for (auto _ : state) {
    sf::Particle particle;
    particle.pos = {1, 0, 0};
    const auto out = tracer.advance_reference(
        particle, [&](sf::BlockId id) { return grids[id].get(); });
    benchmark::DoNotOptimize(out);
    state.counters["steps"] = static_cast<double>(particle.steps);
  }
}
BENCHMARK(BM_TracerFullStreamlineReference);

void BM_BlockCacheChurn(benchmark::State& state) {
  auto grid = std::make_shared<sf::StructuredGrid>(kUnit, 2, 2, 2);
  sf::BlockCache cache(static_cast<std::size_t>(state.range(0)));
  int i = 0;
  for (auto _ : state) {
    cache.insert(i % 97, grid);
    benchmark::DoNotOptimize(cache.find((i * 31) % 97));
    ++i;
  }
}
BENCHMARK(BM_BlockCacheChurn)->Arg(8)->Arg(64);

// --- mailbox transports (DESIGN.md §14) ------------------------------------
//
// Single-threaded transport-op-cost comparison: on a one-vCPU container
// both endpoints share the core, so a two-thread harness would measure
// the scheduler, not the mailbox.  Each iteration replays the runtime's
// burst shape — deliver a burst, then drain it — through the exact
// templates ThreadRuntime instantiates (SpscChannel + ParkingLot vs the
// historical mutex + cond-var + deque), including the wake-signal each
// side pays per message (ParkingLot::unpark vs notify_one) and the old
// receive path's timed predicate wait.
//
// The payload is a fixed 16-byte envelope: sf::Message's variant is 112
// bytes and its construction cost is identical through either
// transport, so carrying it would dilute the transport difference the
// rows exist to gate on.

struct MailEnvelope {
  int from = -1;
  std::uint32_t seq = 0;
  std::uint64_t tag = 0;
};

// The pre-ring ThreadRuntime mailbox: one mutex + cond-var + deque per
// receiver; deliver() locked, appended and notified; thread_main
// locked, ran a timed predicate wait (immediate when a message is
// already queued) and popped the front.  (Bench-only replica with std::
// primitives; src/ code goes through sf::Mutex, outside this file.)
struct MutexMailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<MailEnvelope> queue;
  void push(MailEnvelope&& m) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push_back(std::move(m));
    }
    cv.notify_one();
  }
  // The old thread_main receive; call only when a message is known to
  // be queued (an empty mailbox would sleep out the timeout).
  bool receive(MailEnvelope& out) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::milliseconds(20),
                [this] { return !queue.empty(); });
    if (queue.empty()) return false;
    out = std::move(queue.front());
    queue.pop_front();
    return true;
  }
  // The final empty poll every drain ends with.
  bool try_pop(MailEnvelope& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (queue.empty()) return false;
    out = std::move(queue.front());
    queue.pop_front();
    return true;
  }
};

// One sender, one receiver: a burst the size of the default mailbox
// ring (64 slots), then a full drain plus the final empty poll the
// runtime's scan always pays.
constexpr int kMailboxBurst = 64;

void BM_MailboxMutex1P1C(benchmark::State& state) {
  MutexMailbox box;
  MailEnvelope out;
  for (auto _ : state) {
    for (int i = 0; i < kMailboxBurst; ++i) {
      box.push(MailEnvelope{0, static_cast<std::uint32_t>(i), 0});
    }
    for (int i = 0; i < kMailboxBurst; ++i) box.receive(out);
    benchmark::DoNotOptimize(box.try_pop(out));
  }
  state.SetItemsProcessed(state.iterations() * kMailboxBurst);
}
BENCHMARK(BM_MailboxMutex1P1C);

void BM_MailboxRing1P1C(benchmark::State& state) {
  sf::SpscChannel<MailEnvelope> lane(kMailboxBurst);
  sf::ParkingLot parking;  // deliver() unparks the receiver per message
  MailEnvelope out;
  for (auto _ : state) {
    for (int i = 0; i < kMailboxBurst; ++i) {
      lane.push(MailEnvelope{0, static_cast<std::uint32_t>(i), 0});
      parking.unpark();
    }
    while (lane.pop(out)) benchmark::DoNotOptimize(out.from);
  }
  state.SetItemsProcessed(state.iterations() * kMailboxBurst);
}
BENCHMARK(BM_MailboxRing1P1C);

// All-to-all at 8/32 ranks: every rank streams a burst of 16 messages to
// every other rank (the shape of a Static/Hybrid hand-off round), then
// every rank drains its inbox — the mutex design's single shared
// mailbox per receiver vs the ring design's per-(sender, receiver) lane
// matrix with the runtime's round-robin lane sweep.
constexpr int kAllToAllDepth = 16;

void BM_MailboxMutexAllToAll(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  std::vector<MutexMailbox> boxes(static_cast<std::size_t>(ranks));
  MailEnvelope out;
  for (auto _ : state) {
    for (int s = 0; s < ranks; ++s) {
      for (int r = 0; r < ranks; ++r) {
        if (r == s) continue;
        for (int k = 0; k < kAllToAllDepth; ++k) {
          boxes[static_cast<std::size_t>(r)].push(
              MailEnvelope{s, static_cast<std::uint32_t>(k), 0});
        }
      }
    }
    for (int r = 0; r < ranks; ++r) {
      MutexMailbox& box = boxes[static_cast<std::size_t>(r)];
      for (int i = (ranks - 1) * kAllToAllDepth; i > 0; --i) box.receive(out);
      benchmark::DoNotOptimize(box.try_pop(out));
    }
  }
  state.SetItemsProcessed(state.iterations() * ranks * (ranks - 1) *
                          kAllToAllDepth);
}
BENCHMARK(BM_MailboxMutexAllToAll)->Arg(8)->Arg(32);

void BM_MailboxRingAllToAll(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  // lanes[receiver][sender], exactly ThreadRuntime's inbox matrix.
  std::vector<std::vector<std::unique_ptr<sf::SpscChannel<MailEnvelope>>>>
      lanes(static_cast<std::size_t>(ranks));
  std::vector<sf::ParkingLot> parking(static_cast<std::size_t>(ranks));
  for (auto& row : lanes) {
    for (int s = 0; s < ranks; ++s) {
      // Lanes sized to the burst: at 32 ranks the matrix is 1024 lanes,
      // so slot storage (not per-message ops) dominates the footprint.
      row.push_back(std::make_unique<sf::SpscChannel<MailEnvelope>>(
          kAllToAllDepth));
    }
  }
  MailEnvelope out;
  for (auto _ : state) {
    for (int s = 0; s < ranks; ++s) {
      for (int r = 0; r < ranks; ++r) {
        if (r == s) continue;
        for (int k = 0; k < kAllToAllDepth; ++k) {
          lanes[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)]
              ->push(MailEnvelope{s, static_cast<std::uint32_t>(k), 0});
          parking[static_cast<std::size_t>(r)].unpark();
        }
      }
    }
    for (int r = 0; r < ranks; ++r) {
      auto& row = lanes[static_cast<std::size_t>(r)];
      // Round-robin sweep like pop_mailbox: keep sweeping the lanes
      // until a full sweep comes up empty.
      bool got = true;
      while (got) {
        got = false;
        for (auto& lane : row) {
          while (lane->pop(out)) {
            benchmark::DoNotOptimize(out.from);
            got = true;
          }
        }
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * ranks * (ranks - 1) *
                          kAllToAllDepth);
}
BENCHMARK(BM_MailboxRingAllToAll)->Arg(8)->Arg(32);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sf::EventQueue q;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(static_cast<double>((i * 37) % 100),
                 [&fired] { ++fired; });
    }
    while (!q.empty()) q.run_next();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

}  // namespace

BENCHMARK_MAIN();
