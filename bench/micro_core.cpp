// Microbenchmarks of the hot kernels (google-benchmark): analytic field
// evaluation, trilinear sampling, the integrators, the tracer's
// block-crossing loop, the LRU cache and the event queue.

#include <benchmark/benchmark.h>

#include "core/analytic_fields.hpp"
#include "core/dataset.hpp"
#include "core/grid_sampler.hpp"
#include "core/integrator.hpp"
#include "core/rng.hpp"
#include "core/tracer.hpp"
#include "runtime/block_cache.hpp"
#include "sim/event_queue.hpp"

namespace {

const sf::AABB kUnit{{0, 0, 0}, {1, 1, 1}};

// Positions along an ABC streamline through the unit box, spaced about a
// quarter cell apart: the access pattern the cell cursor is built for
// (consecutive samples land in the same or an adjacent cell).
std::vector<sf::Vec3> streamline_walk(const sf::StructuredGrid& grid,
                                      std::size_t count) {
  const sf::ABCField field(1, 1, 1, kUnit);
  const double step = 0.25 / sf::norm(grid.inv_cell_size());
  std::vector<sf::Vec3> points;
  points.reserve(count);
  sf::Vec3 p{0.31, 0.42, 0.53};
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(p);
    sf::Vec3 v;
    field.sample(p, v);
    p = p + sf::normalized(v) * step;
    if (!grid.bounds().contains(p)) p = {0.31, 0.42, 0.53};
  }
  return points;
}

void BM_AnalyticSupernovaEval(benchmark::State& state) {
  const sf::SupernovaField field;
  sf::Rng rng(1);
  sf::Vec3 p{0.2, 0.1, -0.3}, v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.sample(p, v));
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_AnalyticSupernovaEval);

void BM_AnalyticTokamakEval(benchmark::State& state) {
  const sf::TokamakField field;
  sf::Vec3 p{1.2, 0.1, 0.1}, v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.sample(p, v));
  }
}
BENCHMARK(BM_AnalyticTokamakEval);

void BM_TrilinearSample(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)));
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  sf::Rng rng(2);
  sf::Vec3 v;
  std::vector<sf::Vec3> points(1024);
  for (auto& p : points) {
    p = {rng.next_double(), rng.next_double(), rng.next_double()};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.sample(points[i++ & 1023], v));
  }
}
BENCHMARK(BM_TrilinearSample)->Arg(8)->Arg(16)->Arg(64);

// The same slow-path sampler on a coherent walk: consecutive queries hit
// neighbouring cells, the pattern real advection produces.
void BM_TrilinearSampleCoherent(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)));
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  const auto points = streamline_walk(grid, 1024);
  sf::Vec3 v;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.sample(points[i++ & 1023], v));
  }
}
BENCHMARK(BM_TrilinearSampleCoherent)->Arg(8)->Arg(16)->Arg(64);

// The cell cursor on the same coherent walk: the anchor (and the eight
// gathered node values) survive from one query to the next.
void BM_CursorSampleCoherent(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)));
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  const auto points = streamline_walk(grid, 1024);
  sf::GridSampler sampler(grid);
  sf::Vec3 v;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(points[i++ & 1023], v));
  }
}
BENCHMARK(BM_CursorSampleCoherent)->Arg(8)->Arg(16)->Arg(64);

void BM_Rk4Step(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, 16, 16, 16);
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  sf::Vec3 p{0.5, 0.5, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sf::rk4_step(grid, p, 0.0, 1e-3));
  }
}
BENCHMARK(BM_Rk4Step);

void BM_Dopri5Step(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, 16, 16, 16);
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  sf::IntegratorParams prm;
  sf::Vec3 p{0.5, 0.5, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sf::dopri5_step(grid, p, 0.0, 1e-2, prm));
  }
}
BENCHMARK(BM_Dopri5Step);

// One DOPRI5 step through the cell cursor: all seven stages of a small
// step usually resolve against the same cached cell.
void BM_Dopri5StepCursor(benchmark::State& state) {
  sf::StructuredGrid grid(kUnit, 16, 16, 16);
  grid.sample_from(sf::ABCField(1, 1, 1, kUnit));
  sf::GridSampler sampler(grid);
  sf::IntegratorParams prm;
  sf::Vec3 p{0.5, 0.5, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sf::dopri5_step(sampler, p, 0.0, 1e-2, prm));
  }
}
BENCHMARK(BM_Dopri5StepCursor);

void BM_TracerFullStreamline(benchmark::State& state) {
  auto field = std::make_shared<sf::RotorField>();
  const sf::BlockDecomposition decomp(field->bounds(), 4, 4, 4);
  auto dataset = std::make_shared<sf::BlockedDataset>(field, decomp, 9, 2);
  std::vector<sf::GridPtr> grids;
  for (sf::BlockId b = 0; b < decomp.num_blocks(); ++b) {
    grids.push_back(dataset->block(b));
  }
  sf::TraceLimits limits;
  limits.max_time = 6.3;
  limits.max_steps = 100000;
  const sf::Tracer tracer(&decomp, sf::IntegratorParams{}, limits);
  for (auto _ : state) {
    sf::Particle particle;
    particle.pos = {1, 0, 0};
    const auto out = tracer.advance(
        particle, [&](sf::BlockId id) { return grids[id].get(); });
    benchmark::DoNotOptimize(out);
    state.counters["steps"] = static_cast<double>(particle.steps);
  }
}
BENCHMARK(BM_TracerFullStreamline);

// The historical virtual-dispatch loop over the same streamline, for a
// like-for-like fast-path comparison (see DESIGN.md §9).
void BM_TracerFullStreamlineReference(benchmark::State& state) {
  auto field = std::make_shared<sf::RotorField>();
  const sf::BlockDecomposition decomp(field->bounds(), 4, 4, 4);
  auto dataset = std::make_shared<sf::BlockedDataset>(field, decomp, 9, 2);
  std::vector<sf::GridPtr> grids;
  for (sf::BlockId b = 0; b < decomp.num_blocks(); ++b) {
    grids.push_back(dataset->block(b));
  }
  sf::TraceLimits limits;
  limits.max_time = 6.3;
  limits.max_steps = 100000;
  const sf::Tracer tracer(&decomp, sf::IntegratorParams{}, limits);
  for (auto _ : state) {
    sf::Particle particle;
    particle.pos = {1, 0, 0};
    const auto out = tracer.advance_reference(
        particle, [&](sf::BlockId id) { return grids[id].get(); });
    benchmark::DoNotOptimize(out);
    state.counters["steps"] = static_cast<double>(particle.steps);
  }
}
BENCHMARK(BM_TracerFullStreamlineReference);

void BM_BlockCacheChurn(benchmark::State& state) {
  auto grid = std::make_shared<sf::StructuredGrid>(kUnit, 2, 2, 2);
  sf::BlockCache cache(static_cast<std::size_t>(state.range(0)));
  int i = 0;
  for (auto _ : state) {
    cache.insert(i % 97, grid);
    benchmark::DoNotOptimize(cache.find((i * 31) % 97));
    ++i;
  }
}
BENCHMARK(BM_BlockCacheChurn)->Arg(8)->Arg(64);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sf::EventQueue q;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(static_cast<double>((i * 37) % 100),
                 [&fired] { ++fired; });
    }
    while (!q.empty()) q.run_next();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

}  // namespace

BENCHMARK_MAIN();
