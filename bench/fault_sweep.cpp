// Fault-tolerance sweep (DESIGN.md §7): for each algorithm, measure the
// cost of surviving rank crashes as a function of crash frequency (MTBF,
// expressed relative to the fault-free wall clock T) and checkpoint
// cadence.  Rows report the slowdown vs. the fault-free baseline, how
// much work was recovered/redone, and the modelled checkpoint overhead.
//
// Flags: the common bench flags (bench_common.hpp); --quick shrinks the
// seed set and the sweep grid for smoke runs.

#include <memory>

#include "bench_common.hpp"
#include "core/rng.hpp"

namespace {

using namespace sf;
using namespace sf::bench;

struct SweepPoint {
  double mtbf_rel;        // MTBF as a fraction of baseline wall clock
  double checkpoint_rel;  // checkpoint interval as a fraction of it (0 = off)
};

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_options(argc, argv);
  if (!opt.quick && opt.procs == std::vector<int>{64, 128, 256, 512}) {
    opt.procs = {64};  // the sweep varies faults, not scale
  }
  const int procs = opt.procs.front();

  BenchDataset data = make_bench_dataset(
      "supernova", std::make_shared<SupernovaField>());
  Rng seed_rng(2026);
  const auto seeds = random_seeds(
      data.field->bounds(),
      static_cast<std::size_t>(2000 * opt.seeds_scale), seed_rng);

  TraceLimits limits;
  limits.max_time = 15.0;
  limits.max_steps = 1500;

  const std::vector<SweepPoint> grid =
      opt.quick ? std::vector<SweepPoint>{{0.5, 0.0}, {0.5, 0.25}}
                : std::vector<SweepPoint>{{2.0, 0.0},  {1.0, 0.0},
                                          {0.5, 0.0},  {2.0, 0.25},
                                          {1.0, 0.25}, {0.5, 0.25},
                                          {0.5, 0.1}};

  Table table({"algorithm", "procs", "mtbf_s", "checkpoint_s", "wall_s",
               "slowdown", "crashes", "recovered_particles", "steps_redone",
               "recovery_s", "checkpoints", "checkpoint_overhead_s",
               "status"});

  for (const Algorithm algo : kAllAlgorithms) {
    ExperimentConfig base;
    base.algorithm = algo;
    base.runtime.num_ranks = procs;
    base.runtime.model = bench_machine(opt.seeds_scale);
    base.runtime.cache_blocks = opt.cache_blocks;
    base.limits = limits;

    const RunMetrics clean = run_experiment(
        base, data.dataset->decomposition(), *data.source, seeds);
    const double T = clean.wall_clock;
    table.add_row({std::string(to_string(algo)),
                   static_cast<long long>(procs), 0.0, 0.0, T, 1.0,
                   static_cast<long long>(0), static_cast<long long>(0),
                   static_cast<long long>(0), 0.0, static_cast<long long>(0),
                   0.0, std::string(clean.failed_oom ? "OOM" : "baseline")});
    std::cerr << "  baseline: " << to_string(algo) << " T=" << T << "s\n";

    for (const SweepPoint& pt : grid) {
      ExperimentConfig cfg = base;
      cfg.runtime.fault.mtbf = pt.mtbf_rel * T;
      cfg.runtime.fault.max_crashes = 3;
      cfg.runtime.fault.checkpoint_interval = pt.checkpoint_rel * T;

      const RunMetrics m = run_experiment(
          cfg, data.dataset->decomposition(), *data.source, seeds);
      const FaultStats& fs = m.fault;
      table.add_row(
          {std::string(to_string(algo)), static_cast<long long>(procs),
           cfg.runtime.fault.mtbf, cfg.runtime.fault.checkpoint_interval,
           m.wall_clock, T > 0.0 ? m.wall_clock / T : 0.0,
           static_cast<long long>(fs.crashes_injected),
           static_cast<long long>(fs.particles_recovered),
           static_cast<long long>(fs.steps_redone), fs.time_to_recovery,
           static_cast<long long>(fs.checkpoints_taken),
           fs.checkpoint_overhead,
           std::string(m.failed_oom ? "OOM" : "ok")});
      std::cerr << "  done: " << to_string(algo)
                << " mtbf=" << cfg.runtime.fault.mtbf
                << " ckpt=" << cfg.runtime.fault.checkpoint_interval
                << " wall=" << m.wall_clock << "s crashes="
                << fs.crashes_injected << '\n';
    }
  }

  std::cout << "\nFault sweep: crash survival cost vs. MTBF and checkpoint "
               "cadence (P="
            << procs << ", seeds-scale=" << opt.seeds_scale << ")\n";
  table.print(std::cout);
  if (opt.csv_dir) {
    const std::string path = *opt.csv_dir + "/fault_sweep.csv";
    table.write_csv(path);
    std::cout << "csv written to " << path << '\n';
  }
  return 0;
}
