// Fault-tolerance sweep (DESIGN.md §7): for each algorithm, measure the
// cost of surviving rank crashes as a function of crash frequency (MTBF,
// expressed relative to the fault-free wall clock T) and checkpoint
// cadence.  Rows report the slowdown vs. the fault-free baseline, how
// much work was recovered/redone, and the modelled checkpoint overhead.
//
// Flags: the common bench flags (bench_common.hpp); --quick shrinks the
// seed set and the sweep grid for smoke runs.

#include <fstream>
#include <map>
#include <memory>

#include "algorithms/hybrid.hpp"
#include "bench_common.hpp"
#include "core/rng.hpp"

namespace {

using namespace sf;
using namespace sf::bench;

struct SweepPoint {
  double mtbf_rel;        // MTBF as a fraction of baseline wall clock
  double checkpoint_rel;  // checkpoint interval as a fraction of it (0 = off)
};

// Bit-exact terminal-streamline comparison (both sides sorted by id).
bool particles_identical(const std::vector<Particle>& a,
                         const std::vector<Particle>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Particle& x = a[i];
    const Particle& y = b[i];
    if (x.id != y.id || x.status != y.status || x.steps != y.steps ||
        x.time != y.time || x.h != y.h || x.pos.x != y.pos.x ||
        x.pos.y != y.pos.y || x.pos.z != y.pos.z) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_options(argc, argv);
  if (!opt.quick && opt.procs == std::vector<int>{64, 128, 256, 512}) {
    opt.procs = {64};  // the sweep varies faults, not scale
  }
  const int procs = opt.procs.front();

  BenchDataset data = make_bench_dataset(
      "supernova", std::make_shared<SupernovaField>());
  Rng seed_rng(2026);
  const auto seeds = random_seeds(
      data.field->bounds(),
      static_cast<std::size_t>(2000 * opt.seeds_scale), seed_rng);

  TraceLimits limits;
  limits.max_time = 15.0;
  limits.max_steps = 1500;

  const std::vector<SweepPoint> grid =
      opt.quick ? std::vector<SweepPoint>{{0.5, 0.0}, {0.5, 0.25}}
                : std::vector<SweepPoint>{{2.0, 0.0},  {1.0, 0.0},
                                          {0.5, 0.0},  {2.0, 0.25},
                                          {1.0, 0.25}, {0.5, 0.25},
                                          {0.5, 0.1}};

  Table table({"algorithm", "procs", "mtbf_s", "checkpoint_s", "wall_s",
               "slowdown", "crashes", "recovered_particles", "steps_redone",
               "recovery_s", "checkpoints", "checkpoint_overhead_s",
               "status"});
  std::map<Algorithm, double> baseline_wall;
  std::map<Algorithm, std::vector<Particle>> baseline_particles;

  for (const Algorithm algo : kAllAlgorithms) {
    ExperimentConfig base;
    base.algorithm = algo;
    base.runtime.num_ranks = procs;
    base.runtime.model = bench_machine(opt.seeds_scale);
    base.runtime.cache_blocks = opt.cache_blocks;
    base.limits = limits;

    const RunMetrics clean = run_experiment(
        base, data.dataset->decomposition(), *data.source, seeds);
    const double T = clean.wall_clock;
    baseline_wall[algo] = T;
    baseline_particles[algo] = clean.particles;
    table.add_row({std::string(to_string(algo)),
                   static_cast<long long>(procs), 0.0, 0.0, T, 1.0,
                   static_cast<long long>(0), static_cast<long long>(0),
                   static_cast<long long>(0), 0.0, static_cast<long long>(0),
                   0.0, std::string(clean.failed_oom ? "OOM" : "baseline")});
    std::cerr << "  baseline: " << to_string(algo) << " T=" << T << "s\n";

    for (const SweepPoint& pt : grid) {
      ExperimentConfig cfg = base;
      cfg.runtime.fault.mtbf = pt.mtbf_rel * T;
      cfg.runtime.fault.max_crashes = 3;
      cfg.runtime.fault.checkpoint_interval = pt.checkpoint_rel * T;

      const RunMetrics m = run_experiment(
          cfg, data.dataset->decomposition(), *data.source, seeds);
      const FaultStats& fs = m.fault;
      table.add_row(
          {std::string(to_string(algo)), static_cast<long long>(procs),
           cfg.runtime.fault.mtbf, cfg.runtime.fault.checkpoint_interval,
           m.wall_clock, T > 0.0 ? m.wall_clock / T : 0.0,
           static_cast<long long>(fs.crashes_injected),
           static_cast<long long>(fs.particles_recovered),
           static_cast<long long>(fs.steps_redone), fs.time_to_recovery,
           static_cast<long long>(fs.checkpoints_taken),
           fs.checkpoint_overhead,
           std::string(m.failed_oom ? "OOM" : "ok")});
      std::cerr << "  done: " << to_string(algo)
                << " mtbf=" << cfg.runtime.fault.mtbf
                << " ckpt=" << cfg.runtime.fault.checkpoint_interval
                << " wall=" << m.wall_clock << "s crashes="
                << fs.crashes_injected << '\n';
    }
  }

  // Coordinator-failure sweep (DESIGN.md §11): kill rank 0 — the hybrid
  // master under hybrid, the termination counter under the other two —
  // mid-run, and compare against a run that shields it through the
  // immune_ranks carve-out (the pre-failover behaviour).  Columns report
  // the failure-detection latency, the crash-to-recovery wall time, and
  // the wall-clock overhead of actually surviving the death.
  Table coord({"algorithm", "procs", "victim", "crash_s", "wall_s",
               "immune_wall_s", "overhead_vs_immune", "detect_latency_s",
               "recovery_wall_s", "recovered_particles", "status"});
  for (const Algorithm algo : kAllAlgorithms) {
    ExperimentConfig base;
    base.algorithm = algo;
    base.runtime.num_ranks = procs;
    base.runtime.model = bench_machine(opt.seeds_scale);
    base.runtime.cache_blocks = opt.cache_blocks;
    base.limits = limits;
    const double crash_at = 0.4 * baseline_wall[algo];

    ExperimentConfig shield = base;
    shield.runtime.fault.crashes = {{crash_at, 0}};
    shield.runtime.fault.immune_ranks = {0};  // carve-out filters the crash
    const RunMetrics immune = run_experiment(
        shield, data.dataset->decomposition(), *data.source, seeds);

    ExperimentConfig cfg = base;
    cfg.runtime.fault.crashes = {{crash_at, 0}};
    const RunMetrics m = run_experiment(
        cfg, data.dataset->decomposition(), *data.source, seeds);
    const FaultStats& fs = m.fault;
    double detect = -1.0, recover = -1.0;
    for (const CrashRecord& rec : fs.crash_records) {
      if (rec.rank != 0) continue;
      if (rec.detect_time >= 0.0) detect = rec.detect_time - rec.crash_time;
      if (rec.recover_time >= 0.0) {
        recover = rec.recover_time - rec.crash_time;
      }
    }
    coord.add_row(
        {std::string(to_string(algo)), static_cast<long long>(procs),
         std::string(algo == Algorithm::kHybridMasterSlave ? "master"
                                                           : "counter"),
         crash_at, m.wall_clock, immune.wall_clock,
         immune.wall_clock > 0.0 ? m.wall_clock / immune.wall_clock : 0.0,
         detect, recover, static_cast<long long>(fs.particles_recovered),
         std::string(m.failed_oom      ? "OOM"
                     : m.failed_fault  ? "fault"
                                       : "ok")});
    std::cerr << "  coordinator crash: " << to_string(algo)
              << " detect=" << detect << "s recover=" << recover
              << "s wall=" << m.wall_clock << "s\n";
  }

  // Straggler mitigation (DESIGN.md §16): put one hybrid slave at a 10x
  // compute slowdown early in the run and compare three runs — fault-free,
  // unmitigated (speculative re-issue disabled, the run waits for the slow
  // rank), and mitigated (busy-second straggler detection + speculative re-issue
  // of the straggler's ledger-owned streamlines to healthy slaves).  The
  // mitigated run must produce bit-identical terminal streamlines; a
  // mismatch fails the bench.  Slowdowns multiply modelled seconds only,
  // so the unmitigated run is bit-identical too — the mitigation is pure
  // wall-clock rescue.
  int failures = 0;
  Table straggler({"algorithm", "procs", "mode", "victim", "slow_factor",
                   "wall_s", "vs_clean", "flagged", "detect_latency_s",
                   "reissued_particles", "wasted_dup_steps", "bit_identical",
                   "status"});
  struct StragglerRow {
    std::string algorithm;
    std::string mode;
    double wall_s = 0.0;
    double vs_clean = 0.0;
    double detect_latency_s = 0.0;
    unsigned long long reissued = 0;
    unsigned long long wasted = 0;
  };
  std::vector<StragglerRow> straggler_rows;
  {
    const Algorithm algo = Algorithm::kHybridMasterSlave;
    ExperimentConfig base;
    base.algorithm = algo;
    base.runtime.num_ranks = procs;
    base.runtime.model = bench_machine(opt.seeds_scale);
    base.runtime.cache_blocks = opt.cache_blocks;
    base.limits = limits;
    const double T = baseline_wall[algo];
    const HybridLayout layout = HybridLayout::make(
        procs, base.hybrid.slaves_per_master, base.hybrid.root_fanout);
    const int victim = layout.num_masters;  // first slave rank
    const double slow_factor = 10.0;
    // Slow the victim from early in the run — late enough that it holds
    // work, early enough that its whole compute phase runs gray — and
    // scale the heartbeat to the run so the detector sees several full
    // progress windows before the victim could drain.
    const SlowdownEvent slow{0.02 * T, victim, slow_factor};

    straggler.add_row({std::string(to_string(algo)),
                       static_cast<long long>(procs),
                       std::string("fault-free"),
                       static_cast<long long>(-1), 1.0, T, 1.0,
                       static_cast<long long>(0), 0.0,
                       static_cast<long long>(0), static_cast<long long>(0),
                       std::string("yes"), std::string("baseline")});
    straggler_rows.push_back(
        {std::string(to_string(algo)), "fault-free", T, 1.0, 0.0, 0, 0});

    for (const bool mitigated : {false, true}) {
      ExperimentConfig cfg = base;
      cfg.runtime.fault.slowdowns = {slow};
      cfg.runtime.fault.heartbeat_period = std::max(1e-4, 0.01 * T);
      cfg.hybrid.speculative_reissue = mitigated;
      const RunMetrics m = run_experiment(
          cfg, data.dataset->decomposition(), *data.source, seeds);
      const FaultStats& fs = m.fault;
      const bool identical =
          particles_identical(baseline_particles[algo], m.particles);
      if (!identical) ++failures;
      const double ratio = T > 0.0 ? m.wall_clock / T : 0.0;
      const bool slow_miss = mitigated && ratio > 1.5;
      straggler.add_row(
          {std::string(to_string(algo)), static_cast<long long>(procs),
           std::string(mitigated ? "mitigated" : "unmitigated"),
           static_cast<long long>(victim), slow_factor, m.wall_clock, ratio,
           static_cast<long long>(fs.stragglers_flagged),
           fs.straggler_detect_latency,
           static_cast<long long>(fs.particles_speculated),
           static_cast<long long>(fs.wasted_duplicate_steps),
           std::string(identical ? "yes" : "NO"),
           std::string(!identical  ? "MISMATCH"
                       : slow_miss ? "SLOW"
                                   : "ok")});
      straggler_rows.push_back({std::string(to_string(algo)),
                                mitigated ? "mitigated" : "unmitigated",
                                m.wall_clock, ratio,
                                fs.straggler_detect_latency,
                                fs.particles_speculated,
                                fs.wasted_duplicate_steps});
      std::cerr << "  straggler " << (mitigated ? "mitigated" : "unmitigated")
                << ": wall=" << m.wall_clock << "s (" << ratio
                << "x clean), flagged=" << fs.stragglers_flagged
                << " reissued=" << fs.particles_speculated
                << " identical=" << (identical ? "yes" : "NO") << '\n';
    }
  }

  // Corruption tolerance: silent payload bit-flips on 1 in 1000 block
  // reads.  The checksum catches every flip, the read retries on the
  // capped-backoff ladder, and all three algorithms must complete with
  // trajectories bit-identical to the fault-free run (zero wrong results).
  Table corrupt({"algorithm", "procs", "corrupt_rate", "wall_s", "vs_clean",
                 "corruptions_injected", "corruptions_detected",
                 "trajectories_match", "status"});
  for (const Algorithm algo : kAllAlgorithms) {
    ExperimentConfig cfg;
    cfg.algorithm = algo;
    cfg.runtime.num_ranks = procs;
    cfg.runtime.model = bench_machine(opt.seeds_scale);
    cfg.runtime.cache_blocks = opt.cache_blocks;
    cfg.limits = limits;
    cfg.runtime.fault.corrupt_rate = 1e-3;
    const RunMetrics m = run_experiment(
        cfg, data.dataset->decomposition(), *data.source, seeds);
    const FaultStats& fs = m.fault;
    const bool identical =
        particles_identical(baseline_particles[algo], m.particles);
    if (!identical || m.failed_fault) ++failures;
    const double T = baseline_wall[algo];
    corrupt.add_row(
        {std::string(to_string(algo)), static_cast<long long>(procs), 1e-3,
         m.wall_clock, T > 0.0 ? m.wall_clock / T : 0.0,
         static_cast<long long>(fs.corruptions_injected),
         static_cast<long long>(fs.corruptions_detected),
         std::string(identical ? "yes" : "NO"),
         std::string(m.failed_oom     ? "OOM"
                     : m.failed_fault ? "fault"
                     : identical      ? "ok"
                                      : "MISMATCH")});
    std::cerr << "  corruption: " << to_string(algo)
              << " injected=" << fs.corruptions_injected
              << " detected=" << fs.corruptions_detected
              << " identical=" << (identical ? "yes" : "NO") << '\n';
  }

  std::cout << "\nFault sweep: crash survival cost vs. MTBF and checkpoint "
               "cadence (P="
            << procs << ", seeds-scale=" << opt.seeds_scale << ")\n";
  table.print(std::cout);
  std::cout << "\nCoordinator failure: master / termination-counter death "
               "vs. immune baseline\n";
  coord.print(std::cout);
  std::cout << "\nStraggler mitigation: one slave at 10x slowdown, busy-rate "
               "detection + speculative re-issue\n";
  straggler.print(std::cout);
  std::cout << "\nCorruption tolerance: checksum-caught bit-flips at 1e-3 "
               "per read\n";
  corrupt.print(std::cout);
  if (opt.csv_dir) {
    const std::string path = *opt.csv_dir + "/fault_sweep.csv";
    table.write_csv(path);
    std::cout << "csv written to " << path << '\n';
    const std::string coord_path =
        *opt.csv_dir + "/fault_sweep_coordinator.csv";
    coord.write_csv(coord_path);
    std::cout << "csv written to " << coord_path << '\n';
    const std::string strag_path = *opt.csv_dir + "/fault_sweep_straggler.csv";
    straggler.write_csv(strag_path);
    std::cout << "csv written to " << strag_path << '\n';
    const std::string corrupt_path =
        *opt.csv_dir + "/fault_sweep_corruption.csv";
    corrupt.write_csv(corrupt_path);
    std::cout << "csv written to " << corrupt_path << '\n';

    // compare.py-consumable summary of the straggler table ("bench":
    // "fault_straggler", keyed by algorithm+mode).
    const std::string json_path = *opt.csv_dir + "/fault_straggler.json";
    std::ofstream out(json_path);
    out << "{\n \"bench\": \"fault_straggler\",\n"
        << " \"procs\": " << procs << ",\n"
        << " \"seeds_scale\": " << opt.seeds_scale << ",\n"
        << " \"results\": [\n";
    for (std::size_t i = 0; i < straggler_rows.size(); ++i) {
      const StragglerRow& r = straggler_rows[i];
      out << "  {\n"
          << "   \"algorithm\": \"" << r.algorithm << "\",\n"
          << "   \"mode\": \"" << r.mode << "\",\n"
          << "   \"wall_s\": " << r.wall_s << ",\n"
          << "   \"vs_clean\": " << r.vs_clean << ",\n"
          << "   \"detect_latency_s\": " << r.detect_latency_s << ",\n"
          << "   \"reissued_particles\": " << r.reissued << ",\n"
          << "   \"wasted_dup_steps\": " << r.wasted << "\n"
          << "  }" << (i + 1 < straggler_rows.size() ? "," : "") << "\n";
    }
    out << " ]\n}\n";
    std::cout << "json written to " << json_path << '\n';
  }
  if (failures > 0) {
    std::cerr << "FAILURES: " << failures
              << " run(s) with non-identical trajectories\n";
    return 1;
  }
  return 0;
}
