// Fault-tolerance sweep (DESIGN.md §7): for each algorithm, measure the
// cost of surviving rank crashes as a function of crash frequency (MTBF,
// expressed relative to the fault-free wall clock T) and checkpoint
// cadence.  Rows report the slowdown vs. the fault-free baseline, how
// much work was recovered/redone, and the modelled checkpoint overhead.
//
// Flags: the common bench flags (bench_common.hpp); --quick shrinks the
// seed set and the sweep grid for smoke runs.

#include <map>
#include <memory>

#include "bench_common.hpp"
#include "core/rng.hpp"

namespace {

using namespace sf;
using namespace sf::bench;

struct SweepPoint {
  double mtbf_rel;        // MTBF as a fraction of baseline wall clock
  double checkpoint_rel;  // checkpoint interval as a fraction of it (0 = off)
};

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_options(argc, argv);
  if (!opt.quick && opt.procs == std::vector<int>{64, 128, 256, 512}) {
    opt.procs = {64};  // the sweep varies faults, not scale
  }
  const int procs = opt.procs.front();

  BenchDataset data = make_bench_dataset(
      "supernova", std::make_shared<SupernovaField>());
  Rng seed_rng(2026);
  const auto seeds = random_seeds(
      data.field->bounds(),
      static_cast<std::size_t>(2000 * opt.seeds_scale), seed_rng);

  TraceLimits limits;
  limits.max_time = 15.0;
  limits.max_steps = 1500;

  const std::vector<SweepPoint> grid =
      opt.quick ? std::vector<SweepPoint>{{0.5, 0.0}, {0.5, 0.25}}
                : std::vector<SweepPoint>{{2.0, 0.0},  {1.0, 0.0},
                                          {0.5, 0.0},  {2.0, 0.25},
                                          {1.0, 0.25}, {0.5, 0.25},
                                          {0.5, 0.1}};

  Table table({"algorithm", "procs", "mtbf_s", "checkpoint_s", "wall_s",
               "slowdown", "crashes", "recovered_particles", "steps_redone",
               "recovery_s", "checkpoints", "checkpoint_overhead_s",
               "status"});
  std::map<Algorithm, double> baseline_wall;

  for (const Algorithm algo : kAllAlgorithms) {
    ExperimentConfig base;
    base.algorithm = algo;
    base.runtime.num_ranks = procs;
    base.runtime.model = bench_machine(opt.seeds_scale);
    base.runtime.cache_blocks = opt.cache_blocks;
    base.limits = limits;

    const RunMetrics clean = run_experiment(
        base, data.dataset->decomposition(), *data.source, seeds);
    const double T = clean.wall_clock;
    baseline_wall[algo] = T;
    table.add_row({std::string(to_string(algo)),
                   static_cast<long long>(procs), 0.0, 0.0, T, 1.0,
                   static_cast<long long>(0), static_cast<long long>(0),
                   static_cast<long long>(0), 0.0, static_cast<long long>(0),
                   0.0, std::string(clean.failed_oom ? "OOM" : "baseline")});
    std::cerr << "  baseline: " << to_string(algo) << " T=" << T << "s\n";

    for (const SweepPoint& pt : grid) {
      ExperimentConfig cfg = base;
      cfg.runtime.fault.mtbf = pt.mtbf_rel * T;
      cfg.runtime.fault.max_crashes = 3;
      cfg.runtime.fault.checkpoint_interval = pt.checkpoint_rel * T;

      const RunMetrics m = run_experiment(
          cfg, data.dataset->decomposition(), *data.source, seeds);
      const FaultStats& fs = m.fault;
      table.add_row(
          {std::string(to_string(algo)), static_cast<long long>(procs),
           cfg.runtime.fault.mtbf, cfg.runtime.fault.checkpoint_interval,
           m.wall_clock, T > 0.0 ? m.wall_clock / T : 0.0,
           static_cast<long long>(fs.crashes_injected),
           static_cast<long long>(fs.particles_recovered),
           static_cast<long long>(fs.steps_redone), fs.time_to_recovery,
           static_cast<long long>(fs.checkpoints_taken),
           fs.checkpoint_overhead,
           std::string(m.failed_oom ? "OOM" : "ok")});
      std::cerr << "  done: " << to_string(algo)
                << " mtbf=" << cfg.runtime.fault.mtbf
                << " ckpt=" << cfg.runtime.fault.checkpoint_interval
                << " wall=" << m.wall_clock << "s crashes="
                << fs.crashes_injected << '\n';
    }
  }

  // Coordinator-failure sweep (DESIGN.md §11): kill rank 0 — the hybrid
  // master under hybrid, the termination counter under the other two —
  // mid-run, and compare against a run that shields it through the
  // immune_ranks carve-out (the pre-failover behaviour).  Columns report
  // the failure-detection latency, the crash-to-recovery wall time, and
  // the wall-clock overhead of actually surviving the death.
  Table coord({"algorithm", "procs", "victim", "crash_s", "wall_s",
               "immune_wall_s", "overhead_vs_immune", "detect_latency_s",
               "recovery_wall_s", "recovered_particles", "status"});
  for (const Algorithm algo : kAllAlgorithms) {
    ExperimentConfig base;
    base.algorithm = algo;
    base.runtime.num_ranks = procs;
    base.runtime.model = bench_machine(opt.seeds_scale);
    base.runtime.cache_blocks = opt.cache_blocks;
    base.limits = limits;
    const double crash_at = 0.4 * baseline_wall[algo];

    ExperimentConfig shield = base;
    shield.runtime.fault.crashes = {{crash_at, 0}};
    shield.runtime.fault.immune_ranks = {0};  // carve-out filters the crash
    const RunMetrics immune = run_experiment(
        shield, data.dataset->decomposition(), *data.source, seeds);

    ExperimentConfig cfg = base;
    cfg.runtime.fault.crashes = {{crash_at, 0}};
    const RunMetrics m = run_experiment(
        cfg, data.dataset->decomposition(), *data.source, seeds);
    const FaultStats& fs = m.fault;
    double detect = -1.0, recover = -1.0;
    for (const CrashRecord& rec : fs.crash_records) {
      if (rec.rank != 0) continue;
      if (rec.detect_time >= 0.0) detect = rec.detect_time - rec.crash_time;
      if (rec.recover_time >= 0.0) {
        recover = rec.recover_time - rec.crash_time;
      }
    }
    coord.add_row(
        {std::string(to_string(algo)), static_cast<long long>(procs),
         std::string(algo == Algorithm::kHybridMasterSlave ? "master"
                                                           : "counter"),
         crash_at, m.wall_clock, immune.wall_clock,
         immune.wall_clock > 0.0 ? m.wall_clock / immune.wall_clock : 0.0,
         detect, recover, static_cast<long long>(fs.particles_recovered),
         std::string(m.failed_oom      ? "OOM"
                     : m.failed_fault  ? "fault"
                                       : "ok")});
    std::cerr << "  coordinator crash: " << to_string(algo)
              << " detect=" << detect << "s recover=" << recover
              << "s wall=" << m.wall_clock << "s\n";
  }

  std::cout << "\nFault sweep: crash survival cost vs. MTBF and checkpoint "
               "cadence (P="
            << procs << ", seeds-scale=" << opt.seeds_scale << ")\n";
  table.print(std::cout);
  std::cout << "\nCoordinator failure: master / termination-counter death "
               "vs. immune baseline\n";
  coord.print(std::cout);
  if (opt.csv_dir) {
    const std::string path = *opt.csv_dir + "/fault_sweep.csv";
    table.write_csv(path);
    std::cout << "csv written to " << path << '\n';
    const std::string coord_path =
        *opt.csv_dir + "/fault_sweep_coordinator.csv";
    coord.write_csv(coord_path);
    std::cout << "csv written to " << coord_path << '\n';
  }
  return 0;
}
