// Ablation study of the Hybrid Master/Slave heuristics (§4.3): how the
// assignment batch N, overload limit NO, load threshold NL, the
// slaves-per-master ratio W and the cache capacity move wall clock, I/O
// and communication.  The paper fixes N=10, NO=20N, NL=40, W=32 "to
// obtain good results"; this harness regenerates the evidence.
//
// Flags: --seeds-scale=X (default 0.05), --procs=P (single value, default
// 128), --csv=DIR

#include <cmath>

#include "bench_common.hpp"

namespace {

struct AblationRow {
  std::string knob;
  long long value;
  sf::RunMetrics metrics;
};

}  // namespace

int main(int argc, char** argv) {
  auto opt = sf::bench::parse_options(argc, argv);
  if (opt.procs.size() > 1) opt.procs = {opt.procs.front()};
  const int procs = opt.procs.empty() ? 128 : opt.procs.front();
  if (opt.seeds_scale == 0.5) opt.seeds_scale = 0.2;  // default override

  auto field = std::make_shared<sf::SupernovaField>();
  const auto data = sf::bench::make_bench_dataset("astro-ablation", field);

  sf::Rng rng(0xab1a7e);
  const auto seeds = sf::cluster_seeds(
      {0.25, 0.0, 0.0}, 0.12,
      static_cast<std::size_t>(20000 * opt.seeds_scale), rng,
      field->bounds());

  sf::TraceLimits limits;
  limits.max_time = 15.0;
  limits.max_steps = 1500;

  auto base_config = [&] {
    sf::ExperimentConfig cfg;
    cfg.algorithm = sf::Algorithm::kHybridMasterSlave;
    cfg.runtime.num_ranks = procs;
    cfg.runtime.model = sf::bench::bench_machine(opt.seeds_scale);
    cfg.runtime.cache_blocks = opt.cache_blocks;
    cfg.limits = limits;
    return cfg;
  };

  sf::Table table({"knob", "value", "wall_s", "io_total_s", "comm_total_s",
                   "block_E", "messages", "sent_MB", "status"});
  auto run = [&](const std::string& knob, long long value,
                 const sf::ExperimentConfig& cfg) {
    const sf::RunMetrics m = sf::run_experiment(
        cfg, data.dataset->decomposition(), *data.source, seeds);
    table.add_row({knob, value, m.failed_oom ? -1.0 : m.wall_clock,
                   m.total_io_time(), m.total_comm_time(),
                   m.block_efficiency(),
                   static_cast<long long>(m.total_messages()),
                   static_cast<double>(m.total_bytes_sent()) / (1 << 20),
                   std::string(m.failed_oom ? "OOM" : "ok")});
    std::cerr << "  done: " << knob << "=" << value << '\n';
  };

  // N: assignment granularity (paper default 10).
  for (const int n : {1, 5, 10, 20, 40}) {
    auto cfg = base_config();
    cfg.hybrid.assign_batch = n;
    run("N(assign-batch)", n, cfg);
  }
  // NO/N: overload factor (paper default 20).
  for (const int f : {2, 5, 10, 20, 40}) {
    auto cfg = base_config();
    cfg.hybrid.overload_factor = f;
    run("NO/N(overload)", f, cfg);
  }
  // NL: load-vs-migrate threshold (paper default 40).
  for (const int nl : {5, 10, 20, 40, 80, 160}) {
    auto cfg = base_config();
    cfg.hybrid.load_threshold = nl;
    run("NL(load-threshold)", nl, cfg);
  }
  // W: slaves per master (paper default 32).
  for (const int w : {8, 16, 32, 64, 128}) {
    auto cfg = base_config();
    cfg.hybrid.slaves_per_master = w;
    run("W(slaves/master)", w, cfg);
  }
  // Cache capacity, in blocks.
  for (const int cache : {4, 8, 16, 32, 64}) {
    auto cfg = base_config();
    cfg.runtime.cache_blocks = static_cast<std::size_t>(cache);
    run("cache(blocks)", cache, cfg);
  }
  // §8's proposed optimization: communicate solver state only instead of
  // full trajectory geometry (run for hybrid AND static — static is
  // where geometry-laden hand-offs dominate).
  for (const int carry : {1, 0}) {
    auto cfg = base_config();
    cfg.runtime.carry_geometry = (carry == 1);
    // These rows compare communication volume, so lift the memory limit:
    // static would otherwise OOM on this dense seeding (that failure
    // mode has its own figure — see fig_thermal).
    cfg.runtime.model.particle_memory_bytes = 8ull << 30;
    run("hybrid-carry-geometry", carry, cfg);
    cfg.algorithm = sf::Algorithm::kStaticAllocation;
    run("static-carry-geometry", carry, cfg);
  }
  // Filesystem parallelism: how many concurrent servers the shared disk
  // offers.  Redundant-I/O algorithms live or die by this.
  for (const int channels : {8, 32, 128, 512}) {
    auto cfg = base_config();
    cfg.runtime.model.io_channels = channels;
    run("io-channels", channels, cfg);
    cfg.algorithm = sf::Algorithm::kLoadOnDemand;
    run("lod-io-channels", channels, cfg);
  }

  std::cout << "\n== Hybrid Master/Slave heuristic ablations (astro dense, "
            << "P=" << procs << ", seeds-scale=" << opt.seeds_scale
            << ") ==\n";
  table.print(std::cout);
  if (opt.csv_dir) {
    table.write_csv(*opt.csv_dir + "/ablation_hybrid.csv");
  }
  return 0;
}
