// Streamline-service load benchmark (the regression gate for the
// multi-query runtime, DESIGN.md §12).
//
// Two sweeps over the simulated machine, both deterministic (seeded
// Poisson arrivals, seeded seed sets — the JSON is diffable run to run):
//
//   load sweep     : one query mix submitted at three Poisson rates
//                    calibrated against the mean solo service time
//                    (underloaded / critical / overloaded).  Reports
//                    p50/p99 queue wait, p50/p99 end-to-end latency and
//                    completed-query throughput.
//   overlap sweep  : serialized queries whose seed clusters overlap by
//                    0% / 50% / 100%, run with cross-query cache sharing
//                    and with cold per-query caches.  Reports the cache
//                    hit rate and p99 latency per cell.  The acceptance
//                    property — shared-cache hit rate strictly above the
//                    cold baseline at >= 50% overlap — is asserted here,
//                    so a regression fails the bench, not just the diff.
//   deadline sweep : the overloaded arrival schedule replayed with a
//                    per-query latency budget (tight and loose) and a
//                    shallow admission queue, plus one malformed
//                    submission — so every rejection class shows up
//                    attributed: rej_depth (queue full), rej_deadline
//                    (budget burned while queued), rej_malformed, and
//                    dl_cancelled (admitted, expired mid-flight).  The
//                    acceptance property — under a tight deadline every
//                    completed query's latency is within budget, and
//                    shedding keeps p99 below the unbounded overloaded
//                    p99 — is asserted here too.
//
// Results are written as JSON for tools/bench/compare.py.
//
// Flags:
//   --procs=N           simulated ranks (default 16)
//   --seeds=N           streamlines per query (default 400)
//   --queries=N         queries per load-sweep cell (default 10)
//   --out=PATH          output JSON path (default BENCH_service.json)
//   --query-deadline=S  replace the tight/loose deadline rows with one
//                       explicit per-query budget of S service-clock
//                       seconds (the relative acceptance assert is
//                       skipped; the met-budget assert still runs)
//   --quick             smoke preset: 8 ranks, 150 seeds, 6 queries

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"
#include "io/csv.hpp"
#include "service/service.hpp"

namespace {

struct Options {
  int procs = 16;
  std::size_t seeds = 400;
  std::size_t queries = 10;
  std::string out = "BENCH_service.json";
  double query_deadline = 0.0;  // 0 = the default tight/loose sweep
  bool quick = false;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--procs=", 0) == 0) {
      opt.procs = std::atoi(arg.substr(8).c_str());
    } else if (arg.rfind("--seeds=", 0) == 0) {
      opt.seeds = static_cast<std::size_t>(std::atoll(arg.substr(8).c_str()));
    } else if (arg.rfind("--queries=", 0) == 0) {
      opt.queries =
          static_cast<std::size_t>(std::atoll(arg.substr(10).c_str()));
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out = arg.substr(6);
    } else if (arg.rfind("--query-deadline=", 0) == 0) {
      opt.query_deadline = std::atof(arg.substr(17).c_str());
    } else if (arg == "--quick") {
      opt.quick = true;
      opt.procs = 8;
      opt.seeds = 150;
      opt.queries = 6;
    } else {
      std::cerr << "unknown flag: " << arg << '\n';
      std::exit(2);
    }
  }
  return opt;
}

// Same I/O-bound machine as bench/io_overlap: a demand miss costs about
// as much as the compute it unblocks, so cache reuse is decisive.
sf::MachineModel io_bound_machine() {
  sf::MachineModel m = sf::MachineModel::jaguar_like();
  m.io_bandwidth = 400.0 * (1 << 20);
  m.io_latency = 5e-3;
  m.seconds_per_step = 1e-4;
  m.particle_memory_bytes = 1ull << 30;
  return m;
}

struct Row {
  std::string scenario, cache;
  sf::ServiceReport r;
  double throughput = 0.0;  // completed queries per simulated second
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  auto field = std::make_shared<sf::SupernovaField>();
  const sf::BlockDecomposition decomp(field->bounds(), 8, 8, 8);  // 512
  auto dataset = std::make_shared<sf::BlockedDataset>(
      field, decomp, /*nodes_per_axis=*/9, /*ghost_cells=*/2);
  const sf::DatasetBlockSource source(dataset, /*modelled_bytes=*/12u << 20);

  sf::TraceLimits limits;
  limits.max_time = 15.0;
  limits.max_steps = opt.quick ? 400 : 1200;

  auto base_service = [&](std::size_t per_epoch, bool share) {
    sf::ServiceConfig sc;
    sc.base.algorithm = sf::Algorithm::kLoadOnDemand;
    sc.base.runtime.num_ranks = opt.procs;
    sc.base.runtime.model = io_bound_machine();
    sc.base.runtime.cache_blocks = 48;
    sc.base.limits = limits;
    sc.max_queries_per_epoch = per_epoch;
    sc.max_queue_depth = 1u << 12;  // admission is not the topic here
    sc.share_cache = share;
    return sc;
  };

  std::vector<Row> rows;

  // --- Load sweep ----------------------------------------------------------
  // One shared query mix; its arrival instants replayed at three Poisson
  // rates scaled off the mean solo service time S: 0.4/S (underloaded),
  // 1.0/S (critical) and 2.5/S (overloaded — queues must form).
  sf::Rng mix_rng(0x10ab5);
  std::vector<std::vector<sf::Vec3>> mix;
  for (std::size_t q = 0; q < opt.queries; ++q) {
    mix.push_back(sf::random_seeds(field->bounds(), opt.seeds, mix_rng));
  }

  double solo_s = 0.0;
  {
    sf::StreamlineService probe(base_service(1, true), &decomp, &source);
    for (const auto& seeds : mix) probe.submit(seeds);
    probe.run_until_idle();
    solo_s = probe.cumulative().wall_clock /
             static_cast<double>(probe.report().completed);
  }

  const struct {
    const char* name;
    double rate_x;  // arrival rate in units of 1/solo_s
  } loads[] = {{"load-low", 0.4}, {"load-critical", 1.0},
               {"load-high", 2.5}};
  for (const auto& load : loads) {
    sf::StreamlineService svc(base_service(4, true), &decomp, &source);
    sf::PoissonArrivals arrivals(load.rate_x / solo_s, 0x5eed);
    for (const auto& seeds : mix) svc.submit_at(seeds, arrivals.next());
    svc.run_until_idle();
    Row row;
    row.scenario = load.name;
    row.cache = "shared";
    row.r = svc.report();
    row.throughput =
        static_cast<double>(row.r.completed) / std::max(row.r.makespan, 1e-12);
    std::cerr << "  done: " << row.scenario << "  p99_wait="
              << row.r.p99_queue_wait << "  p99_latency="
              << row.r.p99_latency << '\n';
    rows.push_back(std::move(row));
  }

  // --- Overlap sweep -------------------------------------------------------
  // Serialized queries (one per epoch) whose seed clusters overlap by a
  // set fraction; shared vs cold caches.  With 50%+ overlap the shared
  // pool must beat re-reading the footprint from disk every epoch.
  const sf::AABB bounds = field->bounds();
  const double extent_x = bounds.hi.x - bounds.lo.x;
  const double radius = 0.06 * extent_x;
  const struct {
    const char* name;
    double frac;
  } overlaps[] = {{"overlap-0", 0.0}, {"overlap-50", 0.5},
                  {"overlap-100", 1.0}};
  double hit_rate_of[2][3] = {};  // [shared][overlap index]
  for (int shared = 1; shared >= 0; --shared) {
    for (std::size_t oi = 0; oi < 3; ++oi) {
      const auto& ov = overlaps[oi];
      sf::ServiceConfig sc = base_service(1, shared != 0);
      // Short traces: the footprint stays near the cluster, so the
      // shared pool can actually hold an epoch's working set and the
      // overlap fraction is what the seed geometry says it is.
      sc.base.limits.max_steps = opt.quick ? 120 : 300;
      sf::StreamlineService svc(sc, &decomp, &source);
      sf::Rng cluster_rng(0xc105);
      for (std::size_t q = 0; q < opt.queries; ++q) {
        // Consecutive cluster centers step by 2r(1-frac): coincident at
        // 100% overlap, tangent spheres at 0%.
        sf::Vec3 center = bounds.lo;
        center.x += 0.2 * extent_x +
                    static_cast<double>(q) * 2.0 * radius * (1.0 - ov.frac);
        center.y += 0.5 * (bounds.hi.y - bounds.lo.y);
        center.z += 0.5 * (bounds.hi.z - bounds.lo.z);
        svc.submit(sf::cluster_seeds(center, radius, opt.seeds, cluster_rng,
                                     bounds));
      }
      svc.run_until_idle();
      Row row;
      row.scenario = ov.name;
      row.cache = shared != 0 ? "shared" : "cold";
      row.r = svc.report();
      row.throughput = static_cast<double>(row.r.completed) /
                       std::max(row.r.makespan, 1e-12);
      hit_rate_of[shared][oi] = row.r.cache_hit_rate;
      std::cerr << "  done: " << row.scenario << " " << row.cache
                << "  hit_rate=" << row.r.cache_hit_rate << "  adopted="
                << row.r.blocks_adopted << '\n';
      rows.push_back(std::move(row));
    }
  }

  // Acceptance property: cache sharing must strictly beat cold caches
  // wherever queries overlap by at least half.
  for (std::size_t oi = 1; oi < 3; ++oi) {
    if (hit_rate_of[1][oi] <= hit_rate_of[0][oi]) {
      std::cerr << "FAIL: shared-cache hit rate " << hit_rate_of[1][oi]
                << " not above cold baseline " << hit_rate_of[0][oi]
                << " at " << overlaps[oi].name << '\n';
      return 1;
    }
  }

  // --- Deadline sweep ------------------------------------------------------
  // The overloaded schedule again, now with a per-query latency budget
  // and a shallow queue, plus one malformed (empty) submission — every
  // rejection class gets exercised and attributed.
  struct Budget {
    std::string name;
    double seconds;  // absolute service-clock latency budget
  };
  std::vector<Budget> budgets = {{"deadline-tight", 1.5 * solo_s},
                                 {"deadline-loose", 8.0 * solo_s}};
  if (opt.query_deadline > 0.0) {
    budgets = {{"deadline-user", opt.query_deadline}};
  }
  for (const auto& budget : budgets) {
    sf::ServiceConfig sc = base_service(4, true);
    sc.default_deadline = budget.seconds;
    sc.max_queue_depth = 2;  // shallow: depth shedding under overload
    sf::StreamlineService svc(sc, &decomp, &source);
    sf::PoissonArrivals arrivals(2.5 / solo_s, 0x5eed);
    for (const auto& seeds : mix) svc.submit_at(seeds, arrivals.next());
    svc.submit(std::vector<sf::Vec3>{});  // malformed: must be attributed
    svc.run_until_idle();
    Row row;
    row.scenario = budget.name;
    row.cache = "shared";
    row.r = svc.report();
    row.throughput =
        static_cast<double>(row.r.completed) / std::max(row.r.makespan, 1e-12);
    // Every query the service did complete must have met its budget: the
    // simulated runtime cancels at the exact expiry instant, so a
    // completed-but-late query means deadline enforcement broke.
    for (const auto& rec : svc.records()) {
      if (rec.state != sf::QueryState::kDone || rec.deadline <= 0.0) continue;
      if (rec.latency() > rec.deadline + 1e-9) {
        std::cerr << "FAIL: query " << rec.query << " completed at latency "
                  << rec.latency() << "s past its " << rec.deadline
                  << "s deadline\n";
        return 1;
      }
    }
    std::cerr << "  done: " << row.scenario << "  completed="
              << row.r.completed << "  rej_depth=" << row.r.rejected_depth
              << "  rej_deadline=" << row.r.rejected_deadline
              << "  rej_malformed=" << row.r.rejected_malformed
              << "  dl_cancelled=" << row.r.deadline_cancelled << '\n';
    if (row.r.rejected_malformed != 1) {
      std::cerr << "FAIL: the one malformed submission was not attributed "
                << "(rej_malformed=" << row.r.rejected_malformed << ")\n";
      return 1;
    }
    rows.push_back(std::move(row));
  }
  // Shedding must keep the tight-deadline completed-query p99 below the
  // unbounded overloaded p99 (rows[2] is load-high): that is the point
  // of deadline-aware admission.  Only meaningful for the default
  // tight/loose sweep — a user-chosen budget may be anything.
  if (opt.query_deadline <= 0.0 &&
      rows[rows.size() - 2].r.p99_latency >= rows[2].r.p99_latency) {
    std::cerr << "FAIL: tight-deadline p99 "
              << rows[rows.size() - 2].r.p99_latency
              << " not below unbounded overloaded p99 "
              << rows[2].r.p99_latency << '\n';
    return 1;
  }

  sf::Table table({"scenario", "cache", "completed", "rej_depth",
                   "rej_deadline", "rej_malformed", "dl_cancelled",
                   "p50_wait", "p99_wait", "p50_latency", "p99_latency",
                   "hit_rate", "adopted", "loads", "throughput"});
  for (const Row& row : rows) {
    table.add_row({row.scenario, row.cache,
                   static_cast<long long>(row.r.completed),
                   static_cast<long long>(row.r.rejected_depth),
                   static_cast<long long>(row.r.rejected_deadline),
                   static_cast<long long>(row.r.rejected_malformed),
                   static_cast<long long>(row.r.deadline_cancelled),
                   row.r.p50_queue_wait, row.r.p99_queue_wait,
                   row.r.p50_latency, row.r.p99_latency, row.r.cache_hit_rate,
                   static_cast<long long>(row.r.blocks_adopted),
                   static_cast<long long>(row.r.blocks_loaded),
                   row.throughput});
  }
  std::cout << "\n== Streamline service: multi-query load ==\n"
            << "procs=" << opt.procs << "  seeds/query=" << opt.seeds
            << "  queries=" << opt.queries << "  solo_service_s=" << solo_s
            << '\n';
  table.print(std::cout);

  std::ofstream out(opt.out);
  out << "{\n \"bench\": \"service_load\",\n"
      << " \"procs\": " << opt.procs << ",\n"
      << " \"seeds_per_query\": " << opt.seeds << ",\n"
      << " \"queries\": " << opt.queries << ",\n"
      << " \"max_steps\": " << limits.max_steps << ",\n"
      << " \"solo_service_s\": " << solo_s << ",\n"
      << " \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "  {\n"
        << "   \"scenario\": \"" << row.scenario << "\",\n"
        << "   \"cache\": \"" << row.cache << "\",\n"
        << "   \"completed\": " << row.r.completed << ",\n"
        << "   \"rejected_depth\": " << row.r.rejected_depth << ",\n"
        << "   \"rejected_deadline\": " << row.r.rejected_deadline << ",\n"
        << "   \"rejected_malformed\": " << row.r.rejected_malformed << ",\n"
        << "   \"deadline_cancelled\": " << row.r.deadline_cancelled << ",\n"
        << "   \"epochs\": " << row.r.epochs << ",\n"
        << "   \"makespan_s\": " << row.r.makespan << ",\n"
        << "   \"p50_queue_wait_s\": " << row.r.p50_queue_wait << ",\n"
        << "   \"p99_queue_wait_s\": " << row.r.p99_queue_wait << ",\n"
        << "   \"p50_latency_s\": " << row.r.p50_latency << ",\n"
        << "   \"p99_latency_s\": " << row.r.p99_latency << ",\n"
        << "   \"hit_rate\": " << row.r.cache_hit_rate << ",\n"
        << "   \"blocks_adopted\": " << row.r.blocks_adopted << ",\n"
        << "   \"blocks_loaded\": " << row.r.blocks_loaded << ",\n"
        << "   \"throughput_qps\": " << row.throughput << "\n"
        << "  }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << " ]\n}\n";
  std::cout << "json written to " << opt.out << '\n';
  return 0;
}
