// Figures 9-12: the magnetically-confined-fusion scaling study.
//
// Paper setup: 512 blocks x 1M cells of NIMROD tokamak field, 10,000
// seeds sparse and dense, 64-512 cores.  Key property (§5.2): field
// lines are nearly closed and fill the torus regardless of seeding, so
//   * Static and Hybrid wall clocks are nearly identical (Fig 9)
//   * LoD is poor for sparse seeds but competitive for dense seeds whose
//     working set fits in the cache (Figs 9, 10)
//   * Static communication explodes for dense seeding (Fig 11)
//   * Hybrid block efficiency is lower than astro — replication pays
//     (Fig 12)

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = sf::bench::parse_options(argc, argv);

  auto field = std::make_shared<sf::TokamakField>();
  // Finer per-block sampling than the default: tokamak flux surfaces
  // are meaningful only when interpolation noise stays below the island
  // perturbation, else every line turns numerically chaotic.
  const auto data = sf::bench::make_bench_dataset("fusion", field, 17);
  const double r0 = field->params().major_radius;
  const double a = field->params().minor_radius;

  const auto seeds =
      static_cast<std::size_t>(10000 * opt.seeds_scale);  // paper: 10,000
  sf::Rng rng(0xf0510);

  // Sparse: seeds throughout the torus volume (rejection-sample the
  // bounding box into the torus interior).
  std::vector<sf::Vec3> sparse;
  while (sparse.size() < seeds) {
    const sf::Vec3 p{rng.uniform(-r0 - a, r0 + a),
                     rng.uniform(-r0 - a, r0 + a), rng.uniform(-a, a)};
    const double rr = std::hypot(std::hypot(p.x, p.y) - r0, p.z);
    if (rr < 0.9 * a) sparse.push_back(p);
  }
  // Dense: a small patch on quiet inner flux surfaces (below the island
  // resonance).  The rotational transform still carries the lines all
  // the way around the torus (§5.2), but they stay on a tight bundle of
  // surfaces whose blocks fit in memory — the case where Load On Demand
  // turns competitive (Fig 9).
  const auto dense = sf::cluster_seeds({r0 + 0.25 * a, 0.0, 0.0}, 0.04 * a,
                                       seeds, rng, field->bounds());

  std::vector<sf::bench::Scenario> scenarios;
  scenarios.push_back({"sparse", std::move(sparse)});
  scenarios.push_back({"dense", dense});

  sf::TraceLimits limits;
  limits.max_time = 20.0;  // several toroidal transits
  limits.max_steps = 2000;

  sf::bench::run_figure_set(
      opt, data, scenarios, limits,
      "== Figures 9-12: fusion dataset (wall clock / I/O time / "
      "communication time / block efficiency) ==");
  return 0;
}
