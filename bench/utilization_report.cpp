// Processor-utilization report (§8: "processor starvation is often a
// limitation to large scalability ... observing communication and
// processor utilization patterns" is the paper's proposed next step).
//
// Runs all three algorithms on the astro dense problem with timeline
// recording and prints, per algorithm: the system utilization curve over
// ten slices of the run, mean/peak utilization and starved rank-seconds.
//
// Flags: --procs=P (single value, default 64), --seeds-scale (default
// 0.2), --csv=DIR

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto opt = sf::bench::parse_options(argc, argv);
  if (opt.procs.size() > 1) opt.procs = {64};
  const int procs = opt.procs.front();
  if (opt.seeds_scale == 0.5) opt.seeds_scale = 0.2;

  auto field = std::make_shared<sf::SupernovaField>();
  const auto data = sf::bench::make_bench_dataset("astro-util", field);

  sf::Rng rng(0x0717);
  const auto seeds = sf::cluster_seeds(
      {0.25, 0.0, 0.0}, 0.18,
      static_cast<std::size_t>(20000 * opt.seeds_scale), rng,
      field->bounds());

  std::vector<std::string> columns{"algorithm", "wall_s", "mean_util",
                                   "peak_util", "starved_rank_s"};
  for (int b = 1; b <= 10; ++b) {
    std::string label = "u";
    label += std::to_string(b);
    columns.push_back(std::move(label));
  }
  sf::Table table(columns);

  for (const sf::Algorithm algo : sf::bench::kAllAlgorithms) {
    sf::ExperimentConfig cfg;
    cfg.algorithm = algo;
    cfg.runtime.num_ranks = procs;
    cfg.runtime.model = sf::bench::bench_machine(opt.seeds_scale);
    cfg.runtime.model.particle_memory_bytes = 8ull << 30;  // study balance,
    cfg.runtime.cache_blocks = opt.cache_blocks;           // not OOM
    cfg.runtime.record_timeline = true;
    cfg.limits.max_time = 15.0;
    cfg.limits.max_steps = 1500;

    const sf::RunMetrics m = sf::run_experiment(
        cfg, data.dataset->decomposition(), *data.source, seeds);
    const auto curve = m.timeline->utilization_curve(m.wall_clock, 10);
    double peak = 0.0;
    for (const double u : curve) peak = std::max(peak, u);

    std::vector<sf::Table::Cell> row;
    row.reserve(15);
    row.emplace_back(std::string(to_string(algo)));
    row.emplace_back(m.wall_clock);
    row.emplace_back(m.mean_utilization());
    row.emplace_back(peak);
    row.emplace_back(m.timeline->total_starved_seconds(m.wall_clock));
    for (const double u : curve) row.emplace_back(u);
    table.add_row(std::move(row));
    std::cerr << "  done: " << to_string(algo) << '\n';
  }

  std::cout << "\n== Processor utilization over the run (astro dense, P="
            << procs << ", seeds-scale=" << opt.seeds_scale << ") ==\n"
            << "u1..u10 = fraction of all ranks computing during each "
               "tenth of the run.\n";
  table.print(std::cout);
  if (opt.csv_dir) table.write_csv(*opt.csv_dir + "/utilization.csv");
  return 0;
}
