// Unsteady analysis end to end (the §8 pathline extension): build
// time-sliced block data from the double-gyre flow, run parallel
// Load-On-Demand pathlines over the spacetime blocks, and compute
// forward/backward FTLE fields whose ridges are the flow's Lagrangian
// coherent structures.
//
// Usage: unsteady_gyre [output_dir]   (default ./output)

#include <filesystem>
#include <iostream>

#include "analysis/ftle.hpp"
#include "analysis/pathline_lod.hpp"
#include "analysis/time_field.hpp"
#include "core/seeds.hpp"
#include "io/vtk_writer.hpp"

namespace {

// One frozen time snapshot of the gyre, used to build slice datasets.
class FrozenGyre final : public sf::VectorField {
 public:
  explicit FrozenGyre(double t) : t_(t) {}
  bool sample(const sf::Vec3& p, sf::Vec3& out) const override {
    return gyre_.sample(p, t_, out);
  }
  sf::AABB bounds() const override { return gyre_.bounds(); }

 private:
  sf::DoubleGyreField gyre_;
  double t_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "output";
  const sf::DoubleGyreField gyre;
  const double horizon = 10.0;  // one oscillation period

  // Time-sliced block data, as a simulation would write it: 21 slices
  // of an 8x8x1 block decomposition.
  const sf::BlockDecomposition decomp(gyre.bounds(), 8, 8, 1);
  std::vector<sf::DatasetPtr> slices;
  std::vector<double> times;
  for (int i = 0; i <= 20; ++i) {
    const double t = horizon * i / 20.0;
    slices.push_back(std::make_shared<sf::BlockedDataset>(
        std::make_shared<FrozenGyre>(t), decomp, 17, 2));
    times.push_back(t);
  }

  // Parallel pathlines over the spacetime blocks.
  {
    auto seeds = sf::uniform_grid_seeds(
        sf::AABB{{0.1, 0.1, 0}, {1.9, 0.9, 0}}, 24, 12, 1);
    sf::PathlineExperimentConfig cfg;
    cfg.runtime.num_ranks = 16;
    cfg.runtime.cache_blocks = 48;
    cfg.limits.max_time = horizon;
    cfg.limits.max_steps = 20000;
    const sf::RunMetrics m = sf::run_pathline_experiment(
        cfg, decomp, slices, times, seeds, /*modelled_block_bytes=*/0);
    std::cout << "parallel pathlines: " << m.particles.size()
              << " traced over " << slices.size() << " slices, "
              << m.total_blocks_loaded() << " spacetime block loads, E = "
              << m.block_efficiency() << '\n';
  }

  // FTLE of the continuous field, forward and backward: repelling and
  // attracting LCS.
  const sf::TimeSliceField sliced(slices, times);
  for (const double sign : {+1.0, -1.0}) {
    sf::FtleParams prm;
    prm.region = sf::AABB{{0.02, 0.02, 0}, {1.98, 0.98, 0}};
    prm.nx = 96;
    prm.ny = 48;
    prm.nz = 1;
    prm.t0 = sign > 0 ? 0.0 : horizon;
    prm.horizon = sign * horizon;
    prm.integrator.tol = 1e-6;
    const sf::FtleField f = sf::compute_ftle(sliced, prm);
    const auto path = out_dir / (sign > 0 ? "gyre_ftle_forward.vtk"
                                          : "gyre_ftle_backward.vtk");
    sf::write_vtk_scalar_grid(path, f.region, f.nx, f.ny, f.nz, f.values,
                              "ftle");
    std::cout << "wrote " << path.string() << '\n';
  }
  return 0;
}
