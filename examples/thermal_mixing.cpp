// Thermal-hydraulics scenario (Figures 3 and 4): streamlines showing how
// water from twin inlets mixes in a box, and a stream surface seeded as
// a circle around one inlet showing the turbulence in the flow leaving
// it.  Adds an FTLE slice to expose the recirculation zones' transport
// barriers (the Lagrangian analysis §2.1 motivates).
//
// Usage: thermal_mixing [output_dir]   (default ./output)

#include <filesystem>
#include <iostream>

#include "analysis/ftle.hpp"
#include "analysis/stream_surface.hpp"
#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"
#include "core/tracer.hpp"
#include "io/obj_writer.hpp"
#include "io/vtk_writer.hpp"

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "output";

  auto field = std::make_shared<sf::ThermalHydraulicsField>();
  const auto& prm = field->params();

  // Figure 3: streamlines seeded uniformly through the volume, showing
  // areas of high velocity, stagnation and recirculation.
  {
    const sf::BlockDecomposition decomp(field->bounds(), 8, 8, 8);
    const auto dataset =
        std::make_shared<sf::BlockedDataset>(field, decomp, 9, 2);
    const auto seeds = sf::uniform_grid_seeds(field->bounds(), 8, 8, 8);
    sf::IntegratorParams integrator;
    integrator.tol = 1e-6;
    sf::TraceLimits limits;
    limits.max_time = 6.0;
    limits.max_steps = 3000;
    sf::PolylineRecorder recorder(seeds.size());
    sf::trace_all(*dataset, seeds, integrator, limits, &recorder);
    const auto path = out_dir / "thermal_volume_streamlines.vtk";
    sf::write_vtk_polylines(path, recorder.lines(),
                            "thermal hydraulics mixing");
    std::cout << "wrote " << path.string() << '\n';
  }

  // Figure 4: a stream surface from a circle of seeds immediately around
  // inlet 1 — with dynamic mid-surface seed insertion where the front
  // stretches.
  {
    const auto curve = sf::circle_seeds(prm.inlet1 + sf::Vec3{0.02, 0, 0},
                                        {1, 0, 0}, prm.inlet_radius, 64);
    sf::StreamSurfaceParams sprm;
    sprm.ring_dt = 0.01;
    sprm.max_rings = 150;
    sprm.split_distance = 0.02;
    sprm.integrator.tol = 1e-6;
    const sf::StreamSurface surface =
        sf::compute_stream_surface(*field, curve, sprm);
    const auto path = out_dir / "thermal_inlet_surface.obj";
    sf::write_obj(path, surface.vertices, surface.triangles);
    std::cout << "wrote " << path.string() << " (" << surface.rings
              << " rings, " << surface.vertices.size() << " vertices, "
              << surface.inserted_streamlines
              << " dynamically inserted streamlines)\n";
  }

  // FTLE slice at mid-height: ridges mark the recirculation zones that
  // isolate regions from heat exchange.
  {
    sf::FtleParams fprm;
    fprm.region = sf::AABB{{0.02, 0.02, 0.45}, {0.98, 0.98, 0.45}};
    fprm.nx = 48;
    fprm.ny = 48;
    fprm.nz = 1;
    fprm.horizon = 4.0;
    fprm.integrator.tol = 1e-5;
    const sf::FtleField ftle = sf::compute_ftle(*field, fprm);
    const auto path = out_dir / "thermal_ftle_slice.vtk";
    sf::write_vtk_scalar_grid(path, ftle.region, ftle.nx, ftle.ny, ftle.nz,
                              ftle.values, "ftle");
    std::cout << "wrote " << path.string() << '\n';
  }
  return 0;
}
