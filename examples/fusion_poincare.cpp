// Fusion scenario (Figure 2): field lines inside a tokamak, plus the
// Poincaré puncture plot that exposes flux surfaces, magnetic islands
// and the chaotic layer — the analysis §8 of the paper highlights as the
// case where only solver state needs to travel between processors.
//
// Usage: fusion_poincare [output_dir]   (default ./output)

#include <cmath>
#include <filesystem>
#include <iostream>

#include "analysis/poincare.hpp"
#include "core/analytic_fields.hpp"
#include "core/tracer.hpp"
#include "io/vtk_writer.hpp"

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "output";

  const sf::TokamakField field;
  const double r0 = field.params().major_radius;
  const double a = field.params().minor_radius;

  // A few field lines for the Figure 2 style rendering.
  {
    std::vector<sf::Vec3> seeds;
    for (int i = 0; i < 12; ++i) {
      const double r = a * (0.15 + 0.07 * i);
      seeds.push_back({r0 + r, 0.0, 0.0});
    }
    sf::IntegratorParams integrator;
    integrator.tol = 1e-7;
    sf::TraceLimits limits;
    limits.max_time = 120.0;  // several toroidal transits
    limits.max_steps = 20000;

    sf::PolylineRecorder recorder(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      sf::trace_field(field, seeds[i], integrator, limits, &recorder,
                      static_cast<std::uint32_t>(i));
    }
    const auto path = out_dir / "tokamak_fieldlines.vtk";
    sf::write_vtk_polylines(path, recorder.lines(), "tokamak field lines");
    std::cout << "wrote " << path.string() << '\n';
  }

  // Poincaré puncture plot on the phi = 0 poloidal half-plane.
  {
    sf::PoincareParams prm;
    prm.plane_point = {0, 0, 0};
    prm.plane_normal = {0, 1, 0};
    prm.accept = [](const sf::Vec3& p) { return p.x > 0; };
    prm.max_crossings = 300;
    prm.limits.max_time = 30000.0;
    prm.limits.max_steps = 2000000;
    prm.integrator.tol = 1e-8;

    std::vector<sf::Vec3> hits;
    std::vector<double> surface_id;
    for (int i = 0; i < 16; ++i) {
      const double r = a * (0.1 + 0.055 * i);
      const auto punctures =
          sf::poincare_punctures(field, {r0 + r, 0.0, 0.0}, prm);
      for (const sf::Vec3& h : punctures) {
        hits.push_back(h);
        surface_id.push_back(i);
      }
    }
    const auto path = out_dir / "tokamak_poincare.vtk";
    sf::write_vtk_points(path, hits, surface_id, "tokamak puncture plot");
    std::cout << "wrote " << path.string() << " (" << hits.size()
              << " punctures from 16 field lines)\n";

    // A quick textual summary: radial spread per launched surface shows
    // which lines sit on intact flux surfaces and which wander.
    std::cout << "surface  punctures  minor-radius spread\n";
    std::size_t k = 0;
    for (int i = 0; i < 16; ++i) {
      double rmin = 1e300, rmax = -1e300;
      std::size_t n = 0;
      for (; k < hits.size() && surface_id[k] == i; ++k, ++n) {
        const double rr = std::hypot(std::hypot(hits[k].x, hits[k].y) - r0,
                                     hits[k].z);
        rmin = std::min(rmin, rr);
        rmax = std::max(rmax, rr);
      }
      if (n > 0) {
        std::printf("%7d  %9zu  %.4f\n", i, n, rmax - rmin);
      }
    }
  }
  return 0;
}
