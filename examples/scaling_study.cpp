// A miniature Figure-5-style scaling study driven entirely through the
// public API: all three parallelization strategies over the supernova
// dataset on the simulated machine, sparse vs dense seeding, two
// processor counts.  The full-size reproductions live in bench/fig_*.
//
// Usage: scaling_study [seeds]   (default 400)

#include <cstdlib>
#include <iostream>

#include "algorithms/driver.hpp"
#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"
#include "io/csv.hpp"

int main(int argc, char** argv) {
  const std::size_t num_seeds =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 400;

  auto field = std::make_shared<sf::SupernovaField>();
  const sf::BlockDecomposition decomp(field->bounds(), 8, 8, 8);
  const auto dataset =
      std::make_shared<sf::BlockedDataset>(field, decomp, 9, 2);
  // Charge I/O at paper scale: 1M-cell blocks ~ 12 MB each.
  const sf::DatasetBlockSource source(dataset, 12u << 20);

  sf::Rng rng(42);
  const auto sparse = sf::random_seeds(field->bounds(), num_seeds, rng);
  const auto dense =
      sf::cluster_seeds({0.3, 0, 0}, 0.1, num_seeds, rng, field->bounds());

  sf::Table table({"seeding", "algorithm", "procs", "wall_s", "io_s",
                   "comm_s", "block_E", "messages"});

  for (const auto& [seeding, seeds] :
       {std::pair{"sparse", &sparse}, std::pair{"dense", &dense}}) {
    for (const auto algo : {sf::Algorithm::kStaticAllocation,
                            sf::Algorithm::kLoadOnDemand,
                            sf::Algorithm::kHybridMasterSlave}) {
      for (const int procs : {16, 64}) {
        sf::ExperimentConfig cfg;
        cfg.algorithm = algo;
        cfg.runtime.num_ranks = procs;
        cfg.runtime.model = sf::MachineModel::jaguar_like();
        cfg.runtime.cache_blocks = 48;
        cfg.limits.max_time = 10.0;
        cfg.limits.max_steps = 1200;

        const sf::RunMetrics m =
            sf::run_experiment(cfg, decomp, source, *seeds);
        table.add_row({std::string(seeding),
                       std::string(sf::to_string(algo)),
                       static_cast<long long>(procs),
                       m.failed_oom ? -1.0 : m.wall_clock,
                       m.total_io_time(), m.total_comm_time(),
                       m.block_efficiency(),
                       static_cast<long long>(m.total_messages())});
      }
    }
  }

  std::cout << "Simulated scaling study, supernova dataset, " << num_seeds
            << " seeds (wall_s = -1 means out-of-memory failure)\n";
  table.print(std::cout);
  return 0;
}
