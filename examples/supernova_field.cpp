// Astrophysics scenario (Figure 1 of the paper): streamlines of the
// magnetic field around a core-collapse supernova, seeded both sparsely
// through the volume and densely outside the proto-neutron star.
//
// The analytic supernova field substitutes for the GenASiS dataset
// (DESIGN.md §2); the dataset is sampled onto 512 blocks exactly like
// the paper's scaling study.
//
// Usage: supernova_field [output_dir]   (default ./output)

#include <filesystem>
#include <iostream>

#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"
#include "core/tracer.hpp"
#include "io/vtk_writer.hpp"

namespace {

void trace_and_write(const sf::BlockedDataset& dataset,
                     const std::vector<sf::Vec3>& seeds,
                     const std::filesystem::path& path, const char* label) {
  sf::IntegratorParams integrator;
  integrator.tol = 1e-6;
  sf::TraceLimits limits;
  limits.max_time = 8.0;
  limits.max_steps = 3000;

  sf::PolylineRecorder recorder(seeds.size());
  const auto particles =
      sf::trace_all(dataset, seeds, integrator, limits, &recorder);
  sf::write_vtk_polylines(path, recorder.lines(), label);

  std::size_t steps = 0;
  for (const sf::Particle& p : particles) steps += p.steps;
  std::cout << label << ": " << particles.size() << " lines, " << steps
            << " steps -> " << path.string() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "output";

  auto field = std::make_shared<sf::SupernovaField>();
  // 512 blocks, like the paper's study (8 x 8 x 8).
  const sf::BlockDecomposition decomp(field->bounds(), 8, 8, 8);
  const auto dataset =
      std::make_shared<sf::BlockedDataset>(field, decomp, 9, 2);

  // Sparse: uniform random seeds across the domain.
  sf::Rng rng(2009);
  const auto sparse = sf::random_seeds(field->bounds(), 300, rng);
  trace_and_write(*dataset, sparse, out_dir / "supernova_sparse.vtk",
                  "supernova sparse seeding");

  // Dense: a shell of seeds just outside the proto-neutron star,
  // illustrating "the complex magnetic field inside the supernova shock
  // front" (Figure 1).
  const auto dense = sf::cluster_seeds({0, 0, 0}, 0.18, 300, rng,
                                       field->bounds());
  trace_and_write(*dataset, dense, out_dir / "supernova_dense.vtk",
                  "supernova dense seeding");

  // Also export one mid-plane block's vector field for context.
  sf::write_vtk_vector_grid(out_dir / "supernova_block.vtk",
                            *dataset->block(decomp.id_of({4, 4, 4})),
                            "supernova field, central block");
  return 0;
}
