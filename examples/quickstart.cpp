// Quickstart: trace streamlines through an analytic field and export
// them for ParaView/VisIt.
//
//   1. pick a vector field (here: the chaotic ABC flow),
//   2. sample it onto a block-decomposed dataset (as simulation output
//      would arrive),
//   3. seed and trace streamlines with the serial API,
//   4. write the polylines to legacy VTK.
//
// Usage: quickstart [output_dir]   (default ./output)

#include <filesystem>
#include <iostream>

#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"
#include "core/tracer.hpp"
#include "io/vtk_writer.hpp"

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "output";

  // 1. The field.
  auto field = std::make_shared<sf::ABCField>();

  // 2. A 4x4x4-block dataset sampled at 17^3 nodes per block with a
  //    2-cell ghost layer — the shape large simulation data arrives in.
  const sf::BlockDecomposition decomp(field->bounds(), 4, 4, 4);
  const auto dataset =
      std::make_shared<sf::BlockedDataset>(field, decomp, 17, 2);

  // 3. Seed a sparse lattice and trace.
  const auto seeds = sf::uniform_grid_seeds(field->bounds(), 6, 6, 6);

  sf::IntegratorParams integrator;  // adaptive Dormand-Prince 5(4)
  integrator.tol = 1e-7;
  sf::TraceLimits limits;
  limits.max_time = 12.0;
  limits.max_steps = 4000;

  sf::PolylineRecorder recorder(seeds.size());
  const auto particles =
      sf::trace_all(*dataset, seeds, integrator, limits, &recorder);

  // 4. Export.
  const auto path = out_dir / "quickstart_streamlines.vtk";
  sf::write_vtk_polylines(path, recorder.lines(), "ABC flow streamlines");

  std::size_t steps = 0;
  int by_status[6] = {};
  for (const sf::Particle& p : particles) {
    steps += p.steps;
    by_status[static_cast<int>(p.status)]++;
  }
  std::cout << "traced " << particles.size() << " streamlines ("
            << steps << " steps total)\n";
  for (int s = 1; s < 6; ++s) {
    if (by_status[s] > 0) {
      std::cout << "  " << sf::to_string(static_cast<sf::ParticleStatus>(s))
                << ": " << by_status[s] << '\n';
    }
  }
  std::cout << "wrote " << path.string() << '\n';
  return 0;
}
