# Empty dependencies file for streamflow_cli.
# This may be replaced when dependencies are built.
