file(REMOVE_RECURSE
  "CMakeFiles/streamflow_cli.dir/streamflow_cli.cpp.o"
  "CMakeFiles/streamflow_cli.dir/streamflow_cli.cpp.o.d"
  "streamflow"
  "streamflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamflow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
