file(REMOVE_RECURSE
  "libstreamflow.a"
)
