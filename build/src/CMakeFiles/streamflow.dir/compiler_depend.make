# Empty compiler generated dependencies file for streamflow.
# This may be replaced when dependencies are built.
