
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/driver.cpp" "src/CMakeFiles/streamflow.dir/algorithms/driver.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/algorithms/driver.cpp.o.d"
  "/root/repo/src/algorithms/hybrid.cpp" "src/CMakeFiles/streamflow.dir/algorithms/hybrid.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/algorithms/hybrid.cpp.o.d"
  "/root/repo/src/algorithms/load_on_demand.cpp" "src/CMakeFiles/streamflow.dir/algorithms/load_on_demand.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/algorithms/load_on_demand.cpp.o.d"
  "/root/repo/src/algorithms/routing.cpp" "src/CMakeFiles/streamflow.dir/algorithms/routing.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/algorithms/routing.cpp.o.d"
  "/root/repo/src/algorithms/static_alloc.cpp" "src/CMakeFiles/streamflow.dir/algorithms/static_alloc.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/algorithms/static_alloc.cpp.o.d"
  "/root/repo/src/analysis/ftle.cpp" "src/CMakeFiles/streamflow.dir/analysis/ftle.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/analysis/ftle.cpp.o.d"
  "/root/repo/src/analysis/pathline_lod.cpp" "src/CMakeFiles/streamflow.dir/analysis/pathline_lod.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/analysis/pathline_lod.cpp.o.d"
  "/root/repo/src/analysis/pathlines.cpp" "src/CMakeFiles/streamflow.dir/analysis/pathlines.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/analysis/pathlines.cpp.o.d"
  "/root/repo/src/analysis/poincare.cpp" "src/CMakeFiles/streamflow.dir/analysis/poincare.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/analysis/poincare.cpp.o.d"
  "/root/repo/src/analysis/statistics.cpp" "src/CMakeFiles/streamflow.dir/analysis/statistics.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/analysis/statistics.cpp.o.d"
  "/root/repo/src/analysis/stream_surface.cpp" "src/CMakeFiles/streamflow.dir/analysis/stream_surface.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/analysis/stream_surface.cpp.o.d"
  "/root/repo/src/analysis/time_field.cpp" "src/CMakeFiles/streamflow.dir/analysis/time_field.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/analysis/time_field.cpp.o.d"
  "/root/repo/src/analysis/unsteady_tracer.cpp" "src/CMakeFiles/streamflow.dir/analysis/unsteady_tracer.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/analysis/unsteady_tracer.cpp.o.d"
  "/root/repo/src/core/analytic_fields.cpp" "src/CMakeFiles/streamflow.dir/core/analytic_fields.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/core/analytic_fields.cpp.o.d"
  "/root/repo/src/core/block_decomposition.cpp" "src/CMakeFiles/streamflow.dir/core/block_decomposition.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/core/block_decomposition.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/CMakeFiles/streamflow.dir/core/dataset.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/core/dataset.cpp.o.d"
  "/root/repo/src/core/integrator.cpp" "src/CMakeFiles/streamflow.dir/core/integrator.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/core/integrator.cpp.o.d"
  "/root/repo/src/core/seeds.cpp" "src/CMakeFiles/streamflow.dir/core/seeds.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/core/seeds.cpp.o.d"
  "/root/repo/src/core/structured_grid.cpp" "src/CMakeFiles/streamflow.dir/core/structured_grid.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/core/structured_grid.cpp.o.d"
  "/root/repo/src/core/tracer.cpp" "src/CMakeFiles/streamflow.dir/core/tracer.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/core/tracer.cpp.o.d"
  "/root/repo/src/io/block_store.cpp" "src/CMakeFiles/streamflow.dir/io/block_store.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/io/block_store.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/streamflow.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/obj_writer.cpp" "src/CMakeFiles/streamflow.dir/io/obj_writer.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/io/obj_writer.cpp.o.d"
  "/root/repo/src/io/vtk_writer.cpp" "src/CMakeFiles/streamflow.dir/io/vtk_writer.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/io/vtk_writer.cpp.o.d"
  "/root/repo/src/runtime/block_cache.cpp" "src/CMakeFiles/streamflow.dir/runtime/block_cache.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/runtime/block_cache.cpp.o.d"
  "/root/repo/src/runtime/message.cpp" "src/CMakeFiles/streamflow.dir/runtime/message.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/runtime/message.cpp.o.d"
  "/root/repo/src/runtime/metrics.cpp" "src/CMakeFiles/streamflow.dir/runtime/metrics.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/runtime/metrics.cpp.o.d"
  "/root/repo/src/runtime/sim_runtime.cpp" "src/CMakeFiles/streamflow.dir/runtime/sim_runtime.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/runtime/sim_runtime.cpp.o.d"
  "/root/repo/src/runtime/thread_runtime.cpp" "src/CMakeFiles/streamflow.dir/runtime/thread_runtime.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/runtime/thread_runtime.cpp.o.d"
  "/root/repo/src/runtime/timeline.cpp" "src/CMakeFiles/streamflow.dir/runtime/timeline.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/runtime/timeline.cpp.o.d"
  "/root/repo/src/sim/disk.cpp" "src/CMakeFiles/streamflow.dir/sim/disk.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/sim/disk.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/streamflow.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/sim_engine.cpp" "src/CMakeFiles/streamflow.dir/sim/sim_engine.cpp.o" "gcc" "src/CMakeFiles/streamflow.dir/sim/sim_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
