# Empty dependencies file for streamflow_tests.
# This may be replaced when dependencies are built.
