
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aabb.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_aabb.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_aabb.cpp.o.d"
  "/root/repo/tests/test_analytic_fields.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_analytic_fields.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_analytic_fields.cpp.o.d"
  "/root/repo/tests/test_block_cache.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_block_cache.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_block_cache.cpp.o.d"
  "/root/repo/tests/test_block_decomposition.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_block_decomposition.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_block_decomposition.cpp.o.d"
  "/root/repo/tests/test_block_store.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_block_store.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_block_store.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_disk_network.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_disk_network.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_disk_network.cpp.o.d"
  "/root/repo/tests/test_driver_equivalence.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_driver_equivalence.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_driver_equivalence.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_experiment_shapes.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_experiment_shapes.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_experiment_shapes.cpp.o.d"
  "/root/repo/tests/test_ftle.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_ftle.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_ftle.cpp.o.d"
  "/root/repo/tests/test_hybrid.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_hybrid.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_hybrid.cpp.o.d"
  "/root/repo/tests/test_integrator.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_integrator.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_integrator.cpp.o.d"
  "/root/repo/tests/test_load_on_demand.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_load_on_demand.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_load_on_demand.cpp.o.d"
  "/root/repo/tests/test_message.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_message.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_message.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_pathlines.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_pathlines.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_pathlines.cpp.o.d"
  "/root/repo/tests/test_poincare.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_poincare.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_poincare.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_seeds.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_seeds.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_seeds.cpp.o.d"
  "/root/repo/tests/test_sim_runtime.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_sim_runtime.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_sim_runtime.cpp.o.d"
  "/root/repo/tests/test_static_alloc.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_static_alloc.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_static_alloc.cpp.o.d"
  "/root/repo/tests/test_statistics.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_statistics.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_statistics.cpp.o.d"
  "/root/repo/tests/test_stream_surface.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_stream_surface.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_stream_surface.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_structured_grid.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_structured_grid.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_structured_grid.cpp.o.d"
  "/root/repo/tests/test_thread_runtime.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_thread_runtime.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_thread_runtime.cpp.o.d"
  "/root/repo/tests/test_time_field.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_time_field.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_time_field.cpp.o.d"
  "/root/repo/tests/test_timeline.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_timeline.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_timeline.cpp.o.d"
  "/root/repo/tests/test_tracer.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_tracer.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_tracer.cpp.o.d"
  "/root/repo/tests/test_unsteady_parallel.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_unsteady_parallel.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_unsteady_parallel.cpp.o.d"
  "/root/repo/tests/test_vec3.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_vec3.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_vec3.cpp.o.d"
  "/root/repo/tests/test_writers.cpp" "tests/CMakeFiles/streamflow_tests.dir/test_writers.cpp.o" "gcc" "tests/CMakeFiles/streamflow_tests.dir/test_writers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
