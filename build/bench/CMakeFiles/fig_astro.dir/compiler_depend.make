# Empty compiler generated dependencies file for fig_astro.
# This may be replaced when dependencies are built.
