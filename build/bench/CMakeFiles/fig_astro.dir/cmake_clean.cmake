file(REMOVE_RECURSE
  "CMakeFiles/fig_astro.dir/fig_astro.cpp.o"
  "CMakeFiles/fig_astro.dir/fig_astro.cpp.o.d"
  "fig_astro"
  "fig_astro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_astro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
