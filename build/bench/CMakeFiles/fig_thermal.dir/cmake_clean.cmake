file(REMOVE_RECURSE
  "CMakeFiles/fig_thermal.dir/fig_thermal.cpp.o"
  "CMakeFiles/fig_thermal.dir/fig_thermal.cpp.o.d"
  "fig_thermal"
  "fig_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
