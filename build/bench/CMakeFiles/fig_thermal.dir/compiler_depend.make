# Empty compiler generated dependencies file for fig_thermal.
# This may be replaced when dependencies are built.
