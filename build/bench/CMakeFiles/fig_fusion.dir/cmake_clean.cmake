file(REMOVE_RECURSE
  "CMakeFiles/fig_fusion.dir/fig_fusion.cpp.o"
  "CMakeFiles/fig_fusion.dir/fig_fusion.cpp.o.d"
  "fig_fusion"
  "fig_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
