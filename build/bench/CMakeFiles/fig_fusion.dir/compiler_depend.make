# Empty compiler generated dependencies file for fig_fusion.
# This may be replaced when dependencies are built.
