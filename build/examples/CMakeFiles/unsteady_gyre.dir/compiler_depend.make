# Empty compiler generated dependencies file for unsteady_gyre.
# This may be replaced when dependencies are built.
