file(REMOVE_RECURSE
  "CMakeFiles/unsteady_gyre.dir/unsteady_gyre.cpp.o"
  "CMakeFiles/unsteady_gyre.dir/unsteady_gyre.cpp.o.d"
  "unsteady_gyre"
  "unsteady_gyre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsteady_gyre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
