file(REMOVE_RECURSE
  "CMakeFiles/fusion_poincare.dir/fusion_poincare.cpp.o"
  "CMakeFiles/fusion_poincare.dir/fusion_poincare.cpp.o.d"
  "fusion_poincare"
  "fusion_poincare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_poincare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
