# Empty dependencies file for fusion_poincare.
# This may be replaced when dependencies are built.
