file(REMOVE_RECURSE
  "CMakeFiles/thermal_mixing.dir/thermal_mixing.cpp.o"
  "CMakeFiles/thermal_mixing.dir/thermal_mixing.cpp.o.d"
  "thermal_mixing"
  "thermal_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
