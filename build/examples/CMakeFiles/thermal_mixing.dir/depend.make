# Empty dependencies file for thermal_mixing.
# This may be replaced when dependencies are built.
