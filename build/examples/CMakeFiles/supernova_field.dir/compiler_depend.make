# Empty compiler generated dependencies file for supernova_field.
# This may be replaced when dependencies are built.
