file(REMOVE_RECURSE
  "CMakeFiles/supernova_field.dir/supernova_field.cpp.o"
  "CMakeFiles/supernova_field.dir/supernova_field.cpp.o.d"
  "supernova_field"
  "supernova_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernova_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
