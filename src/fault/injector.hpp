#pragma once

// Deterministic fault injector.
//
// All randomness flows through independent seeded Rng streams (one per
// fault class), so a fault schedule is a pure function of
// (FaultConfig::rng_seed, num_ranks) and repeat runs reproduce the same
// crashes, disk faults and drops event for event.

#include <vector>

#include "core/rng.hpp"
#include "fault/fault_config.hpp"

namespace sf {

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, int num_ranks);

  // Crash schedule, sorted by time: explicit events plus exponential
  // MTBF draws over the non-immune ranks (each rank at most once).
  const std::vector<CrashEvent>& crash_schedule() const { return schedule_; }

  // Gray slowdown schedule, sorted by time: explicit events plus
  // exponential gray_mtbf draws (each rank slowed at most once, immune
  // ranks never).  Its own Rng stream, so enabling crash injection does
  // not perturb the slowdown draws or vice versa.
  const std::vector<SlowdownEvent>& slowdown_schedule() const {
    return slowdowns_;
  }

  // Per-attempt draws, consumed in simulation event order.
  bool draw_disk_fault();
  bool draw_disk_stall();
  bool draw_disk_slow();
  bool draw_disk_corrupt();
  bool draw_message_drop();

 private:
  double disk_fault_rate_;
  double disk_stall_rate_;
  double disk_slow_rate_;
  double corrupt_rate_;
  double message_drop_rate_;
  std::uint64_t max_drops_;
  std::vector<CrashEvent> schedule_;
  std::vector<SlowdownEvent> slowdowns_;
  Rng disk_rng_;
  Rng stall_rng_;
  Rng slow_rng_;
  Rng corrupt_rng_;
  Rng drop_rng_;
  std::uint64_t drops_ = 0;
};

}  // namespace sf
