#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace sf {

FaultInjector::FaultInjector(const FaultConfig& config, int num_ranks)
    : disk_fault_rate_(config.disk_fault_rate),
      disk_stall_rate_(config.disk_stall_rate),
      message_drop_rate_(config.message_drop_rate),
      max_drops_(config.max_drops),
      disk_rng_(config.rng_seed ^ 0xd15cULL),
      stall_rng_(config.rng_seed ^ 0x57a11ULL),
      drop_rng_(config.rng_seed ^ 0xd60bULL) {
  const std::set<int> immune(config.immune_ranks.begin(),
                             config.immune_ranks.end());

  for (const CrashEvent& ev : config.crashes) {
    if (ev.rank < 0 || ev.rank >= num_ranks) continue;
    if (immune.count(ev.rank) != 0) continue;
    schedule_.push_back(ev);
  }

  if (config.mtbf > 0.0 && config.max_crashes > 0) {
    Rng crash_rng(config.rng_seed ^ 0xc4a5aULL);
    std::vector<int> eligible;
    for (int r = 0; r < num_ranks; ++r) {
      if (immune.count(r) == 0) eligible.push_back(r);
    }
    double t = 0.0;
    for (int i = 0; i < config.max_crashes && !eligible.empty(); ++i) {
      // Exponential inter-arrival with mean MTBF.
      t += -config.mtbf * std::log(1.0 - crash_rng.next_double());
      const std::size_t pick = static_cast<std::size_t>(
          crash_rng.next_below(eligible.size()));
      schedule_.push_back({t, eligible[pick]});
      eligible.erase(eligible.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    }
  }

  std::sort(schedule_.begin(), schedule_.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.time != b.time ? a.time < b.time : a.rank < b.rank;
            });
}

bool FaultInjector::draw_disk_fault() {
  if (disk_fault_rate_ <= 0.0) return false;
  return disk_rng_.next_double() < disk_fault_rate_;
}

bool FaultInjector::draw_disk_stall() {
  if (disk_stall_rate_ <= 0.0) return false;
  return stall_rng_.next_double() < disk_stall_rate_;
}

bool FaultInjector::draw_message_drop() {
  if (message_drop_rate_ <= 0.0 || drops_ >= max_drops_) return false;
  if (drop_rng_.next_double() >= message_drop_rate_) return false;
  ++drops_;
  return true;
}

}  // namespace sf
