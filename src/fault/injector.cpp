#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace sf {

FaultInjector::FaultInjector(const FaultConfig& config, int num_ranks)
    : disk_fault_rate_(config.disk_fault_rate),
      disk_stall_rate_(config.disk_stall_rate),
      disk_slow_rate_(config.disk_slow_rate),
      corrupt_rate_(config.corrupt_rate),
      message_drop_rate_(config.message_drop_rate),
      max_drops_(config.max_drops),
      disk_rng_(config.rng_seed ^ 0xd15cULL),
      stall_rng_(config.rng_seed ^ 0x57a11ULL),
      slow_rng_(config.rng_seed ^ 0x510e7ULL),
      corrupt_rng_(config.rng_seed ^ 0xc02217ULL),
      drop_rng_(config.rng_seed ^ 0xd60bULL) {
  const std::set<int> immune(config.immune_ranks.begin(),
                             config.immune_ranks.end());

  for (const CrashEvent& ev : config.crashes) {
    if (ev.rank < 0 || ev.rank >= num_ranks) continue;
    if (immune.count(ev.rank) != 0) continue;
    schedule_.push_back(ev);
  }

  if (config.mtbf > 0.0 && config.max_crashes > 0) {
    Rng crash_rng(config.rng_seed ^ 0xc4a5aULL);
    std::vector<int> eligible;
    for (int r = 0; r < num_ranks; ++r) {
      if (immune.count(r) == 0) eligible.push_back(r);
    }
    double t = 0.0;
    for (int i = 0; i < config.max_crashes && !eligible.empty(); ++i) {
      // Exponential inter-arrival with mean MTBF.
      t += -config.mtbf * std::log(1.0 - crash_rng.next_double());
      const std::size_t pick = static_cast<std::size_t>(
          crash_rng.next_below(eligible.size()));
      schedule_.push_back({t, eligible[pick]});
      eligible.erase(eligible.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    }
  }

  std::sort(schedule_.begin(), schedule_.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.time != b.time ? a.time < b.time : a.rank < b.rank;
            });

  for (const SlowdownEvent& ev : config.slowdowns) {
    if (ev.rank < 0 || ev.rank >= num_ranks) continue;
    if (immune.count(ev.rank) != 0) continue;
    if (ev.factor <= 1.0) continue;
    slowdowns_.push_back(ev);
  }

  if (config.gray_mtbf > 0.0 && config.max_slowdowns > 0 &&
      config.gray_slow_factor > 1.0) {
    Rng gray_rng(config.rng_seed ^ 0x6a4a17ULL);
    std::vector<int> eligible;
    for (int r = 0; r < num_ranks; ++r) {
      if (immune.count(r) == 0) eligible.push_back(r);
    }
    double t = 0.0;
    for (int i = 0; i < config.max_slowdowns && !eligible.empty(); ++i) {
      t += -config.gray_mtbf * std::log(1.0 - gray_rng.next_double());
      const std::size_t pick = static_cast<std::size_t>(
          gray_rng.next_below(eligible.size()));
      slowdowns_.push_back({t, eligible[pick], config.gray_slow_factor});
      eligible.erase(eligible.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    }
  }

  std::sort(slowdowns_.begin(), slowdowns_.end(),
            [](const SlowdownEvent& a, const SlowdownEvent& b) {
              return a.time != b.time ? a.time < b.time : a.rank < b.rank;
            });
}

bool FaultInjector::draw_disk_fault() {
  if (disk_fault_rate_ <= 0.0) return false;
  return disk_rng_.next_double() < disk_fault_rate_;
}

bool FaultInjector::draw_disk_stall() {
  if (disk_stall_rate_ <= 0.0) return false;
  return stall_rng_.next_double() < disk_stall_rate_;
}

bool FaultInjector::draw_disk_slow() {
  if (disk_slow_rate_ <= 0.0) return false;
  return slow_rng_.next_double() < disk_slow_rate_;
}

bool FaultInjector::draw_disk_corrupt() {
  if (corrupt_rate_ <= 0.0) return false;
  return corrupt_rng_.next_double() < corrupt_rate_;
}

bool FaultInjector::draw_message_drop() {
  if (message_drop_rate_ <= 0.0 || drops_ >= max_drops_) return false;
  if (drop_rng_.next_double() >= message_drop_rate_) return false;
  ++drops_;
  return true;
}

}  // namespace sf
