#pragma once

// A checkpoint is a consistent snapshot of every streamline's solver
// state plus per-rank block-residency and ownership bookkeeping.
//
// Because a Particle carries exactly the state needed to resume
// integration bit-identically (core/particle.hpp), restarting from
// `active` and merging `done` reproduces the uninterrupted run's final
// particles exactly — there is no hidden program state to capture.

#include <cstdint>
#include <vector>

#include "core/block_decomposition.hpp"
#include "core/particle.hpp"

namespace sf {

struct CheckpointRankState {
  int rank = -1;
  bool alive = true;
  std::vector<BlockId> resident;  // cache contents at checkpoint time
};

struct Checkpoint {
  double sim_time = 0.0;
  int num_ranks = 0;
  // Run-topology stamp (format v2): the algorithm that wrote the
  // checkpoint and a hash of the dataset's block decomposition.  Restarts
  // validate all three topology fields and refuse a mismatch — resuming a
  // static run's checkpoint under hybrid, or on a different dataset,
  // would silently mis-own every particle.
  std::uint8_t algorithm = 0;
  std::uint64_t dataset_hash = 0;
  std::vector<Particle> done;     // terminal streamlines, sorted by id
  std::vector<Particle> active;   // in-progress solver states, sorted by id
  std::vector<int> active_owner;  // rank owning active[i] at snapshot time
  std::vector<CheckpointRankState> ranks;
};

// Stable hash of a dataset's block topology, stamped into checkpoints and
// compared on restart.
std::uint64_t dataset_topology_hash(const BlockDecomposition& decomp);

// Serialized size (what the checkpoint-write cost model charges).
std::size_t checkpoint_bytes(const Checkpoint& ck);

}  // namespace sf
