#include "fault/checkpoint.hpp"

#include <cstring>

namespace sf {

namespace {
// id + pos(3 doubles) + time + h + steps + geometry_points + status,
// matching the on-disk record of io/checkpoint_io.cpp.
constexpr std::size_t kParticleRecordBytes = 4 + 24 + 8 + 8 + 4 + 4 + 1;
// magic+sizes+time, plus the v2 topology stamp (algorithm + dataset hash).
constexpr std::size_t kHeaderBytes = 8 + 8 + 8 + 8 + 4 + 1 + 8;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ULL;  // FNV-1a
  }
}

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}
}  // namespace

std::uint64_t dataset_topology_hash(const BlockDecomposition& decomp) {
  std::uint64_t h = 1469598103934665603ULL;
  mix(h, static_cast<std::uint64_t>(decomp.nbx()));
  mix(h, static_cast<std::uint64_t>(decomp.nby()));
  mix(h, static_cast<std::uint64_t>(decomp.nbz()));
  const AABB& d = decomp.domain();
  mix(h, bits_of(d.lo.x));
  mix(h, bits_of(d.lo.y));
  mix(h, bits_of(d.lo.z));
  mix(h, bits_of(d.hi.x));
  mix(h, bits_of(d.hi.y));
  mix(h, bits_of(d.hi.z));
  return h;
}

std::size_t checkpoint_bytes(const Checkpoint& ck) {
  std::size_t n = kHeaderBytes;
  n += (ck.done.size() + ck.active.size()) * kParticleRecordBytes;
  n += ck.active_owner.size() * 4;
  for (const CheckpointRankState& r : ck.ranks) {
    n += 4 + 1 + 4 + r.resident.size() * 4;
  }
  return n;
}

}  // namespace sf
