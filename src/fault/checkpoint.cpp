#include "fault/checkpoint.hpp"

namespace sf {

namespace {
// id + pos(3 doubles) + time + h + steps + geometry_points + status,
// matching the on-disk record of io/checkpoint_io.cpp.
constexpr std::size_t kParticleRecordBytes = 4 + 24 + 8 + 8 + 4 + 4 + 1;
constexpr std::size_t kHeaderBytes = 8 + 8 + 8 + 8 + 4;  // magic+sizes+time
}  // namespace

std::size_t checkpoint_bytes(const Checkpoint& ck) {
  std::size_t n = kHeaderBytes;
  n += (ck.done.size() + ck.active.size()) * kParticleRecordBytes;
  n += ck.active_owner.size() * 4;
  for (const CheckpointRankState& r : ck.ranks) {
    n += 4 + 1 + 4 + r.resident.size() * 4;
  }
  return n;
}

}  // namespace sf
