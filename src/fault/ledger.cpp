#include "fault/ledger.hpp"

#include <utility>

namespace sf {

void ParticleLedger::init_owned(int rank,
                                const std::vector<Particle>& particles) {
  for (const Particle& p : particles) {
    Entry& e = entries_[p.id];
    e.state = p;
    e.owner = rank;
    if (is_terminal(p.status)) e.terminal = true;
  }
}

void ParticleLedger::settle(const std::vector<Particle>& particles) {
  for (const Particle& p : particles) {
    Entry& e = entries_[p.id];
    e.state = p;
    e.owner = -1;
    e.terminal = true;
    e.counted = true;
  }
}

void ParticleLedger::on_send(const std::vector<Particle>& particles,
                             int new_owner) {
  for (const Particle& p : particles) {
    Entry& e = entries_[p.id];
    // A terminal entry is settled: a still-live duplicate copy (crash
    // recovery overlap, speculative re-issue) racing through the wire
    // after the first termination must not clobber the recorded result.
    if (e.terminal) continue;
    e.state = p;
    e.owner = new_owner;
  }
}

bool ParticleLedger::on_terminated(int rank, const Particle& p) {
  Entry& e = entries_[p.id];
  // First terminal state wins: a losing duplicate's (bit-identical)
  // re-run result is dropped along with its credit.
  if (!e.terminal) {
    e.state = p;
    e.owner = rank;
    e.terminal = true;
  }
  if (e.counted) return false;
  e.counted = true;
  ++logged_[rank];
  return true;
}

std::uint32_t ParticleLedger::logged_total(int rank) const {
  const auto it = logged_.find(rank);
  return it == logged_.end() ? 0u : static_cast<std::uint32_t>(it->second);
}

std::vector<std::pair<int, std::uint32_t>> ParticleLedger::logged_totals()
    const {
  std::vector<std::pair<int, std::uint32_t>> out;
  out.reserve(logged_.size());
  for (const auto& [rank, total] : logged_) {
    if (total > 0) {
      out.emplace_back(rank, static_cast<std::uint32_t>(total));
    }
  }
  return out;  // map iteration order == sorted by rank
}

void ParticleLedger::refresh(int rank,
                             const std::vector<Particle>& particles) {
  for (const Particle& p : particles) {
    Entry& e = entries_[p.id];
    e.state = p;
    e.owner = rank;
    // A terminal state observed at checkpoint time is safe, but the
    // termination *credit* stays with on_terminated/recover — refresh
    // must never touch `counted`, or the owning rank's own report would
    // double-count.
    if (is_terminal(p.status)) e.terminal = true;
  }
}

RecoveredWork ParticleLedger::recover(int dead_rank, int new_owner) {
  RecoveredWork work;
  for (auto& [id, e] : entries_) {
    if (e.owner != dead_rank) continue;
    if (e.terminal) {
      // Terminated on the dead rank but never credited anywhere (e.g.
      // terminal state reached the ledger only via a checkpoint refresh
      // and the rank died before reporting): credit it now so the global
      // count still converges.
      if (!e.counted) {
        e.counted = true;
        ++logged_[dead_rank];
      }
      e.owner = -1;
      continue;
    }
    e.owner = new_owner;
    work.active.push_back(e.state);
  }
  work.terminated_total = logged_total(dead_rank);
  return work;
}

std::vector<Particle> ParticleLedger::peek_owned(int rank) const {
  std::vector<Particle> out;
  for (const auto& [id, e] : entries_) {
    if (e.owner == rank && !e.terminal) out.push_back(e.state);
  }
  return out;  // map iteration order == sorted by id
}

std::uint32_t ParticleLedger::steps_of(std::uint32_t id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? 0u : it->second.state.steps;
}

std::vector<Particle> ParticleLedger::terminal_particles() const {
  std::vector<Particle> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    if (e.terminal) out.push_back(e.state);
  }
  return out;  // map iteration order == sorted by id
}

Checkpoint ParticleLedger::to_checkpoint(double sim_time,
                                         int num_ranks) const {
  Checkpoint ck;
  ck.sim_time = sim_time;
  ck.num_ranks = num_ranks;
  for (const auto& [id, e] : entries_) {
    if (e.terminal) {
      ck.done.push_back(e.state);
    } else {
      ck.active.push_back(e.state);
      ck.active_owner.push_back(e.owner);
    }
  }
  return ck;
}

}  // namespace sf
