#pragma once

// Configuration and counters for the fault-injection / checkpoint /
// recovery layer (DESIGN.md §7).
//
// The layer is opt-in: with `enabled == false` (the default) the
// simulated runtime takes exactly the same code paths as a build without
// it, so fault-free runs stay bit-for-bit identical to the pre-fault
// behaviour.  When enabled, a deterministic FaultInjector schedules rank
// crashes (seeded exponential inter-arrivals and/or an explicit event
// list), flips per-read disk faults/stalls, and drops particle-bearing
// messages; a ParticleLedger tracks the last safe state of every
// streamline so crashes are recoverable; and an optional checkpoint chain
// serializes the ledger at fixed simulated-time intervals.

#include <cstdint>
#include <string>
#include <vector>

#include "core/particle.hpp"

namespace sf {

// One explicitly scheduled rank crash.
struct CrashEvent {
  double time = 0.0;
  int rank = -1;
};

// One explicitly scheduled gray slowdown: from `time` on, every compute
// burst on `rank` takes `factor` times as long (steps are unchanged, so
// trajectories are unchanged — the rank is slow, not wrong).
struct SlowdownEvent {
  double time = 0.0;
  int rank = -1;
  double factor = 10.0;
};

struct FaultConfig {
  // Master switch.  run_experiment turns it on automatically when any
  // fault feature below is requested.
  bool enabled = false;

  // Seed for all injector draws (crash schedule, disk faults, drops).
  std::uint64_t rng_seed = 0xfa017ULL;

  // --- Rank crashes --------------------------------------------------------
  // Mean time between injected crashes (simulated seconds); 0 disables
  // random crash injection.  Victims are drawn uniformly among
  // non-immune ranks, each at most once, capped at max_crashes.
  double mtbf = 0.0;
  int max_crashes = 1;
  // Explicit crash schedule, applied in addition to the MTBF draws (and
  // not counted against max_crashes).  Immune ranks are filtered out.
  std::vector<CrashEvent> crashes;

  // --- Transient disk faults ----------------------------------------------
  // Per-read probability that a block read fails and must be retried.
  double disk_fault_rate = 0.0;
  // Per-read probability (when not faulted) that the read stalls for
  // disk_stall_seconds before completing.
  double disk_stall_rate = 0.0;
  double disk_stall_seconds = 0.05;
  // Capped exponential backoff between retries; after disk_max_retries
  // failed attempts the reading rank is declared crashed and its
  // streamlines are re-run elsewhere.
  double disk_retry_backoff = 0.01;
  double disk_backoff_cap = 0.5;
  int disk_max_retries = 8;

  // --- Gray failures (slow-but-alive) --------------------------------------
  // Explicit per-rank compute slowdowns, plus optional MTBF-drawn ones:
  // every gray_mtbf simulated seconds (mean, exponential) another victim
  // rank starts running gray_slow_factor times slow, up to max_slowdowns
  // victims (each rank at most once).  Immune ranks are never slowed.
  std::vector<SlowdownEvent> slowdowns;
  double gray_mtbf = 0.0;  // 0 disables MTBF-drawn slowdowns
  int max_slowdowns = 1;
  double gray_slow_factor = 10.0;
  // Per-read probability that a block read's latency is inflated by
  // disk_slow_factor — slowness, not failure: no retry is consumed.
  double disk_slow_rate = 0.0;
  double disk_slow_factor = 4.0;
  // Per-read probability that the returned payload is silently
  // bit-flipped.  The checksum catches it, the read behaves like a
  // failed attempt and retries on the capped-backoff ladder; only
  // disk_max_retries consecutive corruptions escalate to a rank crash.
  double corrupt_rate = 0.0;

  // --- Message drops -------------------------------------------------------
  // Per-message probability that the link drops a message.  Particle-
  // bearing payloads (ParticleBatch, seed assignments, seed transfers)
  // bounce back to the sender as Undeliverable, so streamlines are never
  // silently lost.  Control traffic (status, particle-free commands,
  // termination counts, beacons) is sequenced: the sender keeps a pending
  // copy and retransmits with capped exponential backoff until acked, and
  // the receiver dedups on sequence number, so programs see at-least-once
  // delivery collapsed back to exactly-once.
  double message_drop_rate = 0.0;
  std::uint64_t max_drops = 1000;  // backstop against drop-rate ~ 1 loops

  // --- Control-transport retransmission ------------------------------------
  // Initial retransmit timeout for an unacked sequenced control message,
  // doubling per attempt up to control_rto_cap.  After control_max_retries
  // unacked attempts the peer is presumed dead and the message abandoned
  // (its content is recovered through the failover path instead).
  double control_rto = 0.02;
  double control_rto_cap = 0.32;
  int control_max_retries = 10;

  // --- Failure detection ---------------------------------------------------
  enum class Detector : std::uint8_t {
    kRuntime,  // process-manager style: recovery fires a fixed delay
               // after the crash (Static Allocation, Load On Demand)
    kProgram,  // the hybrid master detects missed status heartbeats and
               // runs recovery itself (the sixth rule)
  };
  Detector detector = Detector::kRuntime;
  double failure_detect_seconds = 0.1;  // kRuntime detection latency
  double heartbeat_period = 0.05;       // kProgram slave status period
  int heartbeat_miss_limit = 3;         // silent periods before declared dead

  // --- Run topology stamp --------------------------------------------------
  // Stamped into every checkpoint (format v2) and validated on
  // --restart-from: resuming with a different algorithm, rank count, or
  // dataset decomposition is a hard error, not silent misbehavior.
  // prepare_run fills both fields.
  std::uint8_t algorithm_tag = 0;
  std::uint64_t dataset_hash = 0;

  // --- Checkpointing -------------------------------------------------------
  // Serialize the particle ledger every `checkpoint_interval` simulated
  // seconds (0 disables).  When checkpoint_path is non-empty the latest
  // checkpoint is atomically (re)written there; either way it is returned
  // in RunMetrics::last_checkpoint.
  double checkpoint_interval = 0.0;
  std::string checkpoint_path;

  // Ranks that never crash.  Empty by default: since coordinator failover
  // landed, the injector may target any rank — the termination counter and
  // the hybrid masters included.  Kept as an explicit knob for experiments
  // that want to shield specific ranks.
  std::vector<int> immune_ranks;

  // Particles already terminal before the run starts: rejected
  // out-of-domain seeds plus the done-list of a restart checkpoint.
  // Pre-seeded into the ledger so checkpoints and final results stay
  // complete across restarts.
  std::vector<Particle> presettled;
};

// Per-crash timeline, surfaced through FaultStats::crash_records so the
// fault benches read detection/recovery latency directly instead of
// re-deriving it from event timelines.  detect_time/recover_time stay
// negative while the crash is still undetected/unrecovered.
struct CrashRecord {
  int rank = -1;
  double crash_time = 0.0;
  double detect_time = -1.0;   // when a survivor first declared the rank dead
  double recover_time = -1.0;  // when its work had been re-owned
};

// Recovery counters surfaced through RunMetrics::fault.
struct FaultStats {
  std::uint64_t crashes_injected = 0;   // injector-scheduled crashes fired
  std::uint64_t oom_crashes = 0;        // OOM aborts converted to crashes
  std::uint64_t crashes_survived = 0;   // crashes recovered from
  std::uint64_t disk_faults = 0;        // failed block-read attempts
  std::uint64_t disk_stalls = 0;        // stalled block reads
  std::uint64_t messages_dropped = 0;   // injected link drops
  std::uint64_t control_retransmits = 0;  // sequenced control resends
  std::uint64_t control_duplicates = 0;   // deduped at-least-once arrivals
  std::uint64_t particles_recovered = 0;  // streamlines reclaimed and re-run
  std::uint64_t steps_redone = 0;       // integration steps lost to crashes
  double time_to_recovery = 0.0;        // summed crash -> recovery latency
  std::uint64_t checkpoints_taken = 0;
  double checkpoint_overhead = 0.0;     // modelled checkpoint write seconds
  std::vector<CrashRecord> crash_records;  // per-crash timeline
  // Gray-failure counters.
  std::uint64_t slowdowns_injected = 0;   // ranks put into slow mode
  std::uint64_t disk_slow_events = 0;     // reads with inflated latency
  std::uint64_t corruptions_injected = 0;  // payload bit-flips injected
  std::uint64_t corruptions_detected = 0;  // flips the checksum caught
  std::uint64_t stragglers_flagged = 0;   // slaves flagged as stragglers
  std::uint64_t particles_speculated = 0;  // copies re-issued from the ledger
  std::uint64_t wasted_duplicate_steps = 0;  // loser-copy steps past the fork
  double straggler_detect_latency = 0.0;  // summed slowdown -> flag latency
};

}  // namespace sf
