#pragma once

// Particle ledger: the stable-storage view of every streamline that
// makes crashes recoverable.
//
// The ledger records, per streamline id, the last *safe* solver state —
// a state that survives the owning rank's crash because it was durably
// observed somewhere else: the initial seed hand-out, a particle-bearing
// message on the wire (sender-based message logging), a checkpoint
// snapshot, or the terminal state flushed at termination.  Re-running a
// streamline from any safe state reproduces its final particle
// bit-for-bit (the Tracer's accepted-step sequence depends only on
// particle state and block data), so recovery costs re-done work but
// never changes results.
//
// Termination counting: the three algorithms drive global termination
// off counters (rank 0 / master 0).  The ledger tracks, per rank, how
// many terminations it has credited (`logged_`) versus how many it has
// reported toward the counter (`reported_`, snooped off StatusUpdate and
// TerminationCount sends); recover() returns the difference so the
// recovering rank can re-report terminations the dead rank logged but
// never delivered.

#include <cstdint>
#include <map>
#include <vector>

#include "fault/checkpoint.hpp"

namespace sf {

// What a recovery hands back to the recovering rank.
struct RecoveredWork {
  // Last safe states of the dead rank's in-progress streamlines,
  // re-owned to the recoverer.
  std::vector<Particle> active;
  // Terminations the dead rank logged but never reported to the global
  // termination counter.
  std::uint32_t unreported_terminations = 0;
};

class ParticleLedger {
 public:
  // Register `rank`'s initial particles (owner = rank).
  void init_owned(int rank, const std::vector<Particle>& particles);

  // Pre-seed particles that are terminal before the run starts (rejected
  // seeds, a restart checkpoint's done list).  They are marked counted:
  // they never contribute to the termination count.
  void settle(const std::vector<Particle>& particles);

  // A particle-bearing message left for `new_owner`: record the shipped
  // states and transfer ownership.
  void on_send(const std::vector<Particle>& particles, int new_owner);

  // `rank` terminated `p`.  Returns true when this is the first
  // termination of the streamline anywhere (credit it toward the global
  // count); false for duplicates re-run by a redundant recovery.
  bool on_terminated(int rank, const Particle& p);

  // `rank` pushed `count` termination credits toward the global counter
  // (snooped off StatusUpdate / TerminationCount sends).
  void on_reported(int rank, std::uint32_t count);

  // Checkpoint-time refresh: `particles` is everything `rank` currently
  // holds in memory.  Updates safe states and ownership; never clears a
  // terminal mark.
  void refresh(int rank, const std::vector<Particle>& particles);

  // Reclaim the dead rank's streamlines for `new_owner` and settle its
  // termination accounting.  Idempotent: a second recovery of the same
  // rank returns nothing.
  RecoveredWork recover(int dead_rank, int new_owner);

  // Last safe accepted-step count of a streamline (0 if unknown) — used
  // for the steps_redone diagnostic.
  std::uint32_t steps_of(std::uint32_t id) const;

  // Final states of all terminated streamlines, sorted by id.
  std::vector<Particle> terminal_particles() const;

  // Snapshot the ledger (per-rank sections are filled by the runtime).
  Checkpoint to_checkpoint(double sim_time, int num_ranks) const;

 private:
  struct Entry {
    Particle state{};
    int owner = -1;
    bool terminal = false;
    bool counted = false;  // credited toward the global termination count
  };

  std::map<std::uint32_t, Entry> entries_;
  std::map<int, std::int64_t> logged_;    // terminations credited per rank
  std::map<int, std::int64_t> reported_;  // terminations reported per rank
};

}  // namespace sf
