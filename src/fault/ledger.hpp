#pragma once

// Particle ledger: the stable-storage view of every streamline that
// makes crashes recoverable.
//
// The ledger records, per streamline id, the last *safe* solver state —
// a state that survives the owning rank's crash because it was durably
// observed somewhere else: the initial seed hand-out, a particle-bearing
// message on the wire (sender-based message logging), a checkpoint
// snapshot, or the terminal state flushed at termination.  Re-running a
// streamline from any safe state reproduces its final particle
// bit-for-bit (the Tracer's accepted-step sequence depends only on
// particle state and block data), so recovery costs re-done work but
// never changes results.
//
// Termination counting: the algorithms drive global termination off a
// per-rank high-water board of *cumulative* termination totals.  The
// ledger tracks each rank's cumulative credited total (`logged_`);
// recover() hands the dead rank's total to the recoverer, who re-reports
// it toward whichever rank currently acts as the counter.  Because totals
// are cumulative and the counter max-merges them, re-reports, duplicates
// and reordering are all idempotent — no delta reconciliation needed.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "fault/checkpoint.hpp"

namespace sf {

// What a recovery hands back to the recovering rank.
struct RecoveredWork {
  // Last safe states of the dead rank's in-progress streamlines,
  // re-owned to the recoverer.
  std::vector<Particle> active;
  // The dead rank's cumulative termination total.  The recoverer
  // re-reports it as a (rank, total) entry; the counter's max-merge makes
  // the re-report idempotent no matter how much of it already arrived.
  std::uint32_t terminated_total = 0;
};

class ParticleLedger {
 public:
  // Register `rank`'s initial particles (owner = rank).
  void init_owned(int rank, const std::vector<Particle>& particles);

  // Pre-seed particles that are terminal before the run starts (rejected
  // seeds, a restart checkpoint's done list).  They are marked counted:
  // they never contribute to the termination count.
  void settle(const std::vector<Particle>& particles);

  // A particle-bearing message left for `new_owner`: record the shipped
  // states and transfer ownership.
  void on_send(const std::vector<Particle>& particles, int new_owner);

  // `rank` terminated `p`.  Returns true when this is the first
  // termination of the streamline anywhere (credit it toward the global
  // count); false for duplicates re-run by a redundant recovery.
  bool on_terminated(int rank, const Particle& p);

  // `rank`'s cumulative credited termination total.
  std::uint32_t logged_total(int rank) const;

  // Every rank's cumulative total, as (rank, total) pairs sorted by rank
  // — the authoritative recount a newly adopted termination counter
  // max-merges into its board.
  std::vector<std::pair<int, std::uint32_t>> logged_totals() const;

  // Checkpoint-time refresh: `particles` is everything `rank` currently
  // holds in memory.  Updates safe states and ownership; never clears a
  // terminal mark.
  void refresh(int rank, const std::vector<Particle>& particles);

  // Reclaim the dead rank's streamlines for `new_owner`.  Idempotent: a
  // second recovery of the same rank returns no particles (the cumulative
  // total is returned every time; max-merging makes that harmless).
  RecoveredWork recover(int dead_rank, int new_owner);

  // Copies of the last safe states of `rank`'s non-terminal streamlines,
  // *without* transferring ownership or touching the entries — the
  // speculative re-issue seam for a straggling (slow but alive) rank.
  // The straggler keeps racing its own copies; on_terminated's first-wins
  // credit dedups whichever copy finishes second.
  std::vector<Particle> peek_owned(int rank) const;

  // Last safe accepted-step count of a streamline (0 if unknown) — used
  // for the steps_redone diagnostic.
  std::uint32_t steps_of(std::uint32_t id) const;

  // Final states of all terminated streamlines, sorted by id.
  std::vector<Particle> terminal_particles() const;

  // Snapshot the ledger (per-rank sections are filled by the runtime).
  Checkpoint to_checkpoint(double sim_time, int num_ranks) const;

 private:
  struct Entry {
    Particle state{};
    int owner = -1;
    bool terminal = false;
    bool counted = false;  // credited toward the global termination count
  };

  std::map<std::uint32_t, Entry> entries_;
  std::map<int, std::int64_t> logged_;  // cumulative terminations per rank
};

}  // namespace sf
