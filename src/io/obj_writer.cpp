#include "io/obj_writer.hpp"

#include <fstream>
#include <stdexcept>

namespace sf {

void write_obj(const std::filesystem::path& path,
               const std::vector<Vec3>& vertices,
               const std::vector<Triangle>& triangles) {
  for (const Triangle& t : triangles) {
    for (const std::uint32_t v : t) {
      if (v >= vertices.size()) {
        throw std::invalid_argument("write_obj: triangle index out of range");
      }
    }
  }
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("cannot open for writing: " + path.string());
  }
  f.precision(9);
  f << "# streamflow surface: " << vertices.size() << " vertices, "
    << triangles.size() << " triangles\n";
  for (const Vec3& v : vertices) {
    f << "v " << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  for (const Triangle& t : triangles) {
    f << "f " << t[0] + 1 << ' ' << t[1] + 1 << ' ' << t[2] + 1 << '\n';
  }
}

}  // namespace sf
