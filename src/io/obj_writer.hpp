#pragma once

// Wavefront OBJ output for triangle meshes (stream surfaces, Figure 4).

#include <array>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/vec3.hpp"

namespace sf {

using Triangle = std::array<std::uint32_t, 3>;  // 0-based vertex indices

void write_obj(const std::filesystem::path& path,
               const std::vector<Vec3>& vertices,
               const std::vector<Triangle>& triangles);

}  // namespace sf
