#pragma once

// Binary checkpoint files.
//
// Layout: 8-byte magic, a fixed header carrying the payload size and an
// FNV-1a checksum of the payload, then the payload itself — field-by-field
// little-endian particle records and per-rank sections (no struct padding
// on disk, unlike block files, because a Checkpoint nests vectors).
// Writes go through a temp file + rename so a crash mid-write never
// leaves a truncated checkpoint behind the latest good one.

#include <filesystem>

#include "fault/checkpoint.hpp"

namespace sf {

void write_checkpoint(const std::filesystem::path& path, const Checkpoint& ck);

// Throws std::runtime_error on missing file, bad magic, truncation or
// checksum mismatch.
Checkpoint read_checkpoint(const std::filesystem::path& path);

}  // namespace sf
