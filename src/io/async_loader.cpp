#include "io/async_loader.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace sf {

const char* to_string(LoadState s) {
  switch (s) {
    case LoadState::kQueued: return "queued";
    case LoadState::kLoading: return "loading";
    case LoadState::kReady: return "ready";
    case LoadState::kCancelled: return "cancelled";
    case LoadState::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

void sleep_seconds(double s) {
  if (s <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

void erase_from(std::deque<BlockId>& q, BlockId id) {
  q.erase(std::remove(q.begin(), q.end(), id), q.end());
}

}  // namespace

AsyncBlockLoader::AsyncBlockLoader(const BlockSource* source, Config cfg)
    : source_(source), cfg_(cfg) {
  const int n = std::max(1, cfg_.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

AsyncBlockLoader::~AsyncBlockLoader() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
    // Cancel everything still queued; entries being read resolve
    // normally before their worker exits.
    while (!demand_q_.empty() || !prefetch_q_.empty()) {
      const BlockId id =
          demand_q_.empty() ? prefetch_q_.front() : demand_q_.front();
      erase_from(demand_q_, id);
      erase_from(prefetch_q_, id);
      ++cancelled_;
      resolve(lock, id, nullptr, nullptr, LoadState::kCancelled);
      // resolve() dropped the lock to fire completions.
      lock.lock();
    }
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::shared_future<GridPtr> AsyncBlockLoader::request(BlockId id, bool demand,
                                                      Completion done) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    throw std::logic_error("AsyncBlockLoader: request after shutdown");
  }
  auto [it, inserted] = entries_.try_emplace(id);
  Entry& e = it->second;
  if (!inserted) {
    ++coalesced_;
    if (done) e.completions.push_back(std::move(done));
    if (demand && !e.demand) {
      // Promote a queued prefetch: a particle faulted on it for real.
      e.demand = true;
      if (e.state == LoadState::kQueued) {
        erase_from(prefetch_q_, id);
        demand_q_.push_back(id);
      }
    }
    return e.future;
  }
  ++submitted_;
  e.demand = demand;
  e.future = e.promise.get_future().share();
  if (done) e.completions.push_back(std::move(done));
  (demand ? demand_q_ : prefetch_q_).push_back(id);
  auto fut = e.future;
  lock.unlock();
  cv_.notify_one();
  return fut;
}

bool AsyncBlockLoader::cancel(BlockId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second.state != LoadState::kQueued) {
    return false;
  }
  erase_from(demand_q_, id);
  erase_from(prefetch_q_, id);
  ++cancelled_;
  resolve(lock, id, nullptr, nullptr, LoadState::kCancelled);
  return true;
}

void AsyncBlockLoader::set_fault_hook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = std::move(hook);
}

void AsyncBlockLoader::set_stall_hook(StallHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_hook_ = std::move(hook);
}

#define SF_LOADER_COUNTER(name)                  \
  std::uint64_t AsyncBlockLoader::name() const { \
    std::lock_guard<std::mutex> lock(mu_);       \
    return name##_;                              \
  }
SF_LOADER_COUNTER(submitted)
SF_LOADER_COUNTER(coalesced)
SF_LOADER_COUNTER(completed)
SF_LOADER_COUNTER(cancelled)
SF_LOADER_COUNTER(failed)
SF_LOADER_COUNTER(retries)
#undef SF_LOADER_COUNTER

bool AsyncBlockLoader::pop_next(std::unique_lock<std::mutex>& lock,
                                BlockId& id) {
  cv_.wait(lock, [this] {
    return stop_ || !demand_q_.empty() || !prefetch_q_.empty();
  });
  if (demand_q_.empty() && prefetch_q_.empty()) return false;  // stopping
  auto& q = demand_q_.empty() ? prefetch_q_ : demand_q_;
  id = q.front();
  q.pop_front();
  return true;
}

void AsyncBlockLoader::resolve(std::unique_lock<std::mutex>& lock, BlockId id,
                               GridPtr grid, std::exception_ptr error,
                               LoadState final_state) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  it->second.state = final_state;
  std::vector<Completion> completions = std::move(it->second.completions);
  std::promise<GridPtr> promise = std::move(it->second.promise);
  entries_.erase(it);
  if (error != nullptr) {
    promise.set_exception(error);
  } else {
    promise.set_value(grid);
  }
  // Fire completions outside the lock: they may re-enter request().
  lock.unlock();
  for (auto& c : completions) c(id, grid, error);
}

void AsyncBlockLoader::worker_main() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    BlockId id = kInvalidBlock;
    if (!pop_next(lock, id)) return;
    auto eit = entries_.find(id);
    assert(eit != entries_.end());
    eit->second.state = LoadState::kLoading;
    FaultHook fault = fault_hook_;
    StallHook stall = stall_hook_;
    lock.unlock();

    GridPtr grid;
    std::exception_ptr error;
    int attempts_retried = 0;
    for (int attempt = 0;; ++attempt) {
      if (stall) sleep_seconds(stall(id, attempt));
      bool faulted = fault && fault(id, attempt);
      error = nullptr;
      if (!faulted) {
        try {
          grid = source_->load(id);
        } catch (...) {
          error = std::current_exception();
          faulted = true;
        }
      }
      if (!faulted) break;
      if (error == nullptr) {
        error = std::make_exception_ptr(
            std::runtime_error("injected disk fault"));
      }
      if (attempt >= cfg_.max_retries) break;
      ++attempts_retried;
      // Same deterministic capped exponential backoff as the simulated
      // disk's retry path.
      sleep_seconds(std::min(cfg_.retry_backoff * std::ldexp(1.0, attempt),
                             cfg_.backoff_cap));
    }

    lock.lock();
    retries_ += static_cast<std::uint64_t>(attempts_retried);
    if (error != nullptr) {
      ++failed_;
      resolve(lock, id, nullptr, error, LoadState::kFailed);
    } else {
      ++completed_;
      resolve(lock, id, std::move(grid), nullptr, LoadState::kReady);
    }
    // resolve() released the lock.
  }
}

}  // namespace sf
