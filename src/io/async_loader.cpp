#include "io/async_loader.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "io/io_error.hpp"

namespace sf {

const char* to_string(LoadState s) {
  switch (s) {
    case LoadState::kQueued: return "queued";
    case LoadState::kLoading: return "loading";
    case LoadState::kReady: return "ready";
    case LoadState::kCancelled: return "cancelled";
    case LoadState::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

void sleep_seconds(double s) {
  if (s <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

void erase_from(std::deque<BlockId>& q, BlockId id) {
  q.erase(std::remove(q.begin(), q.end(), id), q.end());
}

}  // namespace

AsyncBlockLoader::AsyncBlockLoader(const BlockSource* source, Config cfg)
    : source_(source), cfg_(cfg) {
  const int n = std::max(1, cfg_.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

AsyncBlockLoader::~AsyncBlockLoader() {
  // Drain every still-queued request under the lock, then fire the
  // cancellations outside it; entries being read resolve normally
  // before their worker exits.
  std::vector<std::pair<BlockId, Settled>> drained;
  {
    MutexLock lock(mu_);
    stop_ = true;
    while (!demand_q_.empty() || !prefetch_q_.empty()) {
      const BlockId id =
          demand_q_.empty() ? prefetch_q_.front() : demand_q_.front();
      erase_from(demand_q_, id);
      erase_from(prefetch_q_, id);
      ++cancelled_;
      drained.emplace_back(id, take_settled(id, LoadState::kCancelled));
    }
  }
  for (auto& [id, settled] : drained) {
    settle(std::move(settled), id, nullptr, nullptr);
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::shared_future<GridPtr> AsyncBlockLoader::request(BlockId id, bool demand,
                                                      Completion done) {
  std::shared_future<GridPtr> fut;
  {
    MutexLock lock(mu_);
    if (stop_) {
      throw std::logic_error("AsyncBlockLoader: request after shutdown");
    }
    auto [it, inserted] = entries_.try_emplace(id);
    Entry& e = it->second;
    if (!inserted) {
      ++coalesced_;
      if (done) e.completions.push_back(std::move(done));
      if (demand && !e.demand) {
        // Promote a queued prefetch: a particle faulted on it for real.
        e.demand = true;
        if (e.state == LoadState::kQueued) {
          erase_from(prefetch_q_, id);
          demand_q_.push_back(id);
        }
      }
      return e.future;
    }
    ++submitted_;
    e.demand = demand;
    e.future = e.promise.get_future().share();
    if (done) e.completions.push_back(std::move(done));
    (demand ? demand_q_ : prefetch_q_).push_back(id);
    fut = e.future;
  }
  cv_.notify_one();
  return fut;
}

bool AsyncBlockLoader::cancel(BlockId id) {
  Settled settled;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.state != LoadState::kQueued) {
      return false;
    }
    erase_from(demand_q_, id);
    erase_from(prefetch_q_, id);
    ++cancelled_;
    settled = take_settled(id, LoadState::kCancelled);
  }
  settle(std::move(settled), id, nullptr, nullptr);
  return true;
}

void AsyncBlockLoader::set_fault_hook(FaultHook hook) {
  MutexLock lock(mu_);
  fault_hook_ = std::move(hook);
}

void AsyncBlockLoader::set_stall_hook(StallHook hook) {
  MutexLock lock(mu_);
  stall_hook_ = std::move(hook);
}

#define SF_LOADER_COUNTER(name)                  \
  std::uint64_t AsyncBlockLoader::name() const { \
    MutexLock lock(mu_);                         \
    return name##_;                              \
  }
SF_LOADER_COUNTER(submitted)
SF_LOADER_COUNTER(coalesced)
SF_LOADER_COUNTER(completed)
SF_LOADER_COUNTER(cancelled)
SF_LOADER_COUNTER(failed)
SF_LOADER_COUNTER(retries)
SF_LOADER_COUNTER(corruptions)
#undef SF_LOADER_COUNTER

bool AsyncBlockLoader::pop_next(BlockId& id) {
  while (!stop_ && demand_q_.empty() && prefetch_q_.empty()) {
    cv_.wait(mu_);
  }
  if (demand_q_.empty() && prefetch_q_.empty()) return false;  // stopping
  auto& q = demand_q_.empty() ? prefetch_q_ : demand_q_;
  id = q.front();
  q.pop_front();
  return true;
}

AsyncBlockLoader::Settled AsyncBlockLoader::take_settled(
    BlockId id, LoadState final_state) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  it->second.state = final_state;
  Settled settled{std::move(it->second.promise),
                  std::move(it->second.completions)};
  entries_.erase(it);
  return settled;
}

void AsyncBlockLoader::settle(Settled settled, BlockId id, GridPtr grid,
                              std::exception_ptr error) {
  if (error != nullptr) {
    settled.promise.set_exception(error);
  } else {
    settled.promise.set_value(grid);
  }
  for (auto& c : settled.completions) c(id, grid, error);
}

void AsyncBlockLoader::worker_main() {
  for (;;) {
    BlockId id = kInvalidBlock;
    FaultHook fault;
    StallHook stall;
    {
      MutexLock lock(mu_);
      if (!pop_next(id)) return;
      auto eit = entries_.find(id);
      assert(eit != entries_.end());
      eit->second.state = LoadState::kLoading;
      fault = fault_hook_;
      stall = stall_hook_;
    }

    // The read itself runs unlocked: other workers keep draining the
    // queues and ranks keep submitting while this block is on the disk —
    // and the checksum verification inside BlockSource::load runs here
    // too, off the compute hot path.
    GridPtr grid;
    std::exception_ptr error;
    int attempts_retried = 0;
    int corrupt_attempts = 0;
    for (int attempt = 0;; ++attempt) {
      if (stall) sleep_seconds(stall(id, attempt));
      bool faulted = fault && fault(id, attempt);
      bool recoverable = true;
      error = nullptr;
      if (!faulted) {
        try {
          grid = source_->load(id);
        } catch (const BlockReadError& e) {
          error = std::current_exception();
          faulted = true;
          recoverable = e.recoverable();
          if (e.kind() == BlockReadError::Kind::kCorrupt) ++corrupt_attempts;
        } catch (...) {
          error = std::current_exception();
          faulted = true;
        }
      }
      if (!faulted) break;
      if (error == nullptr) {
        error = std::make_exception_ptr(BlockReadError(
            BlockReadError::Kind::kInjected, id, "injected disk fault"));
      }
      // A structurally unrecoverable read (missing file) fails at once;
      // everything else walks the retry ladder.
      if (!recoverable || attempt >= cfg_.max_retries) break;
      ++attempts_retried;
      // Same deterministic capped exponential backoff as the simulated
      // disk's retry path.
      sleep_seconds(std::min(cfg_.retry_backoff * std::ldexp(1.0, attempt),
                             cfg_.backoff_cap));
    }

    Settled settled;
    {
      MutexLock lock(mu_);
      retries_ += static_cast<std::uint64_t>(attempts_retried);
      corruptions_ += static_cast<std::uint64_t>(corrupt_attempts);
      if (error != nullptr) {
        ++failed_;
        settled = take_settled(id, LoadState::kFailed);
      } else {
        ++completed_;
        settled = take_settled(id, LoadState::kReady);
      }
    }
    settle(std::move(settled), id, error != nullptr ? nullptr : grid, error);
  }
}

}  // namespace sf
