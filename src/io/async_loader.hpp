#pragma once

// Asynchronous block loader: a small worker pool that services block
// reads in the background so the compute path can overlap integration
// with I/O (DESIGN.md §10).
//
// The loader sits between a rank's demand/prefetch logic and the
// blocking BlockSource::load.  Concurrent requests for the same block
// coalesce onto one read; demand requests jump the queue ahead of
// prefetches; queued requests can be cancelled before a worker picks
// them up.  Completions are delivered two ways — a shared_future for
// callers that want to wait, and an optional callback (invoked on the
// worker thread) for runtimes that marshal completions back onto the
// rank thread themselves.
//
// Locking: one mutex (mu_, LockRank::kLoader) guards the queues, the
// LoadState map and the counters.  Completions and promises are always
// settled *outside* the lock — they may block a waiter awake or re-enter
// request()/cancel() — so an entry is first taken out of the map under
// the lock (take_settled) and fired after release (settle).  The
// thread-safety analysis enforces the split: Entry state is guarded,
// settle() takes no capability.
//
// Faults: an injectable per-attempt fault hook models disk read errors
// on the loader threads.  Failed attempts retry with the same
// deterministic capped exponential backoff as the simulated disk
// (min(retry_backoff * 2^attempt, backoff_cap)); when retries are
// exhausted the error surfaces through the future/callback as an
// exception_ptr.  An injectable stall hook adds per-attempt latency
// (a stall is slowness, not failure — it never consumes a retry, even
// when it exceeds the backoff cap).

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/dataset.hpp"
#include "core/thread_annotations.hpp"

namespace sf {

// Lifecycle of one coalesced request.  tools/lint/check_protocol.py
// parses this enum and requires every switch over it to be exhaustive,
// like Command::Type.
enum class LoadState : std::uint8_t {
  kQueued,     // accepted, waiting for a worker
  kLoading,    // a worker is reading it (no longer cancellable)
  kReady,      // payload delivered, future resolved
  kCancelled,  // cancelled while queued; future resolves to nullptr
  kFailed,     // retries exhausted; future rethrows
};

const char* to_string(LoadState s);

// Shared async-I/O knobs.  Both runtimes embed one of these in their
// config; `enabled == false` (the default) keeps the synchronous
// behaviour bit-identical to the pre-async code.
struct AsyncIoConfig {
  bool enabled = false;
  int workers = 2;              // loader threads (ThreadRuntime only)
  std::size_t staging_blocks = 4;  // staged prefetched grids per rank
  int prefetch_depth = 2;       // in-flight prefetches per rank
};

class AsyncBlockLoader {
 public:
  struct Config {
    int workers = 2;
    int max_retries = 0;        // extra attempts after a failed read
    double retry_backoff = 0.0;  // seconds, doubled per attempt
    double backoff_cap = 0.0;    // upper bound on one backoff sleep
  };

  // (block, grid-or-null, error-or-null); exactly one of grid/error is
  // set on completion, both are null on cancellation.  Runs on a worker
  // thread (or on the caller's thread for cancellations), always with
  // mu_ released — re-entering request()/cancel() from a completion is
  // legal.
  using Completion =
      std::function<void(BlockId, GridPtr, std::exception_ptr)>;
  // Return true to fail this attempt.  Runs on the worker thread.
  using FaultHook = std::function<bool(BlockId, int attempt)>;
  // Extra seconds of latency for this attempt.  Runs on the worker.
  using StallHook = std::function<double(BlockId, int attempt)>;

  AsyncBlockLoader(const BlockSource* source, Config cfg);
  ~AsyncBlockLoader();  // cancels queued work, then joins the workers

  AsyncBlockLoader(const AsyncBlockLoader&) = delete;
  AsyncBlockLoader& operator=(const AsyncBlockLoader&) = delete;

  // Enqueue a read.  A request for a block already queued or loading
  // coalesces: the completion joins the existing entry and the same
  // future is returned.  `demand` requests are serviced before
  // prefetches and promote an already-queued prefetch to the demand
  // queue.  The future resolves to the grid, to nullptr if cancelled,
  // or rethrows the load error.
  std::shared_future<GridPtr> request(BlockId id, bool demand,
                                      Completion done = nullptr)
      SF_EXCLUDES(mu_);

  // Cancel a request that is still queued.  Returns true if it was
  // cancelled (completions fire with nullptr grid and nullptr error);
  // false if it already started loading or was never requested.
  bool cancel(BlockId id) SF_EXCLUDES(mu_);

  // Test/fault-injection hooks; set before issuing requests.
  void set_fault_hook(FaultHook hook) SF_EXCLUDES(mu_);
  void set_stall_hook(StallHook hook) SF_EXCLUDES(mu_);

  std::uint64_t submitted() const SF_EXCLUDES(mu_);  // created an entry
  std::uint64_t coalesced() const SF_EXCLUDES(mu_);  // joined an entry
  std::uint64_t completed() const SF_EXCLUDES(mu_);
  std::uint64_t cancelled() const SF_EXCLUDES(mu_);
  std::uint64_t failed() const SF_EXCLUDES(mu_);
  std::uint64_t retries() const SF_EXCLUDES(mu_);
  // Attempts that failed with BlockReadError::kCorrupt — checksum
  // verification happens inside BlockSource::load on the worker thread
  // (off the compute hot path), and every caught flip lands here.
  std::uint64_t corruptions() const SF_EXCLUDES(mu_);

 private:
  struct Entry {
    LoadState state = LoadState::kQueued;
    bool demand = false;
    std::promise<GridPtr> promise;
    std::shared_future<GridPtr> future;
    std::vector<Completion> completions;
  };

  // The parts of a finished entry that must be fired with mu_ released.
  struct Settled {
    std::promise<GridPtr> promise;
    std::vector<Completion> completions;
  };

  void worker_main();
  // Blocks until there is a block to read (demand queue first).  Returns
  // false when stopping and both queues are empty.
  bool pop_next(BlockId& id) SF_REQUIRES(mu_);
  // Record the terminal LoadState and take the entry's promise +
  // completions out of the map; the caller settles them after release.
  Settled take_settled(BlockId id, LoadState final_state) SF_REQUIRES(mu_);
  // Resolve the future and fire the completions.  Never called (and by
  // construction uncallable) with mu_ held.
  static void settle(Settled settled, BlockId id, GridPtr grid,
                     std::exception_ptr error);

  const BlockSource* source_;
  Config cfg_;

  mutable Mutex mu_{LockRank::kLoader};
  CondVar cv_;
  bool stop_ SF_GUARDED_BY(mu_) = false;
  std::deque<BlockId> demand_q_ SF_GUARDED_BY(mu_);
  std::deque<BlockId> prefetch_q_ SF_GUARDED_BY(mu_);
  std::map<BlockId, Entry> entries_ SF_GUARDED_BY(mu_);
  FaultHook fault_hook_ SF_GUARDED_BY(mu_);
  StallHook stall_hook_ SF_GUARDED_BY(mu_);

  std::uint64_t submitted_ SF_GUARDED_BY(mu_) = 0;
  std::uint64_t coalesced_ SF_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ SF_GUARDED_BY(mu_) = 0;
  std::uint64_t cancelled_ SF_GUARDED_BY(mu_) = 0;
  std::uint64_t failed_ SF_GUARDED_BY(mu_) = 0;
  std::uint64_t retries_ SF_GUARDED_BY(mu_) = 0;
  std::uint64_t corruptions_ SF_GUARDED_BY(mu_) = 0;

  std::vector<std::thread> workers_;  // written in the ctor only
};

}  // namespace sf
