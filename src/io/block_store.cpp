#include "io/block_store.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/io_error.hpp"

namespace sf {

namespace {

constexpr char kMagic[8] = {'S', 'F', 'B', 'L', 'K', '0', '1', '\n'};

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct BlockHeader {
  char magic[8];
  double lo[3];
  double hi[3];
  std::int32_t nx, ny, nz;
  std::int32_t pad = 0;
  std::uint64_t payload_checksum;
};

}  // namespace

void BlockStore::write(const std::filesystem::path& dir,
                       const BlockedDataset& dataset) {
  std::filesystem::create_directories(dir);

  const BlockDecomposition& d = dataset.decomposition();
  {
    std::ofstream manifest(dir / "manifest.txt");
    if (!manifest) {
      throw std::runtime_error("BlockStore: cannot write manifest in " +
                               dir.string());
    }
    manifest.precision(17);
    manifest << "streamflow-block-store 1\n";
    manifest << "domain " << d.domain().lo.x << ' ' << d.domain().lo.y << ' '
             << d.domain().lo.z << ' ' << d.domain().hi.x << ' '
             << d.domain().hi.y << ' ' << d.domain().hi.z << '\n';
    manifest << "blocks " << d.nbx() << ' ' << d.nby() << ' ' << d.nbz()
             << '\n';
    manifest << "nodes_per_axis " << dataset.nodes_per_axis() << '\n';
    manifest << "ghost_cells " << dataset.ghost_cells() << '\n';
  }

  for (BlockId id = 0; id < d.num_blocks(); ++id) {
    const GridPtr grid = dataset.block(id);
    const AABB b = grid->bounds();

    BlockHeader h{};
    std::copy(std::begin(kMagic), std::end(kMagic), h.magic);
    h.lo[0] = b.lo.x;
    h.lo[1] = b.lo.y;
    h.lo[2] = b.lo.z;
    h.hi[0] = b.hi.x;
    h.hi[1] = b.hi.y;
    h.hi[2] = b.hi.z;
    h.nx = grid->nx();
    h.ny = grid->ny();
    h.nz = grid->nz();
    // On-disk payload stays the AoS node order; data() snapshots the SoA
    // component arrays into exactly that layout.
    const std::vector<Vec3> nodes = grid->data();
    h.payload_checksum = fnv1a(nodes.data(), grid->payload_bytes());

    std::ofstream f(dir / ("block_" + std::to_string(id) + ".blk"),
                    std::ios::binary);
    if (!f) {
      throw std::runtime_error("BlockStore: cannot write block " +
                               std::to_string(id));
    }
    f.write(reinterpret_cast<const char*>(&h), sizeof(h));
    f.write(reinterpret_cast<const char*>(nodes.data()),
            static_cast<std::streamsize>(grid->payload_bytes()));
  }
}

BlockStore::BlockStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::ifstream manifest(dir_ / "manifest.txt");
  if (!manifest) {
    throw std::runtime_error("BlockStore: no manifest in " + dir_.string());
  }
  std::string line, key;
  std::getline(manifest, line);
  if (line != "streamflow-block-store 1") {
    throw std::runtime_error("BlockStore: bad manifest header: " + line);
  }
  Vec3 lo, hi;
  int nbx = 0, nby = 0, nbz = 0;
  while (manifest >> key) {
    if (key == "domain") {
      manifest >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z;
    } else if (key == "blocks") {
      manifest >> nbx >> nby >> nbz;
    } else if (key == "nodes_per_axis") {
      manifest >> nodes_per_axis_;
    } else if (key == "ghost_cells") {
      manifest >> ghost_cells_;
    } else {
      std::getline(manifest, line);  // skip unknown keys
    }
  }
  if (nbx < 1 || nodes_per_axis_ < 2) {
    throw std::runtime_error("BlockStore: manifest incomplete");
  }
  decomp_.emplace(AABB{lo, hi}, nbx, nby, nbz);
}

std::filesystem::path BlockStore::block_path(BlockId id) const {
  return dir_ / ("block_" + std::to_string(id) + ".blk");
}

GridPtr BlockStore::load_block(BlockId id) const {
  if (id < 0 || id >= num_blocks()) {
    throw std::out_of_range("BlockStore::load_block: bad id");
  }
  std::ifstream f(block_path(id), std::ios::binary);
  if (!f) {
    throw BlockReadError(BlockReadError::Kind::kMissing, id,
                         "BlockStore: missing block file " +
                             block_path(id).string());
  }
  BlockHeader h{};
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!f || !std::equal(std::begin(kMagic), std::end(kMagic), h.magic)) {
    throw BlockReadError(BlockReadError::Kind::kBadMagic, id,
                         "BlockStore: bad magic in " +
                             block_path(id).string());
  }
  auto grid = std::make_shared<StructuredGrid>(
      AABB{{h.lo[0], h.lo[1], h.lo[2]}, {h.hi[0], h.hi[1], h.hi[2]}}, h.nx,
      h.ny, h.nz);
  std::vector<Vec3> nodes(grid->num_nodes());
  f.read(reinterpret_cast<char*>(nodes.data()),
         static_cast<std::streamsize>(grid->payload_bytes()));
  if (!f) {
    throw BlockReadError(BlockReadError::Kind::kTruncated, id,
                         "BlockStore: truncated block " +
                             block_path(id).string());
  }
  if (fnv1a(nodes.data(), grid->payload_bytes()) != h.payload_checksum) {
    throw BlockReadError(BlockReadError::Kind::kCorrupt, id,
                         "BlockStore: checksum mismatch in " +
                             block_path(id).string());
  }
  grid->set_data(nodes);
  return grid;
}

const char* to_string(BlockReadError::Kind k) {
  switch (k) {
    case BlockReadError::Kind::kMissing: return "missing";
    case BlockReadError::Kind::kBadMagic: return "bad-magic";
    case BlockReadError::Kind::kTruncated: return "truncated";
    case BlockReadError::Kind::kCorrupt: return "corrupt";
    case BlockReadError::Kind::kInjected: return "injected";
  }
  return "unknown";
}

std::size_t BlockStore::block_file_bytes(BlockId id) const {
  return static_cast<std::size_t>(std::filesystem::file_size(block_path(id)));
}

}  // namespace sf
