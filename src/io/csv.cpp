#include "io/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace sf {

Table& Table::add_row(std::vector<Cell> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: wrong number of cells");
  }
  rows_.push_back(std::move(row));
  return *this;
}

std::string Table::cell_text(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  const double v = std::get<double>(c);
  char buf[64];
  // %g keeps both tiny times and large byte counts readable.
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void Table::write_csv(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("cannot open for writing: " + path.string());
  }
  write_csv(f);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&os](const std::string& text) {
    if (text.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (const char ch : text) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << text;
    }
  };
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ',';
    emit(columns_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      emit(cell_text(row[i]));
    }
    os << '\n';
  }
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    width[i] = columns_[i].size();
  }
  std::vector<std::vector<std::string>> text;
  text.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      cells.push_back(cell_text(row[i]));
      width[i] = std::max(width[i], cells.back().size());
    }
    text.push_back(std::move(cells));
  }

  auto line = [&] {
    for (const std::size_t w : width) {
      os << '+' << std::string(w + 2, '-');
    }
    os << "+\n";
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << "| " << cells[i] << std::string(width[i] - cells[i].size() + 1, ' ');
    }
    os << "|\n";
  };

  line();
  emit_row(columns_);
  line();
  for (const auto& row : text) emit_row(row);
  line();
}

}  // namespace sf
