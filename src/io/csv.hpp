#pragma once

// Tabular output: CSV files for post-processing and aligned text tables
// for the figure-harness binaries (which print the same rows/series the
// paper's figures plot).

#include <filesystem>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace sf {

class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  Table& add_row(std::vector<Cell> row);

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t num_rows() const { return rows_.size(); }

  // Write RFC-4180-ish CSV (no quoting of commas is needed for our data,
  // but quotes are applied when a cell contains one).
  void write_csv(const std::filesystem::path& path) const;
  void write_csv(std::ostream& os) const;

  // Print an aligned, human-readable table.
  void print(std::ostream& os) const;

 private:
  static std::string cell_text(const Cell& c);

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace sf
