#include "io/vtk_writer.hpp"

#include <fstream>
#include <stdexcept>

namespace sf {

namespace {

std::ofstream open_or_throw(const std::filesystem::path& path) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("cannot open for writing: " + path.string());
  }
  f.precision(9);
  return f;
}

void header(std::ofstream& f, const std::string& title,
            const std::string& dataset_type) {
  f << "# vtk DataFile Version 3.0\n"
    << title << "\nASCII\nDATASET " << dataset_type << '\n';
}

}  // namespace

void write_vtk_polylines(const std::filesystem::path& path,
                         const std::vector<std::vector<Vec3>>& lines,
                         const std::string& title) {
  std::size_t total_points = 0;
  std::size_t total_lines = 0;
  for (const auto& line : lines) {
    if (line.size() < 2) continue;
    total_points += line.size();
    ++total_lines;
  }

  std::ofstream f = open_or_throw(path);
  header(f, title, "POLYDATA");
  f << "POINTS " << total_points << " float\n";
  for (const auto& line : lines) {
    if (line.size() < 2) continue;
    for (const Vec3& p : line) f << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }

  f << "LINES " << total_lines << ' ' << (total_lines + total_points)
    << '\n';
  std::size_t offset = 0;
  for (const auto& line : lines) {
    if (line.size() < 2) continue;
    f << line.size();
    for (std::size_t i = 0; i < line.size(); ++i) f << ' ' << (offset + i);
    f << '\n';
    offset += line.size();
  }

  // Per-vertex parameter (index along the line) for colouring.
  f << "POINT_DATA " << total_points << "\nSCALARS arc_index float 1\n"
    << "LOOKUP_TABLE default\n";
  for (const auto& line : lines) {
    if (line.size() < 2) continue;
    for (std::size_t i = 0; i < line.size(); ++i) {
      f << static_cast<double>(i) << '\n';
    }
  }
}

void write_vtk_vector_grid(const std::filesystem::path& path,
                           const StructuredGrid& grid,
                           const std::string& title) {
  std::ofstream f = open_or_throw(path);
  header(f, title, "STRUCTURED_POINTS");
  const AABB b = grid.bounds();
  const Vec3 cell = grid.cell_size();
  f << "DIMENSIONS " << grid.nx() << ' ' << grid.ny() << ' ' << grid.nz()
    << '\n';
  f << "ORIGIN " << b.lo.x << ' ' << b.lo.y << ' ' << b.lo.z << '\n';
  f << "SPACING " << cell.x << ' ' << cell.y << ' ' << cell.z << '\n';
  f << "POINT_DATA " << grid.num_nodes() << "\nVECTORS velocity float\n";
  for (const Vec3& v : grid.data()) {
    f << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
}

void write_vtk_scalar_grid(const std::filesystem::path& path,
                           const AABB& bounds, int nx, int ny, int nz,
                           const std::vector<double>& values,
                           const std::string& name,
                           const std::string& title) {
  const std::size_t expect =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
      static_cast<std::size_t>(nz);
  if (values.size() != expect) {
    throw std::invalid_argument("write_vtk_scalar_grid: size mismatch");
  }
  std::ofstream f = open_or_throw(path);
  header(f, title, "STRUCTURED_POINTS");
  const Vec3 e = bounds.extent();
  f << "DIMENSIONS " << nx << ' ' << ny << ' ' << nz << '\n';
  f << "ORIGIN " << bounds.lo.x << ' ' << bounds.lo.y << ' ' << bounds.lo.z
    << '\n';
  f << "SPACING " << (nx > 1 ? e.x / (nx - 1) : 1.0) << ' '
    << (ny > 1 ? e.y / (ny - 1) : 1.0) << ' '
    << (nz > 1 ? e.z / (nz - 1) : 1.0) << '\n';
  f << "POINT_DATA " << values.size() << "\nSCALARS " << name
    << " float 1\nLOOKUP_TABLE default\n";
  for (const double v : values) f << v << '\n';
}

void write_vtk_points(const std::filesystem::path& path,
                      const std::vector<Vec3>& points,
                      const std::vector<double>& scalars,
                      const std::string& title) {
  if (!scalars.empty() && scalars.size() != points.size()) {
    throw std::invalid_argument("write_vtk_points: scalar size mismatch");
  }
  std::ofstream f = open_or_throw(path);
  header(f, title, "POLYDATA");
  f << "POINTS " << points.size() << " float\n";
  for (const Vec3& p : points) f << p.x << ' ' << p.y << ' ' << p.z << '\n';
  f << "VERTICES " << points.size() << ' ' << 2 * points.size() << '\n';
  for (std::size_t i = 0; i < points.size(); ++i) f << "1 " << i << '\n';
  if (!scalars.empty()) {
    f << "POINT_DATA " << points.size()
      << "\nSCALARS value float 1\nLOOKUP_TABLE default\n";
    for (const double s : scalars) f << s << '\n';
  }
}

}  // namespace sf
