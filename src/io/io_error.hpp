#pragma once

// Typed block-read errors (DESIGN.md §16).
//
// Every failure mode of a BlockStore read carries a machine-readable
// kind, so the retry machinery can tell recoverable faults (a corrupted
// payload that a re-read may fix, an injected transient fault) from
// structural ones (a block file that simply is not there).  The async
// loader and the simulated disk route recoverable kinds through the
// capped-backoff retry ladder and escalate to the rank-crash recovery
// path only after disk_max_retries; raw std::runtime_error from the I/O
// layer is reserved for genuinely unrecoverable states.

#include <stdexcept>
#include <string>

#include "core/block_decomposition.hpp"

namespace sf {

class BlockReadError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kMissing,    // block file absent or unopenable
    kBadMagic,   // header magic mismatch (wrong or clobbered file)
    kTruncated,  // payload shorter than the header promises
    kCorrupt,    // payload checksum mismatch (silent bit-flip caught)
    kInjected,   // injected transient fault (tests / fault hooks)
  };

  BlockReadError(Kind kind, BlockId block, const std::string& detail)
      : std::runtime_error(detail), kind_(kind), block_(block) {}

  Kind kind() const { return kind_; }
  BlockId block() const { return block_; }

  // A retry may succeed: the bytes on disk are (believed) good and the
  // failure happened on the way in.  Missing/short files will not grow
  // back, but a bad header could be a torn read too — everything except
  // kMissing is worth the retry ladder.
  bool recoverable() const { return kind_ != Kind::kMissing; }

 private:
  Kind kind_;
  BlockId block_;
};

const char* to_string(BlockReadError::Kind k);

}  // namespace sf
