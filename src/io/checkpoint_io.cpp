#include "io/checkpoint_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace sf {

namespace {

// Format v2 added the run-topology stamp (algorithm tag + dataset hash)
// after num_ranks; v3 added the owning-query tag to every particle
// record (src/service).  Older files are rejected with a clear error.
constexpr char kMagic[8] = {'S', 'F', 'C', 'K', 'P', 'T', '3', '\n'};

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct CheckpointHeader {
  char magic[8];
  std::uint64_t payload_bytes;
  std::uint64_t payload_checksum;
};

class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }

  void particle(const Particle& p) {
    u32(p.id);
    f64(p.pos.x);
    f64(p.pos.y);
    f64(p.pos.z);
    f64(p.time);
    f64(p.h);
    u32(p.steps);
    u32(p.geometry_points);
    u32(p.query);
    u8(static_cast<std::uint8_t>(p.status));
  }

  const std::vector<char>& bytes() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }

  std::vector<char> buf_;
};

class Reader {
 public:
  explicit Reader(std::vector<char> buf) : buf_(std::move(buf)) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, 4);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v = 0;
    raw(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, 8);
    return v;
  }
  double f64() {
    double v = 0;
    raw(&v, 8);
    return v;
  }

  Particle particle() {
    Particle p;
    p.id = u32();
    p.pos.x = f64();
    p.pos.y = f64();
    p.pos.z = f64();
    p.time = f64();
    p.h = f64();
    p.steps = u32();
    p.geometry_points = u32();
    p.query = u32();
    p.status = static_cast<ParticleStatus>(u8());
    return p;
  }

  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void raw(void* p, std::size_t n) {
    if (pos_ + n > buf_.size()) {
      throw std::runtime_error("checkpoint: truncated payload");
    }
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }

  std::vector<char> buf_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_checkpoint(const std::filesystem::path& path,
                      const Checkpoint& ck) {
  Writer w;
  w.f64(ck.sim_time);
  w.i32(ck.num_ranks);
  w.u8(ck.algorithm);
  w.u64(ck.dataset_hash);
  w.u64(ck.done.size());
  for (const Particle& p : ck.done) w.particle(p);
  w.u64(ck.active.size());
  for (std::size_t i = 0; i < ck.active.size(); ++i) {
    w.particle(ck.active[i]);
    w.i32(i < ck.active_owner.size() ? ck.active_owner[i] : -1);
  }
  w.u64(ck.ranks.size());
  for (const CheckpointRankState& r : ck.ranks) {
    w.i32(r.rank);
    w.u8(r.alive ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(r.resident.size()));
    for (BlockId b : r.resident) w.i32(b);
  }

  CheckpointHeader h{};
  std::copy(std::begin(kMagic), std::end(kMagic), h.magic);
  h.payload_bytes = w.bytes().size();
  h.payload_checksum = fnv1a(w.bytes().data(), w.bytes().size());

  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      throw std::runtime_error("checkpoint: cannot write " + tmp.string());
    }
    f.write(reinterpret_cast<const char*>(&h), sizeof(h));
    f.write(w.bytes().data(),
            static_cast<std::streamsize>(w.bytes().size()));
    if (!f) {
      throw std::runtime_error("checkpoint: short write to " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path);
}

Checkpoint read_checkpoint(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error("checkpoint: cannot open " + path.string());
  }
  CheckpointHeader h{};
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!f || !std::equal(std::begin(kMagic), std::end(kMagic), h.magic)) {
    if (f && std::memcmp(h.magic, "SFCKPT", 6) == 0) {
      throw std::runtime_error(
          "checkpoint: " + path.string() +
          " uses an unsupported format version (expected SFCKPT3)");
    }
    throw std::runtime_error("checkpoint: bad magic in " + path.string());
  }
  std::vector<char> payload(h.payload_bytes);
  f.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!f) {
    throw std::runtime_error("checkpoint: truncated file " + path.string());
  }
  if (f.peek() != std::ifstream::traits_type::eof()) {
    // Bytes after the declared payload: appended garbage or a mangled
    // header length.  Either way the file is not what was written.
    throw std::runtime_error("checkpoint: trailing bytes in " + path.string());
  }
  if (fnv1a(payload.data(), payload.size()) != h.payload_checksum) {
    throw std::runtime_error("checkpoint: checksum mismatch in " +
                             path.string());
  }

  Reader r(std::move(payload));
  Checkpoint ck;
  ck.sim_time = r.f64();
  ck.num_ranks = r.i32();
  ck.algorithm = r.u8();
  ck.dataset_hash = r.u64();
  const std::uint64_t ndone = r.u64();
  ck.done.reserve(ndone);
  for (std::uint64_t i = 0; i < ndone; ++i) ck.done.push_back(r.particle());
  const std::uint64_t nactive = r.u64();
  ck.active.reserve(nactive);
  ck.active_owner.reserve(nactive);
  for (std::uint64_t i = 0; i < nactive; ++i) {
    ck.active.push_back(r.particle());
    ck.active_owner.push_back(r.i32());
  }
  const std::uint64_t nranks = r.u64();
  ck.ranks.reserve(nranks);
  for (std::uint64_t i = 0; i < nranks; ++i) {
    CheckpointRankState rs;
    rs.rank = r.i32();
    rs.alive = r.u8() != 0;
    const std::uint32_t nres = r.u32();
    rs.resident.reserve(nres);
    for (std::uint32_t j = 0; j < nres; ++j) rs.resident.push_back(r.i32());
    ck.ranks.push_back(std::move(rs));
  }
  if (!r.exhausted()) {
    throw std::runtime_error("checkpoint: trailing bytes in " + path.string());
  }
  return ck;
}

}  // namespace sf
