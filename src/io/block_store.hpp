#pragma once

// On-disk block storage.
//
// The paper's datasets live on a parallel filesystem, pre-partitioned into
// blocks that are fetched one at a time.  BlockStore reproduces that
// contract: a directory with a manifest and one binary file per block,
// loaded independently.  The ThreadRuntime performs *real* reads through
// this store; the discrete-event runtime charges modelled I/O cost instead
// but can also be pointed at a store for end-to-end realism.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "core/dataset.hpp"

namespace sf {

class BlockStore {
 public:
  // Serialize `dataset` to `dir` (created if needed): a `manifest.txt`
  // plus `block_<id>.blk` files.  Existing files are overwritten.
  static void write(const std::filesystem::path& dir,
                    const BlockedDataset& dataset);

  // Open an existing store; throws on missing/corrupt manifest.
  explicit BlockStore(std::filesystem::path dir);

  const BlockDecomposition& decomposition() const {
    // NOLINTNEXTLINE(bugprone-unchecked-optional-access): every ctor
    // either engages decomp_ or throws, so it is never nullopt here.
    return *decomp_;
  }
  int nodes_per_axis() const { return nodes_per_axis_; }
  int ghost_cells() const { return ghost_cells_; }
  int num_blocks() const {
    // NOLINTNEXTLINE(bugprone-unchecked-optional-access): see above.
    return decomp_->num_blocks();
  }

  // Read one block from disk.  Verifies the payload checksum; throws a
  // typed BlockReadError (io/io_error.hpp) on a missing file, bad
  // header, truncation or checksum mismatch, so retry machinery can
  // distinguish recoverable read faults from structural ones.
  GridPtr load_block(BlockId id) const;

  // Size of the block file on disk.
  std::size_t block_file_bytes(BlockId id) const;

  std::filesystem::path block_path(BlockId id) const;

 private:
  std::filesystem::path dir_;
  std::optional<BlockDecomposition> decomp_;
  int nodes_per_axis_ = 0;
  int ghost_cells_ = 0;
};

// BlockSource over a BlockStore (real disk reads on every load, no
// process-level memoization — redundant loads really hit the disk, as in
// the Load On Demand discussion).
class DiskBlockSource final : public BlockSource {
 public:
  explicit DiskBlockSource(std::shared_ptr<const BlockStore> store,
                           std::size_t modelled_bytes = 0)
      : store_(std::move(store)), modelled_bytes_(modelled_bytes) {}

  GridPtr load(BlockId id) const override { return store_->load_block(id); }

  std::size_t block_bytes(BlockId id) const override {
    return modelled_bytes_ != 0 ? modelled_bytes_
                                : store_->block_file_bytes(id);
  }

  int num_blocks() const override { return store_->num_blocks(); }

 private:
  std::shared_ptr<const BlockStore> store_;
  std::size_t modelled_bytes_;
};

}  // namespace sf
