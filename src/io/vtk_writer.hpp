#pragma once

// Legacy-VTK ASCII output for visual inspection of results (streamline
// polylines, vector grids, scalar grids).  Files open directly in
// ParaView/VisIt — the natural downstream consumers of this library.

#include <filesystem>
#include <string>
#include <vector>

#include "core/aabb.hpp"
#include "core/structured_grid.hpp"
#include "core/vec3.hpp"

namespace sf {

// Streamlines as VTK POLYDATA with one polyline per streamline and the
// per-vertex integration index as scalar data.  Empty lines are skipped.
void write_vtk_polylines(const std::filesystem::path& path,
                         const std::vector<std::vector<Vec3>>& lines,
                         const std::string& title = "streamflow lines");

// A vector field grid as VTK STRUCTURED_POINTS with point vectors.
void write_vtk_vector_grid(const std::filesystem::path& path,
                           const StructuredGrid& grid,
                           const std::string& title = "streamflow field");

// A scalar lattice (e.g. an FTLE field) as VTK STRUCTURED_POINTS.
// `values` is x-fastest with dims nx*ny*nz over `bounds`.
void write_vtk_scalar_grid(const std::filesystem::path& path,
                           const AABB& bounds, int nx, int ny, int nz,
                           const std::vector<double>& values,
                           const std::string& name = "scalar",
                           const std::string& title = "streamflow scalar");

// Points (e.g. Poincaré punctures) as VTK POLYDATA vertices with an
// optional per-point scalar.
void write_vtk_points(const std::filesystem::path& path,
                      const std::vector<Vec3>& points,
                      const std::vector<double>& scalars = {},
                      const std::string& title = "streamflow points");

}  // namespace sf
