#pragma once

// Streamline-as-a-service (DESIGN.md §12): a long-lived, multi-query
// runtime layered on the existing experiment driver.
//
// The service accepts a stream of independent streamline queries and
// multiplexes them onto the rank pool in admission epochs: each epoch
// merges the admitted queries' seeds into one query-tagged particle set
// and runs it through run_experiment (simulated ranks) or
// run_experiment_threads (real threads).  The service clock advances by
// each epoch's wall clock plus any idle gap to the next arrival, so a
// fully seeded submission schedule (e.g. PoissonArrivals) replays
// deterministically.
//
// Cross-query cache sharing: a SharedBlockPool carries each rank's
// resident blocks from epoch to epoch, so a query whose streamlines
// revisit another query's footprint hits warm cache instead of re-reading
// the dataset (adoptions are counted separately from loads; the cache
// audit stays exact).
//
// Equivalence gate: a single query through the service is bit-identical
// — trajectories and step counts — to a standalone Driver run of the
// same seeds, because an epoch with one cold query *is* that run.  With
// multiple queries per epoch, per-query results remain bit-identical to
// solo runs because Tracer::advance_batch treats every particle
// independently (DESIGN.md §5.1).

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "algorithms/driver.hpp"
#include "core/dataset.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"
#include "service/query.hpp"
#include "service/query_queue.hpp"

namespace sf {

struct ServiceConfig {
  // The experiment every epoch runs: algorithm, machine, integrator,
  // limits, fault plane.  restart_from and seed_queries must be empty
  // (the service owns query tagging).
  ExperimentConfig base{};
  // Real threads instead of the simulated machine.  The thread runtime
  // has no fault plane and applies cancellations only at epoch
  // boundaries (timed mid-flight cancels are a SimRuntime feature).
  bool use_thread_runtime = false;
  // Admission control: how many queries one epoch may merge, how many
  // submissions may wait (beyond that, submissions are rejected), and
  // the largest per-query seed set accepted.
  std::size_t max_queries_per_epoch = 4;
  std::size_t max_queue_depth = 16;
  std::size_t max_seeds_per_query = 65536;
  // Carry each rank's resident blocks across epochs.  Off = every epoch
  // starts cold (the baseline bench/service_load compares against).
  bool share_cache = true;
  // Deadline applied to queries submitted without one (0 = none).  A
  // query's deadline is a service-clock latency budget from submission:
  // still queued past it -> shed at admission (rejected_deadline);
  // admitted in time -> the simulated runtime cancels its remaining
  // particles at the exact expiry instant (the thread runtime, which has
  // no deterministic mid-run instant, only sheds at admission — the same
  // granularity difference as user cancels, DESIGN.md §12).
  double default_deadline = 0.0;
};

// Aggregate latency/fairness metrics over a service lifetime
// (bench/service_load plots these).
struct ServiceReport {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t rejected = 0;  // = rejected_depth + rejected_deadline +
                             //   rejected_malformed
  std::size_t rejected_depth = 0;     // queue full at arrival
  std::size_t rejected_deadline = 0;  // deadline expired while queued
  std::size_t rejected_malformed = 0;  // empty/oversized seed set
  std::size_t deadline_cancelled = 0;  // admitted, then expired mid-flight
  std::size_t epochs = 0;
  double makespan = 0.0;  // service clock at the end of run_until_idle
  double p50_queue_wait = 0.0;
  double p99_queue_wait = 0.0;
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double cache_hit_rate = 0.0;       // over all epochs' demands
  std::uint64_t blocks_adopted = 0;  // warm blocks inherited across epochs
  std::uint64_t blocks_loaded = 0;
};

// One entry of the service's control-plane journal: every submit /
// cancel / result / done event as the Message it would be on a wire,
// with its modeled size.  These kinds never travel on rank links (the
// protocol checker rejects them there); the journal is the service's
// own ledger of its client-facing traffic.
struct JournalEntry {
  double time = 0.0;
  std::size_t bytes = 0;
  Message msg;
};

class StreamlineService {
 public:
  StreamlineService(const ServiceConfig& config,
                    const BlockDecomposition* decomp,
                    const BlockSource* source);

  // Submit a query arriving at the current service clock (or at a given
  // future instant).  Returns its QueryId; inspect record(id).state for
  // kRejected (queue full or seed set oversized/empty) and
  // record(id).reject_reason for why.  QueryIds start at 1 — 0 is the
  // standalone-run tag.  `deadline` is the query's latency budget in
  // seconds from submission; 0 means "use ServiceConfig::default_deadline"
  // (which itself defaults to no deadline).
  QueryId submit(std::vector<Vec3> seeds, double deadline = 0.0);
  QueryId submit_at(std::vector<Vec3> seeds, double at,
                    double deadline = 0.0);

  // Cancel a query, now or at a future service-clock instant.  Queued:
  // removed before it ever runs.  Running (simulated runtime): its
  // remaining particles terminate as kCancelled at the given instant.
  // Returns false if the query is unknown or already finished.
  bool cancel(QueryId id);
  bool cancel_at(QueryId id, double at);

  // Drive admission epochs until every accepted query has finished.
  // Throws std::runtime_error if an epoch fails (OOM / unrecovered
  // fault) — queries must not vanish silently.
  void run_until_idle();

  double now() const { return clock_; }
  const QueryRecord& record(QueryId id) const;
  const std::vector<QueryRecord>& records() const { return records_; }
  // Per-epoch metrics accumulated without double-counting (satellite:
  // RunMetrics::accumulate/reset).
  const RunMetrics& cumulative() const { return cumulative_; }
  const std::vector<JournalEntry>& journal() const { return journal_; }
  ServiceReport report() const;

 private:
  struct PendingCancel {
    QueryId query = 0;
    double at = 0.0;
  };

  QueryRecord& record_mut(QueryId id);
  void journal_push(double time, Message msg);
  // Move submissions with arrival <= now into the queue, enforcing
  // admission control.
  void ingest_arrivals();
  // Apply due cancels to still-queued queries.
  void apply_queued_cancels();
  // Deadline-aware admission: shed still-queued queries whose queue wait
  // has already exhausted their budget (rejected_deadline, distinct from
  // depth rejections).
  void shed_expired();
  // Run one admission epoch over `batch`; returns the epoch's metrics.
  RunMetrics run_epoch(const std::vector<StreamlineQuery>& batch);

  ServiceConfig config_;
  const BlockDecomposition* decomp_;
  const BlockSource* source_;
  QueryQueue queue_;
  SharedBlockPool pool_;
  double clock_ = 0.0;
  QueryId next_id_ = 1;
  std::vector<QueryRecord> records_;        // index = QueryId - 1
  std::vector<StreamlineQuery> pending_;    // future arrivals, by submit_at
  std::vector<PendingCancel> cancels_;
  std::vector<JournalEntry> journal_;
  RunMetrics cumulative_;
  std::size_t epochs_ = 0;
};

}  // namespace sf
