#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

namespace sf {

const char* to_string(QueryState s) {
  switch (s) {
    case QueryState::kQueued: return "queued";
    case QueryState::kRunning: return "running";
    case QueryState::kDone: return "done";
    case QueryState::kCancelled: return "cancelled";
    case QueryState::kRejected: return "rejected";
  }
  return "unknown";
}

const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kDepth: return "depth";
    case RejectReason::kDeadline: return "deadline";
    case RejectReason::kMalformed: return "malformed";
  }
  return "unknown";
}

namespace {

// Nearest-rank percentile over an unsorted sample.
double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t rank = static_cast<std::size_t>(std::ceil(p * v.size()));
  rank = std::min(std::max<std::size_t>(rank, 1), v.size());
  return v[rank - 1];
}

}  // namespace

StreamlineService::StreamlineService(const ServiceConfig& config,
                                     const BlockDecomposition* decomp,
                                     const BlockSource* source)
    : config_(config),
      decomp_(decomp),
      source_(source),
      queue_(config.max_queue_depth) {
  if (!config_.base.restart_from.empty()) {
    throw std::invalid_argument(
        "service: base.restart_from must be empty (checkpoint restart is "
        "a standalone-driver feature)");
  }
  if (!config_.base.seed_queries.empty()) {
    throw std::invalid_argument(
        "service: base.seed_queries is owned by the service");
  }
  if (!config_.base.runtime.cancels.empty() ||
      config_.base.runtime.shared_blocks != nullptr) {
    throw std::invalid_argument(
        "service: base.runtime cancels/shared_blocks are owned by the "
        "service");
  }
  if (config_.max_queries_per_epoch == 0) {
    throw std::invalid_argument("service: max_queries_per_epoch must be > 0");
  }
}

QueryId StreamlineService::submit(std::vector<Vec3> seeds, double deadline) {
  return submit_at(std::move(seeds), clock_, deadline);
}

QueryId StreamlineService::submit_at(std::vector<Vec3> seeds, double at,
                                     double deadline) {
  if (at < clock_) {
    throw std::invalid_argument("service: submission in the past");
  }
  if (deadline <= 0.0) deadline = config_.default_deadline;
  const QueryId id = next_id_++;
  QueryRecord rec;
  rec.query = id;
  rec.num_seeds = seeds.size();
  rec.submit_time = at;
  rec.deadline = deadline;
  Message m;
  m.payload = QuerySubmit{id, seeds};
  journal_push(at, std::move(m));
  if (seeds.empty() || seeds.size() > config_.max_seeds_per_query) {
    // Malformed submissions never enter the queue.
    rec.state = QueryState::kRejected;
    rec.reject_reason = RejectReason::kMalformed;
    records_.push_back(std::move(rec));
    return id;
  }
  records_.push_back(std::move(rec));
  pending_.push_back(StreamlineQuery{id, std::move(seeds), at, deadline});
  return id;
}

bool StreamlineService::cancel(QueryId id) { return cancel_at(id, clock_); }

bool StreamlineService::cancel_at(QueryId id, double at) {
  if (at < clock_) {
    throw std::invalid_argument("service: cancellation in the past");
  }
  if (id == 0 || id >= next_id_) return false;
  const QueryRecord& rec = record(id);
  if (rec.state == QueryState::kDone || rec.state == QueryState::kCancelled ||
      rec.state == QueryState::kRejected) {
    return false;
  }
  cancels_.push_back(PendingCancel{id, at});
  Message m;
  m.payload = QueryCancel{id};
  journal_push(at, std::move(m));
  return true;
}

const QueryRecord& StreamlineService::record(QueryId id) const {
  if (id == 0 || id > records_.size()) {
    throw std::out_of_range("service: unknown query " + std::to_string(id));
  }
  return records_[id - 1];
}

QueryRecord& StreamlineService::record_mut(QueryId id) {
  return const_cast<QueryRecord&>(record(id));
}

void StreamlineService::journal_push(double time, Message msg) {
  JournalEntry e;
  e.time = time;
  e.bytes = message_bytes(msg, config_.base.runtime.carry_geometry);
  e.msg = std::move(msg);
  journal_.push_back(std::move(e));
}

void StreamlineService::ingest_arrivals() {
  // Deterministic arrival order: by instant, ties by QueryId.
  std::sort(pending_.begin(), pending_.end(),
            [](const StreamlineQuery& a, const StreamlineQuery& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival
                                            : a.id < b.id;
            });
  std::size_t taken = 0;
  for (; taken < pending_.size() && pending_[taken].arrival <= clock_;
       ++taken) {
    StreamlineQuery& q = pending_[taken];
    const QueryId id = q.id;
    if (!queue_.submit(std::move(q))) {
      // Admission control: the queue is full at arrival time.
      QueryRecord& rec = record_mut(id);
      rec.state = QueryState::kRejected;
      rec.reject_reason = RejectReason::kDepth;
    }
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(taken));
}

void StreamlineService::apply_queued_cancels() {
  for (auto it = cancels_.begin(); it != cancels_.end();) {
    QueryRecord& rec = record_mut(it->query);
    const bool finished = rec.state == QueryState::kDone ||
                          rec.state == QueryState::kCancelled ||
                          rec.state == QueryState::kRejected;
    if (finished) {
      it = cancels_.erase(it);  // stale: the query already left the system
    } else if (it->at <= clock_ && rec.state == QueryState::kQueued &&
               queue_.cancel(it->query)) {
      rec.state = QueryState::kCancelled;
      rec.cancel_time = it->at;
      it = cancels_.erase(it);
    } else {
      ++it;
    }
  }
}

void StreamlineService::shed_expired() {
  for (QueryRecord& rec : records_) {
    if (rec.state != QueryState::kQueued || rec.deadline <= 0.0) continue;
    if (clock_ < rec.submit_time + rec.deadline) continue;
    // Only queries actually sitting in the admission queue are shed;
    // future arrivals (still in pending_) have not started waiting.
    if (!queue_.cancel(rec.query)) continue;
    rec.state = QueryState::kRejected;
    rec.reject_reason = RejectReason::kDeadline;
    rec.cancel_time = rec.submit_time + rec.deadline;
  }
}

RunMetrics StreamlineService::run_epoch(
    const std::vector<StreamlineQuery>& batch) {
  const double epoch_start = clock_;
  ExperimentConfig cfg = config_.base;
  cfg.runtime.shared_blocks = config_.share_cache ? &pool_ : nullptr;

  // Merge the batch into one query-tagged seed set.  Particle ids are the
  // merged seed indices, so each query owns the contiguous id range
  // [offset, offset + num_seeds); demux subtracts the offset back out.
  std::vector<Vec3> seeds;
  std::map<QueryId, std::uint32_t> offset;
  for (const StreamlineQuery& q : batch) {
    offset[q.id] = static_cast<std::uint32_t>(seeds.size());
    seeds.insert(seeds.end(), q.seeds.begin(), q.seeds.end());
    cfg.seed_queries.resize(seeds.size(), q.id);
    QueryRecord& rec = record_mut(q.id);
    rec.state = QueryState::kRunning;
    rec.admit_time = epoch_start;
  }

  // Route pending cancels aimed at this batch into the runtime.  Due
  // cancels were consumed while the query was still queued, so whatever
  // remains is strictly in this epoch's future: the simulated runtime
  // fires it mid-flight at the exact instant; the thread runtime cannot
  // (no deterministic mid-run instant), so the cancel waits and goes
  // stale when the query completes first — the documented granularity
  // difference (DESIGN.md §12).
  for (auto it = cancels_.begin(); it != cancels_.end();) {
    if (offset.count(it->query) == 0 || config_.use_thread_runtime) {
      ++it;
      continue;
    }
    cfg.runtime.cancels.push_back(
        QueryCancelAt{it->query, std::max(0.0, it->at - epoch_start)});
    record_mut(it->query).cancel_time = std::max(it->at, epoch_start);
    it = cancels_.erase(it);
  }

  // Deadline expiry drives the same graceful-cancellation path: a query
  // admitted with budget left gets a timed cancel at its exact expiry
  // instant (simulated runtime; the thread runtime's deadline bite is at
  // admission only — DESIGN.md §16).
  if (!config_.use_thread_runtime) {
    for (const StreamlineQuery& q : batch) {
      const QueryRecord& rec = record(q.id);
      if (rec.deadline <= 0.0 || rec.cancel_time >= 0.0) continue;
      cfg.runtime.cancels.push_back(QueryCancelAt{
          q.id,
          std::max(0.0, rec.submit_time + rec.deadline - epoch_start)});
    }
  }

  RunMetrics m = config_.use_thread_runtime
                     ? run_experiment_threads(cfg, *decomp_, *source_, seeds)
                     : run_experiment(cfg, *decomp_, *source_, seeds);
  if (m.failed_oom || m.failed_fault) {
    throw std::runtime_error(
        "service: epoch failed: " +
        (m.abort_reason.empty() ? std::string("unrecovered failure")
                                : m.abort_reason));
  }

  // Demux results per query, renumbering ids to the query's own seed
  // indices.  The runtime sorts particles by id, so per-query order is
  // already a standalone run's order.
  for (const Particle& p : m.particles) {
    const auto it = offset.find(p.query);
    if (it == offset.end()) {
      throw std::runtime_error(
          "service: epoch produced a particle of an unadmitted query " +
          std::to_string(p.query));
    }
    Particle local = p;
    local.id -= it->second;
    record_mut(p.query).particles.push_back(local);
  }

  // Completion times from the runtime's per-query accounting.  A query
  // whose seeds were all rejected at admission (outside the domain)
  // never seeds an active particle and completes at epoch start.
  std::map<QueryId, double> done_at;
  for (const QueryCompletion& c : m.query_completions) {
    done_at[c.query] = epoch_start + c.done_time;
  }
  for (const StreamlineQuery& q : batch) {
    QueryRecord& rec = record_mut(q.id);
    const auto it = done_at.find(q.id);
    if (it != done_at.end()) {
      rec.done_time = it->second;
    } else if (rec.particles.size() == rec.num_seeds) {
      rec.done_time = epoch_start;
    } else {
      throw std::runtime_error("service: query " + std::to_string(q.id) +
                               " never completed its epoch");
    }
    const bool any_cancelled = std::any_of(
        rec.particles.begin(), rec.particles.end(), [](const Particle& p) {
          return p.status == ParticleStatus::kCancelled;
        });
    rec.state = any_cancelled ? QueryState::kCancelled : QueryState::kDone;
    if (any_cancelled && rec.cancel_time < 0.0) {
      // No client cancel was routed: the cancellation was deadline expiry.
      rec.deadline_expired = true;
      rec.cancel_time = rec.submit_time + rec.deadline;
    }
    Message result;
    result.payload = QueryResult{q.id, rec.particles};
    journal_push(rec.done_time, std::move(result));
    Message done;
    done.payload = QueryDone{q.id, rec.done_time};
    journal_push(rec.done_time, std::move(done));
  }
  return m;
}

void StreamlineService::run_until_idle() {
  for (;;) {
    ingest_arrivals();
    apply_queued_cancels();
    shed_expired();
    if (queue_.empty()) {
      if (pending_.empty()) break;
      // Idle: jump the service clock to the next arrival.
      double next = pending_.front().arrival;
      for (const StreamlineQuery& q : pending_) {
        next = std::min(next, q.arrival);
      }
      clock_ = std::max(clock_, next);
      continue;
    }
    const std::vector<StreamlineQuery> batch =
        queue_.admit(config_.max_queries_per_epoch);
    const RunMetrics m = run_epoch(batch);
    cumulative_.accumulate(m);
    ++epochs_;
    clock_ += m.wall_clock;
  }
}

ServiceReport StreamlineService::report() const {
  ServiceReport r;
  r.submitted = records_.size();
  r.epochs = epochs_;
  r.makespan = clock_;
  std::vector<double> waits;
  std::vector<double> latencies;
  for (const QueryRecord& rec : records_) {
    switch (rec.state) {
      case QueryState::kDone: ++r.completed; break;
      case QueryState::kCancelled:
        ++r.cancelled;
        if (rec.deadline_expired) ++r.deadline_cancelled;
        break;
      case QueryState::kRejected:
        ++r.rejected;
        switch (rec.reject_reason) {
          case RejectReason::kDepth: ++r.rejected_depth; break;
          case RejectReason::kDeadline: ++r.rejected_deadline; break;
          case RejectReason::kMalformed: ++r.rejected_malformed; break;
          case RejectReason::kNone: break;
        }
        break;
      default: break;
    }
    if (rec.admit_time >= 0.0 || rec.cancel_time >= 0.0) {
      waits.push_back(rec.queue_wait());
    }
    if (rec.state == QueryState::kDone) latencies.push_back(rec.latency());
  }
  r.p50_queue_wait = percentile(waits, 0.50);
  r.p99_queue_wait = percentile(waits, 0.99);
  r.p50_latency = percentile(latencies, 0.50);
  r.p99_latency = percentile(latencies, 0.99);
  r.cache_hit_rate = cumulative_.cache_hit_rate();
  for (const RankMetrics& rm : cumulative_.ranks) {
    r.blocks_adopted += rm.blocks_adopted;
    r.blocks_loaded += rm.blocks_loaded;
  }
  return r;
}

}  // namespace sf
