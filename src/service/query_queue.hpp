#pragma once

// Admission queue + arrival process for the streamline service
// (DESIGN.md §12).
//
// QueryQueue is a bounded FIFO: submissions past max_depth are rejected
// up front (admission control), and a queued query can still be cancelled
// before it is admitted.  PoissonArrivals generates the deterministic
// seeded arrival process the service's simulation mode replays: same
// rate + seed, same arrival instants, bit for bit.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_annotations.hpp"
#include "service/query.hpp"

namespace sf {

// Thread-confined: the control plane mutates the queue strictly between
// epochs, never concurrently with rank threads.  The ThreadChecker
// capability encodes that contract for the thread-safety analysis
// (see BlockCache for the pattern).
class QueryQueue {
 public:
  explicit QueryQueue(std::size_t max_depth) : max_depth_(max_depth) {}

  // Enqueue; false means the queue is at max_depth and the query is
  // rejected (the caller records kRejected — the query never enters).
  bool submit(StreamlineQuery q);

  // Remove a still-queued query.  False if it is not in the queue
  // (already admitted, finished, or never accepted).
  bool cancel(QueryId id);

  // Pop up to max_queries oldest entries, FIFO.
  std::vector<StreamlineQuery> admit(std::size_t max_queries);

  std::size_t depth() const {
    serial_.assert_held();
    return queue_.size();
  }
  bool empty() const {
    serial_.assert_held();
    return queue_.empty();
  }

 private:
  mutable ThreadChecker serial_;
  std::size_t max_depth_;
  std::deque<StreamlineQuery> queue_ SF_GUARDED_BY(serial_);
};

// Deterministic Poisson process: exponential inter-arrival times with the
// given rate (queries per unit time), drawn from sf::Rng so a (rate,
// seed) pair always replays the identical arrival sequence.
class PoissonArrivals {
 public:
  PoissonArrivals(double rate, std::uint64_t seed)
      : rate_(rate), rng_(seed) {}

  // Next arrival instant; strictly increasing.
  double next();

 private:
  double rate_;
  double t_ = 0.0;
  Rng rng_;
};

}  // namespace sf
