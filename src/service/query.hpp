#pragma once

// Query-plane value types for the streamline service (DESIGN.md §12).
//
// A query is one independent streamline request: a set of seed points to
// advect to termination.  The service assigns each submission a QueryId,
// tags every particle it creates with it (Particle::query), and tracks
// the query through the lifecycle below.  QueryId 0 is reserved for
// standalone (non-service) runs so their particles are distinguishable
// from any service query.

#include <cstdint>
#include <vector>

#include "core/particle.hpp"
#include "core/vec3.hpp"

namespace sf {

using QueryId = std::uint32_t;

// Lifecycle: kQueued -> kRunning -> kDone, with two exits: kCancelled
// (while queued, or mid-flight through the tracer's cancel set) and
// kRejected (admission control refused the submission outright).
enum class QueryState {
  kQueued,
  kRunning,
  kDone,
  kCancelled,
  kRejected,
};

const char* to_string(QueryState s);

// Why admission control refused a query (kNone for queries that were
// never rejected).  Split so shed decisions are attributable: a full
// queue, an expired deadline and a malformed submission are different
// operational signals.
enum class RejectReason : std::uint8_t {
  kNone,
  kDepth,      // queue full at arrival
  kDeadline,   // queue wait exhausted the query's deadline budget
  kMalformed,  // empty or oversized seed set
};

const char* to_string(RejectReason r);

// One submitted query, as the queue holds it.
struct StreamlineQuery {
  QueryId id = 0;
  std::vector<Vec3> seeds;
  double arrival = 0.0;  // service-clock submission time
  // Latency budget in service-clock seconds from submission; 0 = none.
  // A query still queued past its budget is shed at admission; one
  // admitted in time is cancelled mid-flight when the budget expires.
  double deadline = 0.0;
};

// Everything the service remembers about a query, for results and for the
// latency/fairness metrics in bench/service_load.
struct QueryRecord {
  QueryId query = 0;
  QueryState state = QueryState::kQueued;
  RejectReason reject_reason = RejectReason::kNone;
  std::size_t num_seeds = 0;
  double deadline = 0.0;      // latency budget (0 = none)
  double submit_time = 0.0;
  double admit_time = -1.0;   // -1 until admitted
  double done_time = -1.0;    // -1 until every particle terminated
  double cancel_time = -1.0;  // -1 unless cancelled
  // The cancellation came from deadline expiry, not a client cancel.
  bool deadline_expired = false;
  // Terminated particles, ids renumbered to the query's own seed indices
  // (0..num_seeds-1) so the result is directly comparable to a standalone
  // run of the same seeds.
  std::vector<Particle> particles;

  // Queue wait: submission to admission (or to cancellation while queued).
  double queue_wait() const {
    if (admit_time >= 0.0) return admit_time - submit_time;
    if (cancel_time >= 0.0) return cancel_time - submit_time;
    return 0.0;
  }
  // End-to-end latency: submission to last particle termination.
  double latency() const {
    return done_time >= 0.0 ? done_time - submit_time : -1.0;
  }
};

}  // namespace sf
