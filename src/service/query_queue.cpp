#include "service/query_queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace sf {

bool QueryQueue::submit(StreamlineQuery q) {
  serial_.assert_held();
  if (queue_.size() >= max_depth_) return false;
  queue_.push_back(std::move(q));
  return true;
}

bool QueryQueue::cancel(QueryId id) {
  serial_.assert_held();
  const auto it = std::find_if(
      queue_.begin(), queue_.end(),
      [id](const StreamlineQuery& q) { return q.id == id; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

std::vector<StreamlineQuery> QueryQueue::admit(std::size_t max_queries) {
  serial_.assert_held();
  std::vector<StreamlineQuery> batch;
  while (!queue_.empty() && batch.size() < max_queries) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

double PoissonArrivals::next() {
  // Exponential inter-arrival: -ln(1-u)/rate, with log1p for precision
  // near u = 0.  next_double() is in [0,1) so the argument stays > 0.
  t_ += -std::log1p(-rng_.next_double()) / rate_;
  return t_;
}

}  // namespace sf
