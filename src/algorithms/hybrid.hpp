#pragma once

// Hybrid Master/Slave (§4.3) — the paper's contribution.
//
// Ranks are split into master processes (one per W slaves) and slave
// processes.  Slaves advance streamlines from their block caches and
// report status when they run out of work; masters monitor slave state
// and rebalance by either communicating streamlines or instructing
// duplicate block loads, using five rules applied in order:
//
//   Assign_loaded    — N seeds in block B to a slave with B loaded
//   Assign_unloaded  — N seeds in block B to a slave, which loads B
//   Send_force       — slave S1 must send its particles in B to S2
//                      (only if S2's load stays under NO)
//   Send_hint        — S1 *may* offload particles in given blocks to S2
//   Load             — slave must load block B
//
// with heuristics N = 10 (assignment granularity), NO = 20 N (overload
// limit), NL = 40 (load-rather-than-send threshold), W = 32.  Multiple
// masters balance seeds among themselves; the acting counter (the lowest
// live master, master 0 in fault-free runs) aggregates the global
// termination count from per-rank cumulative totals.
//
// With `failover` enabled (fault runs, DESIGN.md §11) coordinator death
// is recoverable: masters beacon their group, slaves that observe a
// silent dead master re-home to a successor — the lowest live master, or
// the lowest live slave promoting itself when no master survives — and
// the successor rebuilds scheduling state from re-reported statuses plus
// the particle ledger, so no streamline is lost.

#include <cstdint>

#include "algorithms/routing.hpp"
#include "runtime/rank_context.hpp"

namespace sf {

struct HybridParams {
  int assign_batch = 10;      // N:  seeds per assignment
  int overload_factor = 20;   // NO = overload_factor * N
  int load_threshold = 40;    // NL: load instead of migrating
  int slaves_per_master = 32; // W
  std::uint64_t rng_seed = 0x1dd51c3ULL;
  // Fault tolerance (DESIGN.md §7): when heartbeat_period > 0 slaves
  // report status at least every period and the master declares a slave
  // dead after heartbeat_miss_limit silent periods, reclaiming its
  // streamlines (the sixth rule).  0 disables the protocol, keeping
  // fault-free runs bit-identical to the five-rule master.
  double heartbeat_period = 0.0;
  int heartbeat_miss_limit = 3;
  // Coordinator fault tolerance (DESIGN.md §11): masters beacon their
  // slaves each heartbeat period, orphaned slaves re-home to a successor
  // (or promote themselves), and the counter terminates stragglers
  // directly.  Set by the driver on fault runs; off keeps the fault-free
  // message sequence unchanged.
  bool failover = false;
  // Gray-failure mitigation (DESIGN.md §16): every status carries a
  // cumulative step watermark and a cumulative busy clock; the master
  // differentiates them over windows of straggler_min_beats heartbeat
  // periods into a per-slave *effective compute speed* (steps per busy
  // second — immune to starvation, unlike wall-clock rates), and flags a
  // slave that holds work but whose speed falls below
  // straggler_slowness x the working-group median.  A flagged
  // slave's ledger-owned streamlines are speculatively re-issued to
  // healthy slaves (ownership stays with the straggler; the ledger's
  // first-terminal-wins credit dedups the losing copies) and it receives
  // no further assignments.  Only active when heartbeat_period > 0, i.e.
  // on fault runs, so fault-free runs keep the exact five-rule message
  // sequence.
  double straggler_slowness = 0.25;
  int straggler_min_beats = 3;
  bool speculative_reissue = true;
  // Two-level master tree (DESIGN.md §15): when the flat layout would
  // produce more than root_fanout masters, a root tier is carved out above
  // them — each root aggregates the termination board of up to root_fanout
  // leaf masters and brokers seed balancing between them, so control
  // traffic per master stays flat as ranks grow.  At the defaults the tree
  // only engages above ~1K ranks, which keeps runs at <= 512 ranks
  // bit-identical to the single-tier layout.
  int root_fanout = 32;
};

// How ranks are split into coordinators and slaves.  Coordinators are
// ranks [0, num_masters); slaves the rest, divided into contiguous
// groups.  With a tree layout the coordinator range is itself split:
// ranks [0, num_roots) are root masters (no slave group of their own —
// they aggregate boards and broker seeds for their leaf children) and
// [num_roots, num_masters) are leaf masters owning the slave groups.
// num_roots == 0 is the paper's flat layout, and every formula below
// reduces exactly to it.
struct HybridLayout {
  int num_ranks = 0;
  int num_masters = 0;  // all coordinator ranks: roots + leaf masters
  int num_roots = 0;    // root tier size (0 = flat single-tier layout)

  static HybridLayout make(int num_ranks, int slaves_per_master,
                           int root_fanout = 0);

  int num_slaves() const { return num_ranks - num_masters; }
  int num_leaves() const { return num_masters - num_roots; }
  bool is_master(int rank) const { return rank < num_masters; }
  bool is_root(int rank) const { return rank < num_roots; }

  // The leaf master responsible for a slave rank.
  int master_of(int slave_rank) const;

  // The [first, last) slave-rank range of one master's group.  Roots own
  // no slaves: their range is empty.
  std::pair<int, int> slaves_of(int master_rank) const;

  // The root responsible for a leaf master (tree layouts only).
  int root_of(int leaf_master) const;

  // The [first, last) leaf-master range of one root's subtree.
  std::pair<int, int> leaves_of(int root_rank) const;
};

// Program factory.  `seeds_per_master[l]` is leaf master l's initial seed
// pool (with a flat layout every master is a leaf); `total_active` the
// global live-streamline count.  Roots start with empty pools.
ProgramFactory make_hybrid(const BlockDecomposition* decomp,
                           std::vector<std::vector<Particle>> seeds_per_master,
                           std::uint32_t total_active, HybridParams params);

// Deal particles into `num_masters` equal chunks (initial seed split).
std::vector<std::vector<Particle>> partition_for_masters(
    int num_masters, std::vector<Particle> particles);

}  // namespace sf
