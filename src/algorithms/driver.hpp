#pragma once

// Experiment driver: one call to run any of the three algorithms on a
// dataset + seed set over the simulated machine, returning the metrics
// the paper's figures plot.

#include <span>
#include <string>

#include "algorithms/hybrid.hpp"
#include "core/dataset.hpp"
#include "core/tracer.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sim_runtime.hpp"

namespace sf {

enum class Algorithm {
  kStaticAllocation,
  kLoadOnDemand,
  kHybridMasterSlave,
};

const char* to_string(Algorithm a);

struct ExperimentConfig {
  Algorithm algorithm = Algorithm::kHybridMasterSlave;
  SimRuntimeConfig runtime{};
  IntegratorParams integrator{};
  TraceLimits limits{};
  HybridParams hybrid{};
};

// Run one experiment.  Seeds outside the domain terminate immediately and
// are folded back into the result.  Throws std::invalid_argument on
// nonsensical configurations (e.g. hybrid with one rank).
RunMetrics run_experiment(const ExperimentConfig& config,
                          const BlockDecomposition& decomp,
                          const BlockSource& source,
                          std::span<const Vec3> seeds);

}  // namespace sf
