#pragma once

// Experiment driver: one call to run any of the three algorithms on a
// dataset + seed set over the simulated machine, returning the metrics
// the paper's figures plot.

#include <span>
#include <string>

#include "algorithms/hybrid.hpp"
#include "core/dataset.hpp"
#include "core/tracer.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sim_runtime.hpp"

namespace sf {

enum class Algorithm {
  kStaticAllocation,
  kLoadOnDemand,
  kHybridMasterSlave,
};

const char* to_string(Algorithm a);

struct ExperimentConfig {
  Algorithm algorithm = Algorithm::kHybridMasterSlave;
  SimRuntimeConfig runtime{};
  IntegratorParams integrator{};
  TraceLimits limits{};
  HybridParams hybrid{};
  // Resume from a checkpoint file written by an earlier faulted run
  // (--restart-from): the checkpoint's done list is folded into the
  // results and only its active particles are re-advected, reproducing
  // the uninterrupted run's final particles exactly.
  std::string restart_from;
};

// Run one experiment.  Seeds outside the domain terminate immediately and
// are folded back into the result.  Throws std::invalid_argument on
// nonsensical configurations (e.g. hybrid with one rank).
//
// When any fault feature is requested (config.runtime.fault fields or
// restart_from), the driver finishes the fault configuration per
// algorithm: hybrid switches to heartbeat (in-protocol) failure detection
// with immune masters; static allocation and load-on-demand use the
// runtime detector with rank 0 immune.
RunMetrics run_experiment(const ExperimentConfig& config,
                          const BlockDecomposition& decomp,
                          const BlockSource& source,
                          std::span<const Vec3> seeds);

}  // namespace sf
