#pragma once

// Experiment driver: one call to run any of the three algorithms on a
// dataset + seed set over the simulated machine, returning the metrics
// the paper's figures plot.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "algorithms/hybrid.hpp"
#include "core/dataset.hpp"
#include "core/tracer.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/thread_runtime.hpp"

namespace sf {

enum class Algorithm {
  kStaticAllocation,
  kLoadOnDemand,
  kHybridMasterSlave,
};

const char* to_string(Algorithm a);

struct ExperimentConfig {
  Algorithm algorithm = Algorithm::kHybridMasterSlave;
  SimRuntimeConfig runtime{};
  IntegratorParams integrator{};
  TraceLimits limits{};
  HybridParams hybrid{};
  // Resume from a checkpoint file written by an earlier faulted run
  // (--restart-from): the checkpoint's done list is folded into the
  // results and only its active particles are re-advected, reproducing
  // the uninterrupted run's final particles exactly.
  std::string restart_from;
  // Schedule-perturbation fuzz seed for run_experiment_threads
  // (--schedule-fuzz); 0 disables.  Ignored by the simulated runtime.
  std::uint64_t schedule_fuzz_seed = 0;
  // Owning query per seed (src/service): seed_queries[i] tags the particle
  // made from seeds[i].  Empty for standalone runs (every particle keeps
  // query 0).  When non-empty the size must match the seed count.
  std::vector<std::uint32_t> seed_queries;
};

// Run one experiment.  Seeds outside the domain terminate immediately and
// are folded back into the result.  Throws std::invalid_argument on
// nonsensical configurations (e.g. hybrid with one rank).
//
// When any fault feature is requested (config.runtime.fault fields or
// restart_from), the driver finishes the fault configuration per
// algorithm: hybrid switches to heartbeat (in-protocol) failure detection
// with master failover; static allocation and load-on-demand use the
// runtime detector.  No rank is immune — coordinator death (a hybrid
// master, the termination counter) is survivable (DESIGN.md §11);
// immune_ranks stays empty unless the caller opts in.
RunMetrics run_experiment(const ExperimentConfig& config,
                          const BlockDecomposition& decomp,
                          const BlockSource& source,
                          std::span<const Vec3> seeds);

// Same experiment on the real-thread runtime (one OS thread per rank),
// with optional schedule-perturbation fuzzing via
// config.schedule_fuzz_seed.  The thread runtime has no fault plane:
// any fault/restart request throws std::invalid_argument.
RunMetrics run_experiment_threads(const ExperimentConfig& config,
                                  const BlockDecomposition& decomp,
                                  const BlockSource& source,
                                  std::span<const Vec3> seeds);

}  // namespace sf
