#pragma once

// Load On Demand (§4.2): parallelize across streamlines.
//
// Seeds are split evenly among processors, grouped by block for data
// locality.  Each processor owns its streamlines for their entire life,
// loading whatever blocks they need into an LRU cache; a new block is
// read from disk only when no more work can be done on in-memory blocks.
// There is no communication at all; each processor terminates
// independently.
//
// Strengths: zero communication, perfect parallelism over streamlines.
// Weaknesses: redundant I/O (blocks loaded by many processors, and
// reloaded after purges), which can dominate at scale.

#include "algorithms/routing.hpp"
#include "runtime/rank_context.hpp"

namespace sf {

// The §4.2 seed split: sort by seed block (for locality), then deal out
// equal contiguous chunks.
std::vector<std::vector<Particle>> partition_evenly_by_block(
    int num_ranks, const BlockDecomposition& decomp,
    std::vector<Particle> particles);

ProgramFactory make_load_on_demand(const BlockDecomposition* decomp,
                                   std::vector<std::vector<Particle>> initial);

}  // namespace sf
