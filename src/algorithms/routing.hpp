#pragma once

// Shared helpers for the three parallelization strategies: contiguous
// block ownership, per-block particle pools, and resident-particle memory
// accounting.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/block_decomposition.hpp"
#include "core/particle.hpp"
#include "core/vec3.hpp"
#include "runtime/rank_context.hpp"

namespace sf {

// Static Allocation's block->processor map: "the first of n processors is
// assigned the first 1/n of the blocks, the next processor the second
// 1/n" (§4.1).  Balanced contiguous ranges.
int contiguous_owner(int num_blocks, int num_ranks, BlockId block);

// The contiguous [first, last) block range owned by `rank`.
std::pair<BlockId, BlockId> contiguous_range(int num_blocks, int num_ranks,
                                             int rank);

// Bytes a resident particle occupies on a rank: fixed bookkeeping plus
// its recorded geometry (kept after termination — trajectories are
// gathered for rendering).
std::size_t resident_particle_bytes(const Particle& p,
                                    const MachineModel& model);

// Particles waiting on a rank, grouped by the block they currently
// reside in.  std::map keeps iteration deterministic.
class ParticlePool {
 public:
  // Enqueue a particle under the block it currently resides in.
  void add(BlockId block, Particle p);
  // Pop one particle from block `b`; nullopt if none.
  std::optional<Particle> take_from(BlockId b);

  bool empty() const { return total_ == 0; }
  std::size_t size() const { return total_; }
  std::size_t count_in(BlockId b) const;

  // First block (in id order) whose particles can run, per `resident`.
  template <typename Pred>
  BlockId first_block_where(Pred resident) const {
    for (const auto& [block, queue] : by_block_) {
      if (!queue.empty() && resident(block)) return block;
    }
    return kInvalidBlock;
  }

  // Block with the most waiting particles (ties -> lowest id).
  BlockId densest_block() const;

  // Blocks with at least one waiting particle, with counts.
  std::vector<std::pair<BlockId, std::uint32_t>> census() const;

  // Remove and return every particle waiting in block `b`.
  std::vector<Particle> drain_block(BlockId b);

  // Copy every waiting particle into `out` (checkpoint snapshots).
  void append_all(std::vector<Particle>& out) const;

 private:
  std::map<BlockId, std::deque<Particle>> by_block_;
  std::size_t total_ = 0;
};

// Create initial particles from seed points.  Seeds outside the domain
// terminate immediately (status kExitedDomain) and are returned in
// `rejected`; ids are the seed indices.
std::vector<Particle> make_particles(const BlockDecomposition& decomp,
                                     std::span<const Vec3> seeds,
                                     std::vector<Particle>& rejected);

// Advance one particle against the rank's cache and account for the
// geometry its trajectory grew.  Returns the outcome; the caller charges
// compute cost via ctx.begin_compute.
AdvanceOutcome advance_and_charge(RankContext& ctx, Particle& particle);

// Batched form: advance every particle of one block's pool queue in a
// single burst through Tracer::advance_batch (shared block/cell cursor),
// charging the summed geometry growth.  outcome[i] matches batch[i];
// total_steps sums the accepted steps for ctx.begin_compute.
struct BatchAdvanceResult {
  std::vector<AdvanceOutcome> outcomes;
  std::uint64_t total_steps = 0;
};
BatchAdvanceResult advance_block_and_charge(RankContext& ctx,
                                            std::span<Particle> batch);

// Prefetch predictor shared by the three algorithms (DESIGN.md §10):
// hint the runtime at the pooled blocks most likely to be demanded next
// — the ones with the most waiting streamlines that are not yet
// resident or pending, skipping `exclude` (the block being demanded or
// integrated right now).  Issues at most `max_hints` hints in a
// deterministic order (count descending, id ascending).  A no-op when
// the runtime's async I/O is off, so the synchronous demand path and
// its accounting are untouched.
void prefetch_densest(RankContext& ctx, const ParticlePool& pool,
                      BlockId exclude, int max_hints);

// Prefetch predictor for a burst in flight: the pool census cannot see
// the particles being integrated right now, but their advance outcomes
// name the exact blocks they stopped for.  Hint those (count
// descending, id ascending) — for a dense cohort marching through the
// dataset together this is the whole next working set.  Same no-op
// guarantees as prefetch_densest.
void prefetch_blocking_targets(RankContext& ctx,
                               std::span<const AdvanceOutcome> outcomes,
                               BlockId exclude, int max_hints);

// Second-order predictor: the blocking-target hints only look one burst
// ahead, and a short burst leaves the background read no time to finish
// before the demand lands (a partial overlap).  Extrapolate each still-
// active particle past its blocking block along its direction of travel
// over the burst — the block a streamline *points at* — so the block
// demanded two bursts from now is already staged when its turn comes.
// `start_positions[i]` is batch[i]'s position before the burst;
// outcomes[i] matches batch[i].  Same no-op guarantees as
// prefetch_densest.
void prefetch_streamline_lookahead(RankContext& ctx,
                                   const BlockDecomposition& decomp,
                                   std::span<const Particle> batch,
                                   std::span<const Vec3> start_positions,
                                   std::span<const AdvanceOutcome> outcomes,
                                   BlockId exclude, int max_hints);

// First alive rank after `after` in cyclic order (never `after` itself
// unless it is the only live rank).  Requires at least one alive rank.
int next_live_rank(const RankContext& ctx, int after);

// contiguous_owner, redirected to the next live rank when the owner is
// dead (Static Allocation's crash re-routing).
int live_owner(const RankContext& ctx, int num_blocks, BlockId block);

}  // namespace sf
