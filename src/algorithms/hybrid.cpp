#include "algorithms/hybrid.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>

#include "core/rng.hpp"

namespace sf {

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

HybridLayout HybridLayout::make(int num_ranks, int slaves_per_master,
                                int root_fanout) {
  if (num_ranks < 2) {
    throw std::invalid_argument("HybridLayout: need at least 2 ranks");
  }
  if (slaves_per_master < 1) {
    throw std::invalid_argument("HybridLayout: W >= 1");
  }
  HybridLayout layout;
  layout.num_ranks = num_ranks;
  // One master per W slaves, carved out of the allocation itself.
  const int flat_masters =
      std::clamp(num_ranks / (slaves_per_master + 1), 1, num_ranks - 1);
  layout.num_masters = flat_masters;
  // Two-level tree: once the flat master count exceeds the root fanout,
  // add a root tier of ceil(masters / fanout) extra coordinator ranks
  // above the (unchanged) leaf-master count.  Below that threshold the
  // layout — and hence the whole message sequence — is exactly the flat
  // one, which is the bit-identity contract (DESIGN.md §15).
  if (root_fanout > 0 && flat_masters > root_fanout) {
    const int roots = (flat_masters + root_fanout - 1) / root_fanout;
    if (flat_masters + roots < num_ranks) {  // must leave >= 1 slave
      layout.num_roots = roots;
      layout.num_masters = flat_masters + roots;
    }
  }
  return layout;
}

int HybridLayout::master_of(int slave_rank) const {
  const int s = slave_rank - num_masters;  // slave index
  // Inverse of slaves_of's balanced contiguous split.
  return num_roots +
         static_cast<int>(((static_cast<std::int64_t>(s) + 1) * num_leaves() -
                           1) /
                          num_slaves());
}

std::pair<int, int> HybridLayout::slaves_of(int master_rank) const {
  if (master_rank < num_roots) return {num_masters, num_masters};  // empty
  const int leaf = master_rank - num_roots;
  const auto ns = static_cast<std::int64_t>(num_slaves());
  const int first = num_masters + static_cast<int>(ns * leaf / num_leaves());
  const int last =
      num_masters + static_cast<int>(ns * (leaf + 1) / num_leaves());
  return {first, last};
}

int HybridLayout::root_of(int leaf_master) const {
  const int l = leaf_master - num_roots;  // leaf index
  // Inverse of leaves_of's balanced contiguous split.
  return static_cast<int>(
      ((static_cast<std::int64_t>(l) + 1) * num_roots - 1) / num_leaves());
}

std::pair<int, int> HybridLayout::leaves_of(int root_rank) const {
  const auto nl = static_cast<std::int64_t>(num_leaves());
  const int first = num_roots + static_cast<int>(nl * root_rank / num_roots);
  const int last =
      num_roots + static_cast<int>(nl * (root_rank + 1) / num_roots);
  return {first, last};
}

namespace {

std::size_t particles_resident_bytes(const std::vector<Particle>& ps,
                                     const MachineModel& model) {
  std::size_t n = 0;
  for (const Particle& p : ps) n += resident_particle_bytes(p, model);
  return n;
}

// The failover successor: the lowest live original master, or — when every
// master is dead — the lowest live slave rank, which promotes itself.
// Every rank computes this from the layout and the runtime's liveness view,
// so the role migrates without any election traffic.  The successor is
// also the acting termination counter.
int successor_rank(const RankContext& ctx, const HybridLayout& layout) {
  for (int m = 0; m < layout.num_masters; ++m) {
    if (ctx.is_alive(m)) return m;
  }
  for (int r = layout.num_masters; r < layout.num_ranks; ++r) {
    if (ctx.is_alive(r)) return r;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Master scheduling core
// ---------------------------------------------------------------------------

// The whole master-side state machine — the five balancing rules, the
// sixth (declare-dead) rule, master-to-master seed balancing, and the
// survivable termination board — extracted from the master *program* so a
// slave promoted by failover runs the identical logic.  Hosted by
// HybridMaster from the start of a run, or by HybridSlave from the moment
// it promotes itself (DESIGN.md §11).
class MasterCore {
 public:
  MasterCore(const BlockDecomposition* decomp, int self, HybridLayout layout,
             HybridParams params, std::uint32_t total_active)
      : decomp_(decomp),
        self_(self),
        layout_(layout),
        params_(params),
        total_active_(total_active),
        rng_(params.rng_seed + static_cast<std::uint64_t>(self)) {}

  bool finished() const { return finished_; }

  // No live slave registered: a promoted host must integrate the seed
  // pool itself or the run would stall.
  bool solo() const { return records_.empty(); }

  void start_as_master(RankContext& ctx, std::vector<Particle> seeds) {
    const auto [first, last] = layout_.slaves_of(self_);
    for (int s = first; s < last; ++s) records_[s] = SlaveRecord{};

    for (Particle& p : seeds) {
      // Pooled seeds are bare seed points, not active streamline
      // objects: charge them at solver-state size.
      ctx.charge_particle_memory(
          static_cast<std::int64_t>(particle_message_bytes(p, false)));
      seeds_.add(decomp_->block_of(p.pos), std::move(p));
    }

    if (total_active_ == 0 && successor_rank(ctx, layout_) == self_) {
      finish_everyone(ctx);
      return;
    }

    // Initial allocation: N seeds per slave through Assign_unloaded.
    for (auto& [slave, record] : records_) {
      if (seeds_.empty()) break;
      assign_seeds(ctx, slave, record);
    }

    if (params_.heartbeat_period > 0.0 && !finished_) {
      for (const auto& [slave, record] : records_) {
        last_heard_[slave] = ctx.now();
      }
    }
  }

  // Promotion entry point: adopt every dead coordinator's group — ledger
  // recovery of the dead ranks plus registration of the survivors, whose
  // re-reported statuses rebuild the scheduling state.
  void start_as_successor(RankContext& ctx) {
    for (int m = 0; m < layout_.num_masters; ++m) {
      if (!ctx.is_alive(m)) adopt_coordinator(ctx, m);
    }
    publish_totals(ctx);
    if (!finished_) assignment_pass(ctx);
  }

  void tick(RankContext& ctx) {
    if (finished_) return;
    // The sixth rule: a slave silent for heartbeat_miss_limit periods is
    // declared dead and its streamlines are reclaimed and reassigned.
    // Detection is purely silence-based — no liveness oracle.
    std::vector<int> missing;
    for (const auto& [slave, heard_at] : last_heard_) {
      if (ctx.now() - heard_at > deadline()) missing.push_back(slave);
    }
    for (const int slave : missing) {
      declare_dead(ctx, slave);
      if (finished_) return;  // reclaimed credits may have ended the run
    }

    if (!params_.failover) return;

    // Parent duty (tree layouts): each live root absorbs its own dead
    // leaf children, keeping recovery local to the subtree instead of
    // serializing every adoption through the global successor.
    if (layout_.num_roots > 0 && layout_.is_root(self_)) {
      const auto [first, last] = layout_.leaves_of(self_);
      for (int leaf = first; leaf < last; ++leaf) {
        if (ctx.is_alive(leaf)) continue;
        adopt_coordinator(ctx, leaf);
        if (finished_) return;
      }
    }
    // Successor duty: absorb groups whose dead master has no survivor
    // left to re-home (dead promoted coordinators are reached through
    // their own group's dead-slave recovery).  Under the tree, a dead
    // leaf master with a live parent is that parent's duty, not ours —
    // exactly one live rank claims any dead coordinator.
    if (successor_rank(ctx, layout_) == self_) {
      for (int m = 0; m < layout_.num_masters; ++m) {
        if (m == self_ || ctx.is_alive(m)) continue;
        if (adopter_of(ctx, m) != self_) continue;
        adopt_coordinator(ctx, m);
        if (finished_) return;
      }
    }
    // Un-wedge master-to-master balancing if the donor died mid-request.
    if (seed_request_outstanding_ && !ctx.is_alive(seed_request_target_)) {
      seed_request_outstanding_ = false;
      dry_masters_.insert(seed_request_target_);
    }
    // Same for a brokered relay whose donor died before answering.
    if (relay_outstanding_ && !ctx.is_alive(relay_target_)) {
      relay_outstanding_ = false;
      dry_masters_.insert(relay_target_);
      if (!pending_requests_.empty()) broker(ctx);
      if (finished_) return;
    }
    // Liveness beacons: slaves track the last time they heard us; silence
    // past their miss limit is what triggers their re-homing.
    for (const auto& [slave, rec] : records_) {
      if (!ctx.is_alive(slave)) continue;
      Message m;
      m.payload = MasterBeacon{};
      ctx.send(slave, std::move(m));
    }
    publish_totals(ctx);  // re-report the board if the counter moved
    if (finished_) return;
    assignment_pass(ctx);  // adopted seeds may be waiting for takers
  }

  void on_status(RankContext& ctx, int from, StatusUpdate status) {
    if (finished_) {
      if (params_.failover) {
        // A re-home that arrived after the run ended: answer with the
        // terminate the orphan missed so it can quiesce.
        Command cmd;
        cmd.type = Command::Type::kTerminate;
        send_command(ctx, from, std::move(cmd));
      }
      return;
    }
    if (params_.failover && records_.count(from) == 0) {
      // A re-homing orphan: adopt its dead coordinator's group first,
      // then the orphan itself.
      if (status.orphaned_from >= 0) {
        adopt_coordinator(ctx, status.orphaned_from);
      }
      register_slave(ctx, from);
      if (finished_) return;  // adoption credits may have ended the run
    }
    auto it = records_.find(from);
    if (it == records_.end()) return;
    last_heard_[from] = ctx.now();
    apply_status(from, it->second, status);
    update_progress(ctx, from, status.steps_total, status.busy_seconds,
                    status.computing);
    merge_total(from, status.terminated_total);
    publish_totals(ctx);
    if (finished_) return;  // terminations may have ended the run
    assignment_pass(ctx);
  }

  void on_termination_count(
      RankContext& ctx,
      const std::vector<std::pair<int, std::uint32_t>>& totals) {
    if (finished_) return;
    for (const auto& [rank, total] : totals) merge_total(rank, total);
    publish_totals(ctx);
  }

  // The promoted host's own advection credits flow straight into the
  // board instead of through a StatusUpdate to itself.
  void note_local_terminations(RankContext& ctx, int rank,
                               std::uint32_t total) {
    if (finished_) return;
    merge_total(rank, total);
    publish_totals(ctx);
  }

  void on_seed_request(RankContext& ctx, int requester) {
    if (finished_) return;
    if (layout_.num_roots > 0 && layout_.is_root(self_)) {
      // Tree mode: a root brokers demand it cannot satisfy from its own
      // pool instead of answering dry — the requester's one candidate is
      // its root, so a dry answer here would quench balancing for the
      // whole subtree while leaf pools still hold seeds.
      pending_requests_.push_back({requester, /*may_escalate=*/true});
      broker(ctx);
      return;
    }
    answer_seed_request(ctx, requester);
  }

  // A relayed demand from a broker root: donate back to the broker, which
  // forwards the seeds to whichever starving master it is serving.  A
  // root receiving a relay brokers it within its own subtree but must not
  // escalate again — the one-escalation rule is what bounds the chain.
  void on_seed_relay(RankContext& ctx, int broker_rank) {
    if (finished_) return;
    if (layout_.num_roots > 0 && layout_.is_root(self_)) {
      pending_requests_.push_back({broker_rank, /*may_escalate=*/false});
      broker(ctx);
      return;
    }
    answer_seed_request(ctx, broker_rank);
  }

  void on_seed_transfer(RankContext& ctx, int from, SeedTransfer transfer) {
    if (finished_) return;
    // Clear only the matching outstanding marker: a broker root can have
    // its own request and a relayed donation in flight at once.
    if (from == seed_request_target_) seed_request_outstanding_ = false;
    if (from == relay_target_) relay_outstanding_ = false;
    if (transfer.seeds.empty()) {
      dry_masters_.insert(from);
    } else {
      for (Particle& p : transfer.seeds) {
        ctx.charge_particle_memory(
            static_cast<std::int64_t>(particle_message_bytes(p, false)));
        seeds_.add(decomp_->block_of(p.pos), std::move(p));
      }
    }
    if (!pending_requests_.empty()) {
      broker(ctx);
      if (finished_) return;
    }
    assignment_pass(ctx);
  }

  void on_done_signal(RankContext& ctx) {
    if (finished_) return;
    terminate_group(ctx);
  }

  // A particle-bearing message we sent bounced (dropped link or dead
  // destination): take the payload back and retry through the normal
  // machinery.
  void reclaim_undelivered(RankContext& ctx, Undeliverable u) {
    if (finished_) return;
    if (u.target >= 0 && u.target < layout_.num_masters &&
        u.target != self_ && ctx.is_alive(u.target)) {
      // A master-to-master seed transfer bounced off a live peer: the
      // link dropped it, so just retry the transfer (the requester is
      // still waiting on its outstanding request).  A dead peer's seeds
      // fall through to the generic reclaim below instead.
      SeedTransfer transfer;
      transfer.seeds = std::move(u.particles);
      Message m;
      m.payload = std::move(transfer);
      ctx.send(u.target, std::move(m));
      return;
    }

    // A seed assignment to a slave failed: un-book the optimistic queue
    // accounting so the rules do not chase phantom particles.
    auto it = records_.find(u.target);
    if (it != records_.end() && u.block != kInvalidBlock) {
      auto qit = it->second.queued.find(u.block);
      if (qit != it->second.queued.end()) {
        const auto n = static_cast<std::uint32_t>(u.particles.size());
        index_unqueue(u.target, u.block);
        if (qit->second > n) {
          qit->second -= n;
          index_queue(u.target, u.block, qit->second);
        } else {
          it->second.queued.erase(qit);
        }
      }
      it->second.outstanding = false;
    }
    for (Particle& p : u.particles) {
      ctx.charge_particle_memory(
          static_cast<std::int64_t>(particle_message_bytes(p, false)));
      seeds_.add(decomp_->block_of(p.pos), std::move(p));
    }
    assignment_pass(ctx);
  }

  // Hand the whole seed pool to a solo host for direct integration.
  std::vector<Particle> drain_seeds(RankContext& ctx) {
    std::vector<Particle> out;
    while (!seeds_.empty()) {
      const BlockId b = seeds_.densest_block();
      if (b == kInvalidBlock) break;
      std::vector<Particle> batch = seeds_.drain_block(b);
      ctx.charge_particle_memory(-static_cast<std::int64_t>(
          [&] {
            std::size_t n = 0;
            for (const Particle& p : batch) {
              n += particle_message_bytes(p, false);
            }
            return n;
          }()));
      out.insert(out.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
    }
    return out;
  }

  void snapshot_seeds(std::vector<Particle>& out) const {
    seeds_.append_all(out);
  }

 private:
  struct BlockSet {
    std::set<BlockId> s;
    void assign_from(const std::vector<BlockId>& v) {
      s.clear();
      s.insert(v.begin(), v.end());
    }
    bool contains(BlockId b) const { return s.count(b) != 0; }
    void insert(BlockId b) { s.insert(b); }
  };

  struct SlaveRecord {
    std::map<BlockId, std::uint32_t> queued;  // waiting, by current block
    BlockSet loaded;
    BlockSet loading;
    std::uint32_t workable = 0;
    bool outstanding = false;  // assigned work since its last status
    bool needs_work = false;
    bool hint_requested = false;  // a Send_hint on its behalf is pending
  };

  double deadline() const {
    return static_cast<double>(params_.heartbeat_miss_limit) *
           params_.heartbeat_period;
  }

  // --- straggler detection (gray failures, DESIGN.md §16) ------------------

  struct ProgressTrack {
    std::uint64_t anchor_steps = 0;  // watermark at the window anchor
    double anchor_busy = 0.0;        // busy clock at the window anchor
    double anchor_time = 0.0;        // when the current window opened
    double rate = 0.0;      // steps per *busy* second, last closed window
    double last_busy = 0.0; // busy seconds inside the last closed window
    int windows = 0;        // closed windows so far
    bool computing = false;          // latest status: burst in flight
    bool started = false;
    bool flagged = false;
  };

  bool straggler_flagged(int slave) const {
    const auto it = progress_.find(slave);
    return it != progress_.end() && it->second.flagged;
  }

  // Width of one progress-measurement window.  Several heartbeat periods
  // wide, so a window spans multiple bursts: per-status rate samples are
  // all-or-nothing noise (a burst credits its steps at acceptance), while
  // a multi-beat window averages over the burst cadence.
  double progress_window() const {
    return static_cast<double>(params_.straggler_min_beats) *
           params_.heartbeat_period;
  }

  // Straggler detection (gray failures): every status carries the
  // slave's cumulative accepted-step watermark and its cumulative busy
  // clock.  The master differentiates watermark against busy clock over
  // fixed-width wall windows into an *effective compute speed* — steps
  // per busy second.  Wall-clock rates cannot separate "slow" from
  // "starved" (a mostly-idle healthy slave and a continuously-busy slow
  // one post similar steps/wall-second), but busy-second rates can:
  // every healthy slave computes at exactly 1/seconds_per_step no matter
  // how little work it holds, while a gray-slowed slave's bursts take
  // longer than the steps they retire, collapsing its ratio by the
  // slowdown factor.  Cumulative counters make this robust to re-reports
  // and failover re-homing: a duplicate merges as zero delta, never as
  // double progress.
  void update_progress(RankContext& ctx, int slave,
                       std::uint64_t steps_total, double busy_seconds,
                       bool computing) {
    if (params_.heartbeat_period <= 0.0 || !params_.speculative_reissue) {
      return;
    }
    ProgressTrack& t = progress_[slave];
    t.computing = computing;
    const double now = ctx.now();
    if (!t.started) {
      t.started = true;
      t.anchor_steps = steps_total;
      t.anchor_busy = busy_seconds;
      t.anchor_time = now;
      return;
    }
    if (now - t.anchor_time < progress_window()) return;  // window open
    const std::uint64_t ds =
        steps_total > t.anchor_steps ? steps_total - t.anchor_steps : 0;
    const double dbusy = busy_seconds - t.anchor_busy;
    // No busy time in the window: the slave never computed, so there is
    // no speed sample.  Rate 0 with computing set still marks it a
    // candidate (burst accepted but no progress at all = hard stall).
    t.rate = dbusy > 0.0 ? static_cast<double>(ds) / dbusy : 0.0;
    t.last_busy = dbusy > 0.0 ? dbusy : 0.0;
    ++t.windows;
    t.anchor_steps = steps_total;
    t.anchor_busy = busy_seconds;
    t.anchor_time = now;
    flag_stragglers(ctx);
  }

  // A slave is a detection candidate only while it is *expected* to
  // progress: its latest status says a burst is in flight, or it
  // reported runnable (resident-block) work.  A slave whose particles
  // are all blocked on unloaded blocks — or which has simply run dry —
  // produces a zero rate that means "no runnable work", not "slow";
  // flagging the waiting and idle tails would starve them forever and
  // poison the median.
  bool detection_candidate(int slave, const ProgressTrack& t) const {
    if (t.computing) return true;
    const auto it = records_.find(slave);
    return it != records_.end() && it->second.workable > 0;
  }

  // Flag every candidate slave whose last-window effective speed sits
  // below the slowness threshold of the healthy-group median, and
  // speculatively re-issue its ledger-owned streamlines into the seed
  // pool for healthy slaves.  The reference group is every unflagged
  // slave with a positive speed sample — a single short burst already
  // yields an accurate steps-per-busy-second reading — so healthy bursts
  // finishing between heartbeats never shrink it; requiring two of them
  // also guarantees a healthy slave remains to run the copies.  Flagging
  // additionally demands the suspect spent most of its last window
  // *busy*: a slave that barely computed has a noisy speed sample (the
  // pro-rated watermark truncates to whole steps), while a genuinely
  // gray-slowed slave is busy wall-to-wall — its bursts overrun the
  // window — so the gate costs no detection coverage where mitigation
  // matters.
  void flag_stragglers(RankContext& ctx) {
    std::vector<double> rates;
    for (const auto& [slave, t] : progress_) {
      if (t.flagged || t.windows < 1 || t.rate <= 0.0) continue;
      rates.push_back(t.rate);
    }
    if (rates.size() < 2) return;
    const std::size_t mid = rates.size() / 2;
    std::nth_element(rates.begin(),
                     rates.begin() + static_cast<std::ptrdiff_t>(mid),
                     rates.end());
    const double median = rates[mid];
    if (median <= 0.0) return;
    const double busy_floor = 0.5 * progress_window();
    for (auto& [slave, t] : progress_) {
      if (t.flagged || t.windows < 1) continue;
      if (t.last_busy < busy_floor) continue;
      if (!detection_candidate(slave, t)) continue;
      if (t.rate >= params_.straggler_slowness * median) continue;
      t.flagged = true;
      speculate_straggler(ctx, slave);
    }
  }

  // Copy the straggler's in-progress streamlines out of the ledger into
  // the seed pool, exactly like absorb_recovered — except the straggler
  // stays alive and keeps its own copies, so its termination total is NOT
  // merged here (it reports its own credits; first-terminal-wins dedups
  // whichever copy loses the race).
  void speculate_straggler(RankContext& ctx, int straggler) {
    std::vector<Particle> copies = ctx.speculate_rank(straggler);
    for (Particle& p : copies) {
      ctx.charge_particle_memory(
          static_cast<std::int64_t>(particle_message_bytes(p, false)));
      seeds_.add(decomp_->block_of(p.pos), std::move(p));
    }
  }

  // --- index maintenance ---------------------------------------------------
  // Two inverted indexes keep the rule passes O(own state) instead of
  // O(slaves x blocks): which slaves hold a block (loaded or loading),
  // and which slaves have particles queued in it.

  void index_hold(int slave, BlockId b) { holders_[b].insert(slave); }

  void index_unhold(int slave, BlockId b) {
    auto it = holders_.find(b);
    if (it == holders_.end()) return;
    it->second.erase(slave);
    if (it->second.empty()) holders_.erase(it);
  }

  void index_queue(int slave, BlockId b, std::uint32_t count) {
    if (count > 0) queued_idx_[b][slave] += count;
  }

  void index_unqueue(int slave, BlockId b) {
    auto it = queued_idx_.find(b);
    if (it == queued_idx_.end()) return;
    it->second.erase(slave);
    if (it->second.empty()) queued_idx_.erase(it);
  }

  void apply_status(int slave, SlaveRecord& rec, const StatusUpdate& status) {
    for (const auto& [b, count] : rec.queued) index_unqueue(slave, b);
    for (const BlockId b : rec.loaded.s) index_unhold(slave, b);
    for (const BlockId b : rec.loading.s) index_unhold(slave, b);

    rec.queued.clear();
    for (const auto& [block, count] : status.queued_by_block) {
      rec.queued[block] = count;
      index_queue(slave, block, count);
    }
    rec.loaded.assign_from(status.loaded);
    rec.loading.assign_from(status.loading);
    for (const BlockId b : rec.loaded.s) index_hold(slave, b);
    for (const BlockId b : rec.loading.s) index_hold(slave, b);
    rec.workable = status.workable;
    rec.outstanding = false;
    rec.needs_work = (status.workable == 0);
    rec.hint_requested = false;
  }

  // Optimistic bookkeeping for a Send_force: move the queued particles
  // of block `b` from one record to another.
  void move_queued(int from_slave, SlaveRecord& from_rec, BlockId b,
                   int to_slave) {
    const auto it = from_rec.queued.find(b);
    if (it == from_rec.queued.end()) return;
    const std::uint32_t count = it->second;
    from_rec.queued.erase(it);
    index_unqueue(from_slave, b);
    records_[to_slave].queued[b] += count;
    index_queue(to_slave, b, count);
  }

  void note_load_command(int slave, SlaveRecord& rec, BlockId b) {
    rec.loading.insert(b);
    index_hold(slave, b);
  }

  static std::uint32_t workload(const SlaveRecord& rec) {
    std::uint32_t n = rec.workable;
    for (const auto& [block, count] : rec.queued) n += count;
    return n;
  }

  bool has_block(const SlaveRecord& rec, BlockId b) const {
    return rec.loaded.contains(b) || rec.loading.contains(b);
  }

  std::uint32_t overload_limit() const {
    return static_cast<std::uint32_t>(params_.overload_factor *
                                      params_.assign_batch);
  }

  // Take up to N seeds out of one block of the master pool.
  std::vector<Particle> pick_seeds(RankContext& ctx, BlockId from) {
    std::vector<Particle> out;
    for (int i = 0; i < params_.assign_batch; ++i) {
      auto p = seeds_.take_from(from);
      if (!p) break;
      out.push_back(std::move(*p));
    }
    ctx.charge_particle_memory(-static_cast<std::int64_t>(
        particles_resident_bytes(out, ctx.model())));
    return out;
  }

  void assign_seeds(RankContext& ctx, int slave, SlaveRecord& rec) {
    // Prefer a block the slave already has loaded (Assign_loaded), else
    // the densest seed block (Assign_unloaded).
    BlockId from = kInvalidBlock;
    for (const auto& [block, count] : seeds_.census()) {
      if (rec.loaded.contains(block)) {
        from = block;
        break;
      }
    }
    if (from == kInvalidBlock) from = seeds_.densest_block();
    if (from == kInvalidBlock) return;

    std::vector<Particle> batch = pick_seeds(ctx, from);
    rec.queued[from] += static_cast<std::uint32_t>(batch.size());
    index_queue(slave, from, static_cast<std::uint32_t>(batch.size()));
    // The slave auto-loads the blocks of assigned seeds (Assign_unloaded).
    if (!has_block(rec, from)) note_load_command(slave, rec, from);
    rec.outstanding = true;
    rec.needs_work = false;

    Command cmd;
    cmd.type = Command::Type::kAssign;
    cmd.block = from;
    cmd.particles = std::move(batch);
    Message m;
    m.payload = std::move(cmd);
    ctx.send(slave, std::move(m));
  }

  void send_command(RankContext& ctx, int to, Command cmd) {
    Message m;
    m.payload = std::move(cmd);
    ctx.send(to, std::move(m));
  }

  // The §4.3 rule sequence for one workless slave.  Returns true when S
  // was supplied with work.  The last-resort rules (6's global fallback
  // and 7) are gated by `allow_expensive`: the assignment pass grants
  // them to one starving slave per pass, because they scan group-wide
  // state and rarely succeed twice in the same pass ("the next time
  // another slave posts a status ... there is another opportunity").
  bool rules_for(RankContext& ctx, int slave, SlaveRecord& rec,
                 bool allow_expensive) {
    bool assigned = false;

    // (1) Send_force away: S's particles in unloaded blocks go to group
    // slaves that have those blocks loaded/loading (if they stay under
    // NO).  A block still in flight counts: particles queue on the
    // receiving slave until its read lands.
    {
      std::vector<BlockId> stuck;
      for (const auto& [b, count] : rec.queued) {
        if (count > 0 && !has_block(rec, b)) stuck.push_back(b);
      }
      for (const BlockId b : stuck) {
        const auto hit = holders_.find(b);
        if (hit == holders_.end()) continue;
        const std::uint32_t count = rec.queued[b];
        int target = -1;
        for (const int cand : hit->second) {
          if (cand == slave || straggler_flagged(cand)) continue;
          if (workload(records_[cand]) + count <= overload_limit()) {
            target = cand;
            break;
          }
        }
        if (target >= 0) {
          Command cmd;
          cmd.type = Command::Type::kSendForce;
          cmd.block = b;
          cmd.target = target;
          send_command(ctx, slave, std::move(cmd));
          move_queued(slave, rec, b, target);
        }
      }
    }

    // (2) Load: S has more than NL particles stuck in one unloaded block.
    {
      BlockId best = kInvalidBlock;
      std::uint32_t best_count =
          static_cast<std::uint32_t>(params_.load_threshold);
      for (const auto& [b, count] : rec.queued) {
        if (!has_block(rec, b) && count > best_count) {
          best = b;
          best_count = count;
        }
      }
      if (best != kInvalidBlock) {
        Command cmd;
        cmd.type = Command::Type::kLoad;
        cmd.block = best;
        send_command(ctx, slave, std::move(cmd));
        note_load_command(slave, rec, best);
        assigned = true;
      }
    }

    // (3) The loads above changed the group's loaded sets: other slaves
    // may now Send_force their stuck particles to S.
    {
      std::vector<BlockId> held(rec.loaded.s.begin(), rec.loaded.s.end());
      held.insert(held.end(), rec.loading.s.begin(), rec.loading.s.end());
      for (const BlockId b : held) {
        const auto qit = queued_idx_.find(b);
        if (qit == queued_idx_.end()) continue;
        // Copy: move_queued mutates the index.
        const std::vector<std::pair<int, std::uint32_t>> waiters(
            qit->second.begin(), qit->second.end());
        for (const auto& [other, count] : waiters) {
          if (other == slave || count == 0) continue;
          SlaveRecord& orec = records_[other];
          if (has_block(orec, b)) continue;  // they can run it themselves
          if (workload(rec) + count > overload_limit()) break;
          Command cmd;
          cmd.type = Command::Type::kSendForce;
          cmd.block = b;
          cmd.target = slave;
          send_command(ctx, other, std::move(cmd));
          move_queued(other, orec, b, slave);
          assigned = true;
        }
      }
    }

    // (4) Assign_loaded / (5) Assign_unloaded from the master seed pool.
    if (!assigned && !seeds_.empty()) {
      assign_seeds(ctx, slave, rec);
      return true;  // assign_seeds maintains the record flags itself
    }

    // (6) Still nothing: make S load the block holding its most
    // streamlines (or, failing that, the group's hottest block).
    if (!assigned) {
      BlockId best = kInvalidBlock;
      std::uint32_t best_count = 0;
      for (const auto& [b, count] : rec.queued) {
        if (!has_block(rec, b) && count > best_count) {
          best = b;
          best_count = count;
        }
      }
      if (best == kInvalidBlock && allow_expensive) {
        // Fall back to the group's hottest block — but only one held by
        // *no* group slave.  If somebody already holds it, migration
        // (rules 1/3/7) is strictly cheaper than a duplicate 12 MB read,
        // and without this guard every starved slave in a large group
        // re-loads the same hot block.
        for (const auto& [b, waiters] : queued_idx_) {
          if (holders_.count(b) != 0) continue;
          std::uint32_t total = 0;
          for (const auto& [other, count] : waiters) total += count;
          if (total > best_count) {
            best = b;
            best_count = total;
          }
        }
      }
      if (best != kInvalidBlock) {
        Command cmd;
        cmd.type = Command::Type::kLoad;
        cmd.block = best;
        send_command(ctx, slave, std::move(cmd));
        note_load_command(slave, rec, best);
        assigned = true;
      }
    }

    // (7) Hint the busiest slave that S can take work off its hands.
    // At most one outstanding hint per starving slave (re-armed by its
    // next status) — unthrottled hinting floods the group.
    if (!assigned && allow_expensive && !rec.hint_requested) {
      std::vector<int> busiest;
      std::uint32_t most = 0;
      for (const auto& [other, orec] : records_) {
        if (other == slave) continue;
        const std::uint32_t w = workload(orec);
        if (w > most) {
          most = w;
          busiest.assign(1, other);
        } else if (w == most && w > 0) {
          busiest.push_back(other);
        }
      }
      if (!busiest.empty() && most > 0) {
        const int target = busiest[static_cast<std::size_t>(
            rng_.next_below(busiest.size()))];
        Command cmd;
        cmd.type = Command::Type::kSendHint;
        cmd.target = slave;
        for (const auto& [b, count] : records_[target].queued) {
          if (count > 0 && !has_block(records_[target], b)) {
            cmd.hint_blocks.push_back(b);
          }
        }
        if (!cmd.hint_blocks.empty()) {
          send_command(ctx, target, std::move(cmd));
          rec.hint_requested = true;
        }
      }
    }

    return assigned;
  }

  void assignment_pass(RankContext& ctx) {
    bool expensive_available = true;
    for (auto& [slave, rec] : records_) {
      if (!rec.needs_work || rec.outstanding) continue;
      // A flagged straggler gets no new work: its remaining copies race
      // the speculated ones, and feeding it more only slows the run.
      if (straggler_flagged(slave)) continue;
      if (rules_for(ctx, slave, rec, expensive_available)) {
        rec.needs_work = false;
        rec.outstanding = true;
      } else if (expensive_available) {
        // The group-wide last-resort rules ran and found nothing; do not
        // re-scan for every other starving slave in this pass.
        expensive_available = false;
      }
    }

    // Master-to-master balancing: my pool is dry but slaves are starving.
    if (seeds_.empty() && !seed_request_outstanding_ &&
        layout_.num_masters > 1) {
      bool starving = false;
      for (const auto& [slave, rec] : records_) {
        if (rec.needs_work && !rec.outstanding) starving = true;
      }
      if (starving) {
        const int candidate = seed_donor_candidate(ctx);
        if (candidate >= 0) {
          Message msg;
          msg.payload = SeedRequest{};
          ctx.send(candidate, std::move(msg));
          seed_request_outstanding_ = true;
          seed_request_target_ = candidate;
        }
      }
    }
  }

  // Whom a starving master asks for seeds.  Flat layout: round-robin over
  // the peer masters.  Tree layout: a leaf asks a root (its parent first),
  // so demand is brokered instead of flooding every master; a root asks
  // its own leaf children first, then peer roots (roots hold no pool of
  // their own unless they adopted one).  -1 when every candidate is dry
  // or dead.
  int seed_donor_candidate(const RankContext& ctx) const {
    auto viable = [&](int m) {
      return m != self_ && dry_masters_.count(m) == 0 && ctx.is_alive(m);
    };
    if (layout_.num_roots == 0 || self_ >= layout_.num_masters) {
      // Flat layout — or a promoted slave, whose master candidates are
      // all dead by the promotion condition (the loop degenerates).
      for (int m = 0; m < layout_.num_masters; ++m) {
        const int candidate = (self_ + 1 + m) % layout_.num_masters;
        if (viable(candidate)) return candidate;
      }
      return -1;
    }
    if (layout_.is_root(self_)) {
      const auto [first, last] = layout_.leaves_of(self_);
      for (int leaf = first; leaf < last; ++leaf) {
        if (viable(leaf)) return leaf;
      }
      for (int i = 0; i < layout_.num_roots; ++i) {
        const int peer = (self_ + 1 + i) % layout_.num_roots;
        if (viable(peer)) return peer;
      }
      return -1;
    }
    const int parent = layout_.root_of(self_);
    for (int i = 0; i < layout_.num_roots; ++i) {
      const int candidate = (parent + i) % layout_.num_roots;
      if (viable(candidate)) return candidate;
    }
    return -1;
  }

  // --- root-tier seed brokering (tree layouts) -----------------------------

  // Donate up to 4N seeds, whole blocks at a time, if we can spare them.
  SeedTransfer collect_donation(RankContext& ctx) {
    SeedTransfer transfer;
    const std::size_t spare_floor =
        static_cast<std::size_t>(params_.assign_batch) * records_.size();
    std::size_t donated = 0;
    const std::size_t donate_cap =
        static_cast<std::size_t>(4 * params_.assign_batch);
    while (seeds_.size() > spare_floor && donated < donate_cap) {
      const BlockId b = seeds_.densest_block();
      if (b == kInvalidBlock) break;
      auto p = seeds_.take_from(b);
      if (!p) break;
      ctx.charge_particle_memory(
          -static_cast<std::int64_t>(particle_message_bytes(*p, false)));
      transfer.seeds.push_back(std::move(*p));
      ++donated;
    }
    return transfer;
  }

  // Always answers with a SeedTransfer — an empty one is the "I am dry"
  // signal the requester's dry_masters_ set quenches on.
  void answer_seed_request(RankContext& ctx, int requester) {
    Message m;
    m.payload = collect_donation(ctx);
    ctx.send(requester, std::move(m));
  }

  // Serve queued demands from this root's own pool; when dry, relay one
  // demand at a time to a child leaf (round-robin), escalating once to a
  // peer root when the whole subtree answered dry.  Donations flow back
  // here (on_seed_transfer re-enters), so every queued demand ends in
  // either seeds or a definitive empty answer once all candidates are dry
  // — the same quenching guarantee the flat round-robin has.
  void broker(RankContext& ctx) {
    while (!pending_requests_.empty()) {
      PendingSeedRequest& req = pending_requests_.front();
      if (!ctx.is_alive(req.reply_to)) {
        pending_requests_.pop_front();  // failover reclaims its work
        continue;
      }
      SeedTransfer transfer = collect_donation(ctx);
      if (!transfer.seeds.empty()) {
        Message m;
        m.payload = std::move(transfer);
        ctx.send(req.reply_to, std::move(m));
        pending_requests_.pop_front();
        continue;
      }
      if (relay_outstanding_) return;  // a donation is already in flight
      const auto [first, last] = layout_.leaves_of(self_);
      const int span = last - first;
      for (int i = 0; i < span; ++i) {
        const int leaf = first + (relay_cursor_ + i) % span;
        if (leaf == req.reply_to || dry_masters_.count(leaf) != 0) continue;
        if (!ctx.is_alive(leaf)) continue;
        relay_cursor_ = (leaf - first + 1) % span;
        send_relay(ctx, leaf);
        return;
      }
      if (req.may_escalate) {
        req.may_escalate = false;
        for (int i = 0; i < layout_.num_roots; ++i) {
          const int peer = (self_ + 1 + i) % layout_.num_roots;
          if (peer == self_ || peer == req.reply_to) continue;
          if (dry_masters_.count(peer) != 0 || !ctx.is_alive(peer)) continue;
          send_relay(ctx, peer);
          return;
        }
      }
      // Every candidate is dry or dead: a definitive empty answer, which
      // marks this root dry at the requester and quenches its asking.
      Message m;
      m.payload = SeedTransfer{};
      ctx.send(req.reply_to, std::move(m));
      pending_requests_.pop_front();
    }
  }

  void send_relay(RankContext& ctx, int donor) {
    Message m;
    m.payload = SeedRelay{};
    ctx.send(donor, std::move(m));
    relay_outstanding_ = true;
    relay_target_ = donor;
  }

  // --- failover ------------------------------------------------------------

  void register_slave(RankContext& ctx, int slave) {
    if (records_.count(slave) != 0) return;
    records_[slave] = SlaveRecord{};
    // Adopted slaves get one extra detection window before the sixth rule
    // may declare them: their own re-home detection runs on the same
    // silence clock as ours, so a fresh adoptee may legitimately report
    // up to a full deadline late.
    last_heard_[slave] = ctx.now() + deadline();
  }

  // Absorb a dead coordinator: its unassigned seed pool and termination
  // total come out of the particle ledger; the survivors of its group are
  // registered (their re-reports arrive within a heartbeat), and its dead
  // slaves are recovered too so no credit or streamline is orphaned by a
  // chain of deaths.
  void adopt_coordinator(RankContext& ctx, int dead) {
    if (ctx.is_alive(dead)) return;
    if (!recovered_coords_.insert(dead).second) return;
    absorb_recovered(ctx, dead);
    if (dead < layout_.num_masters) {
      const auto [first, last] = layout_.slaves_of(dead);
      for (int s = first; s < last; ++s) {
        if (s == self_) continue;
        if (ctx.is_alive(s)) {
          register_slave(ctx, s);
        } else if (recovered_coords_.insert(s).second) {
          absorb_recovered(ctx, s);
        }
      }
    }
    publish_totals(ctx);
  }

  void absorb_recovered(RankContext& ctx, int dead) {
    RecoveredWork work = ctx.recover_rank(dead);
    for (Particle& p : work.active) {
      ctx.charge_particle_memory(
          static_cast<std::int64_t>(particle_message_bytes(p, false)));
      seeds_.add(decomp_->block_of(p.pos), std::move(p));
    }
    merge_total(dead, work.terminated_total);
  }

  // The sixth rule's action: forget everything we believed about the
  // slave, reclaim its streamlines from the ledger into the seed pool,
  // fold its ledger-logged termination total into the board, and
  // rebalance.
  void declare_dead(RankContext& ctx, int slave) {
    auto it = records_.find(slave);
    if (it == records_.end()) return;
    // Purge the record's index entries by applying an empty status, then
    // drop the record: dead slaves take no further part in any rule.
    apply_status(slave, it->second, StatusUpdate{});
    records_.erase(it);
    last_heard_.erase(slave);
    progress_.erase(slave);

    recovered_coords_.insert(slave);
    absorb_recovered(ctx, slave);
    publish_totals(ctx);
    if (finished_) return;
    assignment_pass(ctx);
  }

  // --- termination board ---------------------------------------------------

  void merge_total(int rank, std::uint32_t total) {
    if (total == 0) return;
    auto& hw = totals_[rank];
    if (total <= hw) return;
    hw = total;
    totals_dirty_ = true;
  }

  // Where this coordinator publishes its board.  Flat layout: straight to
  // the acting counter.  Tree layout: leaf masters report to their parent
  // root, which max-merges its subtree's boards and forwards the merged
  // board to the counter — a two-level reduction that replaces the
  // all-to-all master exchange, so the counter hears O(num_roots) links
  // instead of O(num_masters).  A dead parent falls back to the
  // successor, so every credit still reaches the counter.
  int publish_target(const RankContext& ctx) const {
    if (layout_.num_roots > 0 && !layout_.is_root(self_) &&
        self_ < layout_.num_masters) {
      const int parent = layout_.root_of(self_);
      if (ctx.is_alive(parent)) return parent;
    }
    return successor_rank(ctx, layout_);
  }

  // Push the per-rank high-water board one tier up (or, when we are the
  // counter, check for completion).  Re-publishing the *full* board — not
  // deltas — is what lets a counter successor reconstruct the count after
  // the old counter died with reports it never broadcast, and what makes
  // the tree reduction idempotent (max-merge of cumulative totals).
  void publish_totals(RankContext& ctx) {
    if (finished_) return;
    const int counter = publish_target(ctx);
    if (counter == self_) {
      last_published_counter_ = counter;
      totals_dirty_ = false;
      maybe_finish(ctx);
      return;
    }
    if (!totals_dirty_ && counter == last_published_counter_) return;
    TerminationCount tc;
    for (const auto& [rank, total] : totals_) {
      if (total > 0) tc.totals.emplace_back(rank, total);
    }
    if (tc.totals.empty()) return;
    Message m;
    m.payload = std::move(tc);
    ctx.send(counter, std::move(m));
    totals_dirty_ = false;
    last_published_counter_ = counter;
  }

  void maybe_finish(RankContext& ctx) {
    std::uint64_t done = 0;
    for (const auto& [rank, total] : totals_) done += total;
    if (done >= total_active_) finish_everyone(ctx);
  }

  void finish_everyone(RankContext& ctx) {
    for (int m = 0; m < layout_.num_masters; ++m) {
      if (m == self_ || !ctx.is_alive(m)) continue;
      Message msg;
      msg.payload = DoneSignal{};
      ctx.send(m, std::move(msg));
    }
    if (params_.failover) {
      // A master can die with its DoneSignal still in flight; its orphans
      // would then re-home to a coordinator that already finished.  The
      // counter closes that window by terminating every live slave
      // directly (duplicate kTerminates are idempotent).
      for (int s = layout_.num_masters; s < layout_.num_ranks; ++s) {
        if (s == self_ || !ctx.is_alive(s)) continue;
        Command cmd;
        cmd.type = Command::Type::kTerminate;
        send_command(ctx, s, std::move(cmd));
      }
      finished_ = true;
      return;
    }
    terminate_group(ctx);
  }

  void terminate_group(RankContext& ctx) {
    // Every live slave this coordinator is responsible for: the layout
    // group (including slaves erased from records_ by a false-positive
    // declare-dead), plus anyone adopted through failover.
    for (int s = layout_.num_masters; s < layout_.num_ranks; ++s) {
      if (s == self_ || !ctx.is_alive(s)) continue;
      if (records_.count(s) == 0 && !coordinates(ctx, s)) continue;
      Command cmd;
      cmd.type = Command::Type::kTerminate;
      send_command(ctx, s, std::move(cmd));
    }
    finished_ = true;
  }

  bool coordinates(const RankContext& ctx, int slave) const {
    const int m = layout_.master_of(slave);
    if (ctx.is_alive(m)) return m == self_;
    return adopter_of(ctx, m) == self_;
  }

  // The unique live rank responsible for absorbing a dead coordinator:
  // its parent root when the tree is on and the parent survives, else the
  // global successor.  Uniqueness keeps ledger recovery single-fire on
  // the primary path (duplicate adoption stays safe — recovered credits
  // max-merge and re-run terminations dedup — but never happens fault-
  // free under this rule).
  int adopter_of(const RankContext& ctx, int dead_master) const {
    if (layout_.num_roots > 0 && dead_master >= layout_.num_roots &&
        dead_master < layout_.num_masters) {
      const int parent = layout_.root_of(dead_master);
      if (ctx.is_alive(parent)) return parent;
    }
    return successor_rank(ctx, layout_);
  }

  const BlockDecomposition* decomp_;
  int self_;
  HybridLayout layout_;
  HybridParams params_;
  std::uint32_t total_active_;  // global streamline count
  Rng rng_;

  ParticlePool seeds_;
  std::map<int, SlaveRecord> records_;
  std::map<int, double> last_heard_;  // heartbeat bookkeeping (§7)
  std::map<int, ProgressTrack> progress_;  // straggler detection (§16)
  // Inverted indexes over the records (see index_* helpers).
  std::map<BlockId, std::set<int>> holders_;
  std::map<BlockId, std::map<int, std::uint32_t>> queued_idx_;
  std::set<int> dry_masters_;
  bool seed_request_outstanding_ = false;
  int seed_request_target_ = -1;
  // Root-tier brokering state (tree layouts; unused in flat runs).  One
  // queued demand records whom the eventual SeedTransfer goes to (the
  // starving master, or the peer root that escalated on its behalf) and
  // whether one escalation is still allowed.
  struct PendingSeedRequest {
    int reply_to = -1;
    bool may_escalate = false;
  };
  std::deque<PendingSeedRequest> pending_requests_;
  int relay_cursor_ = 0;
  bool relay_outstanding_ = false;
  int relay_target_ = -1;
  // Survivable termination accounting (§11): per-rank cumulative
  // high-water marks, max-merged from statuses, peer boards, and ledger
  // recoveries; global done = sum of the board.
  std::map<int, std::uint32_t> totals_;
  bool totals_dirty_ = false;
  int last_published_counter_ = -1;
  // Dead coordinators (and dead slaves) whose ledger state was already
  // absorbed; keeps adoption idempotent across re-homing bursts.
  std::set<int> recovered_coords_;
  bool finished_ = false;
};

// ---------------------------------------------------------------------------
// Slave
// ---------------------------------------------------------------------------

class HybridSlave final : public RankProgram {
 public:
  HybridSlave(const BlockDecomposition* decomp, int rank, HybridLayout layout,
              HybridParams params, std::uint32_t total_active)
      : decomp_(decomp),
        rank_(rank),
        layout_(layout),
        params_(params),
        total_active_(total_active),
        master_(layout.master_of(rank)),
        coord_(master_) {}

  void start(RankContext& ctx) override {
    // Slaves begin idle; everything arrives from the master.  Do not
    // report yet — the master hands out the initial allocation unasked.
    master_heard_ = ctx.now();
    if (params_.heartbeat_period > 0.0) {
      ctx.set_timer(params_.heartbeat_period);
    }
  }

  void on_timer(RankContext& ctx) override {
    if (finished_) return;
    if (core_) {
      core_->tick(ctx);
      core_post(ctx);
    } else {
      maybe_failover(ctx);
      if (!core_ && !finished_) {
        // Heartbeat: prove liveness and report the cumulative termination
        // total even while busy; the coordinator declares silent slaves
        // dead.
        send_status(ctx, workable(ctx));
      }
    }
    if (!finished_) ctx.set_timer(params_.heartbeat_period);
  }

  void on_message(RankContext& ctx, Message msg) override {
    // ControlAck is consumed by the runtime's transport layer and never
    // reaches a program.
    // protocol-lint: ignores ControlAck
    // protocol-lint: ignores QuerySubmit, QueryCancel, QueryResult
    // protocol-lint: ignores QueryDone
    if (auto* batch = std::get_if<ParticleBatch>(&msg.payload)) {
      accept_particles(ctx, std::move(batch->particles));
      try_start(ctx);
      return;
    }
    if (auto* undeliv = std::get_if<Undeliverable>(&msg.payload)) {
      // A shipment bounced (dropped link or dead receiver): take the
      // particles back.  A plain worker re-pools them for re-routing; an
      // acting master reclaims them through its scheduling machinery.
      if (core_) {
        core_->reclaim_undelivered(ctx, std::move(*undeliv));
        core_post(ctx);
      } else {
        accept_particles(ctx, std::move(undeliv->particles));
        try_start(ctx);
      }
      return;
    }
    if (std::holds_alternative<MasterBeacon>(msg.payload)) {
      master_heard_ = ctx.now();
      // A beacon from a master we do not report to, while ours is dead,
      // is a takeover announcement: the sender adopted our group.  Re-home
      // now instead of waiting out the silence deadline — without this the
      // new coordinator's beacons would keep resetting the silence clock
      // while our reports still went to the corpse, and the adopter would
      // eventually declare *us* dead for never reporting.
      if (params_.failover && msg.from != coord_ && !ctx.is_alive(coord_)) {
        coord_ = msg.from;
      }
      return;
    }
    if (auto* cmd = std::get_if<Command>(&msg.payload)) {
      master_heard_ = ctx.now();
      on_command(ctx, std::move(*cmd));
      return;
    }

    // Coordinator-side traffic (statuses, boards, seed balancing, done):
    // only meaningful once this slave is the failover successor.  A peer
    // that computed us as successor may deliver before our own silence
    // detection fires — promote on demand; the liveness view makes this
    // safe (successor == self implies every master is already dead).
    if (!core_ && params_.failover && !finished_ &&
        successor_rank(ctx, layout_) == rank_) {
      promote(ctx);
    }
    if (!core_ || finished_) return;
    if (auto* status = std::get_if<StatusUpdate>(&msg.payload)) {
      core_->on_status(ctx, msg.from, std::move(*status));
    } else if (auto* term = std::get_if<TerminationCount>(&msg.payload)) {
      core_->on_termination_count(ctx, term->totals);
    } else if (std::holds_alternative<SeedRequest>(msg.payload)) {
      core_->on_seed_request(ctx, msg.from);
    } else if (std::holds_alternative<SeedRelay>(msg.payload)) {
      core_->on_seed_relay(ctx, msg.from);
    } else if (auto* transfer = std::get_if<SeedTransfer>(&msg.payload)) {
      core_->on_seed_transfer(ctx, msg.from, std::move(*transfer));
    } else if (std::holds_alternative<DoneSignal>(msg.payload)) {
      core_->on_done_signal(ctx);
    }
    core_post(ctx);
  }

  void on_block_loaded(RankContext& ctx, BlockId) override {
    if (pending_loads_ > 0) --pending_loads_;
    reported_ = false;
    try_start(ctx);
  }

  void on_compute_done(RankContext& ctx) override {
    steps_total_ += in_flight_steps_;
    in_flight_steps_ = 0;
    busy_total_ += ctx.now() - burst_start_;
    std::vector<Particle> batch = std::move(in_flight_);
    in_flight_.clear();
    std::vector<AdvanceOutcome> outcomes = std::move(flights_);
    flights_.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Particle& p = batch[i];
      if (is_terminal(outcomes[i].status)) {
        // Only first-time terminations count toward the global total; a
        // re-run duplicate (recovery overlap) must not double-count.
        if (ctx.log_termination(p)) ++terminated_total_;
        done_.push_back(std::move(p));
      } else {
        pool_.add(outcomes[i].blocking_block, std::move(p));
      }
    }
    reported_ = false;
    if (core_) {
      core_->note_local_terminations(ctx, rank_, terminated_total_);
      core_post(ctx);
      return;
    }
    try_start(ctx);
  }

  bool finished() const override { return finished_; }

  void collect_particles(std::vector<Particle>& out) const override {
    out.insert(out.end(), done_.begin(), done_.end());
  }

  void snapshot_particles(std::vector<Particle>& out) const override {
    pool_.append_all(out);
    out.insert(out.end(), in_flight_.begin(), in_flight_.end());
    if (core_) core_->snapshot_seeds(out);
  }

 private:
  void on_command(RankContext& ctx, Command cmd) {
    switch (cmd.type) {
      case Command::Type::kAssign: {
        // Assign_loaded / Assign_unloaded: integrate these seeds; load
        // their blocks if we do not have them.
        std::set<BlockId> blocks;
        for (const Particle& p : cmd.particles) {
          blocks.insert(decomp_->block_of(p.pos));
        }
        accept_particles(ctx, std::move(cmd.particles));
        for (const BlockId b : blocks) {
          request_if_needed(ctx, b);
        }
        try_start(ctx);
        break;
      }
      case Command::Type::kLoad:
        request_if_needed(ctx, cmd.block);
        try_start(ctx);
        break;
      case Command::Type::kSendForce: {
        // Mandatory migration of our particles in `block` to `target`.
        std::vector<Particle> moving = pool_.drain_block(cmd.block);
        ship_particles(ctx, cmd.target, cmd.block, std::move(moving));
        reported_ = false;
        try_start(ctx);
        break;
      }
      case Command::Type::kSendHint: {
        // Optional: offload particles waiting in *unloaded* hint blocks.
        // If none are appropriate, ignore the hint (the autonomy rule).
        for (const BlockId b : cmd.hint_blocks) {
          if (ctx.block_resident(b) || ctx.block_pending(b)) continue;
          std::vector<Particle> moving = pool_.drain_block(b);
          if (!moving.empty()) {
            ship_particles(ctx, cmd.target, b, std::move(moving));
            reported_ = false;
          }
        }
        try_start(ctx);
        break;
      }
      case Command::Type::kTerminate:
        finished_ = true;
        break;
    }
  }

  // Silence-based master failure detection (§11): beacons and commands
  // refresh master_heard_; a coordinator silent past the miss limit whose
  // death the runtime confirms triggers re-homing — to the successor, or
  // to ourselves by promotion when no master survives.  The liveness
  // confirmation is what prevents a lossy-link silence from electing two
  // acting masters.
  void maybe_failover(RankContext& ctx) {
    if (!params_.failover || params_.heartbeat_period <= 0.0) return;
    const double deadline =
        static_cast<double>(params_.heartbeat_miss_limit) *
        params_.heartbeat_period;
    if (ctx.now() - master_heard_ <= deadline) return;  // not silent yet
    if (ctx.is_alive(coord_)) return;  // silent but alive: keep waiting
    const int succ = rehome_target(ctx);
    if (succ == rank_) {
      promote(ctx);
      return;
    }
    const int orphaned = coord_;
    coord_ = succ;
    master_heard_ = ctx.now();  // restart the clock on the successor
    send_status(ctx, workable(ctx), orphaned);
  }

  // Where an orphaned slave re-homes: the adopter of its dead coordinator
  // — the parent root of a dead leaf master when the tree is on and that
  // root survives, else the global successor (which may be this slave
  // itself, promoting).  Mirrors MasterCore::adopter_of so the slave
  // re-reports to exactly the rank that absorbed its group.
  int rehome_target(const RankContext& ctx) const {
    if (layout_.num_roots > 0 && coord_ >= layout_.num_roots &&
        coord_ < layout_.num_masters) {
      const int parent = layout_.root_of(coord_);
      if (ctx.is_alive(parent)) return parent;
    }
    return successor_rank(ctx, layout_);
  }

  // Become the acting master: instantiate the identical scheduling core a
  // real master runs, adopt every dead coordinator's ledger state, and
  // keep advecting our own pool alongside (the core never schedules us).
  void promote(RankContext& ctx) {
    core_.emplace(decomp_, rank_, layout_, params_, total_active_);
    core_->start_as_successor(ctx);
    core_->note_local_terminations(ctx, rank_, terminated_total_);
    core_post(ctx);
  }

  // After any core interaction: propagate its finish, and in solo mode
  // (no live slave left to command) integrate the seed pool ourselves.
  void core_post(RankContext& ctx) {
    if (!core_) return;
    if (core_->finished()) {
      finished_ = true;
      return;
    }
    if (core_->solo()) {
      std::vector<Particle> adopted = core_->drain_seeds(ctx);
      if (!adopted.empty()) accept_particles(ctx, std::move(adopted));
    }
    try_start(ctx);
  }

  std::uint32_t workable(RankContext& ctx) const {
    std::uint32_t n = 0;
    for (const auto& [block, count] : pool_.census()) {
      if (ctx.block_resident(block)) n += count;
    }
    return n;
  }

  void accept_particles(RankContext& ctx, std::vector<Particle> particles) {
    for (Particle& p : particles) {
      ctx.charge_particle_memory(static_cast<std::int64_t>(
          resident_particle_bytes(p, ctx.model())));
      pool_.add(decomp_->block_of(p.pos), std::move(p));
    }
    reported_ = false;
  }

  void ship_particles(RankContext& ctx, int target, BlockId block,
                      std::vector<Particle> particles) {
    if (particles.empty()) return;
    ctx.charge_particle_memory(-static_cast<std::int64_t>(
        particles_resident_bytes(particles, ctx.model())));
    Message m;
    m.payload = ParticleBatch{block, std::move(particles)};
    ctx.send(target, std::move(m));
  }

  void request_if_needed(RankContext& ctx, BlockId b) {
    if (b == kInvalidBlock || ctx.block_resident(b) || ctx.block_pending(b)) {
      return;
    }
    ++pending_loads_;
    ctx.request_block(b);
  }

  // Cumulative accepted-step watermark for straggler detection (§16):
  // completed bursts in full, plus the in-flight burst pro-rated by how
  // much of its *planned* modelled duration has elapsed.  On a healthy
  // slave the pro-rating tracks reality and the watermark rises smoothly
  // through multi-heartbeat bursts; on a secretly slowed rank the planned
  // fraction is exhausted early and the watermark sits flat until the
  // burst really completes — exactly the rate collapse the master's
  // windowed detector needs.  Monotone: the fraction is capped at 1 and
  // burst completion folds the same total into steps_total_.
  std::uint64_t watermark(const RankContext& ctx) const {
    if (in_flight_steps_ == 0) return steps_total_;
    double frac = 1.0;
    if (burst_duration_ > 0.0) {
      frac = (ctx.now() - burst_start_) / burst_duration_;
      if (frac > 1.0) frac = 1.0;
      if (frac < 0.0) frac = 0.0;
    }
    return steps_total_ +
           static_cast<std::uint64_t>(
               frac * static_cast<double>(in_flight_steps_));
  }

  void send_status(RankContext& ctx, std::uint32_t workable_now,
                   int orphaned_from = -1) {
    StatusUpdate s;
    for (const auto& [block, count] : pool_.census()) {
      s.queued_by_block.emplace_back(block, count);
    }
    s.loaded = ctx.resident_blocks();
    for (const auto& [block, count] : pool_.census()) {
      if (ctx.block_pending(block)) s.loading.push_back(block);
    }
    s.workable = workable_now;
    s.terminated_total = terminated_total_;
    s.steps_total = watermark(ctx);
    s.busy_seconds = busy_total_ + (in_flight_steps_ > 0
                                        ? ctx.now() - burst_start_
                                        : 0.0);
    s.computing = in_flight_steps_ > 0;
    s.orphaned_from = orphaned_from;
    Message m;
    m.payload = std::move(s);
    ctx.send(coord_, std::move(m));
    reported_ = true;
  }

  void try_start(RankContext& ctx) {
    if (finished_ || ctx.busy() || !in_flight_.empty()) return;

    const BlockId runnable = pool_.first_block_where(
        [&ctx](BlockId id) { return ctx.block_resident(id); });
    if (runnable != kInvalidBlock) {
      // Latency hiding (§4.3): report *before* a burst that will drain
      // the last workable streamlines so the master's reply overlaps it.
      // The burst takes runnable's whole queue, so that is the case when
      // nothing else is workable.
      const auto draining =
          static_cast<std::uint32_t>(pool_.count_in(runnable));
      if (!core_ && !reported_ && workable(ctx) == draining) {
        send_status(ctx, 0);
      }
      // Advance the whole block queue in one burst (§9 batching).
      in_flight_ = pool_.drain_block(runnable);
      // A slave's useful horizon is one Load round: a deep speculative
      // pipeline claims blocks the master never schedules here and
      // perturbs its Load/Send decisions more than it hides latency,
      // so the slave pipeline stays shallow regardless of the
      // configured depth.
      const int lookahead = std::min(4, ctx.prefetch_capacity());
      BatchAdvanceResult r = advance_block_and_charge(ctx, in_flight_);
      flights_ = std::move(r.outcomes);
      // Folded into steps_total_ when the burst completes; a heartbeat
      // status mid-burst reports the burst's steps pro-rated by elapsed
      // planned time (see watermark()), so the master sees progress as a
      // smooth rate rather than burst-sized quanta.
      in_flight_steps_ = r.total_steps;
      burst_start_ = ctx.now();
      burst_duration_ = static_cast<double>(r.total_steps) *
                        ctx.model().seconds_per_step;
      ctx.begin_compute(burst_duration_, r.total_steps);
      // Overlap: background-read where this burst is headed (its
      // outcomes name the blocks exactly), then the densest blocked
      // queues, so the master's next kLoad (or our own wait for it)
      // finds the grid already staged — the Load rule becomes a
      // non-blocking claim.  No streamline lookahead here: the master
      // schedules this rank's loads, so two-ahead speculation only
      // claims blocks it never sends us to.
      prefetch_blocking_targets(ctx, flights_, runnable, lookahead);
      prefetch_densest(ctx, pool_, runnable, lookahead);
      return;
    }

    if (pending_loads_ > 0) return;  // work arrives when the load lands

    if (core_) {
      // Acting master: nobody commands our loads, so self-serve the
      // densest pooled block, Load-On-Demand style.
      const BlockId next = pool_.densest_block();
      if (next != kInvalidBlock && !ctx.block_pending(next)) {
        ++pending_loads_;
        ctx.request_block(next);
      }
      return;
    }

    // Out of work: tell the master (once per state change).
    if (!reported_) send_status(ctx, 0);
  }

  const BlockDecomposition* decomp_;
  int rank_;
  HybridLayout layout_;
  HybridParams params_;
  std::uint32_t total_active_;  // global streamline count
  int master_;                  // the layout's master for this slave
  int coord_;                   // current coordinator (re-homed on failover)

  ParticlePool pool_;
  std::vector<Particle> done_;
  std::vector<Particle> in_flight_;      // the burst being computed
  std::vector<AdvanceOutcome> flights_;  // outcome per in_flight_[i]
  std::uint32_t terminated_total_ = 0;   // cumulative first-time credits
  std::uint64_t steps_total_ = 0;      // completed-burst steps (§16)
  std::uint64_t in_flight_steps_ = 0;  // accepted steps of the burst
  double burst_start_ = 0.0;           // when the burst began computing
  double burst_duration_ = 0.0;        // its *planned* modelled seconds
  double busy_total_ = 0.0;            // observed compute seconds (§16)
  double master_heard_ = 0.0;            // last beacon/command time
  int pending_loads_ = 0;
  bool reported_ = false;
  bool finished_ = false;
  // Engaged on promotion: this slave is now the acting master.
  std::optional<MasterCore> core_;
};

// ---------------------------------------------------------------------------
// Master
// ---------------------------------------------------------------------------

class HybridMaster final : public RankProgram {
 public:
  HybridMaster(const BlockDecomposition* decomp, int rank,
               HybridLayout layout, HybridParams params,
               std::vector<Particle> seeds, std::uint32_t total_active)
      : core_(decomp, rank, layout, params, total_active),
        params_(params),
        initial_seeds_(std::move(seeds)) {}

  void start(RankContext& ctx) override {
    core_.start_as_master(ctx, std::move(initial_seeds_));
    initial_seeds_.clear();
    if (params_.heartbeat_period > 0.0 && !core_.finished()) {
      ctx.set_timer(params_.heartbeat_period);
    }
  }

  void on_timer(RankContext& ctx) override {
    if (core_.finished()) return;
    core_.tick(ctx);
    if (!core_.finished()) ctx.set_timer(params_.heartbeat_period);
  }

  void on_message(RankContext& ctx, Message msg) override {
    // Masters never receive raw particle traffic: slaves ship batches to
    // each other and report via StatusUpdate, and only masters issue
    // Commands.  Beacons flow master -> slave, and ControlAck is consumed
    // by the runtime's transport layer.
    // protocol-lint: ignores ParticleBatch, Command, MasterBeacon
    // protocol-lint: ignores ControlAck
    // protocol-lint: ignores QuerySubmit, QueryCancel, QueryResult
    // protocol-lint: ignores QueryDone
    if (auto* undeliv = std::get_if<Undeliverable>(&msg.payload)) {
      core_.reclaim_undelivered(ctx, std::move(*undeliv));
    } else if (auto* status = std::get_if<StatusUpdate>(&msg.payload)) {
      core_.on_status(ctx, msg.from, std::move(*status));
    } else if (auto* term = std::get_if<TerminationCount>(&msg.payload)) {
      core_.on_termination_count(ctx, term->totals);
    } else if (std::holds_alternative<SeedRequest>(msg.payload)) {
      core_.on_seed_request(ctx, msg.from);
    } else if (std::holds_alternative<SeedRelay>(msg.payload)) {
      core_.on_seed_relay(ctx, msg.from);
    } else if (auto* transfer = std::get_if<SeedTransfer>(&msg.payload)) {
      core_.on_seed_transfer(ctx, msg.from, std::move(*transfer));
    } else if (std::holds_alternative<DoneSignal>(msg.payload)) {
      core_.on_done_signal(ctx);
    }
  }

  void on_block_loaded(RankContext&, BlockId) override {}
  void on_compute_done(RankContext&) override {}

  bool finished() const override { return core_.finished(); }

  void collect_particles(std::vector<Particle>&) const override {}

  void snapshot_particles(std::vector<Particle>& out) const override {
    out.insert(out.end(), initial_seeds_.begin(), initial_seeds_.end());
    core_.snapshot_seeds(out);
  }

 private:
  MasterCore core_;
  HybridParams params_;
  std::vector<Particle> initial_seeds_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::vector<std::vector<Particle>> partition_for_masters(
    int num_masters, std::vector<Particle> particles) {
  std::vector<std::vector<Particle>> out(
      static_cast<std::size_t>(num_masters));
  const std::size_t total = particles.size();
  for (std::size_t m = 0; m < out.size(); ++m) {
    const std::size_t first = total * m / out.size();
    const std::size_t last = total * (m + 1) / out.size();
    out[m].assign(std::make_move_iterator(particles.begin() + first),
                  std::make_move_iterator(particles.begin() + last));
  }
  return out;
}

ProgramFactory make_hybrid(const BlockDecomposition* decomp,
                           std::vector<std::vector<Particle>> seeds_per_master,
                           std::uint32_t total_active, HybridParams params) {
  auto shared = std::make_shared<std::vector<std::vector<Particle>>>(
      std::move(seeds_per_master));
  return [decomp, shared, total_active, params](
             int rank, int num_ranks) -> std::unique_ptr<RankProgram> {
    const HybridLayout layout = HybridLayout::make(
        num_ranks, params.slaves_per_master, params.root_fanout);
    if (layout.is_master(rank)) {
      // Seeds are partitioned over the leaf masters (the masters that own
      // slave groups); roots start empty and only hold seeds transiently
      // while brokering.
      std::vector<Particle> seeds;
      if (!layout.is_root(rank)) {
        seeds = std::move(
            (*shared)[static_cast<std::size_t>(rank - layout.num_roots)]);
      }
      return std::make_unique<HybridMaster>(decomp, rank, layout, params,
                                            std::move(seeds), total_active);
    }
    return std::make_unique<HybridSlave>(decomp, rank, layout, params,
                                         total_active);
  };
}

}  // namespace sf
