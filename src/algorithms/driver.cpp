#include "algorithms/driver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "algorithms/load_on_demand.hpp"
#include "algorithms/static_alloc.hpp"
#include "io/checkpoint_io.hpp"

namespace sf {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kStaticAllocation: return "static-allocation";
    case Algorithm::kLoadOnDemand: return "load-on-demand";
    case Algorithm::kHybridMasterSlave: return "hybrid-master-slave";
  }
  return "unknown";
}

namespace {

// Any fault feature requested?  If so the whole layer switches on; if not
// the runtime takes the exact pre-fault code paths (bit-identical runs).
bool fault_features_requested(const FaultConfig& f,
                              const std::string& restart_from) {
  return f.enabled || !restart_from.empty() || f.mtbf > 0.0 ||
         !f.crashes.empty() || f.disk_fault_rate > 0.0 ||
         f.disk_stall_rate > 0.0 || f.message_drop_rate > 0.0 ||
         f.checkpoint_interval > 0.0 || !f.slowdowns.empty() ||
         f.gray_mtbf > 0.0 || f.disk_slow_rate > 0.0 || f.corrupt_rate > 0.0;
}

// Everything both runtimes share: seed rejection, checkpoint restart,
// algorithm factory construction, per-algorithm fault wiring and the
// invariant-checker protocol selection.
struct PreparedRun {
  ExperimentConfig cfg;
  ProgramFactory factory;
  std::vector<Particle> rejected;
  std::vector<Particle> prior_done;
  bool faulty = false;
};

PreparedRun prepare_run(const ExperimentConfig& config,
                        const BlockDecomposition& decomp,
                        std::span<const Vec3> seeds) {
  PreparedRun run;
  run.cfg = config;  // we finish the fault wiring locally
  ExperimentConfig& cfg = run.cfg;
  run.faulty = fault_features_requested(cfg.runtime.fault, cfg.restart_from);
  const bool faulty = run.faulty;
  cfg.runtime.fault.enabled = faulty;

  std::vector<Particle> particles =
      make_particles(decomp, seeds, run.rejected);

  // Multi-query runs (src/service) tag each particle with its owning
  // query.  Rejected seeds are tagged too, so per-query accounting stays
  // complete.  Particle ids are the seed indices, which is what lets the
  // tag survive the partition shuffles below.
  if (!cfg.seed_queries.empty()) {
    if (cfg.seed_queries.size() != seeds.size()) {
      throw std::invalid_argument(
          "seed_queries must match the seed count (" +
          std::to_string(cfg.seed_queries.size()) + " tags for " +
          std::to_string(seeds.size()) + " seeds)");
    }
    for (Particle& p : particles) p.query = cfg.seed_queries[p.id];
    for (Particle& p : run.rejected) p.query = cfg.seed_queries[p.id];
  }

  // Topology stamp: written into every checkpoint, validated on restart.
  cfg.runtime.fault.algorithm_tag = static_cast<std::uint8_t>(cfg.algorithm);
  cfg.runtime.fault.dataset_hash = dataset_topology_hash(decomp);

  // A restart replaces the freshly seeded particles with the checkpoint's
  // active set; its done list joins the rejected seeds as presettled
  // results.  Re-advecting a particle from its checkpointed solver state
  // reproduces the uninterrupted trajectory bit for bit.
  if (!cfg.restart_from.empty()) {
    const Checkpoint ck = read_checkpoint(cfg.restart_from);
    if (ck.num_ranks != cfg.runtime.num_ranks) {
      throw std::invalid_argument(
          "--restart-from: checkpoint was written by a " +
          std::to_string(ck.num_ranks) + "-rank run, but this run has " +
          std::to_string(cfg.runtime.num_ranks) + " ranks");
    }
    if (ck.algorithm != static_cast<std::uint8_t>(cfg.algorithm)) {
      throw std::invalid_argument(
          std::string("--restart-from: checkpoint was written by a ") +
          to_string(static_cast<Algorithm>(ck.algorithm)) +
          " run, but this run uses " + to_string(cfg.algorithm));
    }
    if (ck.dataset_hash != cfg.runtime.fault.dataset_hash) {
      throw std::invalid_argument(
          "--restart-from: checkpoint was written against a different "
          "dataset decomposition (topology hash mismatch)");
    }
    particles = ck.active;
    run.prior_done = ck.done;
  }
  const auto total_active = static_cast<std::uint32_t>(particles.size());
  const int num_ranks = cfg.runtime.num_ranks;

  switch (cfg.algorithm) {
    case Algorithm::kStaticAllocation:
      cfg.runtime.checked_protocol = CheckedProtocol::kStaticAllocation;
      if (faulty) {
        // No immune ranks: the termination counter migrates to the lowest
        // live rank when rank 0 dies (survivable accounting, §11).
        cfg.runtime.fault.detector = FaultConfig::Detector::kRuntime;
      }
      run.factory = make_static_allocation(
          &decomp,
          partition_by_block_owner(decomp, num_ranks, std::move(particles)),
          total_active);
      break;
    case Algorithm::kLoadOnDemand:
      cfg.runtime.checked_protocol = CheckedProtocol::kLoadOnDemand;
      if (faulty) {
        cfg.runtime.fault.detector = FaultConfig::Detector::kRuntime;
      }
      run.factory = make_load_on_demand(
          &decomp,
          partition_evenly_by_block(num_ranks, decomp, std::move(particles)));
      break;
    case Algorithm::kHybridMasterSlave: {
      const HybridLayout layout = HybridLayout::make(
          num_ranks, cfg.hybrid.slaves_per_master, cfg.hybrid.root_fanout);
      cfg.runtime.checked_protocol = CheckedProtocol::kHybrid;
      cfg.runtime.checker_num_masters = layout.num_masters;
      cfg.runtime.checker_num_roots = layout.num_roots;
      if (faulty) {
        // Hybrid detects failures in-protocol, both ways: slaves
        // heartbeat status and the master declares the silent dead (the
        // sixth rule); masters beacon and orphaned slaves re-home to a
        // successor when their master goes silent (§11 failover).  No
        // rank is immune — a dead master's scheduling state is
        // reconstructed from re-reports and the particle ledger.
        cfg.runtime.fault.detector = FaultConfig::Detector::kProgram;
        cfg.hybrid.failover = true;
        if (cfg.hybrid.heartbeat_period <= 0.0) {
          cfg.hybrid.heartbeat_period = cfg.runtime.fault.heartbeat_period;
        }
        cfg.hybrid.heartbeat_miss_limit =
            cfg.runtime.fault.heartbeat_miss_limit;
      }
      // Leaf masters get equal seed shares *grouped by block* (same
      // locality trick as §4.2's seed split): each master group then only
      // touches the blocks its own seeds and their streamlines reach,
      // instead of every group re-loading the whole dataset.  Tree-layout
      // roots start with no seeds at all.
      run.factory = make_hybrid(
          &decomp,
          partition_evenly_by_block(layout.num_leaves(), decomp,
                                    std::move(particles)),
          total_active, cfg.hybrid);
      break;
    }
  }

  if (faulty) {
    // Already-terminal particles live in the ledger from the start, so
    // checkpoints and final results are complete across restarts.
    cfg.runtime.fault.presettled = run.rejected;
    cfg.runtime.fault.presettled.insert(cfg.runtime.fault.presettled.end(),
                                        run.prior_done.begin(),
                                        run.prior_done.end());
  }
  return run;
}

// Fold the presettled particles into a non-fault result set (fault mode
// lets the ledger do it).  Failed runs keep their partial results too —
// diagnosable is better than empty.
void merge_presettled(RunMetrics& metrics, const PreparedRun& run) {
  if (run.faulty) return;
  metrics.particles.insert(metrics.particles.end(), run.rejected.begin(),
                           run.rejected.end());
  metrics.particles.insert(metrics.particles.end(), run.prior_done.begin(),
                           run.prior_done.end());
  std::sort(
      metrics.particles.begin(), metrics.particles.end(),
      [](const Particle& a, const Particle& b) { return a.id < b.id; });
}

}  // namespace

RunMetrics run_experiment(const ExperimentConfig& config,
                          const BlockDecomposition& decomp,
                          const BlockSource& source,
                          std::span<const Vec3> seeds) {
  PreparedRun run = prepare_run(config, decomp, seeds);
  SimRuntime runtime(run.cfg.runtime, &decomp, &source, run.cfg.integrator,
                     run.cfg.limits);
  RunMetrics metrics = runtime.run(run.factory);
  merge_presettled(metrics, run);
  return metrics;
}

RunMetrics run_experiment_threads(const ExperimentConfig& config,
                                  const BlockDecomposition& decomp,
                                  const BlockSource& source,
                                  std::span<const Vec3> seeds) {
  PreparedRun run = prepare_run(config, decomp, seeds);
  if (run.faulty) {
    throw std::invalid_argument(
        "run_experiment_threads: the thread runtime has no fault plane; "
        "drop the fault/restart flags or use the simulated runtime");
  }
  ThreadRuntimeConfig tcfg;
  tcfg.num_ranks = run.cfg.runtime.num_ranks;
  tcfg.model = run.cfg.runtime.model;
  tcfg.cache_blocks = run.cfg.runtime.cache_blocks;
  tcfg.carry_geometry = run.cfg.runtime.carry_geometry;
  tcfg.schedule_fuzz_seed = run.cfg.schedule_fuzz_seed;
  tcfg.checked_protocol = run.cfg.runtime.checked_protocol;
  tcfg.checker_num_masters = run.cfg.runtime.checker_num_masters;
  tcfg.checker_num_roots = run.cfg.runtime.checker_num_roots;
  tcfg.async_io = run.cfg.runtime.async_io;
  tcfg.shared_blocks = run.cfg.runtime.shared_blocks;
  // The thread runtime has no deterministic mid-run instant, so it only
  // honors cancellations that take effect at the epoch boundary; a timed
  // cancel is a configuration error here, not a silent approximation.
  for (const QueryCancelAt& c : run.cfg.runtime.cancels) {
    if (c.at > 0.0) {
      throw std::invalid_argument(
          "run_experiment_threads: timed query cancels are a SimRuntime "
          "feature; the thread runtime applies cancels at epoch start");
    }
    tcfg.cancelled_queries.push_back(c.query);
  }
  ThreadRuntime runtime(tcfg, &decomp, &source, run.cfg.integrator,
                        run.cfg.limits);
  RunMetrics metrics = runtime.run(run.factory);
  merge_presettled(metrics, run);
  return metrics;
}

}  // namespace sf
