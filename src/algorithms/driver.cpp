#include "algorithms/driver.hpp"

#include <algorithm>

#include "algorithms/load_on_demand.hpp"
#include "algorithms/static_alloc.hpp"

namespace sf {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kStaticAllocation: return "static-allocation";
    case Algorithm::kLoadOnDemand: return "load-on-demand";
    case Algorithm::kHybridMasterSlave: return "hybrid-master-slave";
  }
  return "unknown";
}

RunMetrics run_experiment(const ExperimentConfig& config,
                          const BlockDecomposition& decomp,
                          const BlockSource& source,
                          std::span<const Vec3> seeds) {
  std::vector<Particle> rejected;
  std::vector<Particle> particles = make_particles(decomp, seeds, rejected);
  const auto total_active = static_cast<std::uint32_t>(particles.size());
  const int num_ranks = config.runtime.num_ranks;

  ProgramFactory factory;
  switch (config.algorithm) {
    case Algorithm::kStaticAllocation:
      factory = make_static_allocation(
          &decomp,
          partition_by_block_owner(decomp, num_ranks, std::move(particles)),
          total_active);
      break;
    case Algorithm::kLoadOnDemand:
      factory = make_load_on_demand(
          &decomp,
          partition_evenly_by_block(num_ranks, decomp, std::move(particles)));
      break;
    case Algorithm::kHybridMasterSlave: {
      const HybridLayout layout =
          HybridLayout::make(num_ranks, config.hybrid.slaves_per_master);
      // Masters get equal seed shares *grouped by block* (same locality
      // trick as §4.2's seed split): each master group then only touches
      // the blocks its own seeds and their streamlines reach, instead of
      // every group re-loading the whole dataset.
      factory = make_hybrid(
          &decomp,
          partition_evenly_by_block(layout.num_masters, decomp,
                                    std::move(particles)),
          total_active, config.hybrid);
      break;
    }
  }

  SimRuntime runtime(config.runtime, &decomp, &source, config.integrator,
                     config.limits);
  RunMetrics metrics = runtime.run(factory);

  if (!metrics.failed_oom && !rejected.empty()) {
    metrics.particles.insert(metrics.particles.end(), rejected.begin(),
                             rejected.end());
    std::sort(
        metrics.particles.begin(), metrics.particles.end(),
        [](const Particle& a, const Particle& b) { return a.id < b.id; });
  }
  return metrics;
}

}  // namespace sf
