#include "algorithms/driver.hpp"

#include <algorithm>
#include <utility>

#include "algorithms/load_on_demand.hpp"
#include "algorithms/static_alloc.hpp"
#include "io/checkpoint_io.hpp"

namespace sf {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kStaticAllocation: return "static-allocation";
    case Algorithm::kLoadOnDemand: return "load-on-demand";
    case Algorithm::kHybridMasterSlave: return "hybrid-master-slave";
  }
  return "unknown";
}

namespace {

// Any fault feature requested?  If so the whole layer switches on; if not
// the runtime takes the exact pre-fault code paths (bit-identical runs).
bool fault_features_requested(const FaultConfig& f,
                              const std::string& restart_from) {
  return f.enabled || !restart_from.empty() || f.mtbf > 0.0 ||
         !f.crashes.empty() || f.disk_fault_rate > 0.0 ||
         f.disk_stall_rate > 0.0 || f.message_drop_rate > 0.0 ||
         f.checkpoint_interval > 0.0;
}

}  // namespace

RunMetrics run_experiment(const ExperimentConfig& config,
                          const BlockDecomposition& decomp,
                          const BlockSource& source,
                          std::span<const Vec3> seeds) {
  ExperimentConfig cfg = config;  // we finish the fault wiring locally
  const bool faulty =
      fault_features_requested(cfg.runtime.fault, cfg.restart_from);
  cfg.runtime.fault.enabled = faulty;

  std::vector<Particle> rejected;
  std::vector<Particle> particles = make_particles(decomp, seeds, rejected);

  // A restart replaces the freshly seeded particles with the checkpoint's
  // active set; its done list joins the rejected seeds as presettled
  // results.  Re-advecting a particle from its checkpointed solver state
  // reproduces the uninterrupted trajectory bit for bit.
  std::vector<Particle> prior_done;
  if (!cfg.restart_from.empty()) {
    const Checkpoint ck = read_checkpoint(cfg.restart_from);
    particles = ck.active;
    prior_done = ck.done;
  }
  const auto total_active = static_cast<std::uint32_t>(particles.size());
  const int num_ranks = cfg.runtime.num_ranks;

  ProgramFactory factory;
  switch (cfg.algorithm) {
    case Algorithm::kStaticAllocation:
      if (faulty) {
        cfg.runtime.fault.detector = FaultConfig::Detector::kRuntime;
        cfg.runtime.fault.immune_ranks = {0};  // the termination counter
      }
      factory = make_static_allocation(
          &decomp,
          partition_by_block_owner(decomp, num_ranks, std::move(particles)),
          total_active);
      break;
    case Algorithm::kLoadOnDemand:
      if (faulty) {
        cfg.runtime.fault.detector = FaultConfig::Detector::kRuntime;
        cfg.runtime.fault.immune_ranks = {0};
      }
      factory = make_load_on_demand(
          &decomp,
          partition_evenly_by_block(num_ranks, decomp, std::move(particles)));
      break;
    case Algorithm::kHybridMasterSlave: {
      const HybridLayout layout =
          HybridLayout::make(num_ranks, cfg.hybrid.slaves_per_master);
      if (faulty) {
        // Hybrid detects failures in-protocol: slaves heartbeat, the
        // master declares the silent dead (the sixth rule).  Masters are
        // the recovery authority and termination counters, so they are
        // immune to injection.
        cfg.runtime.fault.detector = FaultConfig::Detector::kProgram;
        cfg.runtime.fault.immune_ranks.clear();
        for (int m = 0; m < layout.num_masters; ++m) {
          cfg.runtime.fault.immune_ranks.push_back(m);
        }
        if (cfg.hybrid.heartbeat_period <= 0.0) {
          cfg.hybrid.heartbeat_period = cfg.runtime.fault.heartbeat_period;
        }
        cfg.hybrid.heartbeat_miss_limit =
            cfg.runtime.fault.heartbeat_miss_limit;
      }
      // Masters get equal seed shares *grouped by block* (same locality
      // trick as §4.2's seed split): each master group then only touches
      // the blocks its own seeds and their streamlines reach, instead of
      // every group re-loading the whole dataset.
      factory = make_hybrid(
          &decomp,
          partition_evenly_by_block(layout.num_masters, decomp,
                                    std::move(particles)),
          total_active, cfg.hybrid);
      break;
    }
  }

  if (faulty) {
    // Already-terminal particles live in the ledger from the start, so
    // checkpoints and final results are complete across restarts.
    cfg.runtime.fault.presettled = rejected;
    cfg.runtime.fault.presettled.insert(cfg.runtime.fault.presettled.end(),
                                        prior_done.begin(),
                                        prior_done.end());
  }

  SimRuntime runtime(cfg.runtime, &decomp, &source, cfg.integrator,
                     cfg.limits);
  RunMetrics metrics = runtime.run(factory);

  if (!faulty) {
    // The ledger already folds presettled particles into fault-mode
    // results; here we merge them ourselves.  Failed runs keep their
    // partial results too — diagnosable is better than empty.
    metrics.particles.insert(metrics.particles.end(), rejected.begin(),
                             rejected.end());
    metrics.particles.insert(metrics.particles.end(), prior_done.begin(),
                             prior_done.end());
    std::sort(
        metrics.particles.begin(), metrics.particles.end(),
        [](const Particle& a, const Particle& b) { return a.id < b.id; });
  }
  return metrics;
}

}  // namespace sf
