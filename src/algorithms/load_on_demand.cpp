#include "algorithms/load_on_demand.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace sf {

namespace {

class LoadOnDemandProgram final : public RankProgram {
 public:
  LoadOnDemandProgram(const BlockDecomposition* decomp,
                      std::vector<Particle> initial)
      : decomp_(decomp), initial_(std::move(initial)) {}

  void start(RankContext& ctx) override {
    for (Particle& p : initial_) {
      ctx.charge_particle_memory(static_cast<std::int64_t>(
          resident_particle_bytes(p, ctx.model())));
      pool_.add(decomp_->block_of(p.pos), std::move(p));
    }
    initial_.clear();
    try_start(ctx);
  }

  void on_message(RankContext& ctx, Message msg) override {
    // Load On Demand never communicates during normal operation; the only
    // messages it can receive are recovery hand-offs of a dead rank's
    // remaining streamlines, which just join the pool.  An Undeliverable
    // is one of those hand-offs bounced off a rank that died before
    // delivery: adopt its particles the same way so none are lost.
    // protocol-lint: ignores StatusUpdate, Command, TerminationCount
    // protocol-lint: ignores DoneSignal, SeedRequest, SeedRelay
    // protocol-lint: ignores SeedTransfer
    // protocol-lint: ignores MasterBeacon, ControlAck
    // protocol-lint: ignores QuerySubmit, QueryCancel, QueryResult
    // protocol-lint: ignores QueryDone
    std::vector<Particle>* adopted = nullptr;
    if (auto* batch = std::get_if<ParticleBatch>(&msg.payload)) {
      adopted = &batch->particles;
    } else if (auto* undeliv = std::get_if<Undeliverable>(&msg.payload)) {
      adopted = &undeliv->particles;
    }
    if (adopted == nullptr) return;
    for (Particle& p : *adopted) {
      ctx.charge_particle_memory(static_cast<std::int64_t>(
          resident_particle_bytes(p, ctx.model())));
      pool_.add(decomp_->block_of(p.pos), std::move(p));
    }
    if (!pool_.empty()) finished_ = false;  // adopted work re-opens us
    try_start(ctx);
  }

  void on_block_loaded(RankContext& ctx, BlockId) override {
    if (loads_outstanding_ > 0) --loads_outstanding_;
    try_start(ctx);
  }

  void on_compute_done(RankContext& ctx) override {
    std::vector<Particle> batch = std::move(in_flight_);
    in_flight_.clear();
    std::vector<AdvanceOutcome> outcomes = std::move(flights_);
    flights_.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Particle& p = batch[i];
      if (is_terminal(outcomes[i].status)) {
        ctx.log_termination(p);
        done_.push_back(std::move(p));
      } else {
        pool_.add(outcomes[i].blocking_block, std::move(p));
      }
    }
    try_start(ctx);
  }

  bool finished() const override { return finished_; }

  void collect_particles(std::vector<Particle>& out) const override {
    out.insert(out.end(), done_.begin(), done_.end());
  }

  void snapshot_particles(std::vector<Particle>& out) const override {
    out.insert(out.end(), initial_.begin(), initial_.end());
    pool_.append_all(out);
    out.insert(out.end(), in_flight_.begin(), in_flight_.end());
  }

 private:
  void try_start(RankContext& ctx) {
    if (finished_ || ctx.busy() || !in_flight_.empty()) return;

    if (pool_.empty()) {
      // All of this rank's streamlines have terminated; it is done,
      // independently of everyone else (§4.2).
      finished_ = true;
      return;
    }

    const BlockId runnable = pool_.first_block_where(
        [&ctx](BlockId id) { return ctx.block_resident(id); });
    if (runnable != kInvalidBlock) {
      // Advance the whole block queue in one burst (§9 batching).
      in_flight_ = pool_.drain_block(runnable);
      const int lookahead = ctx.prefetch_capacity();
      std::vector<Vec3> starts;
      if (lookahead > 0) {
        starts.reserve(in_flight_.size());
        for (const Particle& p : in_flight_) starts.push_back(p.pos);
      }
      BatchAdvanceResult r = advance_block_and_charge(ctx, in_flight_);
      flights_ = std::move(r.outcomes);
      ctx.begin_compute(static_cast<double>(r.total_steps) *
                            ctx.model().seconds_per_step,
                        r.total_steps);
      // Overlap: while this burst integrates, background-read the blocks
      // it is about to stop for (the outcomes name them exactly), then
      // the blocks those streamlines point at one block further on —
      // a short burst gives the one-ahead read no time to finish, the
      // two-ahead hint absorbs that — then fill any leftover depth with
      // the pooled runners-up.
      prefetch_blocking_targets(ctx, flights_, runnable, lookahead);
      prefetch_streamline_lookahead(ctx, *decomp_, in_flight_, starts,
                                    flights_, runnable, lookahead);
      prefetch_densest(ctx, pool_, runnable, lookahead);
      return;
    }

    // No in-memory work left: only now read one block from disk — the one
    // that unblocks the most streamlines.
    if (loads_outstanding_ == 0) {
      const BlockId next = pool_.densest_block();
      if (next != kInvalidBlock && !ctx.block_pending(next)) {
        ++loads_outstanding_;
        ctx.request_block(next);
        // Overlap the demand read with hints for the runners-up.
        prefetch_densest(ctx, pool_, next, ctx.prefetch_capacity());
      }
    }
  }

  const BlockDecomposition* decomp_;
  std::vector<Particle> initial_;
  ParticlePool pool_;
  std::vector<Particle> done_;
  std::vector<Particle> in_flight_;      // the burst being computed
  std::vector<AdvanceOutcome> flights_;  // outcome per in_flight_[i]
  int loads_outstanding_ = 0;
  bool finished_ = false;
};

}  // namespace

std::vector<std::vector<Particle>> partition_evenly_by_block(
    int num_ranks, const BlockDecomposition& decomp,
    std::vector<Particle> particles) {
  std::stable_sort(particles.begin(), particles.end(),
                   [&decomp](const Particle& a, const Particle& b) {
                     return decomp.block_of(a.pos) < decomp.block_of(b.pos);
                   });
  std::vector<std::vector<Particle>> out(
      static_cast<std::size_t>(num_ranks));
  const std::size_t total = particles.size();
  for (std::size_t r = 0; r < out.size(); ++r) {
    const std::size_t first = total * r / out.size();
    const std::size_t last = total * (r + 1) / out.size();
    out[r].assign(std::make_move_iterator(particles.begin() + first),
                  std::make_move_iterator(particles.begin() + last));
  }
  return out;
}

ProgramFactory make_load_on_demand(
    const BlockDecomposition* decomp,
    std::vector<std::vector<Particle>> initial) {
  auto shared = std::make_shared<std::vector<std::vector<Particle>>>(
      std::move(initial));
  return [decomp, shared](int rank,
                          int /*num_ranks*/) -> std::unique_ptr<RankProgram> {
    return std::make_unique<LoadOnDemandProgram>(
        decomp, std::move((*shared)[static_cast<std::size_t>(rank)]));
  };
}

}  // namespace sf
