#include "algorithms/static_alloc.hpp"

#include <map>
#include <memory>
#include <utility>

namespace sf {

namespace {

class StaticProgram final : public RankProgram {
 public:
  StaticProgram(const BlockDecomposition* decomp, int rank, int num_ranks,
                std::vector<Particle> initial, std::uint32_t total_active)
      : decomp_(decomp),
        rank_(rank),
        num_ranks_(num_ranks),
        initial_(std::move(initial)),
        total_active_(total_active) {}

  void start(RankContext& ctx) override {
    for (Particle& p : initial_) {
      ctx.charge_particle_memory(static_cast<std::int64_t>(
          resident_particle_bytes(p, ctx.model())));
      pool_.add(decomp_->block_of(p.pos), std::move(p));
    }
    initial_.clear();
    if (total_active_ == 0 && rank_ == counter_rank(ctx)) {
      broadcast_done(ctx);
      return;
    }
    try_start(ctx);
  }

  void on_message(RankContext& ctx, Message msg) override {
    // Static Allocation only trades particles and the §4.1 termination
    // count; Hybrid-only traffic cannot legally reach it, and ControlAck
    // is consumed by the control transport before program dispatch.
    // protocol-lint: ignores StatusUpdate, Command, SeedRequest
    // protocol-lint: ignores SeedRelay, SeedTransfer, MasterBeacon
    // protocol-lint: ignores ControlAck
    // protocol-lint: ignores QuerySubmit, QueryCancel, QueryResult
    // protocol-lint: ignores QueryDone
    if (auto* batch = std::get_if<ParticleBatch>(&msg.payload)) {
      for (Particle& p : batch->particles) {
        accept_or_forward(ctx, std::move(p));
      }
      try_start(ctx);
    } else if (auto* undeliv = std::get_if<Undeliverable>(&msg.payload)) {
      // One of our hand-offs bounced (dropped link or dead owner):
      // re-route each particle to the block's current live owner.
      for (Particle& p : undeliv->particles) {
        accept_or_forward(ctx, std::move(p));
      }
      try_start(ctx);
    } else if (auto* term = std::get_if<TerminationCount>(&msg.payload)) {
      // A worker's cumulative report, or the runtime's full-ledger
      // recount delivered to us as the new acting counter after a crash.
      merge_board(ctx, term->totals);
    } else if (std::holds_alternative<DoneSignal>(msg.payload)) {
      finished_ = true;
    }
  }

  void on_block_loaded(RankContext& ctx, BlockId) override { try_start(ctx); }

  void on_compute_done(RankContext& ctx) override {
    std::vector<Particle> batch = std::move(in_flight_);
    in_flight_.clear();
    std::vector<AdvanceOutcome> outcomes = std::move(flights_);
    flights_.clear();

    // Group hand-offs by (owner, block) so one burst produces one
    // ParticleBatch per destination instead of one per streamline.
    std::map<std::pair<int, BlockId>, std::vector<Particle>> forwards;
    std::uint32_t new_terminations = 0;

    for (std::size_t i = 0; i < batch.size(); ++i) {
      Particle& p = batch[i];
      if (is_terminal(outcomes[i].status)) {
        // First-time terminations only: a recovery re-run's duplicate
        // must not decrement the global count twice.
        if (ctx.log_termination(p)) ++new_terminations;
        done_.push_back(std::move(p));
        continue;
      }
      const BlockId need = outcomes[i].blocking_block;
      // The static block->rank map, redirected past dead ranks: a dead
      // owner's blocks fall to the next live rank in cyclic order.
      const int owner = live_owner(ctx, decomp_->num_blocks(), need);
      if (owner == rank_) {
        pool_.add(need, std::move(p));
        if (!ctx.block_resident(need) && !ctx.block_pending(need)) {
          ctx.request_block(need);
        }
      } else {
        // Communicate the streamline to the block's owner (§4.1).
        ctx.charge_particle_memory(-static_cast<std::int64_t>(
            resident_particle_bytes(p, ctx.model())));
        forwards[{owner, need}].push_back(std::move(p));
      }
    }

    for (auto& [dest, particles] : forwards) {
      Message m;
      m.payload = ParticleBatch{dest.second, std::move(particles)};
      ctx.send(dest.first, std::move(m));
    }
    if (new_terminations > 0) note_terminations(ctx, new_terminations);
    try_start(ctx);
  }

  bool finished() const override { return finished_; }

  void collect_particles(std::vector<Particle>& out) const override {
    out.insert(out.end(), done_.begin(), done_.end());
  }

  void snapshot_particles(std::vector<Particle>& out) const override {
    out.insert(out.end(), initial_.begin(), initial_.end());
    pool_.append_all(out);
    out.insert(out.end(), in_flight_.begin(), in_flight_.end());
  }

 private:
  // Pool an incoming particle if its block is (now) ours, else forward it
  // to the block's live owner.  Outside fault injection the owner is
  // always this rank (hand-offs are addressed to the static owner).
  void accept_or_forward(RankContext& ctx, Particle p) {
    const BlockId b = decomp_->block_of(p.pos);
    const int owner = live_owner(ctx, decomp_->num_blocks(), b);
    if (owner == rank_) {
      ctx.charge_particle_memory(static_cast<std::int64_t>(
          resident_particle_bytes(p, ctx.model())));
      pool_.add(b, std::move(p));
    } else {
      Message m;
      m.payload = ParticleBatch{b, {std::move(p)}};
      ctx.send(owner, std::move(m));
    }
  }

  void try_start(RankContext& ctx) {
    if (finished_ || ctx.busy() || !in_flight_.empty()) return;

    const BlockId runnable = pool_.first_block_where(
        [&ctx](BlockId id) { return ctx.block_resident(id); });
    if (runnable != kInvalidBlock) {
      // Advance the whole block queue in one burst (§9 batching).
      in_flight_ = pool_.drain_block(runnable);
      BatchAdvanceResult r = advance_block_and_charge(ctx, in_flight_);
      flights_ = std::move(r.outcomes);
      ctx.begin_compute(static_cast<double>(r.total_steps) *
                            ctx.model().seconds_per_step,
                        r.total_steps);
      // Overlap: hand-offs that arrived during earlier bursts pooled
      // under not-yet-resident owned blocks; read them in the background
      // while this burst integrates.  Shallow regardless of the
      // configured depth — this rank only ever reads its own contiguous
      // range, so a deep speculative pipeline just churns staging.
      prefetch_densest(ctx, pool_, runnable,
                       std::min(4, ctx.prefetch_capacity()));
      return;
    }

    // Nothing runnable: fetch every pooled block that has waiting work
    // (owned blocks by construction, plus any adopted from a dead rank).
    for (const auto& [block, count] : pool_.census()) {
      if (!ctx.block_resident(block) && !ctx.block_pending(block)) {
        ctx.request_block(block);
      }
    }
  }

  // The acting termination counter is the lowest live rank.  Every rank
  // computes it the same way, so when rank 0 dies the counter role (and
  // every subsequent report) migrates to the next survivor without an
  // election; the runtime seeds the successor's board with a full ledger
  // recount so reports already absorbed by the dead counter are not lost.
  int counter_rank(RankContext& ctx) const {
    for (int r = 0; r < num_ranks_; ++r) {
      if (ctx.is_alive(r)) return r;
    }
    return 0;
  }

  void note_terminations(RankContext& ctx, std::uint32_t n) {
    my_total_ += n;
    if (board_[rank_] < my_total_) board_[rank_] = my_total_;
    const int counter = counter_rank(ctx);
    if (counter == rank_) {
      maybe_finish(ctx);
      return;
    }
    // Report the cumulative total, not a delta: max-merge on the counter
    // makes duplicated or re-ordered reports (at-least-once control
    // delivery, post-crash re-reports) harmless.
    Message m;
    m.payload = TerminationCount{{{rank_, my_total_}}};
    ctx.send(counter, std::move(m));
  }

  // Max-merge per-rank cumulative totals into the board; when this rank
  // is the acting counter and every streamline is accounted for, finish.
  void merge_board(RankContext& ctx,
                   const std::vector<std::pair<int, std::uint32_t>>& totals) {
    for (const auto& [r, total] : totals) {
      auto& hw = board_[r];
      if (total > hw) hw = total;
    }
    maybe_finish(ctx);
  }

  void maybe_finish(RankContext& ctx) {
    if (finished_ || rank_ != counter_rank(ctx)) return;
    std::uint64_t done = 0;
    for (const auto& [r, total] : board_) done += total;
    if (done >= total_active_) broadcast_done(ctx);
  }

  void broadcast_done(RankContext& ctx) {
    for (int r = 0; r < num_ranks_; ++r) {
      if (r == rank_ || !ctx.is_alive(r)) continue;
      Message m;
      m.payload = DoneSignal{};
      ctx.send(r, std::move(m));
    }
    finished_ = true;
  }

  const BlockDecomposition* decomp_;
  int rank_;
  int num_ranks_;
  std::vector<Particle> initial_;
  std::uint32_t total_active_;  // global streamline count (every rank)
  std::uint32_t my_total_ = 0;  // cumulative first-time terminations here
  // Per-rank cumulative high-water marks; authoritative on the acting
  // counter, where global done = sum of the board.
  std::map<int, std::uint32_t> board_;

  ParticlePool pool_;
  std::vector<Particle> done_;
  std::vector<Particle> in_flight_;          // the burst being computed
  std::vector<AdvanceOutcome> flights_;      // outcome per in_flight_[i]
  bool finished_ = false;
};

}  // namespace

std::vector<std::vector<Particle>> partition_by_block_owner(
    const BlockDecomposition& decomp, int num_ranks,
    std::vector<Particle> particles) {
  std::vector<std::vector<Particle>> out(
      static_cast<std::size_t>(num_ranks));
  for (Particle& p : particles) {
    const BlockId b = decomp.block_of(p.pos);
    const int owner = contiguous_owner(decomp.num_blocks(), num_ranks, b);
    out[static_cast<std::size_t>(owner)].push_back(std::move(p));
  }
  return out;
}

ProgramFactory make_static_allocation(
    const BlockDecomposition* decomp,
    std::vector<std::vector<Particle>> initial, std::uint32_t total_active) {
  auto shared = std::make_shared<std::vector<std::vector<Particle>>>(
      std::move(initial));
  return [decomp, shared, total_active](
             int rank, int num_ranks) -> std::unique_ptr<RankProgram> {
    return std::make_unique<StaticProgram>(
        decomp, rank, num_ranks,
        std::move((*shared)[static_cast<std::size_t>(rank)]), total_active);
  };
}

}  // namespace sf
