#pragma once

// Static Allocation (§4.1): parallelize across blocks.
//
// Blocks are statically assigned in contiguous 1/n slices.  Each
// streamline is integrated until it leaves the blocks owned by its
// current processor, then communicated to the owner of the block it
// entered.  A globally communicated streamline count detects
// termination: each rank reports its cumulative terminated total to the
// acting counter — the lowest live rank, so the role survives rank-0
// death — which max-merges the reports and broadcasts a done signal once
// every streamline is accounted for.
//
// Strengths: minimal I/O (each block read at most once by its owner).
// Weaknesses: load imbalance and heavy communication when streamlines
// concentrate — including running out of memory outright when a dense
// seed set lands on one processor (Figure 13).

#include <span>

#include "algorithms/routing.hpp"
#include "runtime/rank_context.hpp"

namespace sf {

// Partition particles by the static owner of their seed block: the
// initial distribution of §4.1.
std::vector<std::vector<Particle>> partition_by_block_owner(
    const BlockDecomposition& decomp, int num_ranks,
    std::vector<Particle> particles);

// Program factory.  `initial[r]` are rank r's starting particles;
// `total_active` is the global count of live streamlines (the number the
// termination protocol counts down from).
ProgramFactory make_static_allocation(const BlockDecomposition* decomp,
                                      std::vector<std::vector<Particle>> initial,
                                      std::uint32_t total_active);

}  // namespace sf
