#include "algorithms/routing.hpp"

#include <stdexcept>

namespace sf {

std::pair<BlockId, BlockId> contiguous_range(int num_blocks, int num_ranks,
                                             int rank) {
  const auto nb = static_cast<std::int64_t>(num_blocks);
  const BlockId first = static_cast<BlockId>(nb * rank / num_ranks);
  const BlockId last = static_cast<BlockId>(nb * (rank + 1) / num_ranks);
  return {first, last};
}

int contiguous_owner(int num_blocks, int num_ranks, BlockId block) {
  if (block < 0 || block >= num_blocks) {
    throw std::out_of_range("contiguous_owner: bad block id");
  }
  // Inverse of contiguous_range with first(r) = floor(NB*r/P): the owner
  // of b is floor(((b+1)*P - 1) / NB).
  return static_cast<int>(
      ((static_cast<std::int64_t>(block) + 1) * num_ranks - 1) / num_blocks);
}

std::size_t resident_particle_bytes(const Particle& p,
                                    const MachineModel& model) {
  return model.particle_overhead_bytes +
         static_cast<std::size_t>(p.geometry_points) * sizeof(Vec3);
}

void ParticlePool::add(BlockId block, Particle p) {
  by_block_[block].push_back(std::move(p));
  ++total_;
}

std::optional<Particle> ParticlePool::take_from(BlockId b) {
  auto it = by_block_.find(b);
  if (it == by_block_.end() || it->second.empty()) return std::nullopt;
  Particle p = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) by_block_.erase(it);
  --total_;
  return p;
}

std::size_t ParticlePool::count_in(BlockId b) const {
  auto it = by_block_.find(b);
  return it == by_block_.end() ? 0 : it->second.size();
}

BlockId ParticlePool::densest_block() const {
  BlockId best = kInvalidBlock;
  std::size_t best_count = 0;
  for (const auto& [block, queue] : by_block_) {
    if (queue.size() > best_count) {
      best_count = queue.size();
      best = block;
    }
  }
  return best;
}

std::vector<std::pair<BlockId, std::uint32_t>> ParticlePool::census() const {
  std::vector<std::pair<BlockId, std::uint32_t>> out;
  out.reserve(by_block_.size());
  for (const auto& [block, queue] : by_block_) {
    if (!queue.empty()) {
      out.emplace_back(block, static_cast<std::uint32_t>(queue.size()));
    }
  }
  return out;
}

std::vector<Particle> ParticlePool::drain_block(BlockId b) {
  std::vector<Particle> out;
  auto it = by_block_.find(b);
  if (it == by_block_.end()) return out;
  out.assign(std::make_move_iterator(it->second.begin()),
             std::make_move_iterator(it->second.end()));
  total_ -= out.size();
  by_block_.erase(it);
  return out;
}

void ParticlePool::append_all(std::vector<Particle>& out) const {
  for (const auto& [block, queue] : by_block_) {
    out.insert(out.end(), queue.begin(), queue.end());
  }
}

std::vector<Particle> make_particles(const BlockDecomposition& decomp,
                                     std::span<const Vec3> seeds,
                                     std::vector<Particle>& rejected) {
  std::vector<Particle> out;
  out.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    Particle p;
    p.id = static_cast<std::uint32_t>(i);
    p.pos = seeds[i];
    if (decomp.block_of(seeds[i]) == kInvalidBlock) {
      p.status = ParticleStatus::kExitedDomain;
      rejected.push_back(p);
    } else {
      out.push_back(p);
    }
  }
  return out;
}

int next_live_rank(const RankContext& ctx, int after) {
  const int n = ctx.num_ranks();
  for (int i = 1; i <= n; ++i) {
    const int r = (after + i) % n;
    if (ctx.is_alive(r)) return r;
  }
  throw std::logic_error("next_live_rank: no live ranks");
}

int live_owner(const RankContext& ctx, int num_blocks, BlockId block) {
  const int owner = contiguous_owner(num_blocks, ctx.num_ranks(), block);
  return ctx.is_alive(owner) ? owner : next_live_rank(ctx, owner);
}

AdvanceOutcome advance_and_charge(RankContext& ctx, Particle& particle) {
  const std::uint32_t points_before = particle.geometry_points;
  const AdvanceOutcome outcome = ctx.tracer().advance(
      particle, [&ctx](BlockId id) { return ctx.block(id); });
  const std::uint32_t grown = particle.geometry_points - points_before;
  if (grown != 0) {
    ctx.charge_particle_memory(static_cast<std::int64_t>(grown) *
                               static_cast<std::int64_t>(sizeof(Vec3)));
  }
  return outcome;
}

BatchAdvanceResult advance_block_and_charge(RankContext& ctx,
                                            std::span<Particle> batch) {
  std::int64_t points_before = 0;
  for (const Particle& p : batch) points_before += p.geometry_points;

  BatchAdvanceResult r;
  r.outcomes = ctx.tracer().advance_batch(
      batch, [&ctx](BlockId id) { return ctx.block(id); });

  std::int64_t points_after = 0;
  for (const Particle& p : batch) points_after += p.geometry_points;
  const std::int64_t grown = points_after - points_before;
  if (grown != 0) {
    ctx.charge_particle_memory(grown *
                               static_cast<std::int64_t>(sizeof(Vec3)));
  }
  for (const AdvanceOutcome& o : r.outcomes) r.total_steps += o.steps;
  return r;
}

}  // namespace sf
