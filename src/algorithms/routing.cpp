#include "algorithms/routing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sf {

std::pair<BlockId, BlockId> contiguous_range(int num_blocks, int num_ranks,
                                             int rank) {
  const auto nb = static_cast<std::int64_t>(num_blocks);
  const BlockId first = static_cast<BlockId>(nb * rank / num_ranks);
  const BlockId last = static_cast<BlockId>(nb * (rank + 1) / num_ranks);
  return {first, last};
}

int contiguous_owner(int num_blocks, int num_ranks, BlockId block) {
  if (block < 0 || block >= num_blocks) {
    throw std::out_of_range("contiguous_owner: bad block id");
  }
  // Inverse of contiguous_range with first(r) = floor(NB*r/P): the owner
  // of b is floor(((b+1)*P - 1) / NB).
  return static_cast<int>(
      ((static_cast<std::int64_t>(block) + 1) * num_ranks - 1) / num_blocks);
}

std::size_t resident_particle_bytes(const Particle& p,
                                    const MachineModel& model) {
  return model.particle_overhead_bytes +
         static_cast<std::size_t>(p.geometry_points) * sizeof(Vec3);
}

void ParticlePool::add(BlockId block, Particle p) {
  by_block_[block].push_back(std::move(p));
  ++total_;
}

std::optional<Particle> ParticlePool::take_from(BlockId b) {
  auto it = by_block_.find(b);
  if (it == by_block_.end() || it->second.empty()) return std::nullopt;
  Particle p = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) by_block_.erase(it);
  --total_;
  return p;
}

std::size_t ParticlePool::count_in(BlockId b) const {
  auto it = by_block_.find(b);
  return it == by_block_.end() ? 0 : it->second.size();
}

BlockId ParticlePool::densest_block() const {
  BlockId best = kInvalidBlock;
  std::size_t best_count = 0;
  for (const auto& [block, queue] : by_block_) {
    if (queue.size() > best_count) {
      best_count = queue.size();
      best = block;
    }
  }
  return best;
}

std::vector<std::pair<BlockId, std::uint32_t>> ParticlePool::census() const {
  std::vector<std::pair<BlockId, std::uint32_t>> out;
  out.reserve(by_block_.size());
  for (const auto& [block, queue] : by_block_) {
    if (!queue.empty()) {
      out.emplace_back(block, static_cast<std::uint32_t>(queue.size()));
    }
  }
  return out;
}

std::vector<Particle> ParticlePool::drain_block(BlockId b) {
  std::vector<Particle> out;
  auto it = by_block_.find(b);
  if (it == by_block_.end()) return out;
  out.assign(std::make_move_iterator(it->second.begin()),
             std::make_move_iterator(it->second.end()));
  total_ -= out.size();
  by_block_.erase(it);
  return out;
}

void ParticlePool::append_all(std::vector<Particle>& out) const {
  for (const auto& [block, queue] : by_block_) {
    out.insert(out.end(), queue.begin(), queue.end());
  }
}

std::vector<Particle> make_particles(const BlockDecomposition& decomp,
                                     std::span<const Vec3> seeds,
                                     std::vector<Particle>& rejected) {
  std::vector<Particle> out;
  out.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    Particle p;
    p.id = static_cast<std::uint32_t>(i);
    p.pos = seeds[i];
    if (decomp.block_of(seeds[i]) == kInvalidBlock) {
      p.status = ParticleStatus::kExitedDomain;
      rejected.push_back(p);
    } else {
      out.push_back(p);
    }
  }
  return out;
}

namespace {

// Shared tail of every predictor: hint the ranked candidates (count
// descending, id ascending) that are not already resident, pending, or
// the excluded focus block.  prefetch_block is a no-op when async I/O
// is off, so the synchronous demand path is untouched.
void issue_ranked_hints(RankContext& ctx,
                        std::vector<std::pair<BlockId, std::uint32_t>> ranked,
                        BlockId exclude, int max_hints) {
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  int hinted = 0;
  for (const auto& [block, count] : ranked) {
    if (block == exclude || ctx.block_resident(block) ||
        ctx.block_pending(block)) {
      continue;
    }
    ctx.prefetch_block(block);
    if (++hinted >= max_hints) break;
  }
}

}  // namespace

void prefetch_densest(RankContext& ctx, const ParticlePool& pool,
                      BlockId exclude, int max_hints) {
  if (max_hints <= 0) return;
  issue_ranked_hints(ctx, pool.census(), exclude, max_hints);
}

void prefetch_blocking_targets(RankContext& ctx,
                               std::span<const AdvanceOutcome> outcomes,
                               BlockId exclude, int max_hints) {
  if (max_hints <= 0) return;
  std::map<BlockId, std::uint32_t> census;
  for (const AdvanceOutcome& o : outcomes) {
    if (o.status == ParticleStatus::kActive &&
        o.blocking_block != kInvalidBlock) {
      ++census[o.blocking_block];
    }
  }
  issue_ranked_hints(ctx, {census.begin(), census.end()}, exclude, max_hints);
}

void prefetch_streamline_lookahead(RankContext& ctx,
                                   const BlockDecomposition& decomp,
                                   std::span<const Particle> batch,
                                   std::span<const Vec3> start_positions,
                                   std::span<const AdvanceOutcome> outcomes,
                                   BlockId exclude, int max_hints) {
  if (max_hints <= 0) return;
  const AABB& dom = decomp.domain();
  const Vec3 bsize{(dom.hi.x - dom.lo.x) / decomp.nbx(),
                   (dom.hi.y - dom.lo.y) / decomp.nby(),
                   (dom.hi.z - dom.lo.z) / decomp.nbz()};
  // Far enough past the blocking block's near face to land inside the
  // neighbour, short enough not to skip it.
  const double probe = 0.75 * std::min({bsize.x, bsize.y, bsize.z});
  std::map<BlockId, std::uint32_t> census;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const AdvanceOutcome& o = outcomes[i];
    if (o.status != ParticleStatus::kActive ||
        o.blocking_block == kInvalidBlock) {
      continue;
    }
    const Vec3 dir = batch[i].pos - start_positions[i];
    const double len =
        std::sqrt(dir.x * dir.x + dir.y * dir.y + dir.z * dir.z);
    if (len <= 0.0) continue;
    const BlockId next = decomp.block_of(batch[i].pos + dir * (probe / len));
    if (next == kInvalidBlock || next == o.blocking_block) continue;
    ++census[next];
  }
  issue_ranked_hints(ctx, {census.begin(), census.end()}, exclude, max_hints);
}

int next_live_rank(const RankContext& ctx, int after) {
  const int n = ctx.num_ranks();
  for (int i = 1; i <= n; ++i) {
    const int r = (after + i) % n;
    if (ctx.is_alive(r)) return r;
  }
  throw std::logic_error("next_live_rank: no live ranks");
}

int live_owner(const RankContext& ctx, int num_blocks, BlockId block) {
  const int owner = contiguous_owner(num_blocks, ctx.num_ranks(), block);
  return ctx.is_alive(owner) ? owner : next_live_rank(ctx, owner);
}

AdvanceOutcome advance_and_charge(RankContext& ctx, Particle& particle) {
  const std::uint32_t points_before = particle.geometry_points;
  const AdvanceOutcome outcome = ctx.tracer().advance(
      particle, [&ctx](BlockId id) { return ctx.block(id); });
  const std::uint32_t grown = particle.geometry_points - points_before;
  if (grown != 0) {
    ctx.charge_particle_memory(static_cast<std::int64_t>(grown) *
                               static_cast<std::int64_t>(sizeof(Vec3)));
  }
  return outcome;
}

BatchAdvanceResult advance_block_and_charge(RankContext& ctx,
                                            std::span<Particle> batch) {
  std::int64_t points_before = 0;
  for (const Particle& p : batch) points_before += p.geometry_points;

  BatchAdvanceResult r;
  // The focus block of each batch round is pinned in the rank's cache so
  // async load completions landing between rounds can't evict it from
  // under the tracer's cursor (no-ops on contexts without a cache).
  const BlockPinHooks pins{
      [&ctx](BlockId id) { ctx.pin_block(id); },
      [&ctx](BlockId id) { ctx.unpin_block(id); }};
  r.outcomes = ctx.tracer().advance_batch(
      batch, [&ctx](BlockId id) { return ctx.block(id); }, nullptr, &pins);

  std::int64_t points_after = 0;
  for (const Particle& p : batch) points_after += p.geometry_points;
  const std::int64_t grown = points_after - points_before;
  if (grown != 0) {
    ctx.charge_particle_memory(grown *
                               static_cast<std::int64_t>(sizeof(Vec3)));
  }
  for (const AdvanceOutcome& o : r.outcomes) r.total_steps += o.steps;
  return r;
}

}  // namespace sf
