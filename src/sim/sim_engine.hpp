#pragma once

// Discrete-event simulation engine: a clock plus the event queue, with an
// abort channel for simulated failures (OOM).

#include <stdexcept>
#include <string>

#include "sim/event_queue.hpp"

namespace sf {

// Thrown inside event handlers to abort the simulated run (e.g. a rank
// exceeded its memory budget).  Caught by SimRuntime::run, which may turn
// it into an injected crash of `rank` instead of failing the whole run.
struct SimAbort : std::runtime_error {
  explicit SimAbort(const std::string& what, int aborting_rank = -1)
      : std::runtime_error(what), rank(aborting_rank) {}
  int rank;
};

class SimEngine {
 public:
  SimTime now() const { return now_; }

  // Pre-size the event heap (SimRuntime calls this with an estimate from
  // the rank count so steady-state scheduling never reallocates).
  void reserve_events(std::size_t events) { queue_.reserve(events); }

  void schedule_at(SimTime t, EventQueue::Handler fn) {
    queue_.schedule(t, std::move(fn));
  }
  void schedule_after(double dt, EventQueue::Handler fn) {
    queue_.schedule(now_ + dt, std::move(fn));
  }

  // Run until the queue drains; returns the time of the last event.
  // SimAbort propagates to the caller with `now()` at the failure point.
  SimTime run() {
    while (step()) {
    }
    return now_;
  }

  // Run a single event; returns false once the queue is empty.  Lets a
  // caller catch SimAbort per event and keep the simulation going (fault
  // injection turns an OOM abort into a rank crash).
  bool step() {
    if (queue_.empty()) return false;
    now_ = queue_.next_time();
    queue_.run_next();
    return true;
  }

  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
};

}  // namespace sf
