#pragma once

// Deterministic discrete-event queue.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events
// run in the order they were scheduled and repeated runs are bit-identical.
//
// Backed by an explicit vector heap (std::push_heap/pop_heap) rather than
// std::priority_queue so the storage can be reserved up front and reused
// across the whole run — SimRuntime schedules one event per message and
// per disk completion, and the heap's capacity high-water mark is reached
// once and never reallocated again.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace sf {

using SimTime = double;  // simulated seconds

class EventQueue {
 public:
  using Handler = std::function<void()>;

  void reserve(std::size_t events) { heap_.reserve(events); }

  void schedule(SimTime time, Handler fn) {
    heap_.push_back(Event{time, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  SimTime next_time() const { return heap_.front().time; }

  // Pop and run the earliest event; returns its time.
  SimTime run_next() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();  // keeps capacity: the slot is reused by the next
                       // schedule() with no allocation
    ev.fn();
    return ev.time;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sf
