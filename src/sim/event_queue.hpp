#pragma once

// Deterministic discrete-event queue.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events
// run in the order they were scheduled and repeated runs are bit-identical.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sf {

using SimTime = double;  // simulated seconds

class EventQueue {
 public:
  using Handler = std::function<void()>;

  void schedule(SimTime time, Handler fn) {
    heap_.push(Event{time, next_seq_++, std::move(fn)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  SimTime next_time() const { return heap_.top().time; }

  // Pop and run the earliest event; returns its time.
  SimTime run_next() {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    ev.fn();
    return ev.time;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sf
