// SharedDisk is header-only; this TU exists so the module shows up as a
// distinct object in the archive and to anchor future out-of-line growth.
#include "sim/disk.hpp"
