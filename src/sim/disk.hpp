#pragma once

// Shared parallel-filesystem model.
//
// The filesystem has `channels` independent servers.  A read request
// entering at time t is served by the earliest-free channel: it starts at
// max(t, channel_free) and occupies the channel for the service time.
// Requests must be submitted in non-decreasing time order (the DES
// processes events chronologically, so this holds by construction).

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/machine_model.hpp"

namespace sf {

class SharedDisk {
 public:
  SharedDisk(const MachineModel& model, int channels)
      : model_(model), free_at_(static_cast<std::size_t>(channels), 0.0) {
    if (channels < 1) throw std::invalid_argument("SharedDisk: channels >= 1");
  }

  // Submit a read of `bytes` at time `now`; returns the completion time.
  SimTime submit_read(SimTime now, std::size_t bytes) {
    if (now < last_submit_) {
      throw std::logic_error("SharedDisk: reads must arrive in time order");
    }
    last_submit_ = now;
    // Earliest-free channel (ties broken by index for determinism).
    std::size_t best = 0;
    for (std::size_t c = 1; c < free_at_.size(); ++c) {
      if (free_at_[c] < free_at_[best]) best = c;
    }
    const SimTime start = std::max(now, free_at_[best]);
    const SimTime done = start + model_.io_service_seconds(bytes);
    free_at_[best] = done;
    ++reads_;
    bytes_read_ += bytes;
    return done;
  }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t bytes_read() const { return bytes_read_; }

  // Fault-injection bookkeeping: a submitted read whose result was
  // discarded (simulated I/O error).  The channel time is still consumed —
  // the server did the work, the reader got garbage.
  void note_faulted_read() { ++faulted_reads_; }
  std::uint64_t faulted_reads() const { return faulted_reads_; }

 private:
  MachineModel model_;
  std::vector<SimTime> free_at_;
  SimTime last_submit_ = 0.0;
  std::uint64_t reads_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t faulted_reads_ = 0;
};

}  // namespace sf
