#pragma once

// Interconnect model: point-to-point messages with per-message latency,
// payload bandwidth, and per-endpoint CPU cost.  The CPU cost is what the
// paper reports as "communication time" (time to post sends/receives and
// associated management), so it is tracked per rank here.

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/machine_model.hpp"

namespace sf {

class Network {
 public:
  explicit Network(const MachineModel& model) : model_(model) {}

  // Returns the delivery time of a message sent at `now`, and accounts
  // the transfer.  The caller charges endpoint CPU costs to the ranks.
  SimTime delivery_time(SimTime now, std::size_t bytes) {
    ++messages_;
    bytes_sent_ += bytes;
    return now + model_.message_flight_seconds(bytes);
  }

  double endpoint_cost(std::size_t bytes) const {
    return model_.message_endpoint_seconds(bytes);
  }

  std::uint64_t messages() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  // Fault-injection bookkeeping: a message accounted above whose delivery
  // was suppressed (the send cost was paid; the payload never arrived).
  void note_dropped(std::size_t bytes) {
    ++dropped_messages_;
    dropped_bytes_ += bytes;
  }
  std::uint64_t dropped_messages() const { return dropped_messages_; }
  std::uint64_t dropped_bytes() const { return dropped_bytes_; }

 private:
  MachineModel model_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t dropped_messages_ = 0;
  std::uint64_t dropped_bytes_ = 0;
};

}  // namespace sf
