#pragma once

// Cost model of the simulated distributed machine.
//
// Calibrated loosely against a 2009-era Cray XT5 (JaguarPF) with a Lustre
// parallel filesystem — the paper's testbed.  Absolute values matter less
// than the ratios (I/O latency vs per-step compute vs message overhead),
// which set where the algorithms' crossovers fall.

#include <cstddef>

namespace sf {

struct MachineModel {
  // --- Compute -----------------------------------------------------------
  // Simulated wall time charged per accepted integration step (includes
  // the amortized cost of rejected trials and cell location).
  double seconds_per_step = 4.0e-6;

  // --- Shared parallel filesystem -----------------------------------------
  // A block read costs io_latency + bytes / io_bandwidth on one of
  // io_channels concurrent servers; excess requests queue.  This is what
  // makes redundant reads hurt at scale.
  double io_latency = 4.0e-3;       // seconds per read request
  double io_bandwidth = 1.0e9;      // bytes/second per channel
  int io_channels = 128;            // concurrent filesystem servers (OSTs)

  // --- Interconnect --------------------------------------------------------
  double net_latency = 1.0e-5;      // seconds per message
  double net_bandwidth = 1.6e9;     // bytes/second on a link
  // CPU time to post/manage a send or receive.  This (plus packing) is the
  // "communication time" metric of §5.
  double msg_overhead = 2.0e-5;     // seconds of CPU per message endpoint
  double pack_bandwidth = 2.0e9;    // bytes/second for (un)packing payloads

  // --- Memory ---------------------------------------------------------------
  // Per-rank budget for resident particles (solver state + recorded
  // geometry).  Exceeding it aborts the run with OOM, like Static
  // Allocation on the dense thermal-hydraulics case (Figure 13).
  std::size_t particle_memory_bytes = 512ull << 20;
  // Fixed bookkeeping bytes per resident particle on top of its geometry.
  std::size_t particle_overhead_bytes = 8 << 10;

  // Time a message spends in flight (sender clock to receiver clock).
  double message_flight_seconds(std::size_t bytes) const {
    return net_latency + static_cast<double>(bytes) / net_bandwidth;
  }
  // CPU cost charged to an endpoint for handling a message.
  double message_endpoint_seconds(std::size_t bytes) const {
    return msg_overhead + static_cast<double>(bytes) / pack_bandwidth;
  }
  // Service time of one block read, excluding queueing.
  double io_service_seconds(std::size_t bytes) const {
    return io_latency + static_cast<double>(bytes) / io_bandwidth;
  }

  // The defaults above, named for readability at call sites.
  static MachineModel jaguar_like() { return {}; }
};

}  // namespace sf
