// SimEngine is header-only; see disk.cpp for the rationale of this TU.
#include "sim/sim_engine.hpp"
