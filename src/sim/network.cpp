// Network is header-only; see disk.cpp for the rationale of this TU.
#include "sim/network.hpp"
