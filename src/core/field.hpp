#pragma once

// Abstract steady vector field interface.
//
// Everything that can be advected through implements VectorField: analytic
// test fields, structured grids, block-set samplers inside the parallel
// algorithms, and the time-slice views used for pathlines.

#include <memory>

#include "core/aabb.hpp"
#include "core/vec3.hpp"

namespace sf {

class VectorField {
 public:
  virtual ~VectorField() = default;

  // Evaluate the field at `p`.  Returns false when `p` lies outside the
  // field's domain of definition (the caller treats this as streamline
  // exit); `out` is untouched in that case.
  virtual bool sample(const Vec3& p, Vec3& out) const = 0;

  // Domain of definition.  Sampling outside may fail; sampling inside
  // must succeed.
  virtual AABB bounds() const = 0;
};

using FieldPtr = std::shared_ptr<const VectorField>;

}  // namespace sf
