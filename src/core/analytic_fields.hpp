#pragma once

// Analytic vector fields.
//
// These stand in for the paper's proprietary simulation outputs (GenASiS
// supernova magnetic field, NIMROD tokamak field, Nek5000 thermal
// hydraulics).  Each is constructed to reproduce the *transport structure*
// that drives the paper's performance results — see DESIGN.md §2 for the
// substitution rationale.  They are also exact, cheap, and differentiable,
// which makes them ideal ground truth for integrator and FTLE tests.

#include <cstdint>
#include <vector>

#include "core/field.hpp"

namespace sf {

// Constant field; streamlines are straight lines.  Ground truth for
// integrator exactness and the "nearly uniform field traverses the whole
// dataset" problem class from §3.1 of the paper.
class UniformField final : public VectorField {
 public:
  explicit UniformField(const Vec3& v = {1, 0, 0},
                        const AABB& bounds = {{-1, -1, -1}, {1, 1, 1}})
      : v_(v), bounds_(bounds) {}

  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return bounds_; }

 private:
  Vec3 v_;
  AABB bounds_;
};

// Rigid rotation about an axis through `center`: v = omega x (p - center).
// Streamlines are exact circles with period 2*pi/|omega| — used to measure
// integrator convergence order.
class RotorField final : public VectorField {
 public:
  explicit RotorField(const Vec3& center = {}, const Vec3& omega = {0, 0, 1},
                      const AABB& bounds = {{-2, -2, -2}, {2, 2, 2}})
      : center_(center), omega_(omega), bounds_(bounds) {}

  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return bounds_; }

 private:
  Vec3 center_;
  Vec3 omega_;
  AABB bounds_;
};

// Linear saddle v = (lambda*x, -lambda*y, 0).  Exact solution
// x(t) = x0*exp(lambda t), y(t) = y0*exp(-lambda t).  Ground truth for FTLE
// (the FTLE of a linear saddle is exactly lambda everywhere).
class SaddleField final : public VectorField {
 public:
  explicit SaddleField(double lambda = 1.0,
                       const AABB& bounds = {{-4, -4, -1}, {4, 4, 1}})
      : lambda_(lambda), bounds_(bounds) {}

  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return bounds_; }

 private:
  double lambda_;
  AABB bounds_;
};

// Arnold–Beltrami–Childress flow, the classic divergence-free chaotic
// benchmark field:
//   v = (A sin z + C cos y, B sin x + A cos z, C sin y + B cos x)
// defined on a 2*pi-periodic box.
class ABCField final : public VectorField {
 public:
  ABCField(double a, double b, double c,
           const AABB& bounds = {{0, 0, 0},
                                 {6.283185307179586, 6.283185307179586,
                                  6.283185307179586}})
      : a_(a), b_(b), c_(c), bounds_(bounds) {}
  ABCField() : ABCField(1.0, 1.1547005383792517, 0.5773502691896258) {}

  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return bounds_; }

 private:
  double a_, b_, c_;
  AABB bounds_;
};

// Hill's spherical vortex: the classic exact solution of a vortex of
// radius `a` embedded in a uniform stream of speed U along -z (the
// vortex itself is at rest).  Interior streamlines are closed loops on
// which the Stokes streamfunction is exactly conserved — a strong
// validation target for the integrator and grid sampling.
class HillVortexField final : public VectorField {
 public:
  explicit HillVortexField(double radius = 0.6, double speed = 1.0,
                           const AABB& bounds = {{-1.5, -1.5, -1.5},
                                                 {1.5, 1.5, 1.5}})
      : a_(radius), u_(speed), bounds_(bounds) {}

  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return bounds_; }

  double radius() const { return a_; }

  // The Stokes streamfunction (conserved along streamlines; continuous
  // across the vortex boundary).
  double streamfunction(const Vec3& p) const;

 private:
  double a_, u_;
  AABB bounds_;
};

// Supernova-like magnetic field (substitute for the GenASiS dataset of
// Figure 1 and the Figures 5–8 scaling study).
//
// Three superposed solenoidal components on [-1,1]^3:
//   * a shock-front radial sweep: strong outward transport in a shell
//     around the expanding shock radius (streamlines seeded sparsely get
//     carried across the whole domain),
//   * differential rotation about the z axis whose angular velocity decays
//     with cylindrical radius (keeps densely seeded lines near the
//     proto-neutron star localized),
//   * a turbulent perturbation built as the curl of a low-order Fourier
//     vector potential (exactly divergence free, "complex magnetic field
//     inside the shock front").
struct SupernovaParams {
  double shock_radius = 0.55;   // centre of the radial sweep shell
  double shock_width = 0.18;    // gaussian width of the shell
  double shock_strength = 1.2;  // peak radial speed
  double rotation_strength = 2.0;
  double rotation_falloff = 0.35;  // cylindrical-radius scale of the rotor
  double turbulence_strength = 0.8;
  int turbulence_modes = 3;     // Fourier modes per axis in the potential
  std::uint64_t seed = 0x5eedULL;
};

class SupernovaField final : public VectorField {
 public:
  explicit SupernovaField(const SupernovaParams& params = {});

  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return {{-1, -1, -1}, {1, 1, 1}}; }

  // The turbulent component alone (curl of the vector potential); exposed
  // so tests can verify it is numerically divergence free.
  Vec3 turbulence(const Vec3& p) const;

 private:
  struct Mode {
    Vec3 k;      // wave vector
    Vec3 amp;    // potential amplitude
    Vec3 phase;  // per-component phase
  };

  SupernovaParams params_;
  std::vector<Mode> modes_;
};

// Tokamak-like magnetic field (substitute for the NIMROD dataset of
// Figure 2 and the Figures 9–12 scaling study).
//
// Torus of major radius R0 and minor radius a centred at the origin with
// the z axis as the torus axis.  The field is
//   B = B0 * R0/R * e_phi  +  poloidal winding with safety factor
//       q(r) = q0 + q1 (r/a)^2  +  resonant (m,n) island perturbation.
// Field lines are nearly closed, orbit the torus indefinitely and fill it
// uniformly regardless of where they are seeded — the property §5.2 of the
// paper calls out.  The perturbation creates a chaotic layer so some lines
// wander across flux surfaces.
struct TokamakParams {
  double major_radius = 1.0;
  double minor_radius = 0.45;
  double b0 = 1.0;      // toroidal field strength at R = R0
  double q0 = 1.1;      // on-axis safety factor
  double q1 = 1.9;      // edge shear
  double island_amplitude = 0.04;
  int island_m = 3;     // poloidal mode number
  int island_n = 2;     // toroidal mode number
};

class TokamakField final : public VectorField {
 public:
  explicit TokamakField(const TokamakParams& params = {});

  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return bounds_; }

  const TokamakParams& params() const { return params_; }

 private:
  TokamakParams params_;
  AABB bounds_;
};

// Thermal-hydraulics mixing flow (substitute for the Nek5000 dataset of
// Figures 3, 4 and the Figures 13–16 scaling study).
//
// Unit box with two inlets on the x=0 wall injecting gaussian-profile jets
// toward +x, an outlet sink near the upper corner, and a cellular
// recirculation pattern (curl of a potential, divergence free) filling the
// interior.  Dense seeding just outside an inlet stays within a few blocks
// for short integration times (the Load-On-Demand-wins case of Figure 13);
// sparse volume seeding traverses the whole box.
struct ThermalHydraulicsParams {
  Vec3 inlet1 = {0.0, 0.30, 0.30};
  Vec3 inlet2 = {0.0, 0.70, 0.30};
  double inlet_radius = 0.07;
  double jet_strength = 3.0;
  double jet_reach = 0.45;  // e-folding distance of the jet in x
  Vec3 outlet = {1.0, 0.85, 0.85};
  double outlet_strength = 1.0;
  double recirculation_strength = 0.5;
  int cells = 2;  // recirculation cells per axis
};

class ThermalHydraulicsField final : public VectorField {
 public:
  explicit ThermalHydraulicsField(const ThermalHydraulicsParams& params = {});

  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return {{0, 0, 0}, {1, 1, 1}}; }

  const ThermalHydraulicsParams& params() const { return params_; }

 private:
  ThermalHydraulicsParams params_;
};

}  // namespace sf
