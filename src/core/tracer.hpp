#pragma once

// Streamline advancement.
//
// Tracer::advance is the single inner loop shared by every algorithm and
// runtime: it advances one particle through whatever blocks the caller
// has available and stops either at a terminal condition or at the edge
// of the available data (reporting which block is needed next).  Because
// each position samples only its *owning* block's grid, the accepted-step
// sequence is identical regardless of which rank runs it or which other
// blocks happen to be loaded — see DESIGN.md §5.1.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/block_decomposition.hpp"
#include "core/dataset.hpp"
#include "core/integrator.hpp"
#include "core/particle.hpp"

namespace sf {

struct TraceLimits {
  double max_time = 1e12;          // integration-time budget per line
  std::uint32_t max_steps = 10000; // accepted-step budget per line
  double min_speed = 1e-8;         // below this the line is stagnant
};

// Observer for accepted integration steps (trajectory recording).
class TraceRecorder {
 public:
  virtual ~TraceRecorder() = default;
  // Called once when a particle starts (with its seed position) and after
  // every accepted step.
  virtual void record(const Particle& particle, const Vec3& position) = 0;
};

// Stores full polylines per particle id.
class PolylineRecorder final : public TraceRecorder {
 public:
  explicit PolylineRecorder(std::size_t num_particles)
      : lines_(num_particles) {}

  void record(const Particle& particle, const Vec3& position) override {
    lines_[particle.id].push_back(position);
  }

  const std::vector<std::vector<Vec3>>& lines() const { return lines_; }

 private:
  std::vector<std::vector<Vec3>> lines_;
};

// Returns the grid for a block if the caller currently has it, nullptr
// otherwise.  The returned pointer must stay valid for the duration of
// the advance() call.
using BlockAccessFn = std::function<const StructuredGrid*(BlockId)>;

struct AdvanceOutcome {
  // Terminal status, or kActive if the particle stopped because it needs
  // a block that is not available.
  ParticleStatus status = ParticleStatus::kActive;
  // When status == kActive: the block the particle needs next.
  BlockId blocking_block = kInvalidBlock;
  std::uint64_t steps = 0;   // accepted steps in this call
  std::uint64_t evals = 0;   // field evaluations in this call
};

class Tracer {
 public:
  Tracer(const BlockDecomposition* decomp, const IntegratorParams& iparams,
         const TraceLimits& limits)
      : decomp_(decomp), iparams_(iparams), limits_(limits) {}

  const IntegratorParams& integrator_params() const { return iparams_; }
  const TraceLimits& limits() const { return limits_; }

  // Advance `particle` while its owning block is available via `blocks`.
  // Updates the particle in place; returns what happened.
  AdvanceOutcome advance(Particle& particle, const BlockAccessFn& blocks,
                         TraceRecorder* recorder = nullptr) const;

 private:
  const BlockDecomposition* decomp_;
  IntegratorParams iparams_;
  TraceLimits limits_;
};

// ---------------------------------------------------------------------------
// Serial convenience APIs (the small-data entry points of the library).
// ---------------------------------------------------------------------------

// Trace all seeds over a fully accessible blocked dataset, serially.
std::vector<Particle> trace_all(const BlockedDataset& dataset,
                                std::span<const Vec3> seeds,
                                const IntegratorParams& iparams,
                                const TraceLimits& limits,
                                TraceRecorder* recorder = nullptr);

// Trace one streamline directly against any VectorField (no blocks).
// Used by FTLE / Poincaré / stream-surface analysis and the examples.
Particle trace_field(const VectorField& field, const Vec3& seed,
                     const IntegratorParams& iparams,
                     const TraceLimits& limits,
                     TraceRecorder* recorder = nullptr,
                     std::uint32_t particle_id = 0);

}  // namespace sf
