#pragma once

// Streamline advancement.
//
// Tracer::advance_batch is the single inner loop shared by every
// algorithm and runtime: it advances all particles resident in one block
// through whatever blocks the caller has available and stops each either
// at a terminal condition or at the edge of the available data
// (reporting which block is needed next).  Because each position samples
// only its *owning* block's grid, the accepted-step sequence is
// identical regardless of which rank runs it, which other blocks happen
// to be loaded, or how particles are grouped into batches — see
// DESIGN.md §5.1 and §9.
//
// Two implementations exist on purpose:
//  - the fast path (advance / advance_batch) keeps a block cursor and a
//    GridSampler cell cursor, skipping the BlockAccessFn lookup while
//    the owning block is unchanged and virtual dispatch always;
//  - advance_reference is the historical per-step virtual-dispatch loop,
//    kept verbatim as the oracle for the bit-identity golden test
//    (tests/test_fast_path.cpp) and as the bench baseline.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/block_decomposition.hpp"
#include "core/dataset.hpp"
#include "core/grid_sampler.hpp"
#include "core/integrator.hpp"
#include "core/particle.hpp"
#include "core/thread_annotations.hpp"

namespace sf {

struct TraceLimits {
  double max_time = 1e12;          // integration-time budget per line
  std::uint32_t max_steps = 10000; // accepted-step budget per line
  double min_speed = 1e-8;         // below this the line is stagnant
};

// Observer for accepted integration steps (trajectory recording).
class TraceRecorder {
 public:
  virtual ~TraceRecorder() = default;
  // Called once when a particle starts (with its seed position) and after
  // every accepted step.
  virtual void record(const Particle& particle, const Vec3& position) = 0;
  // Capacity hint, called before a particle's seed vertex is recorded:
  // the tracer's accepted-step budget bounds how many points the line
  // can grow.  Default: ignore.
  virtual void reserve_hint(std::size_t /*max_points*/) {}
};

// Stores full polylines per particle id.
class PolylineRecorder final : public TraceRecorder {
 public:
  explicit PolylineRecorder(std::size_t num_particles)
      : lines_(num_particles) {}

  void record(const Particle& particle, const Vec3& position) override {
    std::vector<Vec3>& line = lines_[particle.id];
    if (line.size() == 1 && line.capacity() < hint_) {
      // First accepted step: the line is live, so pre-size it.  Waiting
      // for the second vertex keeps dead-on-arrival seeds at one point.
      line.reserve(hint_);
    }
    line.push_back(position);
  }

  void reserve_hint(std::size_t max_points) override {
    hint_ = std::min(max_points, kReserveCap);
  }

  const std::vector<std::vector<Vec3>>& lines() const { return lines_; }

 private:
  // Cap the per-line reservation: long-budget runs (max_steps = 10^4+)
  // would otherwise commit the full worst case up front for every seed.
  static constexpr std::size_t kReserveCap = 4096;

  std::vector<std::vector<Vec3>> lines_;
  std::size_t hint_ = 0;
};

// Returns the grid for a block if the caller currently has it, nullptr
// otherwise.  The returned pointer must stay valid for the duration of
// the advance() / advance_batch() call.
using BlockAccessFn = std::function<const StructuredGrid*(BlockId)>;

// Optional eviction guards for advance_batch.  When the BlockAccessFn
// is backed by an LRU cache that can evict concurrently with the round
// (async completions inserting blocks) or at tiny capacities, the batch
// pins its focus block for the duration of each round so the grid the
// shared cursor holds cannot be purged mid-round.  Both hooks must
// tolerate any BlockId, resident or not.
struct BlockPinHooks {
  std::function<void(BlockId)> pin;
  std::function<void(BlockId)> unpin;
};

// Set of cancelled query ids, shared between the service control plane
// and the tracer's inner loop.  A particle whose query is in the set
// terminates as kCancelled at its next advance — before any integration
// step, so cancellation can never perturb the accepted-step sequence of
// particles from *other* queries (the schedule-independence argument of
// DESIGN.md §5.1 makes the drain bit-safe).  The empty-set fast path is
// one relaxed atomic load, so standalone runs pay nothing measurable.
class QueryCancelSet {
 public:
  void cancel(std::uint32_t query) SF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (std::find(set_.begin(), set_.end(), query) == set_.end()) {
      set_.push_back(query);
    }
    // lockfree-lint: spsc — release store under the mutex pairs with the
    // acquire load in contains(): the set_ append above happens-before
    // any reader that observes the nonzero count.
    count_.store(set_.size(), std::memory_order_release);
  }

  void clear() SF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    set_.clear();
    // lockfree-lint: spsc — release store, same pairing as cancel(): the
    // clear happens-before a reader observing the zero count.
    count_.store(0, std::memory_order_release);
  }

  bool contains(std::uint32_t query) const SF_EXCLUDES(mutex_) {
    // lockfree-lint: spsc — acquire fast path pairs with the release
    // store in cancel(): a nonzero count happens-after the append it
    // counts, and the locked re-read below decides membership.
    if (count_.load(std::memory_order_acquire) == 0) return false;
    MutexLock lock(mutex_);
    return std::find(set_.begin(), set_.end(), query) != set_.end();
  }

  bool empty() const {
    // lockfree-lint: spsc — acquire load, same pairing as contains().
    return count_.load(std::memory_order_acquire) == 0;
  }

 private:
  // First in the lock order (LockRank::kCancelSet): contains() is called
  // from the tracer's inner loop, potentially while a runtime board lock
  // is NOT held; nothing is ever acquired under it.
  mutable Mutex mutex_{LockRank::kCancelSet};
  std::atomic<std::size_t> count_{0};
  std::vector<std::uint32_t> set_ SF_GUARDED_BY(mutex_);
};

struct AdvanceOutcome {
  // Terminal status, or kActive if the particle stopped because it needs
  // a block that is not available.
  ParticleStatus status = ParticleStatus::kActive;
  // When status == kActive: the block the particle needs next.
  BlockId blocking_block = kInvalidBlock;
  std::uint64_t steps = 0;   // accepted steps in this call
  std::uint64_t evals = 0;   // field evaluations in this call
};

// Inner-loop kernel selection for Tracer::advance_batch (DESIGN.md §14).
// kSimd runs the focus-block cohort through the AVX2 4-lane DOPRI5
// kernel (src/core/integrator_simd.hpp), which is bit-identical per
// particle to the scalar fast path — trajectories, statuses, step AND
// evaluation counts — so the choice is purely a throughput knob.
// kAuto picks SIMD when the host supports it and the cohort is wide
// enough to pay for lane setup; kSimd forces it wherever the hardware
// allows (still scalar on non-AVX2 hosts: forcing must not crash).
enum class AdvectionKernel : std::uint8_t { kAuto = 0, kScalar = 1, kSimd = 2 };

// True when the SIMD kernel is compiled in and the CPU reports AVX2.
// Defined in integrator_simd.cpp (runtime CPUID dispatch).
bool simd_kernel_available();

class Tracer {
 public:
  Tracer(const BlockDecomposition* decomp, const IntegratorParams& iparams,
         const TraceLimits& limits)
      : decomp_(decomp), iparams_(iparams), limits_(limits) {}

  const IntegratorParams& integrator_params() const { return iparams_; }
  const TraceLimits& limits() const { return limits_; }

  // Install (or remove, with nullptr) the cancelled-query set consulted
  // by the fast path.  Not owned; must outlive the advance calls.  The
  // reference loop deliberately ignores it — cancellation is a service
  // feature, the oracle stays frozen.
  void set_cancel_set(const QueryCancelSet* cancels) { cancels_ = cancels; }

  // advance_batch kernel choice (see AdvectionKernel).  Safe to flip at
  // any quiescent point: the SIMD path is bit-identical per particle.
  void set_kernel(AdvectionKernel kernel) { kernel_ = kernel; }
  AdvectionKernel kernel() const { return kernel_; }

  // Advance `particle` while its owning block is available via `blocks`.
  // Updates the particle in place; returns what happened.  Fast path.
  AdvanceOutcome advance(Particle& particle, const BlockAccessFn& blocks,
                         TraceRecorder* recorder = nullptr) const;

  // Advance every particle in `batch` (all resident in one block, per
  // the rank programs' per-block pools) sharing one block/cell cursor,
  // so the common case — the whole batch circulating inside the same
  // block — touches the cache lookup once.  outcome[i] corresponds to
  // batch[i].
  std::vector<AdvanceOutcome> advance_batch(
      std::span<Particle> batch, const BlockAccessFn& blocks,
      TraceRecorder* recorder = nullptr,
      const BlockPinHooks* pins = nullptr) const;

  // The historical implementation: virtual VectorField::sample per
  // stage, BlockAccessFn lookup per step.  Oracle for the golden
  // bit-identity test and baseline for bench/advect_throughput.  Do not
  // "optimize" this — its value is being the unchanged reference.
  AdvanceOutcome advance_reference(Particle& particle,
                                   const BlockAccessFn& blocks,
                                   TraceRecorder* recorder = nullptr) const;

 private:
  // Block cursor: the block the previous step's position resided in,
  // with its grid and warm cell cursor.  Valid only within one
  // advance/advance_batch call (block pointers may dangle afterwards).
  struct Cursor {
    BlockId id = kInvalidBlock;
    const StructuredGrid* grid = nullptr;
    GridSampler sampler;
  };

  AdvanceOutcome advance_with_cursor(Particle& particle,
                                     const BlockAccessFn& blocks,
                                     TraceRecorder* recorder,
                                     Cursor& cur) const;

  const BlockDecomposition* decomp_;
  IntegratorParams iparams_;
  TraceLimits limits_;
  const QueryCancelSet* cancels_ = nullptr;
  AdvectionKernel kernel_ = AdvectionKernel::kAuto;
};

// ---------------------------------------------------------------------------
// Serial convenience APIs (the small-data entry points of the library).
// ---------------------------------------------------------------------------

// Trace all seeds over a fully accessible blocked dataset, serially.
// Seeds are grouped by their starting block and advanced with
// Tracer::advance_batch.
std::vector<Particle> trace_all(const BlockedDataset& dataset,
                                std::span<const Vec3> seeds,
                                const IntegratorParams& iparams,
                                const TraceLimits& limits,
                                TraceRecorder* recorder = nullptr);

// Trace one streamline directly against any VectorField (no blocks).
// Used by FTLE / Poincaré / stream-surface analysis and the examples.
Particle trace_field(const VectorField& field, const Vec3& seed,
                     const IntegratorParams& iparams,
                     const TraceLimits& limits,
                     TraceRecorder* recorder = nullptr,
                     std::uint32_t particle_id = 0);

}  // namespace sf
