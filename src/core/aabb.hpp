#pragma once

// Axis-aligned bounding box over doubles.
//
// Used for the global field domain, per-block extents (with and without
// ghost layers) and seed-placement regions.

#include <algorithm>
#include <limits>

#include "core/vec3.hpp"

namespace sf {

struct AABB {
  Vec3 lo{std::numeric_limits<double>::max(),
          std::numeric_limits<double>::max(),
          std::numeric_limits<double>::max()};
  Vec3 hi{std::numeric_limits<double>::lowest(),
          std::numeric_limits<double>::lowest(),
          std::numeric_limits<double>::lowest()};

  constexpr AABB() = default;
  constexpr AABB(const Vec3& lo_, const Vec3& hi_) : lo(lo_), hi(hi_) {}

  constexpr bool valid() const {
    return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z;
  }

  // Half-open on no side: boundary points are contained.  Block-ownership
  // resolution uses index arithmetic instead (BlockDecomposition::block_of)
  // so shared faces have a unique owner.
  constexpr bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  constexpr Vec3 extent() const { return hi - lo; }
  constexpr Vec3 center() const { return (lo + hi) * 0.5; }

  constexpr double volume() const {
    const Vec3 e = extent();
    return e.x * e.y * e.z;
  }

  void expand(const Vec3& p) {
    lo = min(lo, p);
    hi = max(hi, p);
  }

  // Grow symmetrically by `m` in every direction (used for ghost regions).
  constexpr AABB inflated(double m) const {
    return {lo - Vec3{m, m, m}, hi + Vec3{m, m, m}};
  }

  constexpr bool intersects(const AABB& o) const {
    return lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y &&
           hi.y >= o.lo.y && lo.z <= o.hi.z && hi.z >= o.lo.z;
  }

  // Clamp a point into the box (used to nudge seeds onto the domain).
  constexpr Vec3 clamp(const Vec3& p) const {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y),
            std::clamp(p.z, lo.z, hi.z)};
  }

  friend constexpr bool operator==(const AABB& a, const AABB& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

}  // namespace sf
