#include "core/integrator.hpp"

namespace sf {

StepResult dopri5_step(const VectorField& field, const Vec3& p, double t,
                       double h, const IntegratorParams& params) {
  return integrator_detail::dopri5_step_impl_fast(
      [&field](const Vec3& ps, double, Vec3& out) {
        return field.sample(ps, out);
      },
      p, t, h, params);
}

StepResult dopri5_step_reference(const VectorField& field, const Vec3& p,
                                 double t, double h,
                                 const IntegratorParams& params) {
  return integrator_detail::dopri5_step_impl(
      [&field](const Vec3& ps, double, Vec3& out) {
        return field.sample(ps, out);
      },
      p, t, h, params);
}

StepResult dopri5_step(const UnsteadySampleFn& f, const Vec3& p, double t,
                       double h, const IntegratorParams& params) {
  return integrator_detail::dopri5_step_impl_fast(f, p, t, h, params);
}

StepResult rk4_step(const VectorField& field, const Vec3& p, double t,
                    double h) {
  return integrator_detail::rk4_step_impl(
      [&field](const Vec3& ps, double, Vec3& out) {
        return field.sample(ps, out);
      },
      p, t, h);
}

}  // namespace sf
