#include "core/integrator.hpp"

#include <algorithm>
#include <cmath>

namespace sf {

namespace {

// Dormand–Prince 5(4) coefficients (Prince & Dormand 1981, the DOPRI5
// tableau).  b gives the 5th-order solution, e = b - b4 the embedded
// error estimator.
constexpr double kC[7] = {0.0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1.0, 1.0};

constexpr double kA[7][6] = {
    {},
    {1.0 / 5},
    {3.0 / 40, 9.0 / 40},
    {44.0 / 45, -56.0 / 15, 32.0 / 9},
    {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
    {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176,
     -5103.0 / 18656},
    {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
};

constexpr double kB5[7] = {35.0 / 384,      0.0,          500.0 / 1113,
                           125.0 / 192,     -2187.0 / 6784, 11.0 / 84,
                           0.0};

// b5 - b4: error-estimator weights.
constexpr double kE[7] = {71.0 / 57600,    0.0,           -71.0 / 16695,
                          71.0 / 1920,     -17253.0 / 339200, 22.0 / 525,
                          -1.0 / 40};

constexpr double kShrink = 0.5;   // factor applied on sample failure
constexpr double kSafety = 0.9;
constexpr double kMinScale = 0.2;
constexpr double kMaxScale = 5.0;

}  // namespace

namespace {

// Shared adaptive-step body; Sampler is bool(const Vec3&, double, Vec3&).
template <typename Sampler>
StepResult dopri5_step_impl(const Sampler& sample, const Vec3& p, double t,
                            double h, const IntegratorParams& params) {
  StepResult r;
  h = std::clamp(h, params.h_min, params.h_max);

  for (;;) {
    Vec3 k[7];
    bool sample_ok = true;
    for (int s = 0; s < 7 && sample_ok; ++s) {
      Vec3 ps = p;
      for (int j = 0; j < s; ++j) ps += k[j] * (h * kA[s][j]);
      ++r.n_evals;
      sample_ok = sample(ps, t + kC[s] * h, k[s]);
    }

    if (!sample_ok) {
      // A stage left the data; shrink and retry, fail below h_min.
      if (h <= params.h_min * (1.0 + 1e-12)) {
        r.status = StepStatus::kSampleFailed;
        r.h_next = h;
        return r;
      }
      h = std::max(h * kShrink, params.h_min);
      continue;
    }

    Vec3 p_new = p;
    Vec3 err{};
    for (int s = 0; s < 7; ++s) {
      p_new += k[s] * (h * kB5[s]);
      err += k[s] * (h * kE[s]);
    }

    // Scaled RMS error against tol * (1 + |p|) per component.
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) {
      const double scale =
          params.tol * (1.0 + std::max(std::abs(p[c]), std::abs(p_new[c])));
      const double q = err[c] / scale;
      sum += q * q;
    }
    const double enorm = std::sqrt(sum / 3.0);

    if (enorm <= 1.0 || h <= params.h_min * (1.0 + 1e-12)) {
      // Accept (steps at h_min are always accepted to guarantee progress).
      r.status = StepStatus::kOk;
      r.p = p_new;
      r.t = t + h;
      r.h_used = h;
      const double scale =
          enorm > 0.0
              ? std::clamp(kSafety * std::pow(enorm, -0.2), kMinScale,
                           kMaxScale)
              : kMaxScale;
      r.h_next = std::clamp(h * scale, params.h_min, params.h_max);
      return r;
    }

    // Reject: shrink per the controller and retry.
    const double scale =
        std::clamp(kSafety * std::pow(enorm, -0.2), kMinScale, 1.0);
    h = std::max(h * scale, params.h_min);
  }
}

}  // namespace

StepResult dopri5_step(const VectorField& field, const Vec3& p, double t,
                       double h, const IntegratorParams& params) {
  return dopri5_step_impl(
      [&field](const Vec3& ps, double, Vec3& out) {
        return field.sample(ps, out);
      },
      p, t, h, params);
}

StepResult dopri5_step(const UnsteadySampleFn& f, const Vec3& p, double t,
                       double h, const IntegratorParams& params) {
  return dopri5_step_impl(f, p, t, h, params);
}

StepResult rk4_step(const VectorField& field, const Vec3& p, double t,
                    double h) {
  StepResult r;
  Vec3 k1, k2, k3, k4;
  r.n_evals = 4;
  if (!field.sample(p, k1) || !field.sample(p + k1 * (h / 2), k2) ||
      !field.sample(p + k2 * (h / 2), k3) || !field.sample(p + k3 * h, k4)) {
    r.status = StepStatus::kSampleFailed;
    r.h_next = h;
    return r;
  }
  r.status = StepStatus::kOk;
  r.p = p + (k1 + 2.0 * k2 + 2.0 * k3 + k4) * (h / 6.0);
  r.t = t + h;
  r.h_used = h;
  r.h_next = h;
  return r;
}

}  // namespace sf
