#pragma once

// Uniform structured grid of node-centered vectors with trilinear
// interpolation.  This is the in-memory representation of one dataset
// block (the unit of I/O, caching and ownership in all three parallel
// algorithms).
//
// Storage is SoA: one contiguous double array per vector component, in
// k-major node order.  The advection hot loop (GridSampler) gathers the
// 8 cell corners of one component from one contiguous array at a time
// instead of striding across 24-byte Vec3s, and both the slow virtual
// sample() and the cursor fast path go through the same inline kernels
// below so their results are bit-identical.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/field.hpp"

namespace sf {

namespace grid_detail {

// Continuous cell coordinates of p relative to (lo, inv_cell): cell
// anchor (i, j, k) plus fractional offsets in [0, 1].  Points exactly on
// the high face land in the last cell.  Every sampling path must locate
// cells through this one function (same multiply-by-reciprocal, same
// clamp) or results stop being bit-identical across paths.
struct CellCoords {
  int i, j, k;
  double tx, ty, tz;
};

inline CellCoords locate_cell(const Vec3& p, const Vec3& lo,
                              const Vec3& inv_cell, int nx, int ny, int nz) {
  const double fx = (p.x - lo.x) * inv_cell.x;
  const double fy = (p.y - lo.y) * inv_cell.y;
  const double fz = (p.z - lo.z) * inv_cell.z;
  int i = static_cast<int>(fx);
  int j = static_cast<int>(fy);
  int k = static_cast<int>(fz);
  if (i >= nx - 1) i = nx - 2;
  if (j >= ny - 1) j = ny - 2;
  if (k >= nz - 1) k = nz - 2;
  return {i, j, k, fx - i, fy - j, fz - k};
}

// Trilinear blend over one component's 8 corner values, gathered in
// x-fastest order: 000, 100, 010, 110, 001, 101, 011, 111.
inline double trilinear(const double c[8], double tx, double ty, double tz) {
  const double sx = 1.0 - tx;
  const double c00 = c[0] * sx + c[1] * tx;
  const double c10 = c[2] * sx + c[3] * tx;
  const double c01 = c[4] * sx + c[5] * tx;
  const double c11 = c[6] * sx + c[7] * tx;
  const double sy = 1.0 - ty;
  const double c0 = c00 * sy + c10 * ty;
  const double c1 = c01 * sy + c11 * ty;
  return c0 * (1.0 - tz) + c1 * tz;
}

}  // namespace grid_detail

class StructuredGrid final : public VectorField {
 public:
  // A grid with nx*ny*nz nodes spanning `bounds`.  Each axis needs at
  // least 2 nodes so a trilinear cell exists.
  StructuredGrid(const AABB& bounds, int nx, int ny, int nz);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t num_nodes() const { return xs_.size(); }

  // Physical size of one cell, and its precomputed reciprocal (the hot
  // paths multiply; nothing divides per sample).
  Vec3 cell_size() const { return cell_; }
  Vec3 inv_cell_size() const { return inv_cell_; }

  std::size_t index(int i, int j, int k) const {
    return static_cast<std::size_t>(k) * nx_ * ny_ +
           static_cast<std::size_t>(j) * nx_ + static_cast<std::size_t>(i);
  }

  Vec3 at(int i, int j, int k) const {
    const std::size_t n = index(i, j, k);
    return {xs_[n], ys_[n], zs_[n]};
  }
  void set_node(int i, int j, int k, const Vec3& v) {
    const std::size_t n = index(i, j, k);
    xs_[n] = v.x;
    ys_[n] = v.y;
    zs_[n] = v.z;
  }

  // SoA component arrays, k-major node order (the GridSampler cursor
  // gathers cell corners straight from these).
  const double* comp_x() const { return xs_.data(); }
  const double* comp_y() const { return ys_.data(); }
  const double* comp_z() const { return zs_.data(); }

  // Physical position of node (i, j, k).
  Vec3 node_position(int i, int j, int k) const;

  // Fill every node by sampling `field` at the node position.  Nodes
  // outside the field's domain (possible for ghost nodes of boundary
  // blocks) are set to the field value at the clamped position, so
  // interpolation near the domain boundary stays well defined.
  void sample_from(const VectorField& field);

  // Trilinear interpolation.  Positions outside `bounds()` fail.
  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return bounds_; }

  // AoS adapters for serialization: data() snapshots the nodes as
  // x0 y0 z0 x1 y1 z1 ... in k-major order (the BlockStore on-disk
  // payload, unchanged from the AoS layout), set_data scatters such a
  // snapshot back into the component arrays.
  std::vector<Vec3> data() const;
  void set_data(const std::vector<Vec3>& nodes);

  // Bytes of node payload (what BlockStore writes for this grid).
  std::size_t payload_bytes() const { return xs_.size() * sizeof(Vec3); }

 private:
  AABB bounds_;
  int nx_, ny_, nz_;
  Vec3 cell_;
  Vec3 inv_cell_;
  std::vector<double> xs_, ys_, zs_;
};

}  // namespace sf
