#pragma once

// Uniform structured grid of node-centered vectors with trilinear
// interpolation.  This is the in-memory representation of one dataset
// block (the unit of I/O, caching and ownership in all three parallel
// algorithms).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/field.hpp"

namespace sf {

class StructuredGrid final : public VectorField {
 public:
  // A grid with nx*ny*nz nodes spanning `bounds`.  Each axis needs at
  // least 2 nodes so a trilinear cell exists.
  StructuredGrid(const AABB& bounds, int nx, int ny, int nz);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t num_nodes() const { return data_.size(); }

  // Physical size of one cell.
  Vec3 cell_size() const { return cell_; }

  std::size_t index(int i, int j, int k) const {
    return static_cast<std::size_t>(k) * nx_ * ny_ +
           static_cast<std::size_t>(j) * nx_ + static_cast<std::size_t>(i);
  }

  Vec3& at(int i, int j, int k) { return data_[index(i, j, k)]; }
  const Vec3& at(int i, int j, int k) const { return data_[index(i, j, k)]; }

  // Physical position of node (i, j, k).
  Vec3 node_position(int i, int j, int k) const;

  // Fill every node by sampling `field` at the node position.  Nodes
  // outside the field's domain (possible for ghost nodes of boundary
  // blocks) are set to the field value at the clamped position, so
  // interpolation near the domain boundary stays well defined.
  void sample_from(const VectorField& field);

  // Trilinear interpolation.  Positions outside `bounds()` fail.
  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return bounds_; }

  // Raw node storage, x0 y0 z0 x1 y1 z1 ... in k-major order.  Exposed for
  // serialization (BlockStore) and direct fills in tests.
  const std::vector<Vec3>& data() const { return data_; }
  std::vector<Vec3>& data() { return data_; }

  // Bytes of node payload (what BlockStore writes for this grid).
  std::size_t payload_bytes() const { return data_.size() * sizeof(Vec3); }

 private:
  AABB bounds_;
  int nx_, ny_, nz_;
  Vec3 cell_;
  std::vector<Vec3> data_;
};

}  // namespace sf
