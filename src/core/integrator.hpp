#pragma once

// Numerical integration of streamlines.
//
// The production scheme is the Dormand–Prince embedded Runge–Kutta 5(4)
// pair with adaptive step-size control (the scheme the paper uses, citing
// Prince & Dormand 1981).  A fixed-step classic RK4 is provided as a
// baseline and for convergence tests.

#include <functional>

#include "core/field.hpp"

namespace sf {

struct IntegratorParams {
  double h_init = 1e-2;  // first trial step for fresh particles
  double h_min = 1e-9;   // below this, a failing step is a hard error
  double h_max = 0.25;   // cap on accepted steps
  double tol = 1e-6;     // error tolerance (used as both abs and rel)
};

enum class StepStatus : std::uint8_t {
  kOk = 0,
  // A stage evaluation left the field's domain even at h_min.  For block
  // grids (whose domain is the ghost-inflated block) this means the
  // particle is at the edge of the available data.
  kSampleFailed = 1,
};

struct StepResult {
  StepStatus status = StepStatus::kOk;
  Vec3 p{};             // accepted position (valid when kOk)
  double t = 0.0;       // time after the step
  double h_used = 0.0;  // the accepted step size
  double h_next = 0.0;  // controller's suggestion for the next step
  int n_evals = 0;      // field evaluations spent (incl. rejected tries)
};

// Take one *accepted* adaptive DoPri5(4) step from (p, t) with trial step
// size h.  Rejected trials (error too large, or a stage sampling outside
// the field domain) shrink h and retry inside this call; the step only
// fails once h would drop below h_min.
StepResult dopri5_step(const VectorField& field, const Vec3& p, double t,
                       double h, const IntegratorParams& params);

// Time-varying right-hand side: v = f(p, t), false outside the domain.
using UnsteadySampleFn =
    std::function<bool(const Vec3& p, double t, Vec3& out)>;

// The same scheme for non-autonomous systems dx/dt = f(x, t): stages are
// evaluated at t + c_s * h, keeping full 5th order for pathlines.
StepResult dopri5_step(const UnsteadySampleFn& f, const Vec3& p, double t,
                       double h, const IntegratorParams& params);

// One classic fixed-step RK4 step (no error control; h_next == h).
StepResult rk4_step(const VectorField& field, const Vec3& p, double t,
                    double h);

}  // namespace sf
