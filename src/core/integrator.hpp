#pragma once

// Numerical integration of streamlines.
//
// The production scheme is the Dormand–Prince embedded Runge–Kutta 5(4)
// pair with adaptive step-size control (the scheme the paper uses, citing
// Prince & Dormand 1981).  A fixed-step classic RK4 is provided as a
// baseline and for convergence tests.
//
// The step bodies are templates over a sampler callable (see
// integrator_detail below) so the advection fast path can instantiate
// them against a non-virtual GridSampler cursor; the VectorField
// overloads wrap the same bodies around a virtual sample() call and are
// bit-identical in arithmetic.

#include <algorithm>
#include <cmath>
#include <functional>

#include "core/field.hpp"

namespace sf {

class GridSampler;

struct IntegratorParams {
  double h_init = 1e-2;  // first trial step for fresh particles
  double h_min = 1e-9;   // below this, a failing step is a hard error
  double h_max = 0.25;   // cap on accepted steps
  double tol = 1e-6;     // error tolerance (used as both abs and rel)
};

enum class StepStatus : std::uint8_t {
  kOk = 0,
  // A stage evaluation left the field's domain even at h_min.  For block
  // grids (whose domain is the ghost-inflated block) this means the
  // particle is at the edge of the available data.
  kSampleFailed = 1,
};

struct StepResult {
  StepStatus status = StepStatus::kOk;
  Vec3 p{};             // accepted position (valid when kOk)
  double t = 0.0;       // time after the step
  double h_used = 0.0;  // the accepted step size
  double h_next = 0.0;  // controller's suggestion for the next step
  int n_evals = 0;      // field evaluations spent (incl. rejected tries)
  // DOPRI5 is FSAL (first-same-as-last): the 7th stage of an accepted
  // step is evaluated exactly at the accepted point, i.e. at the next
  // step's first-stage position.  The fast body hands it back here so
  // the tracer can reuse it (valid only while sampling the same grid).
  Vec3 k_last{};
  bool has_k_last = false;
};

namespace integrator_detail {

// Dormand–Prince 5(4) coefficients (Prince & Dormand 1981, the DOPRI5
// tableau).  b gives the 5th-order solution, e = b - b4 the embedded
// error estimator.
inline constexpr double kC[7] = {0.0,     1.0 / 5, 3.0 / 10, 4.0 / 5,
                                 8.0 / 9, 1.0,     1.0};

inline constexpr double kA[7][6] = {
    {},
    {1.0 / 5},
    {3.0 / 40, 9.0 / 40},
    {44.0 / 45, -56.0 / 15, 32.0 / 9},
    {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
    {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176,
     -5103.0 / 18656},
    {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
};

inline constexpr double kB5[7] = {35.0 / 384,      0.0,          500.0 / 1113,
                                  125.0 / 192,     -2187.0 / 6784, 11.0 / 84,
                                  0.0};

// b5 - b4: error-estimator weights.
inline constexpr double kE[7] = {71.0 / 57600,    0.0,           -71.0 / 16695,
                                 71.0 / 1920,     -17253.0 / 339200, 22.0 / 525,
                                 -1.0 / 40};

inline constexpr double kShrink = 0.5;  // factor applied on sample failure
inline constexpr double kSafety = 0.9;
inline constexpr double kMinScale = 0.2;
inline constexpr double kMaxScale = 5.0;

// Historical adaptive-step body; Sampler is bool(const Vec3&, double,
// Vec3&).  The triangular stage loop below is the kernel as it shipped
// before the fast advection core: kept verbatim as the oracle for the
// golden bit-identity test and as the performance baseline behind
// dopri5_step_reference / Tracer::advance_reference.  Production
// overloads use dopri5_step_impl_fast instead.
template <typename Sampler>
StepResult dopri5_step_impl(Sampler&& sample, const Vec3& p, double t,
                            double h, const IntegratorParams& params) {
  StepResult r;
  h = std::clamp(h, params.h_min, params.h_max);

  for (;;) {
    Vec3 k[7];
    bool sample_ok = true;
    for (int s = 0; s < 7 && sample_ok; ++s) {
      Vec3 ps = p;
      for (int j = 0; j < s; ++j) ps += k[j] * (h * kA[s][j]);
      ++r.n_evals;
      sample_ok = sample(ps, t + kC[s] * h, k[s]);
    }

    if (!sample_ok) {
      // A stage left the data; shrink and retry, fail below h_min.
      if (h <= params.h_min * (1.0 + 1e-12)) {
        r.status = StepStatus::kSampleFailed;
        r.h_next = h;
        return r;
      }
      h = std::max(h * kShrink, params.h_min);
      continue;
    }

    Vec3 p_new = p;
    Vec3 err{};
    for (int s = 0; s < 7; ++s) {
      p_new += k[s] * (h * kB5[s]);
      err += k[s] * (h * kE[s]);
    }

    // Scaled RMS error against tol * (1 + |p|) per component.
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) {
      const double scale =
          params.tol * (1.0 + std::max(std::abs(p[c]), std::abs(p_new[c])));
      const double q = err[c] / scale;
      sum += q * q;
    }
    const double enorm = std::sqrt(sum / 3.0);

    if (enorm <= 1.0 || h <= params.h_min * (1.0 + 1e-12)) {
      // Accept (steps at h_min are always accepted to guarantee progress).
      r.status = StepStatus::kOk;
      r.p = p_new;
      r.t = t + h;
      r.h_used = h;
      const double scale =
          enorm > 0.0
              ? std::clamp(kSafety * std::pow(enorm, -0.2), kMinScale,
                           kMaxScale)
              : kMaxScale;
      r.h_next = std::clamp(h * scale, params.h_min, params.h_max);
      return r;
    }

    // Reject: shrink per the controller and retry.
    const double scale =
        std::clamp(kSafety * std::pow(enorm, -0.2), kMinScale, 1.0);
    h = std::max(h * scale, params.h_min);
  }
}

// The same step with the stage positions hand-unrolled.  Arithmetic is
// IDENTICAL to dopri5_step_impl — each stage position is the same
// left-associated sum p + k[0]*(h*a0) + k[1]*(h*a1) + ... that the
// triangular `ps += ...` loop produces, in the same term order — so the
// results are bit-identical (the golden test enforces it).  What changes
// is codegen: with the loop structure gone the optimizer keeps the k[]
// stages in registers instead of re-walking an indexed triangular loop,
// which roughly halves the non-sampling cost per step.
// `k0_pre`, when non-null, is the field value at (p, t) — the caller
// already sampled it (the tracer's stagnation check does).  The sampler
// is deterministic, so reusing it instead of re-evaluating stage one is
// bit-identical; it is also reused across shrink-retries, which
// re-sample an unchanged position in the reference body.  n_evals then
// counts only the evaluations actually performed.
template <typename Sampler>
StepResult dopri5_step_impl_fast(Sampler&& sample, const Vec3& p, double t,
                                 double h, const IntegratorParams& params,
                                 const Vec3* k0_pre = nullptr) {
  StepResult r;
  h = std::clamp(h, params.h_min, params.h_max);

  for (;;) {
    Vec3 k0, k1, k2, k3, k4, k5, k6;
    bool ok = true;
    if (k0_pre != nullptr) {
      k0 = *k0_pre;
    } else {
      ++r.n_evals;
      ok = sample(p, t + kC[0] * h, k0);
    }
    if (ok) {
      const Vec3 ps = p + k0 * (h * kA[1][0]);
      ++r.n_evals;
      ok = sample(ps, t + kC[1] * h, k1);
    }
    if (ok) {
      const Vec3 ps = p + k0 * (h * kA[2][0]) + k1 * (h * kA[2][1]);
      ++r.n_evals;
      ok = sample(ps, t + kC[2] * h, k2);
    }
    if (ok) {
      const Vec3 ps = p + k0 * (h * kA[3][0]) + k1 * (h * kA[3][1]) +
                      k2 * (h * kA[3][2]);
      ++r.n_evals;
      ok = sample(ps, t + kC[3] * h, k3);
    }
    if (ok) {
      const Vec3 ps = p + k0 * (h * kA[4][0]) + k1 * (h * kA[4][1]) +
                      k2 * (h * kA[4][2]) + k3 * (h * kA[4][3]);
      ++r.n_evals;
      ok = sample(ps, t + kC[4] * h, k4);
    }
    if (ok) {
      const Vec3 ps = p + k0 * (h * kA[5][0]) + k1 * (h * kA[5][1]) +
                      k2 * (h * kA[5][2]) + k3 * (h * kA[5][3]) +
                      k4 * (h * kA[5][4]);
      ++r.n_evals;
      ok = sample(ps, t + kC[5] * h, k5);
    }
    if (ok) {
      const Vec3 ps = p + k0 * (h * kA[6][0]) + k1 * (h * kA[6][1]) +
                      k2 * (h * kA[6][2]) + k3 * (h * kA[6][3]) +
                      k4 * (h * kA[6][4]) + k5 * (h * kA[6][5]);
      ++r.n_evals;
      ok = sample(ps, t + kC[6] * h, k6);
    }

    if (!ok) {
      if (h <= params.h_min * (1.0 + 1e-12)) {
        r.status = StepStatus::kSampleFailed;
        r.h_next = h;
        return r;
      }
      h = std::max(h * kShrink, params.h_min);
      continue;
    }

    // Solution and error estimate, in the reference accumulation order
    // (zero-weight terms included: dropping `+ k * 0.0` could flip the
    // sign of a zero).
    const Vec3 p_new = p + k0 * (h * kB5[0]) + k1 * (h * kB5[1]) +
                       k2 * (h * kB5[2]) + k3 * (h * kB5[3]) +
                       k4 * (h * kB5[4]) + k5 * (h * kB5[5]) +
                       k6 * (h * kB5[6]);
    const Vec3 err = Vec3{} + k0 * (h * kE[0]) + k1 * (h * kE[1]) +
                     k2 * (h * kE[2]) + k3 * (h * kE[3]) +
                     k4 * (h * kE[4]) + k5 * (h * kE[5]) + k6 * (h * kE[6]);

    double sum = 0.0;
    for (int c = 0; c < 3; ++c) {
      const double scale =
          params.tol * (1.0 + std::max(std::abs(p[c]), std::abs(p_new[c])));
      const double q = err[c] / scale;
      sum += q * q;
    }
    const double enorm = std::sqrt(sum / 3.0);

    if (enorm <= 1.0 || h <= params.h_min * (1.0 + 1e-12)) {
      r.status = StepStatus::kOk;
      r.p = p_new;
      r.t = t + h;
      r.h_used = h;
      r.k_last = k6;  // FSAL: sampled at (p_new, t + h)
      r.has_k_last = true;
      const double scale =
          enorm > 0.0
              ? std::clamp(kSafety * std::pow(enorm, -0.2), kMinScale,
                           kMaxScale)
              : kMaxScale;
      r.h_next = std::clamp(h * scale, params.h_min, params.h_max);
      return r;
    }

    const double scale =
        std::clamp(kSafety * std::pow(enorm, -0.2), kMinScale, 1.0);
    h = std::max(h * scale, params.h_min);
  }
}

// Shared classic RK4 body (no error control; h_next == h).  The stage
// arithmetic matches the historical VectorField overload exactly.
template <typename Sampler>
StepResult rk4_step_impl(Sampler&& sample, const Vec3& p, double t,
                         double h) {
  StepResult r;
  Vec3 k1, k2, k3, k4;
  r.n_evals = 4;
  if (!sample(p, t, k1) || !sample(p + k1 * (h / 2), t + h / 2, k2) ||
      !sample(p + k2 * (h / 2), t + h / 2, k3) ||
      !sample(p + k3 * h, t + h, k4)) {
    r.status = StepStatus::kSampleFailed;
    r.h_next = h;
    return r;
  }
  r.status = StepStatus::kOk;
  r.p = p + (k1 + 2.0 * k2 + 2.0 * k3 + k4) * (h / 6.0);
  r.t = t + h;
  r.h_used = h;
  r.h_next = h;
  return r;
}

}  // namespace integrator_detail

// Take one *accepted* adaptive DoPri5(4) step from (p, t) with trial step
// size h.  Rejected trials (error too large, or a stage sampling outside
// the field domain) shrink h and retry inside this call; the step only
// fails once h would drop below h_min.
StepResult dopri5_step(const VectorField& field, const Vec3& p, double t,
                       double h, const IntegratorParams& params);

// The historical kernel (triangular stage loop, virtual dispatch per
// stage), bit-identical in results to dopri5_step but without its
// codegen improvements.  Baseline for bench/advect_throughput and the
// step behind Tracer::advance_reference.
StepResult dopri5_step_reference(const VectorField& field, const Vec3& p,
                                 double t, double h,
                                 const IntegratorParams& params);

// Time-varying right-hand side: v = f(p, t), false outside the domain.
using UnsteadySampleFn =
    std::function<bool(const Vec3& p, double t, Vec3& out)>;

// The same scheme for non-autonomous systems dx/dt = f(x, t): stages are
// evaluated at t + c_s * h, keeping full 5th order for pathlines.
StepResult dopri5_step(const UnsteadySampleFn& f, const Vec3& p, double t,
                       double h, const IntegratorParams& params);

// Fast path: the same step against a non-virtual grid cursor.  The
// cursor keeps its cell cache warm across the 7 stages (and across the
// consecutive steps of a trace); results are bit-identical to the
// VectorField overload on the cursor's grid.  Defined inline in
// grid_sampler.hpp so it folds into the tracer's advance loop.
StepResult dopri5_step(GridSampler& sampler, const Vec3& p, double t,
                       double h, const IntegratorParams& params);

// One classic fixed-step RK4 step (no error control; h_next == h).
StepResult rk4_step(const VectorField& field, const Vec3& p, double t,
                    double h);

// RK4 against the non-virtual cursor; bit-identical to the VectorField
// overload on the cursor's grid.  Defined inline in grid_sampler.hpp.
StepResult rk4_step(GridSampler& sampler, const Vec3& p, double t, double h);

}  // namespace sf
