#pragma once

// Compile-time concurrency verification (DESIGN.md §13).
//
// Two layers, both zero-cost in Release builds:
//
//  1. Clang Thread Safety Analysis attributes (Hutchins et al., "C/C++
//     Thread Safety Analysis").  Every piece of cross-thread shared
//     state in src/ is declared SF_GUARDED_BY its mutex, every helper
//     that expects the lock held is SF_REQUIRES it, and the clang build
//     (CI job `static-analysis`) runs with -Werror=thread-safety, so a
//     lock-scope mistake is a compile error, not a TSan lottery ticket.
//     Under GCC the attributes expand to nothing.
//
//  2. A lock-order registry.  Every sf::Mutex is constructed with a
//     LockRank; a thread may only acquire a mutex of strictly greater
//     rank than any it already holds.  The ordering is enforced two
//     ways: statically by tools/lint/check_lock_order.py, which builds
//     the acquisition graph from SF_REQUIRES/scoped-lock sites and
//     fails on cycles or rank inversions, and dynamically (Debug /
//     SF_CHECK_INVARIANTS builds only) by a per-thread held-rank stack
//     that throws std::logic_error on the first out-of-order lock().
//
// Locking discipline: shared state takes an sf::Mutex (never a raw
// std::mutex — check_lock_order.py rejects those in src/), is locked
// with sf::MutexLock (never std::lock_guard / std::unique_lock, which
// the analysis cannot see through), and waits on sf::CondVar.  State
// that is *thread-confined* rather than locked (per-rank caches, the
// sequential service epoch structures) is guarded by an sf::ThreadChecker
// capability instead: methods open with serial_.assert_held() and the
// members are SF_GUARDED_BY(serial_), so any new code path that touches
// the state without restating the confinement claim fails the analysis.

#include <chrono>
#include <condition_variable>
#include <mutex>

#if SF_CHECK_INVARIANTS
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>
#endif

// ---------------------------------------------------------------------------
// Attribute macros (clang-only; no-ops elsewhere)
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SF_THREAD_ANNOTATION
#define SF_THREAD_ANNOTATION(x)  // not clang: attributes compile away
#endif

// On types: this class is a capability (a mutex, a thread role).
#define SF_CAPABILITY(x) SF_THREAD_ANNOTATION(capability(x))
// On types: RAII object that acquires in its ctor, releases in its dtor.
#define SF_SCOPED_CAPABILITY SF_THREAD_ANNOTATION(scoped_lockable)

// On data members: may only be read/written while holding the capability.
#define SF_GUARDED_BY(x) SF_THREAD_ANNOTATION(guarded_by(x))
// On pointer members: the *pointee* is guarded by the capability.
#define SF_PT_GUARDED_BY(x) SF_THREAD_ANNOTATION(pt_guarded_by(x))

// On mutex declarations: documents the acquisition order between two
// mutexes (the in-language half of the lock-order registry).
#define SF_ACQUIRED_BEFORE(...) SF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SF_ACQUIRED_AFTER(...) SF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// On functions: caller must hold the capability (exclusively / shared).
#define SF_REQUIRES(...) SF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SF_REQUIRES_SHARED(...) \
  SF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// On functions: acquires / releases the capability.
#define SF_ACQUIRE(...) SF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SF_ACQUIRE_SHARED(...) \
  SF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SF_RELEASE(...) SF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SF_RELEASE_SHARED(...) \
  SF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SF_TRY_ACQUIRE(...) \
  SF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// On functions: caller must NOT hold the capability (deadlock guard).
#define SF_EXCLUDES(...) SF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On functions: asserts (rather than acquires) that the capability is
// held — the escape hatch for thread-confined state, where "holding"
// means "running on the owning thread", not "holding a lock".
#define SF_ASSERT_CAPABILITY(...) \
  SF_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

// On functions returning a reference to a capability.
#define SF_RETURN_CAPABILITY(x) SF_THREAD_ANNOTATION(lock_returned(x))

// Last resort; every use needs a comment explaining why the analysis
// cannot see the invariant (DESIGN.md §13 waiver policy).
#define SF_NO_THREAD_SAFETY_ANALYSIS \
  SF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sf {

// ---------------------------------------------------------------------------
// Lock-order registry
// ---------------------------------------------------------------------------

// Global acquisition order for every sf::Mutex in src/.  A thread may
// acquire a mutex only if its rank is strictly greater than the rank of
// every sf::Mutex it already holds (so two mutexes of the same rank can
// never nest).  tools/lint/check_lock_order.py parses this enum and the
// Mutex declarations and rejects acquisition edges that run against it;
// Debug builds also enforce it at runtime (first violation throws).
//
// Keep the values sparse so a new subsystem can slot between existing
// ranks without renumbering.
enum class LockRank : int {
  kUnranked = -1,   // exempt from ordering (tests, fixtures only)
  kCancelSet = 10,  // QueryCancelSet — service control plane -> tracer
  kQueryBoard = 20,  // ThreadRuntime per-query termination board
  kFailureBoard = 30,  // ThreadRuntime first-failure slot
  kMailbox = 40,    // per-rank Context mailboxes
  kLoader = 50,     // AsyncBlockLoader queues + LoadState map
  kDataset = 60,    // BlockedDataset lazy block memoization
  kChecker = 70,    // InvariantChecker global model (leaf: its hooks
                    // must be called with no other sf::Mutex held)
};

#if SF_CHECK_INVARIANTS
namespace detail {
// Ranks of the sf::Mutexes this thread currently holds, in acquisition
// order.  Only ranked mutexes participate.
inline thread_local std::vector<int> held_lock_ranks;
}  // namespace detail
#endif

// std::mutex wrapper the thread-safety analysis can see (CAPABILITY), a
// node in the lock-order registry, and — in Debug builds — a runtime
// rank-order assertion on every acquisition.
class SF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) : rank_(static_cast<int>(rank)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SF_ACQUIRE() {
    check_order();
    mu_.lock();
    note_acquired();
  }

  void unlock() SF_RELEASE() {
    note_released();
    mu_.unlock();
  }

  bool try_lock() SF_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    note_acquired();
    return true;
  }

  int rank() const { return rank_; }

 private:
  friend class CondVar;

#if SF_CHECK_INVARIANTS
  void check_order() const {
    if (rank_ < 0) return;
    for (int held : detail::held_lock_ranks) {
      if (held >= rank_) {
        throw std::logic_error(
            "lock-order violation: acquiring sf::Mutex rank " +
            std::to_string(rank_) + " while holding rank " +
            std::to_string(held) +
            " (see LockRank in core/thread_annotations.hpp)");
      }
    }
  }
  void note_acquired() {
    if (rank_ >= 0) detail::held_lock_ranks.push_back(rank_);
  }
  void note_released() {
    if (rank_ < 0) return;
    auto& held = detail::held_lock_ranks;
    auto it = std::find(held.rbegin(), held.rend(), rank_);
    if (it != held.rend()) held.erase(std::next(it).base());
  }
#else
  void check_order() const {}
  void note_acquired() {}
  void note_released() {}
#endif

  std::mutex mu_;
  int rank_ = static_cast<int>(LockRank::kUnranked);
};

// Scoped locker for sf::Mutex — the only way annotated code takes a
// lock (std::lock_guard over sf::Mutex would compile but blinds the
// analysis; check_lock_order.py flags it).
class SF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SF_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to sf::Mutex.  Waits are annotated
// SF_REQUIRES(mu): the analysis treats the lock as held across the wait
// (the internal release/reacquire is invisible, which is the standard
// contract — guarded state must be re-checked after every wake anyway).
// Deliberately no predicate overloads: a predicate lambda reading
// guarded state is analyzed out of context and trips the analysis, so
// callers write the while-loop themselves.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) SF_REQUIRES(mu) {
    // Adopt the already-held mutex, let the condvar release/reacquire
    // it, then relinquish ownership back to the caller's scope.  The
    // held-rank stack is left untouched: the thread is blocked for the
    // whole window in which the lock is logically released, so it can
    // acquire nothing out of order meanwhile.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      SF_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, dur);
    lock.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// Capability token for *thread-confined* state (Chromium's
// SEQUENCE_CHECKER pattern): data owned by one logical thread at a time
// — a rank's BlockCache, the service's sequential epoch structures —
// with ownership handed off only at quiescent points (before threads
// launch / after they join).  Members are declared
// SF_GUARDED_BY(serial_) and every public method opens with
// serial_.assert_held(), which satisfies the analysis for the method
// body; private helpers take SF_REQUIRES(serial_) so they cannot be
// called from a context that skipped the claim.  Purely compile-time:
// the runtime cross-thread cases are TSan's job (CI `tsan`).
class SF_CAPABILITY("thread role") ThreadChecker {
 public:
  void assert_held() const SF_ASSERT_CAPABILITY() {}
};

}  // namespace sf
