#include "core/dataset.hpp"

#include <stdexcept>

namespace sf {

BlockedDataset::BlockedDataset(FieldPtr field,
                               const BlockDecomposition& decomp,
                               int nodes_per_axis, int ghost_cells)
    : field_(std::move(field)),
      decomp_(decomp),
      nodes_per_axis_(nodes_per_axis),
      ghost_cells_(ghost_cells) {
  if (!field_) throw std::invalid_argument("BlockedDataset: null field");
  if (nodes_per_axis_ < 2) {
    throw std::invalid_argument("BlockedDataset: nodes_per_axis >= 2");
  }
  if (ghost_cells_ < 0) {
    throw std::invalid_argument("BlockedDataset: ghost_cells >= 0");
  }
  blocks_.resize(static_cast<std::size_t>(decomp_.num_blocks()));
}

GridPtr BlockedDataset::block(BlockId id) const {
  if (id < 0 || id >= decomp_.num_blocks()) {
    throw std::out_of_range("BlockedDataset::block: bad block id");
  }
  MutexLock lock(mutex_);
  GridPtr& slot = blocks_[static_cast<std::size_t>(id)];
  if (!slot) {
    const AABB box = decomp_.ghost_bounds(id, nodes_per_axis_, ghost_cells_);
    const int n = nodes_per_axis_ + 2 * ghost_cells_;
    auto grid = std::make_shared<StructuredGrid>(box, n, n, n);
    grid->sample_from(*field_);
    slot = std::move(grid);
  }
  return slot;
}

std::size_t BlockedDataset::block_payload_bytes() const {
  const std::size_t n =
      static_cast<std::size_t>(nodes_per_axis_ + 2 * ghost_cells_);
  return n * n * n * sizeof(Vec3);
}

bool BlockedDataset::sample(const Vec3& p, Vec3& out) const {
  const BlockId id = decomp_.block_of(p);
  if (id == kInvalidBlock) return false;
  return block(id)->sample(p, out);
}

}  // namespace sf
