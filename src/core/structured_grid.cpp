#include "core/structured_grid.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sf {

StructuredGrid::StructuredGrid(const AABB& bounds, int nx, int ny, int nz)
    : bounds_(bounds), nx_(nx), ny_(ny), nz_(nz) {
  if (nx < 2 || ny < 2 || nz < 2) {
    throw std::invalid_argument("StructuredGrid needs >= 2 nodes per axis");
  }
  if (!bounds.valid() || bounds.volume() <= 0.0) {
    throw std::invalid_argument("StructuredGrid needs a positive-volume box");
  }
  const Vec3 e = bounds_.extent();
  cell_ = {e.x / (nx_ - 1), e.y / (ny_ - 1), e.z / (nz_ - 1)};
  data_.resize(static_cast<std::size_t>(nx_) * ny_ * nz_);
}

Vec3 StructuredGrid::node_position(int i, int j, int k) const {
  return {bounds_.lo.x + i * cell_.x, bounds_.lo.y + j * cell_.y,
          bounds_.lo.z + k * cell_.z};
}

void StructuredGrid::sample_from(const VectorField& field) {
  const AABB domain = field.bounds();
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec3 p = node_position(i, j, k);
        Vec3 v{};
        if (!field.sample(p, v)) {
          // Ghost node outside the global domain: clamp so boundary cells
          // still interpolate sensibly.
          field.sample(domain.clamp(p), v);
        }
        at(i, j, k) = v;
      }
    }
  }
}

bool StructuredGrid::sample(const Vec3& p, Vec3& out) const {
  if (!bounds_.contains(p)) return false;

  // Continuous cell coordinates.
  double fx = (p.x - bounds_.lo.x) / cell_.x;
  double fy = (p.y - bounds_.lo.y) / cell_.y;
  double fz = (p.z - bounds_.lo.z) / cell_.z;

  int i = static_cast<int>(fx);
  int j = static_cast<int>(fy);
  int k = static_cast<int>(fz);
  // Points exactly on the high face land in the last cell.
  if (i >= nx_ - 1) i = nx_ - 2;
  if (j >= ny_ - 1) j = ny_ - 2;
  if (k >= nz_ - 1) k = nz_ - 2;

  const double tx = fx - i;
  const double ty = fy - j;
  const double tz = fz - k;

  const Vec3& c000 = at(i, j, k);
  const Vec3& c100 = at(i + 1, j, k);
  const Vec3& c010 = at(i, j + 1, k);
  const Vec3& c110 = at(i + 1, j + 1, k);
  const Vec3& c001 = at(i, j, k + 1);
  const Vec3& c101 = at(i + 1, j, k + 1);
  const Vec3& c011 = at(i, j + 1, k + 1);
  const Vec3& c111 = at(i + 1, j + 1, k + 1);

  const Vec3 c00 = c000 * (1 - tx) + c100 * tx;
  const Vec3 c10 = c010 * (1 - tx) + c110 * tx;
  const Vec3 c01 = c001 * (1 - tx) + c101 * tx;
  const Vec3 c11 = c011 * (1 - tx) + c111 * tx;

  const Vec3 c0 = c00 * (1 - ty) + c10 * ty;
  const Vec3 c1 = c01 * (1 - ty) + c11 * ty;

  out = c0 * (1 - tz) + c1 * tz;
  return true;
}

}  // namespace sf
