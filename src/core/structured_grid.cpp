#include "core/structured_grid.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sf {

StructuredGrid::StructuredGrid(const AABB& bounds, int nx, int ny, int nz)
    : bounds_(bounds), nx_(nx), ny_(ny), nz_(nz) {
  if (nx < 2 || ny < 2 || nz < 2) {
    throw std::invalid_argument("StructuredGrid needs >= 2 nodes per axis");
  }
  if (!bounds.valid() || bounds.volume() <= 0.0) {
    throw std::invalid_argument("StructuredGrid needs a positive-volume box");
  }
  const Vec3 e = bounds_.extent();
  cell_ = {e.x / (nx_ - 1), e.y / (ny_ - 1), e.z / (nz_ - 1)};
  inv_cell_ = {1.0 / cell_.x, 1.0 / cell_.y, 1.0 / cell_.z};
  const std::size_t n = static_cast<std::size_t>(nx_) * ny_ * nz_;
  xs_.resize(n);
  ys_.resize(n);
  zs_.resize(n);
}

Vec3 StructuredGrid::node_position(int i, int j, int k) const {
  return {bounds_.lo.x + i * cell_.x, bounds_.lo.y + j * cell_.y,
          bounds_.lo.z + k * cell_.z};
}

void StructuredGrid::sample_from(const VectorField& field) {
  const AABB domain = field.bounds();
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Vec3 p = node_position(i, j, k);
        Vec3 v{};
        if (!field.sample(p, v)) {
          // Ghost node outside the global domain: clamp so boundary cells
          // still interpolate sensibly.
          field.sample(domain.clamp(p), v);
        }
        set_node(i, j, k, v);
      }
    }
  }
}

bool StructuredGrid::sample(const Vec3& p, Vec3& out) const {
  if (!bounds_.contains(p)) return false;

  const grid_detail::CellCoords cc =
      grid_detail::locate_cell(p, bounds_.lo, inv_cell_, nx_, ny_, nz_);

  // Gather the cell's 8 corners per component, x-fastest order.
  const std::size_t base = index(cc.i, cc.j, cc.k);
  const std::size_t rowy = static_cast<std::size_t>(nx_);
  const std::size_t rowz = static_cast<std::size_t>(nx_) * ny_;
  const std::size_t n[8] = {base,
                            base + 1,
                            base + rowy,
                            base + rowy + 1,
                            base + rowz,
                            base + rowz + 1,
                            base + rowz + rowy,
                            base + rowz + rowy + 1};
  double cx[8], cy[8], cz[8];
  for (int c = 0; c < 8; ++c) {
    cx[c] = xs_[n[c]];
    cy[c] = ys_[n[c]];
    cz[c] = zs_[n[c]];
  }
  out.x = grid_detail::trilinear(cx, cc.tx, cc.ty, cc.tz);
  out.y = grid_detail::trilinear(cy, cc.tx, cc.ty, cc.tz);
  out.z = grid_detail::trilinear(cz, cc.tx, cc.ty, cc.tz);
  return true;
}

std::vector<Vec3> StructuredGrid::data() const {
  std::vector<Vec3> nodes(xs_.size());
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    nodes[n] = {xs_[n], ys_[n], zs_[n]};
  }
  return nodes;
}

void StructuredGrid::set_data(const std::vector<Vec3>& nodes) {
  if (nodes.size() != xs_.size()) {
    throw std::invalid_argument("StructuredGrid::set_data: size mismatch");
  }
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    xs_[n] = nodes[n].x;
    ys_[n] = nodes[n].y;
    zs_[n] = nodes[n].z;
  }
}

}  // namespace sf
