#include "core/block_decomposition.hpp"

#include <cmath>
#include <stdexcept>

namespace sf {

BlockDecomposition::BlockDecomposition(const AABB& domain, int nbx, int nby,
                                       int nbz)
    : domain_(domain), nbx_(nbx), nby_(nby), nbz_(nbz) {
  if (nbx < 1 || nby < 1 || nbz < 1) {
    throw std::invalid_argument("BlockDecomposition needs >= 1 block/axis");
  }
  if (!domain.valid() || domain.volume() <= 0.0) {
    throw std::invalid_argument("BlockDecomposition needs a valid domain");
  }
  const Vec3 e = domain_.extent();
  bsize_ = {e.x / nbx_, e.y / nby_, e.z / nbz_};
  inv_bsize_ = {1.0 / bsize_.x, 1.0 / bsize_.y, 1.0 / bsize_.z};
}

BlockCoords BlockDecomposition::coords_of(BlockId id) const {
  BlockCoords c;
  c.i = static_cast<int>(id) % nbx_;
  c.j = (static_cast<int>(id) / nbx_) % nby_;
  c.k = static_cast<int>(id) / (nbx_ * nby_);
  return c;
}

AABB BlockDecomposition::block_bounds(BlockId id) const {
  const BlockCoords c = coords_of(id);
  const Vec3 lo{domain_.lo.x + c.i * bsize_.x, domain_.lo.y + c.j * bsize_.y,
                domain_.lo.z + c.k * bsize_.z};
  return {lo, lo + bsize_};
}

AABB BlockDecomposition::ghost_bounds(BlockId id, int nodes_per_axis,
                                      int ghost_cells) const {
  const AABB core = block_bounds(id);
  const int cells = nodes_per_axis - 1;
  const Vec3 cell{bsize_.x / cells, bsize_.y / cells, bsize_.z / cells};
  const Vec3 margin = cell * static_cast<double>(ghost_cells);
  return {core.lo - margin, core.hi + margin};
}

std::vector<BlockId> BlockDecomposition::face_neighbors(BlockId id) const {
  const BlockCoords c = coords_of(id);
  std::vector<BlockId> out;
  out.reserve(6);
  const int di[6] = {-1, 1, 0, 0, 0, 0};
  const int dj[6] = {0, 0, -1, 1, 0, 0};
  const int dk[6] = {0, 0, 0, 0, -1, 1};
  for (int f = 0; f < 6; ++f) {
    const int i = c.i + di[f], j = c.j + dj[f], k = c.k + dk[f];
    if (i < 0 || i >= nbx_ || j < 0 || j >= nby_ || k < 0 || k >= nbz_) {
      continue;
    }
    out.push_back(id_of({i, j, k}));
  }
  return out;
}

std::vector<BlockId> BlockDecomposition::blocks_intersecting(
    const AABB& box) const {
  std::vector<BlockId> out;
  if (!box.valid()) return out;
  auto range = [](double lo, double hi, double dlo, double size, int n,
                  int& a, int& b) {
    a = static_cast<int>(std::floor((lo - dlo) / size));
    b = static_cast<int>(std::floor((hi - dlo) / size));
    if (a < 0) a = 0;
    if (b >= n) b = n - 1;
  };
  int i0, i1, j0, j1, k0, k1;
  range(box.lo.x, box.hi.x, domain_.lo.x, bsize_.x, nbx_, i0, i1);
  range(box.lo.y, box.hi.y, domain_.lo.y, bsize_.y, nby_, j0, j1);
  range(box.lo.z, box.hi.z, domain_.lo.z, bsize_.z, nbz_, k0, k1);
  for (int k = k0; k <= k1; ++k) {
    for (int j = j0; j <= j1; ++j) {
      for (int i = i0; i <= i1; ++i) {
        out.push_back(id_of({i, j, k}));
      }
    }
  }
  return out;
}

}  // namespace sf
