#pragma once

// Cell-cursor sampler over one StructuredGrid — the non-virtual fast
// path of the advection core.
//
// A DOPRI5 step evaluates the field at 7 nearby stage positions, and
// consecutive accepted steps stay within one grid cell for many steps at
// typical tolerances.  The cursor exploits that: it remembers the current
// cell anchor and keeps the cell's 8 corner values (per component) in 24
// registers-worth of locals, revalidating only when the located cell
// anchor changes.  Cell location and the trilinear blend go through the
// same grid_detail kernels as StructuredGrid::sample, so a cursor sample
// is bit-identical to the virtual slow path — the golden test in
// tests/test_fast_path.cpp holds this to zero tolerance.

#include "core/integrator.hpp"
#include "core/structured_grid.hpp"

namespace sf {

class GridSampler {
 public:
  GridSampler() = default;
  explicit GridSampler(const StructuredGrid& grid) { reset(&grid); }

  // Rebind to another grid (or detach with nullptr); invalidates the
  // cached cell.
  void reset(const StructuredGrid* grid) {
    grid_ = grid;
    ci_ = cj_ = ck_ = -1;
    if (grid_ != nullptr) {
      bounds_ = grid_->bounds();
      inv_cell_ = grid_->inv_cell_size();
      nx_ = grid_->nx();
      ny_ = grid_->ny();
      nz_ = grid_->nz();
    }
  }

  const StructuredGrid* grid() const { return grid_; }

  // Same contract as StructuredGrid::sample: trilinear interpolation,
  // false outside the grid bounds.
  bool sample(const Vec3& p, Vec3& out) {
    if (!bounds_.contains(p)) return false;
    const grid_detail::CellCoords cc =
        grid_detail::locate_cell(p, bounds_.lo, inv_cell_, nx_, ny_, nz_);
    if (cc.i != ci_ || cc.j != cj_ || cc.k != ck_) refill(cc.i, cc.j, cc.k);
    out.x = grid_detail::trilinear(cx_, cc.tx, cc.ty, cc.tz);
    out.y = grid_detail::trilinear(cy_, cc.tx, cc.ty, cc.tz);
    out.z = grid_detail::trilinear(cz_, cc.tx, cc.ty, cc.tz);
    return true;
  }

 private:
  void refill(int i, int j, int k) {
    const std::size_t base = grid_->index(i, j, k);
    const std::size_t rowy = static_cast<std::size_t>(nx_);
    const std::size_t rowz = static_cast<std::size_t>(nx_) * ny_;
    const std::size_t n[8] = {base,
                              base + 1,
                              base + rowy,
                              base + rowy + 1,
                              base + rowz,
                              base + rowz + 1,
                              base + rowz + rowy,
                              base + rowz + rowy + 1};
    const double* xs = grid_->comp_x();
    const double* ys = grid_->comp_y();
    const double* zs = grid_->comp_z();
    for (int c = 0; c < 8; ++c) {
      cx_[c] = xs[n[c]];
      cy_[c] = ys[n[c]];
      cz_[c] = zs[n[c]];
    }
    ci_ = i;
    cj_ = j;
    ck_ = k;
  }

  const StructuredGrid* grid_ = nullptr;
  AABB bounds_{};
  Vec3 inv_cell_{};
  int nx_ = 0, ny_ = 0, nz_ = 0;
  // Cached cell: anchor node plus the 8 corner values per component.
  int ci_ = -1, cj_ = -1, ck_ = -1;
  double cx_[8] = {}, cy_[8] = {}, cz_[8] = {};
};

// Cursor overloads of the steppers, defined inline here (not in
// integrator.cpp) so the whole step — stage arithmetic and cursor
// sampling — inlines into the tracer's advance loop.  The declarations
// live in integrator.hpp; callers need this header for the definitions.
inline StepResult dopri5_step(GridSampler& sampler, const Vec3& p, double t,
                              double h, const IntegratorParams& params) {
  return integrator_detail::dopri5_step_impl_fast(
      [&sampler](const Vec3& ps, double, Vec3& out) {
        return sampler.sample(ps, out);
      },
      p, t, h, params);
}

// Step with the stage-one value already in hand (see dopri5_step_impl_fast):
// the tracer passes the velocity it just sampled for the stagnation check.
inline StepResult dopri5_step(GridSampler& sampler, const Vec3& k0,
                              const Vec3& p, double t, double h,
                              const IntegratorParams& params) {
  return integrator_detail::dopri5_step_impl_fast(
      [&sampler](const Vec3& ps, double, Vec3& out) {
        return sampler.sample(ps, out);
      },
      p, t, h, params, &k0);
}

inline StepResult rk4_step(GridSampler& sampler, const Vec3& p, double t,
                           double h) {
  return integrator_detail::rk4_step_impl(
      [&sampler](const Vec3& ps, double, Vec3& out) {
        return sampler.sample(ps, out);
      },
      p, t, h);
}

}  // namespace sf
