#pragma once

// Deterministic pseudo-random number generation.
//
// All stochastic choices in StreamFlow (seed placement, hybrid master tie
// breaking) flow through this generator so experiment runs are exactly
// reproducible.  xoshiro256** seeded through splitmix64, per the reference
// implementations by Blackman & Vigna (public domain).

#include <cmath>
#include <cstdint>

namespace sf {

// splitmix64: used to expand a single 64-bit seed into a full xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5f0ff1c3u) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  // Raw 64 random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Uniform integer in [0, n).  n must be > 0.  Uses rejection to avoid
  // modulo bias (matters for reproducibility audits, not statistics).
  std::uint64_t next_below(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  // Standard normal via Marsaglia polar method.
  double next_normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace sf
