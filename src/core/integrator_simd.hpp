#pragma once

// SIMD-batched DOPRI5 advection (DESIGN.md §14).
//
// Tracer::advance_batch's focus round advances every pending particle
// resident in one block through that block's grid.  The kernel here runs
// that round 4 particles at a time in AVX2 double lanes: stage-position
// accumulation, the cell locate, the trilinear blend and the solution /
// error-estimate sums are elementwise vector ops, while everything
// data-dependent per particle — the step controller (std::pow), budget
// checks, block ownership, termination classification, recording and
// lane refill — stays scalar per lane.
//
// The contract is *bit-identity per particle* with the scalar fast path
// (Tracer::advance under the same focus-only access): every lane
// executes the exact scalar operation sequence — same left-associated
// sums, same zero-weight terms, same clamp/truncate kernels — and the
// TU is compiled with FMA off and FP contraction pinned off, so IEEE
// semantics make each lane's arithmetic identical to the scalar oracle.
// Trajectories, statuses, step counts and evaluation counts all match;
// the golden tests in tests/test_fast_path.cpp hold this to zero
// tolerance.  Only recorder *interleaving* across particles differs
// (records arrive round-robin across lanes); recorders are keyed by
// particle id, so recorded geometry is unchanged.
//
// The implementation TU is compiled with -mavx2 only when the compiler
// supports it (SF_SIMD_AVX2); otherwise a stub is linked and
// sf::simd_kernel_available() reports false, so forcing
// AdvectionKernel::kSimd on any host degrades to scalar instead of
// crashing.

#include <cstddef>
#include <span>

#include "core/tracer.hpp"

namespace sf::simd {

// Cohorts narrower than this stay scalar under AdvectionKernel::kAuto:
// below one full lane group the setup cost outweighs the vector win.
inline constexpr std::uint32_t kMinAutoCohort = 4;

// Everything one focus round needs, borrowed from the Tracer.  All
// pointers are non-owning; `grid` is blocks(focus) and must be non-null
// and alive for the duration of the call (advance_batch pins it).
struct FocusCohortArgs {
  const BlockDecomposition* decomp = nullptr;
  BlockId focus = kInvalidBlock;
  const StructuredGrid* grid = nullptr;
  const IntegratorParams* iparams = nullptr;
  const TraceLimits* limits = nullptr;
  const QueryCancelSet* cancels = nullptr;  // may be null
  TraceRecorder* recorder = nullptr;        // may be null
};

// Advance every particle in `cohort` (indices into `batch`, in pending
// order, each owned by `args.focus`) until it terminates or leaves the
// focus block, accumulating into `out` exactly as the scalar round
// does: out[i].steps/evals grow, status/blocking_block are overwritten.
// Callable only when sf::simd_kernel_available() is true.
void advance_focus_cohort_avx2(std::span<Particle> batch,
                               std::span<const std::size_t> cohort,
                               std::span<AdvanceOutcome> out,
                               const FocusCohortArgs& args);

}  // namespace sf::simd
