#pragma once

// Block-decomposed dataset: the decomposition plus one StructuredGrid per
// block (with ghost layers), sampled from an underlying field.
//
// This is the stand-in for "unmodified, pre-partitioned data as output
// from a simulation" (§2.2): blocks are the unit of I/O and ownership and
// no global re-partitioning or pre-analysis is ever performed.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/block_decomposition.hpp"
#include "core/field.hpp"
#include "core/structured_grid.hpp"
#include "core/thread_annotations.hpp"

namespace sf {

using GridPtr = std::shared_ptr<const StructuredGrid>;

class BlockedDataset final : public VectorField {
 public:
  // Sample `field` onto `decomp.num_blocks()` blocks, each a grid with
  // `nodes_per_axis` nodes across the core extent plus `ghost_cells`
  // extra cells on every face.  Blocks are built lazily and memoized, so
  // constructing a 512-block dataset is cheap until blocks are touched.
  BlockedDataset(FieldPtr field, const BlockDecomposition& decomp,
                 int nodes_per_axis, int ghost_cells);

  const BlockDecomposition& decomposition() const { return decomp_; }
  int nodes_per_axis() const { return nodes_per_axis_; }
  int ghost_cells() const { return ghost_cells_; }
  int num_blocks() const { return decomp_.num_blocks(); }

  // The grid for one block (built on first use; thread safe).
  GridPtr block(BlockId id) const SF_EXCLUDES(mutex_);

  // Actual in-memory payload of one block's grid.
  std::size_t block_payload_bytes() const;

  // Sample through the owning block's grid.  This is the authoritative
  // definition of the discrete field: every algorithm and runtime samples
  // through exactly this path, so trajectories never depend on data
  // distribution (DESIGN.md §5.1).
  bool sample(const Vec3& p, Vec3& out) const override;
  AABB bounds() const override { return decomp_.domain(); }

  // The analytic field the dataset was sampled from.
  const FieldPtr& source_field() const { return field_; }

 private:
  FieldPtr field_;
  BlockDecomposition decomp_;
  int nodes_per_axis_;
  int ghost_cells_;
  // Guards only the lazy memoization; loader worker threads and rank
  // threads all reach block() concurrently through BlockSource::load.
  mutable Mutex mutex_{LockRank::kDataset};
  mutable std::vector<GridPtr> blocks_ SF_GUARDED_BY(mutex_);
};

using DatasetPtr = std::shared_ptr<const BlockedDataset>;

// Where algorithms obtain block data from, and how expensive a block is.
//
// `block_bytes` is the size the I/O cost model charges — for scaled-down
// reproduction runs this is typically the *paper-scale* block size
// (512 blocks x 1M cells ~= 12 MB/block) rather than the actual reduced
// payload; see DESIGN.md §2.
class BlockSource {
 public:
  virtual ~BlockSource() = default;

  // Fetch a block's grid.  Thread safe.  Throws on unknown id.
  virtual GridPtr load(BlockId id) const = 0;

  // Bytes charged to the I/O model for loading this block.
  virtual std::size_t block_bytes(BlockId id) const = 0;

  virtual int num_blocks() const = 0;
};

// BlockSource over an in-process BlockedDataset with an optional modelled
// byte size.  modelled_bytes == 0 charges the actual payload size.
class DatasetBlockSource final : public BlockSource {
 public:
  explicit DatasetBlockSource(DatasetPtr dataset,
                              std::size_t modelled_bytes = 0)
      : dataset_(std::move(dataset)), modelled_bytes_(modelled_bytes) {}

  GridPtr load(BlockId id) const override { return dataset_->block(id); }

  std::size_t block_bytes(BlockId) const override {
    return modelled_bytes_ != 0 ? modelled_bytes_
                                : dataset_->block_payload_bytes();
  }

  int num_blocks() const override { return dataset_->num_blocks(); }

 private:
  DatasetPtr dataset_;
  std::size_t modelled_bytes_;
};

}  // namespace sf
