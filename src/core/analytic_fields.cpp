#include "core/analytic_fields.hpp"

#include <cmath>

#include "core/rng.hpp"

namespace sf {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

bool UniformField::sample(const Vec3& p, Vec3& out) const {
  if (!bounds_.contains(p)) return false;
  out = v_;
  return true;
}

bool RotorField::sample(const Vec3& p, Vec3& out) const {
  if (!bounds_.contains(p)) return false;
  out = cross(omega_, p - center_);
  return true;
}

bool SaddleField::sample(const Vec3& p, Vec3& out) const {
  if (!bounds_.contains(p)) return false;
  out = {lambda_ * p.x, -lambda_ * p.y, 0.0};
  return true;
}

bool ABCField::sample(const Vec3& p, Vec3& out) const {
  if (!bounds_.contains(p)) return false;
  out = {a_ * std::sin(p.z) + c_ * std::cos(p.y),
         b_ * std::sin(p.x) + a_ * std::cos(p.z),
         c_ * std::sin(p.y) + b_ * std::cos(p.x)};
  return true;
}

// ---------------------------------------------------------------------------
// Hill's spherical vortex
// ---------------------------------------------------------------------------

bool HillVortexField::sample(const Vec3& p, Vec3& out) const {
  if (!bounds_.contains(p)) return false;
  const double rho2 = p.x * p.x + p.y * p.y;
  const double r2 = rho2 + p.z * p.z;
  const double a2 = a_ * a_;

  double u_rho, u_z;  // cylindrical components
  if (r2 <= a2) {
    // Interior: solid rotational core.
    u_rho = 1.5 * u_ * p.z / a2;  // (u_rho / rho), applied below
    u_z = 1.5 * u_ * (1.0 - (2.0 * rho2 + p.z * p.z) / a2);
  } else {
    // Exterior: dipole superposed on the uniform stream -U e_z.
    const double r5 = r2 * r2 * std::sqrt(r2);
    u_rho = 1.5 * u_ * a_ * a2 * p.z / r5;  // (u_rho / rho)
    u_z = u_ * (a_ * a2 * (2.0 * p.z * p.z - rho2) / (2.0 * r5) - 1.0);
  }
  // u_rho above is the coefficient of rho; convert to cartesian x/y.
  out = {u_rho * p.x, u_rho * p.y, u_z};
  return true;
}

double HillVortexField::streamfunction(const Vec3& p) const {
  const double rho2 = p.x * p.x + p.y * p.y;
  const double r2 = rho2 + p.z * p.z;
  const double a2 = a_ * a_;
  if (r2 <= a2) {
    return 0.75 * u_ * rho2 * (1.0 - r2 / a2);
  }
  const double r3 = r2 * std::sqrt(r2);
  return -0.5 * u_ * rho2 * (1.0 - a_ * a2 / r3);
}

// ---------------------------------------------------------------------------
// Supernova
// ---------------------------------------------------------------------------

SupernovaField::SupernovaField(const SupernovaParams& params)
    : params_(params) {
  // Build a small set of Fourier modes for the turbulent vector potential
  //   A(p) = sum_m amp_m * sin(k_m . p + phase_m)   (per component)
  // The turbulent velocity is curl A, hence exactly divergence free.
  Rng rng(params_.seed);
  const int n = params_.turbulence_modes;
  modes_.reserve(static_cast<std::size_t>(n) * 2);
  for (int m = 0; m < 2 * n; ++m) {
    Mode mode;
    // Wave numbers are multiples of pi so the potential vanishes smoothly
    // toward the domain faces of [-1,1]^3.
    const double base = 3.14159265358979323846;
    mode.k = {base * (1.0 + rng.next_below(static_cast<std::uint64_t>(n))),
              base * (1.0 + rng.next_below(static_cast<std::uint64_t>(n))),
              base * (1.0 + rng.next_below(static_cast<std::uint64_t>(n)))};
    // Amplitude decays with |k| for a rough Kolmogorov-like spectrum.
    const double decay = 1.0 / (1.0 + 0.15 * norm2(mode.k));
    mode.amp = {rng.uniform(-1, 1) * decay, rng.uniform(-1, 1) * decay,
                rng.uniform(-1, 1) * decay};
    mode.phase = {rng.uniform(0, kTwoPi), rng.uniform(0, kTwoPi),
                  rng.uniform(0, kTwoPi)};
    modes_.push_back(mode);
  }
}

Vec3 SupernovaField::turbulence(const Vec3& p) const {
  // curl A where A_i = sum_m amp_m[i] * sin(k_m . p + phase_m[i]).
  // dA_i/dx_j = sum_m amp_m[i] * k_m[j] * cos(k_m . p + phase_m[i]).
  double dA[3][3] = {};  // dA[i][j] = dA_i/dx_j
  for (const Mode& m : modes_) {
    const double kp = dot(m.k, p);
    for (int i = 0; i < 3; ++i) {
      const double c = m.amp[i] * std::cos(kp + m.phase[i]);
      dA[i][0] += c * m.k.x;
      dA[i][1] += c * m.k.y;
      dA[i][2] += c * m.k.z;
    }
  }
  return {dA[2][1] - dA[1][2], dA[0][2] - dA[2][0], dA[1][0] - dA[0][1]};
}

bool SupernovaField::sample(const Vec3& p, Vec3& out) const {
  if (!bounds().contains(p)) return false;

  const double r = norm(p);

  // Shock-front shell: a semi-attracting manifold at shock_radius.
  // Inside, the field sweeps streamlines outward onto the shell — the
  // "strongly attracting structures draw streamlines towards them"
  // behaviour §3.1 identifies as what breaks static parallelization
  // (work concentrates in the shell's blocks).  Beyond the shell a slow
  // outward ejecta drift lets lines escape and terminate at the domain
  // boundary, so the concentration is intense but transient.
  Vec3 radial{};
  if (r > 1e-12) {
    const double d = (r - params_.shock_radius) / params_.shock_width;
    // Attraction toward the shell plus a weak uniform ejecta leak: lines
    // are trapped near the shell (equilibrium slightly outside it) until
    // turbulence random-walks them past the attraction tail, after which
    // the leak carries them out of the domain.  Residence is long enough
    // to concentrate the workload, finite enough that lines terminate.
    const double mag = params_.shock_strength *
                       ((-d) * std::exp(-0.5 * d * d) + 0.08);
    radial = p * (mag / r);
  }

  // Differential rotation about z, decaying with cylindrical radius.
  const double rc2 = p.x * p.x + p.y * p.y;
  const double fall = params_.rotation_falloff * params_.rotation_falloff;
  const double omega = params_.rotation_strength * fall / (fall + rc2);
  const Vec3 rot{-omega * p.y, omega * p.x, 0.0};

  out = radial + rot + params_.turbulence_strength * turbulence(p);
  return true;
}

// ---------------------------------------------------------------------------
// Tokamak
// ---------------------------------------------------------------------------

TokamakField::TokamakField(const TokamakParams& params) : params_(params) {
  const double reach = params_.major_radius + params_.minor_radius * 1.3;
  const double height = params_.minor_radius * 1.3;
  bounds_ = {{-reach, -reach, -height}, {reach, reach, height}};
}

bool TokamakField::sample(const Vec3& p, Vec3& out) const {
  if (!bounds_.contains(p)) return false;

  const double R = std::hypot(p.x, p.y);  // cylindrical radius
  if (R < 1e-9) return false;             // on the torus axis: undefined

  const double R0 = params_.major_radius;
  // Local poloidal coordinates in the (R, z) half-plane.
  const double dr = R - R0;
  const double dz = p.z;
  const double r = std::hypot(dr, dz);        // minor radius
  const double theta = std::atan2(dz, dr);    // poloidal angle
  const double phi = std::atan2(p.y, p.x);    // toroidal angle

  // Toroidal component: B0 * R0 / R along e_phi.
  const double b_tor = params_.b0 * R0 / R;
  const Vec3 e_phi{-p.y / R, p.x / R, 0.0};

  // Poloidal winding from the safety factor q(r): a field line advances
  // dtheta/dphi = 1/q, so |B_pol| = r/(q R) * b_tor along e_theta.
  const double a = params_.minor_radius;
  const double q = params_.q0 + params_.q1 * (r / a) * (r / a);
  double b_pol = (r > 1e-12) ? b_tor * r / (q * R) : 0.0;

  // Resonant island perturbation: radial kick localized in minor radius,
  // resonant with mode numbers (m, n).
  const double pert =
      params_.island_amplitude * params_.b0 *
      std::sin(params_.island_m * theta - params_.island_n * phi) *
      std::exp(-(r / a - 0.6) * (r / a - 0.6) * 12.0);

  // Unit vectors: e_R points outward in the (x,y) plane; e_r / e_theta are
  // the poloidal-plane polar frame.
  const Vec3 e_R{p.x / R, p.y / R, 0.0};
  const Vec3 e_z{0.0, 0.0, 1.0};
  const double ct = std::cos(theta), st = std::sin(theta);
  const Vec3 e_r = e_R * ct + e_z * st;        // radial in poloidal plane
  const Vec3 e_theta = e_R * (-st) + e_z * ct; // poloidal direction

  out = e_phi * b_tor + e_theta * b_pol + e_r * pert;
  return true;
}

// ---------------------------------------------------------------------------
// Thermal hydraulics
// ---------------------------------------------------------------------------

ThermalHydraulicsField::ThermalHydraulicsField(
    const ThermalHydraulicsParams& params)
    : params_(params) {}

bool ThermalHydraulicsField::sample(const Vec3& p, Vec3& out) const {
  if (!bounds().contains(p)) return false;

  Vec3 v{};

  // Twin inlet jets: gaussian cross-section, decaying along +x.
  for (const Vec3& inlet : {params_.inlet1, params_.inlet2}) {
    const double dy = p.y - inlet.y;
    const double dz = p.z - inlet.z;
    const double r2 = dy * dy + dz * dz;
    const double sigma2 =
        params_.inlet_radius * params_.inlet_radius * (1.0 + 3.0 * p.x);
    const double profile = std::exp(-r2 / (2.0 * sigma2));
    const double axial = std::exp(-p.x / params_.jet_reach);
    // The jet entrains fluid slightly toward its axis, giving the strong
    // local shear that makes the inlet region turbulent (Figure 4).
    v.x += params_.jet_strength * profile * axial;
    v.y += -0.35 * params_.jet_strength * profile * axial * dy /
           params_.inlet_radius * 0.2;
    v.z += -0.35 * params_.jet_strength * profile * axial * dz /
           params_.inlet_radius * 0.2;
  }

  // Outlet sink near the upper corner.
  {
    const Vec3 d = p - params_.outlet;
    const double r2 = norm2(d) + 0.01;
    v += d * (-params_.outlet_strength / (r2 * std::sqrt(r2) * 25.0 + 1.0));
  }

  // Cellular recirculation: curl of A = psi * e_y with
  // psi = sin(pi c x) sin(pi c z) * amplitude(y) gives counter-rotating
  // rolls in the x-z plane, modulated along y — long-lived recirculation
  // zones that isolate regions from mixing (§3.2).
  {
    const double c = static_cast<double>(params_.cells);
    const double pi = 3.14159265358979323846;
    const double ay = 1.0 + 0.5 * std::sin(pi * p.y);
    const double s = params_.recirculation_strength * ay;
    // curl(psi e_y) = (dpsi/dz, 0, -dpsi/dx)
    v.x += s * pi * c * std::sin(pi * c * p.x) * std::cos(pi * c * p.z);
    v.z += -s * pi * c * std::cos(pi * c * p.x) * std::sin(pi * c * p.z);
    // Slow drift along y so streamlines explore the third dimension.
    v.y += 0.3 * params_.recirculation_strength *
           std::sin(pi * p.x) * std::sin(pi * p.z);
  }

  out = v;
  return true;
}

}  // namespace sf
