#include "core/seeds.hpp"

#include <cmath>
#include <stdexcept>

namespace sf {

std::vector<Vec3> uniform_grid_seeds(const AABB& box, int nx, int ny,
                                     int nz) {
  if (nx < 1 || ny < 1 || nz < 1) {
    throw std::invalid_argument("uniform_grid_seeds: counts must be >= 1");
  }
  std::vector<Vec3> out;
  out.reserve(static_cast<std::size_t>(nx) * ny * nz);
  const Vec3 e = box.extent();
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        out.push_back({box.lo.x + e.x * (i + 0.5) / nx,
                       box.lo.y + e.y * (j + 0.5) / ny,
                       box.lo.z + e.z * (k + 0.5) / nz});
      }
    }
  }
  return out;
}

std::vector<Vec3> random_seeds(const AABB& box, std::size_t count,
                               Rng& rng) {
  std::vector<Vec3> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({rng.uniform(box.lo.x, box.hi.x),
                   rng.uniform(box.lo.y, box.hi.y),
                   rng.uniform(box.lo.z, box.hi.z)});
  }
  return out;
}

std::vector<Vec3> cluster_seeds(const Vec3& center, double sigma,
                                std::size_t count, Rng& rng,
                                const AABB& clip) {
  std::vector<Vec3> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Vec3 p{center.x + sigma * rng.next_normal(),
                 center.y + sigma * rng.next_normal(),
                 center.z + sigma * rng.next_normal()};
    out.push_back(clip.clamp(p));
  }
  return out;
}

std::vector<Vec3> circle_seeds(const Vec3& center, const Vec3& normal,
                               double radius, std::size_t count) {
  if (count == 0) return {};
  // Build an orthonormal basis {u, v} of the plane orthogonal to normal.
  const Vec3 n = normalized(normal);
  const Vec3 ref = std::abs(n.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  const Vec3 u = normalized(cross(n, ref));
  const Vec3 v = cross(n, u);

  std::vector<Vec3> out;
  out.reserve(count);
  const double two_pi = 6.283185307179586;
  for (std::size_t i = 0; i < count; ++i) {
    const double a = two_pi * static_cast<double>(i) /
                     static_cast<double>(count);
    out.push_back(center + u * (radius * std::cos(a)) +
                  v * (radius * std::sin(a)));
  }
  return out;
}

std::vector<Vec3> line_seeds(const Vec3& a, const Vec3& b,
                             std::size_t count) {
  std::vector<Vec3> out;
  out.reserve(count);
  if (count == 1) {
    out.push_back((a + b) * 0.5);
    return out;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(count - 1);
    out.push_back(a + (b - a) * t);
  }
  return out;
}

}  // namespace sf
