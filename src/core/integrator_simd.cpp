// AVX2 4-lane DOPRI5 focus-round kernel.  See integrator_simd.hpp for
// the contract and DESIGN.md §14 for the bit-identity argument.
//
// This TU is compiled with `-mavx2 -mno-fma -ffp-contract=off` (and
// SF_SIMD_AVX2) when the compiler supports AVX2: the vector add / mul /
// div / sqrt / compare instructions are IEEE-754 correctly rounded per
// lane, so an elementwise transcription of the scalar operation
// sequence yields the scalar bits; disabling FMA and contraction keeps
// the compiler from fusing the mul+add chains into a differently
// rounded form.  Nothing outside this TU executes AVX2 instructions, so
// the rest of the library stays runnable on baseline x86-64 and the
// runtime dispatch in sf::simd_kernel_available() (tracer.cpp) is the
// only gate needed.

#include "core/integrator_simd.hpp"

#if defined(SF_SIMD_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace sf::simd {
namespace {

using integrator_detail::kA;
using integrator_detail::kB5;
using integrator_detail::kE;
using integrator_detail::kMaxScale;
using integrator_detail::kMinScale;
using integrator_detail::kSafety;
using integrator_detail::kShrink;

constexpr int kLanes = 4;

// Focus-grid parameters hoisted once per round: every lane samples the
// same grid, so bounds, reciprocal cell size and extents are uniform
// (broadcast), and only the 8-corner gathers are per lane.
struct GridUniforms {
  AABB bounds{};
  Vec3 inv_cell{};
  int nx = 0, ny = 0, nz = 0;
  const double* xs = nullptr;
  const double* ys = nullptr;
  const double* zs = nullptr;
  __m256d lox, loy, loz, hix, hiy, hiz;
  __m256d invx, invy, invz;
  __m128i imax, jmax, kmax;  // nx-2 / ny-2 / nz-2, the locate clamp
};

GridUniforms make_uniforms(const StructuredGrid& grid) {
  GridUniforms g;
  g.bounds = grid.bounds();
  g.inv_cell = grid.inv_cell_size();
  g.nx = grid.nx();
  g.ny = grid.ny();
  g.nz = grid.nz();
  g.xs = grid.comp_x();
  g.ys = grid.comp_y();
  g.zs = grid.comp_z();
  g.lox = _mm256_set1_pd(g.bounds.lo.x);
  g.loy = _mm256_set1_pd(g.bounds.lo.y);
  g.loz = _mm256_set1_pd(g.bounds.lo.z);
  g.hix = _mm256_set1_pd(g.bounds.hi.x);
  g.hiy = _mm256_set1_pd(g.bounds.hi.y);
  g.hiz = _mm256_set1_pd(g.bounds.hi.z);
  g.invx = _mm256_set1_pd(g.inv_cell.x);
  g.invy = _mm256_set1_pd(g.inv_cell.y);
  g.invz = _mm256_set1_pd(g.inv_cell.z);
  g.imax = _mm_set1_epi32(g.nx - 2);
  g.jmax = _mm_set1_epi32(g.ny - 2);
  g.kmax = _mm_set1_epi32(g.nz - 2);
  return g;
}

// Per-lane solver state, lane-minor so one aligned load picks up all
// four lanes of a quantity.  Each lane owns an independent particle
// mid-step plus a private cell cursor (anchor + 8 corners per
// component, corner-major).  Private cursors refill more often than the
// scalar round's shared cursor would, but refills are loads, not
// evaluations — results and eval counts are unaffected.
struct CohortState {
  alignas(32) double px[kLanes];
  alignas(32) double py[kLanes];
  alignas(32) double pz[kLanes];
  alignas(32) double t[kLanes];
  alignas(32) double h[kLanes];
  alignas(32) double k0x[kLanes];
  alignas(32) double k0y[kLanes];
  alignas(32) double k0z[kLanes];
  alignas(32) double cxc[8][kLanes];
  alignas(32) double cyc[8][kLanes];
  alignas(32) double czc[8][kLanes];
  int ci[kLanes] = {-1, -1, -1, -1};
  int cj[kLanes] = {-1, -1, -1, -1};
  int ck[kLanes] = {-1, -1, -1, -1};
  std::size_t slot[kLanes] = {};   // index into batch / out
  bool stepping[kLanes] = {};      // lane holds a live mid-step particle
};

// Gather one cell's 24 corner values into the lane's cursor columns.
// Index arithmetic mirrors StructuredGrid::index and
// GridSampler::refill exactly.
void refill_lane(CohortState& st, const GridUniforms& g, int lane, int i,
                 int j, int k) {
  const std::size_t base = static_cast<std::size_t>(k) * g.nx * g.ny +
                           static_cast<std::size_t>(j) * g.nx +
                           static_cast<std::size_t>(i);
  const std::size_t rowy = static_cast<std::size_t>(g.nx);
  const std::size_t rowz = static_cast<std::size_t>(g.nx) * g.ny;
  const std::size_t n[8] = {base,
                            base + 1,
                            base + rowy,
                            base + rowy + 1,
                            base + rowz,
                            base + rowz + 1,
                            base + rowz + rowy,
                            base + rowz + rowy + 1};
  for (int c = 0; c < 8; ++c) {
    st.cxc[c][lane] = g.xs[n[c]];
    st.cyc[c][lane] = g.ys[n[c]];
    st.czc[c][lane] = g.zs[n[c]];
  }
  st.ci[lane] = i;
  st.cj[lane] = j;
  st.ck[lane] = k;
}

// grid_detail::trilinear across lanes: same products, same sums, same
// association, elementwise per lane.
inline __m256d trilinear_lanes(const double c[8][kLanes], __m256d tx,
                               __m256d ty, __m256d tz) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sx = _mm256_sub_pd(one, tx);
  const __m256d c00 = _mm256_add_pd(_mm256_mul_pd(_mm256_load_pd(c[0]), sx),
                                    _mm256_mul_pd(_mm256_load_pd(c[1]), tx));
  const __m256d c10 = _mm256_add_pd(_mm256_mul_pd(_mm256_load_pd(c[2]), sx),
                                    _mm256_mul_pd(_mm256_load_pd(c[3]), tx));
  const __m256d c01 = _mm256_add_pd(_mm256_mul_pd(_mm256_load_pd(c[4]), sx),
                                    _mm256_mul_pd(_mm256_load_pd(c[5]), tx));
  const __m256d c11 = _mm256_add_pd(_mm256_mul_pd(_mm256_load_pd(c[6]), sx),
                                    _mm256_mul_pd(_mm256_load_pd(c[7]), tx));
  const __m256d sy = _mm256_sub_pd(one, ty);
  const __m256d c0 =
      _mm256_add_pd(_mm256_mul_pd(c00, sy), _mm256_mul_pd(c10, ty));
  const __m256d c1 =
      _mm256_add_pd(_mm256_mul_pd(c01, sy), _mm256_mul_pd(c11, ty));
  const __m256d sz = _mm256_sub_pd(one, tz);
  return _mm256_add_pd(_mm256_mul_pd(c0, sz), _mm256_mul_pd(c1, tz));
}

// Same blend for one lane's columns — the scalar mirror used by the
// stage-one/stagnation sample.  Textually grid_detail::trilinear with a
// lane-strided gather.
inline double trilinear_lane(const double c[8][kLanes], int lane, double tx,
                             double ty, double tz) {
  const double sx = 1.0 - tx;
  const double c00 = c[0][lane] * sx + c[1][lane] * tx;
  const double c10 = c[2][lane] * sx + c[3][lane] * tx;
  const double c01 = c[4][lane] * sx + c[5][lane] * tx;
  const double c11 = c[6][lane] * sx + c[7][lane] * tx;
  const double sy = 1.0 - ty;
  const double c0 = c00 * sy + c10 * ty;
  const double c1 = c01 * sy + c11 * ty;
  return c0 * (1.0 - tz) + c1 * tz;
}

// Scalar GridSampler::sample against one lane's cursor (bounds check,
// locate through the shared grid_detail kernel, refill on anchor
// change, blend).  Bit-identical to the vector path below because the
// locate arithmetic is the same ops in the same order.
bool sample_lane(CohortState& st, const GridUniforms& g, int lane,
                 const Vec3& p, Vec3& out_v) {
  if (!g.bounds.contains(p)) return false;
  const grid_detail::CellCoords cc = grid_detail::locate_cell(
      p, g.bounds.lo, g.inv_cell, g.nx, g.ny, g.nz);
  if (cc.i != st.ci[lane] || cc.j != st.cj[lane] || cc.k != st.ck[lane]) {
    refill_lane(st, g, lane, cc.i, cc.j, cc.k);
  }
  out_v.x = trilinear_lane(st.cxc, lane, cc.tx, cc.ty, cc.tz);
  out_v.y = trilinear_lane(st.cyc, lane, cc.tx, cc.ty, cc.tz);
  out_v.z = trilinear_lane(st.czc, lane, cc.tx, cc.ty, cc.tz);
  return true;
}

// Vectorized GridSampler::sample: bounds predicate and locate are
// elementwise across lanes, the per-lane anchor check / corner gather
// is scalar, the blend is vector again.  `attempt` is the bitmask of
// lanes attempting this stage; returns the subset whose position is in
// bounds (others' outputs are garbage and must be masked by the
// caller).  Lanes outside `attempt` may hold arbitrary positions — they
// reach the arithmetic (well-defined, possibly NaN) but never the
// memory gathers.
int sample_lanes(CohortState& st, const GridUniforms& g, __m256d psx,
                 __m256d psy, __m256d psz, int attempt, __m256d& outx,
                 __m256d& outy, __m256d& outz) {
  // AABB::contains per lane: >= lo && <= hi per axis, ordered compares
  // so NaN fails exactly as in the scalar predicate.
  __m256d in = _mm256_and_pd(_mm256_cmp_pd(psx, g.lox, _CMP_GE_OQ),
                             _mm256_cmp_pd(psx, g.hix, _CMP_LE_OQ));
  in = _mm256_and_pd(in, _mm256_cmp_pd(psy, g.loy, _CMP_GE_OQ));
  in = _mm256_and_pd(in, _mm256_cmp_pd(psy, g.hiy, _CMP_LE_OQ));
  in = _mm256_and_pd(in, _mm256_cmp_pd(psz, g.loz, _CMP_GE_OQ));
  in = _mm256_and_pd(in, _mm256_cmp_pd(psz, g.hiz, _CMP_LE_OQ));
  const int ok = attempt & _mm256_movemask_pd(in);
  if (ok == 0) return 0;

  // grid_detail::locate_cell per lane: fx = (p - lo) * inv_cell,
  // i = trunc(fx) (cvttpd == the scalar int cast for in-range values),
  // i = min(i, n - 2) (== the scalar `if (i >= n-1) i = n-2` since
  // in-bounds fx is never negative), t = fx - double(i).  Every op is
  // exact or correctly rounded elementwise, so in-bounds lanes get the
  // scalar bits.
  const __m256d fx = _mm256_mul_pd(_mm256_sub_pd(psx, g.lox), g.invx);
  const __m256d fy = _mm256_mul_pd(_mm256_sub_pd(psy, g.loy), g.invy);
  const __m256d fz = _mm256_mul_pd(_mm256_sub_pd(psz, g.loz), g.invz);
  const __m128i i4 = _mm_min_epi32(_mm256_cvttpd_epi32(fx), g.imax);
  const __m128i j4 = _mm_min_epi32(_mm256_cvttpd_epi32(fy), g.jmax);
  const __m128i k4 = _mm_min_epi32(_mm256_cvttpd_epi32(fz), g.kmax);
  const __m256d tx = _mm256_sub_pd(fx, _mm256_cvtepi32_pd(i4));
  const __m256d ty = _mm256_sub_pd(fy, _mm256_cvtepi32_pd(j4));
  const __m256d tz = _mm256_sub_pd(fz, _mm256_cvtepi32_pd(k4));

  alignas(16) int is[kLanes], js[kLanes], ks[kLanes];
  _mm_store_si128(reinterpret_cast<__m128i*>(is), i4);
  _mm_store_si128(reinterpret_cast<__m128i*>(js), j4);
  _mm_store_si128(reinterpret_cast<__m128i*>(ks), k4);
  for (int l = 0; l < kLanes; ++l) {
    if (!(ok & (1 << l))) continue;  // masked lanes: no gather, no OOB
    if (is[l] != st.ci[l] || js[l] != st.cj[l] || ks[l] != st.ck[l]) {
      refill_lane(st, g, l, is[l], js[l], ks[l]);
    }
  }
  outx = trilinear_lanes(st.cxc, tx, ty, tz);
  outy = trilinear_lanes(st.cyc, tx, ty, tz);
  outz = trilinear_lanes(st.czc, tx, ty, tz);
  return ok;
}

// acc + k * (h * a): the stage-sum term exactly as the scalar body
// writes it — coefficient times h first, then the k product, then the
// left-associated add.
inline __m256d axpy(__m256d acc, __m256d k, __m256d hv, double a) {
  return _mm256_add_pd(acc,
                       _mm256_mul_pd(k, _mm256_mul_pd(hv, _mm256_set1_pd(a))));
}

struct StageRegs {
  __m256d x, y, z;
};

void lane_begin_step(CohortState& st, int lane, const Vec3* carried,
                     std::span<Particle> batch, std::span<AdvanceOutcome> out,
                     const FocusCohortArgs& args, const GridUniforms& g);

// Load the next cohort particle into `lane`: the per-advance preamble
// of Tracer::advance_with_cursor (terminal guard, cancel drain, seed
// record, h init) followed by the first step's preamble.  Leaves the
// lane stepping, or the particle retired/paused with the lane empty.
void lane_load(CohortState& st, int lane, std::size_t slot,
               std::span<Particle> batch, std::span<AdvanceOutcome> out,
               const FocusCohortArgs& args, const GridUniforms& g) {
  Particle& p = batch[slot];
  AdvanceOutcome& o = out[slot];
  if (is_terminal(p.status)) {
    o.status = p.status;
    o.blocking_block = kInvalidBlock;
    return;
  }
  // Cancelled-query drain: terminate in place before the seed vertex or
  // any integration step (same ordering as the scalar path).
  if (args.cancels != nullptr && args.cancels->contains(p.query)) {
    p.status = ParticleStatus::kCancelled;
    o.status = p.status;
    o.blocking_block = kInvalidBlock;
    return;
  }
  if (p.steps == 0 && args.recorder != nullptr) {
    args.recorder->reserve_hint(
        static_cast<std::size_t>(args.limits->max_steps) + 1);
    args.recorder->record(p, p.pos);  // seed vertex
  }
  if (p.h <= 0.0) p.h = args.iparams->h_init;
  st.slot[lane] = slot;
  // Fresh cursor per particle: the shared scalar cursor may carry a
  // warm cell between particles, but refills are not evaluations, so
  // forcing one here changes nothing observable.
  st.ci[lane] = st.cj[lane] = st.ck[lane] = -1;
  lane_begin_step(st, lane, nullptr, batch, out, args, g);
}

// The per-step preamble of the scalar loop: budgets, ownership,
// stage-one value (FSAL carry or a counted sample), stagnation, trial
// step-size capping and the dopri5 entry clamp.  Leaves the lane
// stepping with (p, t, h, k0) staged, or retires/pauses the particle.
void lane_begin_step(CohortState& st, int lane, const Vec3* carried,
                     std::span<Particle> batch, std::span<AdvanceOutcome> out,
                     const FocusCohortArgs& args, const GridUniforms& g) {
  Particle& p = batch[st.slot[lane]];
  AdvanceOutcome& o = out[st.slot[lane]];
  const auto retire = [&](ParticleStatus s) {
    p.status = s;
    o.status = s;
    o.blocking_block = kInvalidBlock;
  };
  // Budget checks first so hand-offs can't dodge them.
  if (p.time >= args.limits->max_time) {
    retire(ParticleStatus::kMaxTime);
    return;
  }
  if (p.steps >= args.limits->max_steps) {
    retire(ParticleStatus::kMaxSteps);
    return;
  }
  const BlockId owner = args.decomp->block_of(p.pos);
  if (owner == kInvalidBlock) {
    retire(ParticleStatus::kExitedDomain);
    return;
  }
  if (owner != args.focus) {
    // Focus-round boundary: pause exactly as the scalar round's
    // focus-only access fn would (blocks(owner) == nullptr there).
    o.status = ParticleStatus::kActive;
    o.blocking_block = owner;
    return;
  }
  // Stage-one value: the carried FSAL sample is the field at p.pos on
  // this same grid, so reusing it is bit-identical to re-evaluating.
  Vec3 v{};
  if (carried != nullptr) {
    v = *carried;
  } else {
    ++o.evals;
    if (!sample_lane(st, g, lane, p.pos, v)) {
      // The owner grid must cover its own core extent; failure here is
      // a dataset construction bug, not a flow condition.
      retire(ParticleStatus::kError);
      return;
    }
  }
  if (norm(v) < args.limits->min_speed) {
    retire(ParticleStatus::kStagnant);
    return;
  }
  // Cap the trial step so the remaining time budget is never overshot
  // by more than one step, then the dopri5_step entry clamp.
  double h = p.h;
  const double remaining = args.limits->max_time - p.time;
  if (h > remaining) h = std::max(remaining, args.iparams->h_min);
  h = std::clamp(h, args.iparams->h_min, args.iparams->h_max);

  st.px[lane] = p.pos.x;
  st.py[lane] = p.pos.y;
  st.pz[lane] = p.pos.z;
  st.t[lane] = p.time;
  st.h[lane] = h;
  st.k0x[lane] = v.x;
  st.k0y[lane] = v.y;
  st.k0z[lane] = v.z;
  st.stepping[lane] = true;
}

// One DOPRI5 *trial* for every stepping lane: stages 1..6 vectorized
// (stage 0 is the pre-supplied k0 — never sampled, never counted, as in
// dopri5_step_impl_fast with k0_pre), then the per-lane accept / reject
// / sample-failure epilogue.  Lanes mix freely: one may accept its
// first trial while a neighbour is on its third rejection — each lane's
// operation sequence is still exactly the scalar retry loop's.
void run_trial(CohortState& st, int active, std::span<Particle> batch,
               std::span<AdvanceOutcome> out, const FocusCohortArgs& args,
               const GridUniforms& g) {
  const __m256d px = _mm256_load_pd(st.px);
  const __m256d py = _mm256_load_pd(st.py);
  const __m256d pz = _mm256_load_pd(st.pz);
  const __m256d hv = _mm256_load_pd(st.h);

  StageRegs k[7] = {};
  k[0] = {_mm256_load_pd(st.k0x), _mm256_load_pd(st.k0y),
          _mm256_load_pd(st.k0z)};

  int ok = active;
  for (int s = 1; s <= 6 && ok != 0; ++s) {
    // Stage position: the same left-associated p + Σ k_j * (h * a_sj)
    // the unrolled scalar body computes (a sequential loop over j emits
    // the identical op sequence per lane).
    __m256d sx = px, sy = py, sz = pz;
    for (int j = 0; j < s; ++j) {
      sx = axpy(sx, k[j].x, hv, kA[s][j]);
      sy = axpy(sy, k[j].y, hv, kA[s][j]);
      sz = axpy(sz, k[j].z, hv, kA[s][j]);
    }
    // ++n_evals per attempted stage, before the sample — lanes that
    // failed an earlier stage attempt nothing further (short-circuit).
    for (int l = 0; l < kLanes; ++l) {
      if (ok & (1 << l)) ++out[st.slot[l]].evals;
    }
    ok = sample_lanes(st, g, sx, sy, sz, ok, k[s].x, k[s].y, k[s].z);
  }

  // Solution and error estimate in the reference accumulation order
  // (zero-weight terms included; err starts from an explicit zero).
  // Garbage in failed lanes is discarded below.
  __m256d pnx = px, pny = py, pnz = pz;
  __m256d ex = _mm256_setzero_pd();
  __m256d ey = _mm256_setzero_pd();
  __m256d ez = _mm256_setzero_pd();
  for (int s = 0; s < 7; ++s) {
    pnx = axpy(pnx, k[s].x, hv, kB5[s]);
    pny = axpy(pny, k[s].y, hv, kB5[s]);
    pnz = axpy(pnz, k[s].z, hv, kB5[s]);
    ex = axpy(ex, k[s].x, hv, kE[s]);
    ey = axpy(ey, k[s].y, hv, kE[s]);
    ez = axpy(ez, k[s].z, hv, kE[s]);
  }
  alignas(32) double pn[3][kLanes], er[3][kLanes], k6[3][kLanes];
  _mm256_store_pd(pn[0], pnx);
  _mm256_store_pd(pn[1], pny);
  _mm256_store_pd(pn[2], pnz);
  _mm256_store_pd(er[0], ex);
  _mm256_store_pd(er[1], ey);
  _mm256_store_pd(er[2], ez);
  _mm256_store_pd(k6[0], k[6].x);
  _mm256_store_pd(k6[1], k[6].y);
  _mm256_store_pd(k6[2], k[6].z);

  const IntegratorParams& ip = *args.iparams;
  for (int lane = 0; lane < kLanes; ++lane) {
    if (!(active & (1 << lane))) continue;
    Particle& p = batch[st.slot[lane]];
    AdvanceOutcome& o = out[st.slot[lane]];
    const double h = st.h[lane];

    if (!(ok & (1 << lane))) {
      // A stage left the data; shrink and retry, fail below h_min.
      if (h <= ip.h_min * (1.0 + 1e-12)) {
        // kSampleFailed: classify by whether a nudge along the flow
        // leaves the domain (v is k0, the field at p.pos).
        const Vec3 v{st.k0x[lane], st.k0y[lane], st.k0z[lane]};
        const Vec3 probe = p.pos + normalized(v) * (ip.h_min * 10);
        p.status = args.decomp->block_of(probe) == kInvalidBlock
                       ? ParticleStatus::kExitedDomain
                       : ParticleStatus::kError;
        o.status = p.status;
        o.blocking_block = kInvalidBlock;
        st.stepping[lane] = false;
      } else {
        st.h[lane] = std::max(h * kShrink, ip.h_min);
      }
      continue;
    }

    // Scaled RMS error against tol * (1 + |p|) per component.
    const double p_old[3] = {st.px[lane], st.py[lane], st.pz[lane]};
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) {
      const double scale =
          ip.tol * (1.0 + std::max(std::abs(p_old[c]), std::abs(pn[c][lane])));
      const double q = er[c][lane] / scale;
      sum += q * q;
    }
    const double enorm = std::sqrt(sum / 3.0);

    if (enorm <= 1.0 || h <= ip.h_min * (1.0 + 1e-12)) {
      // Accept (steps at h_min are always accepted to guarantee
      // progress) and immediately run the next step's preamble so the
      // lane rejoins the next trial.
      const double scale =
          enorm > 0.0 ? std::clamp(kSafety * std::pow(enorm, -0.2), kMinScale,
                                   kMaxScale)
                      : kMaxScale;
      const double h_next = std::clamp(h * scale, ip.h_min, ip.h_max);
      p.pos = Vec3{pn[0][lane], pn[1][lane], pn[2][lane]};
      p.time = st.t[lane] + h;
      p.h = h_next;
      p.steps += 1;
      p.geometry_points += 1;
      o.steps += 1;
      if (args.recorder != nullptr) args.recorder->record(p, p.pos);
      const Vec3 carried{k6[0][lane], k6[1][lane], k6[2][lane]};  // FSAL
      st.stepping[lane] = false;
      lane_begin_step(st, lane, &carried, batch, out, args, g);
    } else {
      // Reject: shrink per the controller and retry.
      const double scale =
          std::clamp(kSafety * std::pow(enorm, -0.2), kMinScale, 1.0);
      st.h[lane] = std::max(h * scale, ip.h_min);
    }
  }
}

}  // namespace

void advance_focus_cohort_avx2(std::span<Particle> batch,
                               std::span<const std::size_t> cohort,
                               std::span<AdvanceOutcome> out,
                               const FocusCohortArgs& args) {
  const GridUniforms g = make_uniforms(*args.grid);
  CohortState st{};
  std::size_t next_in = 0;
  for (;;) {
    int active = 0;
    for (int lane = 0; lane < kLanes; ++lane) {
      while (!st.stepping[lane] && next_in < cohort.size()) {
        lane_load(st, lane, cohort[next_in++], batch, out, args, g);
      }
      if (st.stepping[lane]) active |= 1 << lane;
    }
    if (active == 0) break;
    run_trial(st, active, batch, out, args, g);
  }
}

}  // namespace sf::simd

#else  // !SF_SIMD_AVX2: stub so the library links on any toolchain.

#include <cstdlib>

namespace sf::simd {

void advance_focus_cohort_avx2(std::span<Particle>,
                               std::span<const std::size_t>,
                               std::span<AdvanceOutcome>,
                               const FocusCohortArgs&) {
  // Unreachable by construction: dispatch guards every call on
  // sf::simd_kernel_available(), which is false whenever this stub is
  // the definition that got compiled in.
  std::abort();
}

}  // namespace sf::simd

#endif  // SF_SIMD_AVX2
