#pragma once

// Advection state of a single streamline.
//
// A Particle is what moves between blocks, ranks, caches and messages in
// all three parallelization algorithms.  It carries exactly the solver
// state needed to resume integration bit-identically on another rank,
// plus the size of the trajectory geometry recorded so far (which is what
// makes communicated particles expensive — §8 of the paper).

#include <cstdint>

#include "core/vec3.hpp"

namespace sf {

enum class ParticleStatus : std::uint8_t {
  kActive = 0,        // still integrating
  kExitedDomain = 1,  // left the global field domain
  kMaxTime = 2,       // reached the integration-time budget
  kMaxSteps = 3,      // reached the step budget
  kStagnant = 4,      // |v| below the stagnation threshold
  kError = 5,         // integrator could not proceed (should not happen)
  kCancelled = 6,     // query cancelled by the service; drained in place
};

constexpr bool is_terminal(ParticleStatus s) {
  return s != ParticleStatus::kActive;
}

const char* to_string(ParticleStatus s);

struct Particle {
  std::uint32_t id = 0;
  Vec3 pos{};
  double time = 0.0;
  // Current adaptive step size, carried across block and rank hand-offs so
  // the accepted-step sequence is identical no matter where the particle
  // is advanced.  0 means "not yet started, use h_init".
  double h = 0.0;
  std::uint32_t steps = 0;
  // Trajectory vertices recorded so far (including the seed).  Determines
  // the geometry payload when the particle is communicated.
  std::uint32_t geometry_points = 1;
  // Owning query in a multi-query service run (0 for standalone runs).
  // Travels with the particle so results, faults and termination
  // accounting stay per-query no matter which rank finishes the line.
  std::uint32_t query = 0;
  ParticleStatus status = ParticleStatus::kActive;
};

// Serialized size of a particle in a message.  When `carry_geometry` is
// set (the paper's baseline behaviour) the full recorded polyline travels
// with the particle; otherwise only solver state does (the communication
// optimization discussed in §8).
constexpr std::size_t particle_message_bytes(const Particle& p,
                                             bool carry_geometry) {
  constexpr std::size_t kSolverState = 64;  // id/pos/time/h/steps + padding
  return kSolverState +
         (carry_geometry ? p.geometry_points * sizeof(Vec3) : 0);
}

}  // namespace sf
