#include "core/tracer.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/integrator_simd.hpp"

namespace sf {

bool simd_kernel_available() {
  // SF_SIMD_AVX2 says the AVX2 kernel TU was compiled (see
  // src/CMakeLists.txt); the CPUID probe says this machine can run it.
  // This TU is built without -mavx2 so the probe itself is safe on any
  // x86-64 — only integrator_simd.cpp contains AVX2 instructions, and
  // it is entered only behind this check.
#if defined(SF_SIMD_AVX2) && defined(__x86_64__)
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
#else
  return false;
#endif
}

const char* to_string(ParticleStatus s) {
  switch (s) {
    case ParticleStatus::kActive: return "active";
    case ParticleStatus::kExitedDomain: return "exited-domain";
    case ParticleStatus::kMaxTime: return "max-time";
    case ParticleStatus::kMaxSteps: return "max-steps";
    case ParticleStatus::kStagnant: return "stagnant";
    case ParticleStatus::kError: return "error";
    case ParticleStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Fast path: block cursor + cell cursor, non-virtual sampling.
// ---------------------------------------------------------------------------

AdvanceOutcome Tracer::advance_with_cursor(Particle& particle,
                                           const BlockAccessFn& blocks,
                                           TraceRecorder* recorder,
                                           Cursor& cur) const {
  AdvanceOutcome out;
  if (is_terminal(particle.status)) {
    out.status = particle.status;
    return out;
  }
  // Cancelled-query drain: terminate in place, before the seed vertex or
  // any integration step, so the particle flows through the normal
  // termination bookkeeping without touching the numerics of its
  // batch-mates.
  if (cancels_ != nullptr && cancels_->contains(particle.query)) {
    particle.status = ParticleStatus::kCancelled;
    out.status = particle.status;
    return out;
  }

  if (particle.steps == 0 && recorder != nullptr) {
    recorder->reserve_hint(static_cast<std::size_t>(limits_.max_steps) + 1);
    recorder->record(particle, particle.pos);  // seed vertex
  }
  if (particle.h <= 0.0) particle.h = iparams_.h_init;

  // FSAL carry: the velocity at particle.pos, left over from the
  // previous accepted step's 7th stage (DOPRI5 evaluates it exactly at
  // the accepted point).  Valid only while the cursor's grid is the one
  // it was sampled from.
  Vec3 carried{};
  bool has_carried = false;

  for (;;) {
    // Budget checks first so hand-offs can't dodge them.
    if (particle.time >= limits_.max_time) {
      particle.status = ParticleStatus::kMaxTime;
      break;
    }
    if (particle.steps >= limits_.max_steps) {
      particle.status = ParticleStatus::kMaxSteps;
      break;
    }

    // Ownership check against the cursor.  block_of is inline index
    // arithmetic on the precomputed reciprocal block size, so the
    // per-step cost is a handful of multiplies; only a block *change*
    // pays the BlockAccessFn (hash lookup + LRU touch).  Skipped
    // lookups cannot change LRU order: re-touching the front entry is
    // order-idempotent.
    const BlockId owner = decomp_->block_of(particle.pos);
    if (owner == kInvalidBlock) {
      particle.status = ParticleStatus::kExitedDomain;
      break;
    }

    if (owner != cur.id || cur.grid == nullptr) {
      const StructuredGrid* grid = blocks(owner);
      if (grid == nullptr) {
        // Edge of the available data: the caller must fetch `owner` (or
        // hand the particle to whoever has it).
        out.blocking_block = owner;
        out.status = ParticleStatus::kActive;
        return out;
      }
      cur.id = owner;
      cur.grid = grid;
      cur.sampler.reset(grid);
      has_carried = false;  // sampled from the previous block's grid
    }

    // Stagnation check at the current position: the carried FSAL value
    // is this exact sample (same grid, same position, deterministic
    // sampler), so re-evaluating would return the same bits.
    Vec3 v{};
    if (has_carried) {
      v = carried;
    } else {
      ++out.evals;
      if (!cur.sampler.sample(particle.pos, v)) {
        // The owner grid must cover its own core extent; failure here is
        // a dataset construction bug, not a flow condition.
        particle.status = ParticleStatus::kError;
        break;
      }
    }
    if (norm(v) < limits_.min_speed) {
      particle.status = ParticleStatus::kStagnant;
      break;
    }

    // Cap the trial step so the remaining time budget is never overshot
    // by more than one step.
    double h = particle.h;
    const double remaining = limits_.max_time - particle.time;
    if (h > remaining) h = std::max(remaining, iparams_.h_min);

    // `v` is the field at particle.pos — reuse it as stage one instead of
    // re-sampling the same position (bit-identical; the sampler is
    // deterministic).
    const StepResult step =
        dopri5_step(cur.sampler, v, particle.pos, particle.time, h, iparams_);
    out.evals += static_cast<std::uint64_t>(step.n_evals);

    if (step.status == StepStatus::kSampleFailed) {
      // Even the smallest step sampled outside the block's ghost region.
      // Boundary-block grids extend (clamped) beyond the global domain,
      // so this only happens at the very rim of the data; classify by
      // whether a nudge along the flow leaves the domain.
      const Vec3 probe = particle.pos + normalized(v) * (iparams_.h_min * 10);
      particle.status = decomp_->block_of(probe) == kInvalidBlock
                            ? ParticleStatus::kExitedDomain
                            : ParticleStatus::kError;
      break;
    }

    particle.pos = step.p;
    particle.time = step.t;
    particle.h = step.h_next;
    particle.steps += 1;
    particle.geometry_points += 1;
    out.steps += 1;
    carried = step.k_last;
    has_carried = step.has_k_last;
    if (recorder != nullptr) recorder->record(particle, particle.pos);
  }

  out.status = particle.status;
  return out;
}

AdvanceOutcome Tracer::advance(Particle& particle, const BlockAccessFn& blocks,
                               TraceRecorder* recorder) const {
  Cursor cur;
  return advance_with_cursor(particle, blocks, recorder, cur);
}

std::vector<AdvanceOutcome> Tracer::advance_batch(
    std::span<Particle> batch, const BlockAccessFn& blocks,
    TraceRecorder* recorder, const BlockPinHooks* pins) const {
  std::vector<AdvanceOutcome> out(batch.size());
  // Per-block rounds: each round picks the block owning the most pending
  // particles and advances all of them through it while its node data is
  // cache-hot, pausing each at the block boundary.  The boundary is
  // exactly where the cell cursor and the FSAL carry invalidate anyway,
  // so per-particle results — trajectory, step count, even evaluation
  // count — are identical to advancing the particle alone (DESIGN.md
  // §5.1).  What changes is data traffic: one-particle-at-a-time
  // advancement streams every block it crosses through the cache once
  // per crossing; the cohort pays each block load once per round.
  std::vector<std::size_t> pending;
  pending.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (is_terminal(batch[i].status)) {
      out[i].status = batch[i].status;
    } else {
      pending.push_back(i);
    }
  }

  // Flat per-block census, reused across rounds (block ids are dense).
  std::vector<std::uint32_t> population(
      static_cast<std::size_t>(decomp_->num_blocks()), 0);
  std::vector<BlockId> owner_of(batch.size(), kInvalidBlock);

  Cursor cur;
  // The pinned focus.  The pin is taken when a block becomes the round
  // focus and moves only when the focus changes, so the grid the shared
  // cursor is bound to can never be evicted under it — neither by an
  // access fn that loads into a tiny LRU during the availability probes
  // below, nor by async completions inserting blocks between rounds.
  BlockId pinned_focus = kInvalidBlock;
  while (!pending.empty()) {
    // Census of pending particles per owner block.
    std::vector<BlockId> touched;
    touched.reserve(pending.size());
    for (const std::size_t i : pending) {
      const BlockId b = decomp_->block_of(batch[i].pos);
      owner_of[i] = b;
      if (b != kInvalidBlock) {
        if (population[static_cast<std::size_t>(b)]++ == 0) {
          touched.push_back(b);
        }
      }
    }

    // Focus on the most populated accessible block.
    BlockId focus = kInvalidBlock;
    std::uint32_t best = 0;
    for (const BlockId b : touched) {
      const std::uint32_t n = population[static_cast<std::size_t>(b)];
      if (n > best && blocks(b) != nullptr) {
        focus = b;
        best = n;
      }
    }
    for (const BlockId b : touched) population[static_cast<std::size_t>(b)] = 0;

    if (focus == kInvalidBlock) {
      // No pending particle's block is available.  Run each through the
      // unrestricted advance so domain exits terminate and the rest
      // report their blocking block, exactly as advance() would.
      for (const std::size_t i : pending) {
        const AdvanceOutcome o =
            advance_with_cursor(batch[i], blocks, recorder, cur);
        out[i].steps += o.steps;
        out[i].evals += o.evals;
        out[i].status = o.status;
        out[i].blocking_block = o.blocking_block;
      }
      break;
    }

    if (pins != nullptr && focus != pinned_focus) {
      if (pins->pin) pins->pin(focus);
      if (pinned_focus != kInvalidBlock && pins->unpin) {
        pins->unpin(pinned_focus);
      }
      pinned_focus = focus;
      // The cursor's grid was only guaranteed alive by the old pin.
      if (cur.id != focus) cur = Cursor{};
    }

    // SIMD dispatch (DESIGN.md §14): run the focus cohort through the
    // AVX2 4-lane kernel when forced, or automatically when the cohort
    // is wide enough to fill lanes.  The kernel is bit-identical per
    // particle to the scalar round below — trajectories, statuses, step
    // and eval counts — so this is purely a throughput decision.
    const bool use_simd =
        (kernel_ == AdvectionKernel::kSimd ||
         (kernel_ == AdvectionKernel::kAuto && best >= simd::kMinAutoCohort)) &&
        simd_kernel_available();
    if (use_simd) {
      // blocks(focus) was non-null during the probe above and the pin
      // (when present) keeps it alive; re-fetch defensively anyway.
      if (const StructuredGrid* fgrid = blocks(focus)) {
        std::vector<std::size_t> cohort;
        cohort.reserve(best);
        for (const std::size_t i : pending) {
          if (owner_of[i] == focus) cohort.push_back(i);
        }
        const simd::FocusCohortArgs fargs{decomp_,  focus,    fgrid,   &iparams_,
                                          &limits_, cancels_, recorder};
        simd::advance_focus_cohort_avx2(batch, cohort, out, fargs);
        // Rebuild pending in the same order the scalar round would:
        // non-focus particles and still-active focus particles keep
        // their relative positions.
        std::vector<std::size_t> keep;
        keep.reserve(pending.size());
        for (const std::size_t i : pending) {
          if (owner_of[i] != focus || !is_terminal(batch[i].status)) {
            keep.push_back(i);
          }
        }
        pending = std::move(keep);
        continue;
      }
    }

    // This round only the focus block is on the table: its residents
    // advance until they leave it (or finish); everyone else waits.
    const BlockAccessFn focus_only = [&blocks, focus](BlockId id) {
      return id == focus ? blocks(id) : nullptr;
    };
    std::vector<std::size_t> next;
    next.reserve(pending.size());
    for (const std::size_t i : pending) {
      if (owner_of[i] != focus) {
        next.push_back(i);
        continue;
      }
      const AdvanceOutcome o =
          advance_with_cursor(batch[i], focus_only, recorder, cur);
      out[i].steps += o.steps;
      out[i].evals += o.evals;
      out[i].status = o.status;
      out[i].blocking_block = o.blocking_block;
      if (!is_terminal(batch[i].status)) next.push_back(i);
    }
    pending = std::move(next);
  }
  if (pins != nullptr && pinned_focus != kInvalidBlock && pins->unpin) {
    pins->unpin(pinned_focus);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reference path (historical implementation, see header).
// ---------------------------------------------------------------------------

AdvanceOutcome Tracer::advance_reference(Particle& particle,
                                         const BlockAccessFn& blocks,
                                         TraceRecorder* recorder) const {
  AdvanceOutcome out;
  if (is_terminal(particle.status)) {
    out.status = particle.status;
    return out;
  }

  if (particle.steps == 0 && recorder != nullptr) {
    recorder->reserve_hint(static_cast<std::size_t>(limits_.max_steps) + 1);
    recorder->record(particle, particle.pos);  // seed vertex
  }
  if (particle.h <= 0.0) particle.h = iparams_.h_init;

  for (;;) {
    // Budget checks first so hand-offs can't dodge them.
    if (particle.time >= limits_.max_time) {
      particle.status = ParticleStatus::kMaxTime;
      break;
    }
    if (particle.steps >= limits_.max_steps) {
      particle.status = ParticleStatus::kMaxSteps;
      break;
    }

    const BlockId owner = decomp_->block_of(particle.pos);
    if (owner == kInvalidBlock) {
      particle.status = ParticleStatus::kExitedDomain;
      break;
    }

    const StructuredGrid* grid = blocks(owner);
    if (grid == nullptr) {
      // Edge of the available data: the caller must fetch `owner` (or
      // hand the particle to whoever has it).
      out.blocking_block = owner;
      out.status = ParticleStatus::kActive;
      return out;
    }

    // Stagnation check at the current position.
    Vec3 v{};
    ++out.evals;
    if (!grid->sample(particle.pos, v)) {
      // The owner grid must cover its own core extent; failure here is a
      // dataset construction bug, not a flow condition.
      particle.status = ParticleStatus::kError;
      break;
    }
    if (norm(v) < limits_.min_speed) {
      particle.status = ParticleStatus::kStagnant;
      break;
    }

    // Cap the trial step so the remaining time budget is never overshot
    // by more than one step.
    double h = particle.h;
    const double remaining = limits_.max_time - particle.time;
    if (h > remaining) h = std::max(remaining, iparams_.h_min);

    const StepResult step = dopri5_step_reference(*grid, particle.pos,
                                                  particle.time, h, iparams_);
    out.evals += static_cast<std::uint64_t>(step.n_evals);

    if (step.status == StepStatus::kSampleFailed) {
      // Even the smallest step sampled outside the block's ghost region.
      // Boundary-block grids extend (clamped) beyond the global domain,
      // so this only happens at the very rim of the data; classify by
      // whether a nudge along the flow leaves the domain.
      const Vec3 probe = particle.pos + normalized(v) * (iparams_.h_min * 10);
      particle.status = decomp_->block_of(probe) == kInvalidBlock
                            ? ParticleStatus::kExitedDomain
                            : ParticleStatus::kError;
      break;
    }

    particle.pos = step.p;
    particle.time = step.t;
    particle.h = step.h_next;
    particle.steps += 1;
    particle.geometry_points += 1;
    out.steps += 1;
    if (recorder != nullptr) recorder->record(particle, particle.pos);
  }

  out.status = particle.status;
  return out;
}

// ---------------------------------------------------------------------------
// Serial entry points
// ---------------------------------------------------------------------------

std::vector<Particle> trace_all(const BlockedDataset& dataset,
                                std::span<const Vec3> seeds,
                                const IntegratorParams& iparams,
                                const TraceLimits& limits,
                                TraceRecorder* recorder) {
  const BlockDecomposition& decomp = dataset.decomposition();
  Tracer tracer(&decomp, iparams, limits);

  // Keep every touched block alive for the duration of the trace.
  std::vector<GridPtr> cache(
      static_cast<std::size_t>(dataset.num_blocks()));
  const BlockAccessFn access = [&](BlockId id) -> const StructuredGrid* {
    GridPtr& slot = cache[static_cast<std::size_t>(id)];
    if (!slot) slot = dataset.block(id);
    return slot.get();
  };

  std::vector<Particle> particles(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    particles[i].id = static_cast<std::uint32_t>(i);
    particles[i].pos = seeds[i];
    if (decomp.block_of(seeds[i]) == kInvalidBlock) {
      particles[i].status = ParticleStatus::kExitedDomain;
    }
  }

  // One cohort: advance_batch schedules the work block by block, so
  // seeds sharing blocks (at the start or anywhere downstream) are
  // advanced while the block's data is hot.  Every block is accessible
  // here, so the batch runs each particle to a terminal state, and
  // per-particle results are independent of the schedule (DESIGN.md
  // §5.1).
  tracer.advance_batch(particles, access, recorder);
  return particles;
}

Particle trace_field(const VectorField& field, const Vec3& seed,
                     const IntegratorParams& iparams,
                     const TraceLimits& limits, TraceRecorder* recorder,
                     std::uint32_t particle_id) {
  Particle particle;
  particle.id = particle_id;
  particle.pos = seed;
  particle.h = iparams.h_init;

  if (!field.bounds().contains(seed)) {
    particle.status = ParticleStatus::kExitedDomain;
    return particle;
  }
  if (recorder != nullptr) {
    recorder->reserve_hint(static_cast<std::size_t>(limits.max_steps) + 1);
    recorder->record(particle, particle.pos);
  }

  for (;;) {
    if (particle.time >= limits.max_time) {
      particle.status = ParticleStatus::kMaxTime;
      return particle;
    }
    if (particle.steps >= limits.max_steps) {
      particle.status = ParticleStatus::kMaxSteps;
      return particle;
    }

    Vec3 v{};
    if (!field.sample(particle.pos, v)) {
      particle.status = ParticleStatus::kExitedDomain;
      return particle;
    }
    if (norm(v) < limits.min_speed) {
      particle.status = ParticleStatus::kStagnant;
      return particle;
    }

    double h = particle.h;
    const double remaining = limits.max_time - particle.time;
    if (h > remaining) h = std::max(remaining, iparams.h_min);

    const StepResult step =
        dopri5_step(field, particle.pos, particle.time, h, iparams);
    if (step.status == StepStatus::kSampleFailed) {
      particle.status = ParticleStatus::kExitedDomain;
      return particle;
    }

    particle.pos = step.p;
    particle.time = step.t;
    particle.h = step.h_next;
    particle.steps += 1;
    particle.geometry_points += 1;
    if (recorder != nullptr) recorder->record(particle, particle.pos);
  }
}

}  // namespace sf
