#include "core/tracer.hpp"

#include <cmath>

namespace sf {

const char* to_string(ParticleStatus s) {
  switch (s) {
    case ParticleStatus::kActive: return "active";
    case ParticleStatus::kExitedDomain: return "exited-domain";
    case ParticleStatus::kMaxTime: return "max-time";
    case ParticleStatus::kMaxSteps: return "max-steps";
    case ParticleStatus::kStagnant: return "stagnant";
    case ParticleStatus::kError: return "error";
  }
  return "unknown";
}

AdvanceOutcome Tracer::advance(Particle& particle, const BlockAccessFn& blocks,
                               TraceRecorder* recorder) const {
  AdvanceOutcome out;
  if (is_terminal(particle.status)) {
    out.status = particle.status;
    return out;
  }

  if (particle.steps == 0 && recorder != nullptr) {
    recorder->record(particle, particle.pos);  // seed vertex
  }
  if (particle.h <= 0.0) particle.h = iparams_.h_init;

  for (;;) {
    // Budget checks first so hand-offs can't dodge them.
    if (particle.time >= limits_.max_time) {
      particle.status = ParticleStatus::kMaxTime;
      break;
    }
    if (particle.steps >= limits_.max_steps) {
      particle.status = ParticleStatus::kMaxSteps;
      break;
    }

    const BlockId owner = decomp_->block_of(particle.pos);
    if (owner == kInvalidBlock) {
      particle.status = ParticleStatus::kExitedDomain;
      break;
    }

    const StructuredGrid* grid = blocks(owner);
    if (grid == nullptr) {
      // Edge of the available data: the caller must fetch `owner` (or
      // hand the particle to whoever has it).
      out.blocking_block = owner;
      out.status = ParticleStatus::kActive;
      return out;
    }

    // Stagnation check at the current position.
    Vec3 v{};
    ++out.evals;
    if (!grid->sample(particle.pos, v)) {
      // The owner grid must cover its own core extent; failure here is a
      // dataset construction bug, not a flow condition.
      particle.status = ParticleStatus::kError;
      break;
    }
    if (norm(v) < limits_.min_speed) {
      particle.status = ParticleStatus::kStagnant;
      break;
    }

    // Cap the trial step so the remaining time budget is never overshot
    // by more than one step.
    double h = particle.h;
    const double remaining = limits_.max_time - particle.time;
    if (h > remaining) h = std::max(remaining, iparams_.h_min);

    const StepResult step = dopri5_step(*grid, particle.pos, particle.time,
                                        h, iparams_);
    out.evals += static_cast<std::uint64_t>(step.n_evals);

    if (step.status == StepStatus::kSampleFailed) {
      // Even the smallest step sampled outside the block's ghost region.
      // Boundary-block grids extend (clamped) beyond the global domain,
      // so this only happens at the very rim of the data; classify by
      // whether a nudge along the flow leaves the domain.
      const Vec3 probe = particle.pos + normalized(v) * (iparams_.h_min * 10);
      particle.status = decomp_->block_of(probe) == kInvalidBlock
                            ? ParticleStatus::kExitedDomain
                            : ParticleStatus::kError;
      break;
    }

    particle.pos = step.p;
    particle.time = step.t;
    particle.h = step.h_next;
    particle.steps += 1;
    particle.geometry_points += 1;
    out.steps += 1;
    if (recorder != nullptr) recorder->record(particle, particle.pos);
  }

  out.status = particle.status;
  return out;
}

std::vector<Particle> trace_all(const BlockedDataset& dataset,
                                std::span<const Vec3> seeds,
                                const IntegratorParams& iparams,
                                const TraceLimits& limits,
                                TraceRecorder* recorder) {
  const BlockDecomposition& decomp = dataset.decomposition();
  Tracer tracer(&decomp, iparams, limits);

  // Keep every touched block alive for the duration of the trace.
  std::vector<GridPtr> cache(
      static_cast<std::size_t>(dataset.num_blocks()));
  const BlockAccessFn access = [&](BlockId id) -> const StructuredGrid* {
    GridPtr& slot = cache[static_cast<std::size_t>(id)];
    if (!slot) slot = dataset.block(id);
    return slot.get();
  };

  std::vector<Particle> particles(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    particles[i].id = static_cast<std::uint32_t>(i);
    particles[i].pos = seeds[i];
    if (decomp.block_of(seeds[i]) == kInvalidBlock) {
      particles[i].status = ParticleStatus::kExitedDomain;
      continue;
    }
    tracer.advance(particles[i], access, recorder);
  }
  return particles;
}

Particle trace_field(const VectorField& field, const Vec3& seed,
                     const IntegratorParams& iparams,
                     const TraceLimits& limits, TraceRecorder* recorder,
                     std::uint32_t particle_id) {
  Particle particle;
  particle.id = particle_id;
  particle.pos = seed;
  particle.h = iparams.h_init;

  if (!field.bounds().contains(seed)) {
    particle.status = ParticleStatus::kExitedDomain;
    return particle;
  }
  if (recorder != nullptr) recorder->record(particle, particle.pos);

  for (;;) {
    if (particle.time >= limits.max_time) {
      particle.status = ParticleStatus::kMaxTime;
      return particle;
    }
    if (particle.steps >= limits.max_steps) {
      particle.status = ParticleStatus::kMaxSteps;
      return particle;
    }

    Vec3 v{};
    if (!field.sample(particle.pos, v)) {
      particle.status = ParticleStatus::kExitedDomain;
      return particle;
    }
    if (norm(v) < limits.min_speed) {
      particle.status = ParticleStatus::kStagnant;
      return particle;
    }

    double h = particle.h;
    const double remaining = limits.max_time - particle.time;
    if (h > remaining) h = std::max(remaining, iparams.h_min);

    const StepResult step =
        dopri5_step(field, particle.pos, particle.time, h, iparams);
    if (step.status == StepStatus::kSampleFailed) {
      particle.status = ParticleStatus::kExitedDomain;
      return particle;
    }

    particle.pos = step.p;
    particle.time = step.t;
    particle.h = step.h_next;
    particle.steps += 1;
    particle.geometry_points += 1;
    if (recorder != nullptr) recorder->record(particle, particle.pos);
  }
}

}  // namespace sf
