#pragma once

// Small 3-component double vector used throughout StreamFlow.
//
// Kept deliberately minimal: value semantics, constexpr-friendly, no SIMD
// intrinsics (the interpolation kernels auto-vectorize well enough and the
// hot loops are dominated by memory access, not arithmetic).

#include <cmath>
#include <iosfwd>
#include <ostream>

namespace sf {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

inline double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

constexpr double norm2(const Vec3& a) { return dot(a, a); }

inline Vec3 normalized(const Vec3& a) {
  const double n = norm(a);
  return n > 0.0 ? a / n : Vec3{};
}

inline double distance(const Vec3& a, const Vec3& b) { return norm(a - b); }

// Component-wise min/max — used by bounding-box accumulation.
constexpr Vec3 min(const Vec3& a, const Vec3& b) {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
          a.z < b.z ? a.z : b.z};
}
constexpr Vec3 max(const Vec3& a, const Vec3& b) {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y,
          a.z > b.z ? a.z : b.z};
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace sf
