#pragma once

// Spatial decomposition of the field domain into disjoint blocks.
//
// Mirrors the setting of §4 of the paper: "the problem mesh is decomposed
// into a number of spatially disjoint blocks; each block may or may not
// have ghost cells for connectivity purposes".  Ownership of a point is
// unique (index arithmetic, lower-closed intervals), so every algorithm
// agrees on which block a particle currently resides in.

#include <cstdint>
#include <vector>

#include "core/aabb.hpp"

namespace sf {

using BlockId = std::int32_t;
inline constexpr BlockId kInvalidBlock = -1;

struct BlockCoords {
  int i = 0;
  int j = 0;
  int k = 0;
  friend bool operator==(const BlockCoords&, const BlockCoords&) = default;
};

class BlockDecomposition {
 public:
  BlockDecomposition(const AABB& domain, int nbx, int nby, int nbz);

  const AABB& domain() const { return domain_; }
  int nbx() const { return nbx_; }
  int nby() const { return nby_; }
  int nbz() const { return nbz_; }
  int num_blocks() const { return nbx_ * nby_ * nbz_; }

  BlockId id_of(const BlockCoords& c) const {
    return static_cast<BlockId>((c.k * nby_ + c.j) * nbx_ + c.i);
  }
  BlockCoords coords_of(BlockId id) const;

  // Core (ghost-free) spatial extent of a block.
  AABB block_bounds(BlockId id) const;

  // Block extent inflated by `ghost_cells` cells of a grid with
  // `nodes_per_axis` nodes across the core extent, clipped to nothing
  // (ghost regions may extend beyond the global domain; sampling clamps).
  AABB ghost_bounds(BlockId id, int nodes_per_axis, int ghost_cells) const;

  // Unique owner of `p`, or kInvalidBlock if p is outside the domain.
  // Ownership intervals are closed below and open above, except the last
  // block per axis which also owns the domain's high face.  Inline (and
  // divide-free, via the precomputed reciprocal block size) because the
  // advection fast path re-derives ownership every accepted step: a raw
  // AABB test against the current block is cheaper still, but its
  // rounding can disagree with this index arithmetic in the last ulp at
  // shared faces, and every path must agree on ownership bit-for-bit.
  BlockId block_of(const Vec3& p) const {
    if (!domain_.contains(p)) return kInvalidBlock;
    BlockCoords c;
    c.i = axis_cell(p.x, domain_.lo.x, inv_bsize_.x, nbx_);
    c.j = axis_cell(p.y, domain_.lo.y, inv_bsize_.y, nby_);
    c.k = axis_cell(p.z, domain_.lo.z, inv_bsize_.z, nbz_);
    return id_of(c);
  }

  // Face-adjacent neighbours (up to 6).
  std::vector<BlockId> face_neighbors(BlockId id) const;

  // All blocks whose core bounds intersect `box` (used by seed routing
  // and stream-surface front queries).
  std::vector<BlockId> blocks_intersecting(const AABB& box) const;

 private:
  static int axis_cell(double v, double lo, double inv_size, int n) {
    int i = static_cast<int>((v - lo) * inv_size);
    if (i >= n) i = n - 1;  // high domain face belongs to the last block
    if (i < 0) i = 0;       // guards against -0.0 style rounding
    return i;
  }

  AABB domain_;
  int nbx_, nby_, nbz_;
  Vec3 bsize_;      // extent of one block
  Vec3 inv_bsize_;  // its reciprocal (block_of runs per accepted step)
};

}  // namespace sf
