#pragma once

// Spatial decomposition of the field domain into disjoint blocks.
//
// Mirrors the setting of §4 of the paper: "the problem mesh is decomposed
// into a number of spatially disjoint blocks; each block may or may not
// have ghost cells for connectivity purposes".  Ownership of a point is
// unique (index arithmetic, lower-closed intervals), so every algorithm
// agrees on which block a particle currently resides in.

#include <cstdint>
#include <vector>

#include "core/aabb.hpp"

namespace sf {

using BlockId = std::int32_t;
inline constexpr BlockId kInvalidBlock = -1;

struct BlockCoords {
  int i = 0;
  int j = 0;
  int k = 0;
  friend bool operator==(const BlockCoords&, const BlockCoords&) = default;
};

class BlockDecomposition {
 public:
  BlockDecomposition(const AABB& domain, int nbx, int nby, int nbz);

  const AABB& domain() const { return domain_; }
  int nbx() const { return nbx_; }
  int nby() const { return nby_; }
  int nbz() const { return nbz_; }
  int num_blocks() const { return nbx_ * nby_ * nbz_; }

  BlockId id_of(const BlockCoords& c) const {
    return static_cast<BlockId>((c.k * nby_ + c.j) * nbx_ + c.i);
  }
  BlockCoords coords_of(BlockId id) const;

  // Core (ghost-free) spatial extent of a block.
  AABB block_bounds(BlockId id) const;

  // Block extent inflated by `ghost_cells` cells of a grid with
  // `nodes_per_axis` nodes across the core extent, clipped to nothing
  // (ghost regions may extend beyond the global domain; sampling clamps).
  AABB ghost_bounds(BlockId id, int nodes_per_axis, int ghost_cells) const;

  // Unique owner of `p`, or kInvalidBlock if p is outside the domain.
  // Ownership intervals are closed below and open above, except the last
  // block per axis which also owns the domain's high face.
  BlockId block_of(const Vec3& p) const;

  // Face-adjacent neighbours (up to 6).
  std::vector<BlockId> face_neighbors(BlockId id) const;

  // All blocks whose core bounds intersect `box` (used by seed routing
  // and stream-surface front queries).
  std::vector<BlockId> blocks_intersecting(const AABB& box) const;

 private:
  AABB domain_;
  int nbx_, nby_, nbz_;
  Vec3 bsize_;  // extent of one block
};

}  // namespace sf
