#pragma once

// Seed-point generators for the seeding scenarios of §3 and §5:
// sparse uniform volume seeding, dense clustered seeding, the 16x16x16
// regular grid of the thermal-hydraulics sparse case, and the 22,000-seed
// circle around an inlet that replicates stream-surface computation.

#include <cstdint>
#include <vector>

#include "core/aabb.hpp"
#include "core/rng.hpp"
#include "core/vec3.hpp"

namespace sf {

// nx*ny*nz seeds at the cell centres of a regular lattice over `box`
// (e.g. 16x16x16 through the thermal-hydraulics box, Figure 13 sparse).
std::vector<Vec3> uniform_grid_seeds(const AABB& box, int nx, int ny, int nz);

// `count` independent uniform random seeds in `box` (the "sparse" initial
// condition of the astro and fusion studies).
std::vector<Vec3> random_seeds(const AABB& box, std::size_t count, Rng& rng);

// `count` gaussian-distributed seeds around `center` with standard
// deviation `sigma`, clamped into `clip` (the "dense" initial condition:
// all seeds land in a small neighbourhood, i.e. a few blocks).
std::vector<Vec3> cluster_seeds(const Vec3& center, double sigma,
                                std::size_t count, Rng& rng,
                                const AABB& clip);

// `count` seeds evenly spaced on the circle of radius `radius` around
// `center` in the plane orthogonal to `normal` (the 22,000-seed inlet
// circle of §5.3).
std::vector<Vec3> circle_seeds(const Vec3& center, const Vec3& normal,
                               double radius, std::size_t count);

// `count` seeds evenly spaced on the segment [a, b] (stream-surface seed
// curves; rake seeding).
std::vector<Vec3> line_seeds(const Vec3& a, const Vec3& b,
                             std::size_t count);

}  // namespace sf
