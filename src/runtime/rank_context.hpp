#pragma once

// The runtime abstraction the three algorithms are written against.
//
// A RankProgram is an event-driven state machine for one rank; a
// RankContext is what the hosting runtime (discrete-event simulator or
// real threads) provides to it.  Programs do the *real* numerical work
// synchronously inside handlers and report its modelled cost through
// begin_compute(); the runtime decides what that costs in (simulated or
// real) time.
//
// Contract:
//   * Handlers are never re-entered; the runtime serializes calls per rank.
//   * on_message / on_block_loaded may arrive while a compute burst is in
//     flight (busy() == true).  Handlers must then only mutate state and
//     may not call begin_compute(); they resume work from
//     on_compute_done().
//   * request_block() is idempotent while a load is pending; exactly one
//     on_block_loaded(id) fires per completed load (immediately for cache
//     hits).
//   * After finished() becomes true the program must not send or compute.

#include <cstdint>
#include <functional>
#include <memory>

#include "core/block_decomposition.hpp"
#include "core/dataset.hpp"
#include "core/tracer.hpp"
#include "fault/ledger.hpp"
#include "runtime/message.hpp"
#include "sim/machine_model.hpp"

namespace sf {

class RankContext {
 public:
  virtual ~RankContext() = default;

  virtual int rank() const = 0;
  virtual int num_ranks() const = 0;
  virtual double now() const = 0;

  virtual const BlockDecomposition& decomposition() const = 0;
  virtual const Tracer& tracer() const = 0;
  virtual const MachineModel& model() const = 0;

  // Asynchronous point-to-point send.
  virtual void send(int to, Message msg) = 0;

  // Fetch a block into this rank's cache; on_block_loaded(id) fires when
  // it is resident (a cache hit fires immediately, at zero I/O cost).
  virtual void request_block(BlockId id) = 0;

  // Hint that `id` will likely be needed soon.  When the runtime runs
  // with async I/O enabled it fetches the block in the background into
  // a bounded staging area; the block only enters the LRU cache — and
  // only counts as a load — when a later request_block() claims it
  // (then at zero stall).  Never fires on_block_loaded by itself, never
  // blocks, and is a silent no-op when async I/O is off, when the block
  // is already resident/pending/staged, or when staging is full.  So
  // algorithms may call it speculatively without bookkeeping.
  virtual void prefetch_block(BlockId id) { (void)id; }

  // How many prefetches this rank may usefully have in flight: the
  // configured depth under async I/O, 0 when async I/O is off.  Lets
  // algorithms size a hint batch (and skip building one entirely on
  // synchronous runs) without knowing the runtime's config.
  virtual int prefetch_capacity() const { return 0; }

  // Pin/unpin a cache block against eviction (nested).  Used via
  // Tracer's BlockPinHooks to keep the focused block of a batch round
  // resident; pin intent survives non-residency (see BlockCache::pin).
  // Default no-op keeps test fakes and simple contexts trivial.
  virtual void pin_block(BlockId id) { (void)id; }
  virtual void unpin_block(BlockId id) { (void)id; }

  virtual bool block_resident(BlockId id) const = 0;
  virtual bool block_pending(BlockId id) const = 0;

  // Blocks currently resident in this rank's cache, MRU first (what a
  // hybrid slave reports to its master).
  virtual std::vector<BlockId> resident_blocks() const = 0;

  // The cached grid (marks it most-recently-used), or nullptr.
  virtual const StructuredGrid* block(BlockId id) = 0;

  // Begin a compute burst whose real work the caller just performed.
  // `seconds` of busy time are charged; `steps` accepted integration
  // steps are recorded.  on_compute_done() fires when the burst ends.
  // Must not be called while busy().
  virtual void begin_compute(double seconds, std::uint64_t steps) = 0;
  virtual bool busy() const = 0;

  // Account resident-particle memory (positive when particles arrive or
  // grow geometry, negative when they leave or terminate).  The runtime
  // aborts the run with OOM when a rank exceeds its budget.
  virtual void charge_particle_memory(std::int64_t delta_bytes) = 0;

  // ---- Fault-tolerance hooks (no-ops outside fault injection) ----

  // Arm a one-shot timer; on_timer() fires after `seconds`.  Used by the
  // hybrid heartbeat protocol.  Default: never fires.
  virtual void set_timer(double seconds) { (void)seconds; }

  // Liveness as known to the runtime.  Programs use this to skip dead
  // peers; outside fault injection every rank is alive.
  virtual bool is_alive(int target) const {
    (void)target;
    return true;
  }

  // Record a termination in the particle ledger.  Returns true when this
  // is the streamline's first termination anywhere (credit it toward the
  // global count), false for a duplicate re-run after a recovery.
  virtual bool log_termination(const Particle& p) {
    (void)p;
    return true;
  }

  // Reclaim a dead rank's streamlines for this rank (the caller becomes
  // responsible for advecting them and re-reporting lost termination
  // credits).  Outside fault injection there is nothing to recover.
  virtual RecoveredWork recover_rank(int dead_rank) {
    (void)dead_rank;
    return {};
  }

  // Speculatively copy a straggling (slow but alive) rank's in-progress
  // streamlines from the ledger, *without* killing the straggler or
  // transferring ownership: the straggler keeps racing its own copies,
  // the caller re-issues the returned ones to healthy ranks, and the
  // ledger's first-terminal-wins credit dedups whichever copy loses.
  // Outside fault injection there is nothing to speculate.
  virtual std::vector<Particle> speculate_rank(int straggler) {
    (void)straggler;
    return {};
  }
};

class RankProgram {
 public:
  virtual ~RankProgram() = default;

  // Called once before any other handler.
  virtual void start(RankContext& ctx) = 0;
  virtual void on_message(RankContext& ctx, Message msg) = 0;
  virtual void on_block_loaded(RankContext& ctx, BlockId id) = 0;
  virtual void on_compute_done(RankContext& ctx) = 0;

  // True when this rank will never send or compute again.
  virtual bool finished() const = 0;

  // Append this rank's terminated particles (for result gathering).
  virtual void collect_particles(std::vector<Particle>& out) const = 0;

  // ---- Fault-tolerance hooks ----

  // Fires after a set_timer() delay (hybrid heartbeats).
  virtual void on_timer(RankContext& ctx) { (void)ctx; }

  // Append every in-memory particle (pooled, queued, in flight) for a
  // checkpoint snapshot.  Terminated particles already flow through
  // log_termination and need not be included.
  virtual void snapshot_particles(std::vector<Particle>& out) const {
    (void)out;
  }
};

using ProgramFactory =
    std::function<std::unique_ptr<RankProgram>(int rank, int num_ranks)>;

}  // namespace sf
