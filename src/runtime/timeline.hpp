#pragma once

// Per-rank activity timeline.
//
// §8 of the paper: "we have found that processor starvation is often a
// limitation to large scalability".  When enabled, the simulated runtime
// records every compute burst and I/O wait as a time span, from which
// utilization curves and starvation statistics are derived — the
// "observing communication and processor utilization patterns" the paper
// proposes as the input for smarter heuristics.

#include <cstdint>
#include <vector>

namespace sf {

struct TimelineSpan {
  enum class Kind : std::uint8_t { kCompute = 0, kIo = 1 };
  int rank = 0;
  Kind kind = Kind::kCompute;
  double t0 = 0.0;
  double t1 = 0.0;
};

class Timeline {
 public:
  explicit Timeline(int num_ranks) : num_ranks_(num_ranks) {}

  void add(int rank, TimelineSpan::Kind kind, double t0, double t1) {
    spans_.push_back({rank, kind, t0, t1});
  }

  int num_ranks() const { return num_ranks_; }
  const std::vector<TimelineSpan>& spans() const { return spans_; }

  // Fraction of [0, wall] each rank spent computing.
  std::vector<double> rank_utilization(double wall) const;

  // System-wide compute utilization per time bin: the fraction of all
  // ranks busy during each of `bins` equal slices of [0, wall].
  std::vector<double> utilization_curve(double wall, int bins) const;

  // Total rank-seconds in which a rank was neither computing nor waiting
  // on I/O — idle/starved time.
  double total_starved_seconds(double wall) const;

 private:
  int num_ranks_;
  std::vector<TimelineSpan> spans_;
};

}  // namespace sf
