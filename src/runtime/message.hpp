#pragma once

// Messages exchanged between ranks.
//
// One tagged-union message type covers all three algorithms:
//   * ParticleBatch      — streamlines in flight between ranks (Static
//                          hand-offs, Hybrid Sendforce/Sendhint traffic)
//   * StatusUpdate       — slave -> master state report (§4.3)
//   * Command            — master -> slave work assignment (the 5 rules)
//   * TerminationCount   — the global streamline count of §4.1
//   * DoneSignal         — terminate broadcast
//   * SeedRequest/SeedTransfer — master <-> master balancing
//   * SeedRelay          — a root master brokering a SeedRequest it could
//                          not satisfy down to a leaf donor (or once
//                          across to a peer root); tree layouts only
//   * Undeliverable      — fault injection: a particle-bearing message
//                          bounced back to its sender (dropped in flight
//                          or addressed to a dead rank), so the particles
//                          are never lost
//   * MasterBeacon       — master -> slave liveness beacon; silence beyond
//                          the miss limit triggers master failover
//   * ControlAck         — transport-level acknowledgement of a sequenced
//                          control message; consumed by the runtime's
//                          retransmit layer, never seen by programs
//   * QuerySubmit/QueryCancel/QueryResult/QueryDone
//                        — the service control plane (src/service):
//                          client-facing query lifecycle records, costed
//                          and journalled like any other message but never
//                          carried on an inter-rank link (the invariant
//                          checker rejects them there)
//
// message_bytes() is the serialized size the network model charges; with
// carry_geometry set (the paper's behaviour) particles pay for their full
// recorded polyline, which is why communication gets expensive for long
// streamlines (§8).

#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "core/block_decomposition.hpp"
#include "core/particle.hpp"

namespace sf {

struct ParticleBatch {
  // The block the particles currently reside in (kInvalidBlock when the
  // batch is mixed).
  BlockId block = kInvalidBlock;
  std::vector<Particle> particles;
};

struct StatusUpdate {
  // Waiting particles grouped by the block they currently reside in.
  std::vector<std::pair<BlockId, std::uint32_t>> queued_by_block;
  std::vector<BlockId> loaded;   // blocks resident in the slave's cache
  std::vector<BlockId> loading;  // block loads in flight
  std::uint32_t workable = 0;    // particles advanceable right now
  // Cumulative count of streamlines this rank has terminated since the
  // start of the run.  Cumulative (not a delta) so a re-reported or
  // duplicated status merges idempotently: the receiver keeps a per-rank
  // high-water mark instead of summing deltas.
  std::uint32_t terminated_total = 0;
  // Progress watermark: cumulative integration steps this rank has
  // completed (in-flight bursts pro-rated by planned duration).
  // Cumulative for the same idempotence reason.
  std::uint64_t steps_total = 0;
  // Cumulative seconds this rank has actually spent computing, measured
  // by its own clock across burst start -> completion.  The master
  // differentiates steps_total against busy_seconds into an *effective
  // compute speed* (steps per busy second) — the straggler-detection
  // signal (§16).  Every healthy rank computes at the same speed no
  // matter how starved it is, while a gray-slowed rank's bursts take
  // longer than the steps they retire, so the ratio collapses by
  // exactly the slowdown factor.
  double busy_seconds = 0.0;
  // True while a compute burst is in flight.  Tells the master the slave
  // is *expected* to make progress: a zero-rate window while computing
  // means "slow" (straggler candidate), while the same window on a slave
  // waiting for a block load just means "starved".
  bool computing = false;
  // When >= 0, this status re-homes the slave to a successor after its
  // master at rank `orphaned_from` went silent; the successor adopts the
  // slave and recovers the dead master's state on first sight.
  int orphaned_from = -1;
};

struct Command {
  enum class Type : std::uint8_t {
    kAssign,     // integrate these particles (Assign_loaded/unloaded)
    kSendForce,  // send your particles in `block` to rank `target`
    kSendHint,   // offload particles in `hint_blocks` to `target` if apt
    kLoad,       // load `block`
    kTerminate,  // all streamlines done; shut down
  };
  Type type = Type::kAssign;
  BlockId block = kInvalidBlock;
  int target = -1;
  std::vector<Particle> particles;    // kAssign payload
  std::vector<BlockId> hint_blocks;   // kSendHint payload
};

struct TerminationCount {
  // Cumulative per-origin-rank termination totals (§4.1's global count,
  // made crash- and duplicate-survivable).  The counter rank max-merges
  // every entry into a per-rank high-water board, so duplicates,
  // reordering and post-failover re-reports are all no-ops; the global
  // done count is the sum of the board.
  std::vector<std::pair<int, std::uint32_t>> totals;
};

struct DoneSignal {};

// Periodic master -> slave liveness beacon.  Slaves track the last time
// they heard their master (any Command or beacon); silence longer than
// heartbeat_miss_limit periods triggers failover to a successor.
struct MasterBeacon {};

// Transport-level acknowledgement of a sequenced control message.  Emitted
// by the receiving rank's transport, consumed by the sending rank's
// transport (cancels the pending retransmit); programs never see it.
struct ControlAck {
  std::uint32_t seq = 0;
};

struct SeedRequest {};

// Tree-mode seed brokering (two-level master tree, DESIGN.md §15): a root
// that cannot satisfy a SeedRequest from its own pool relays the demand to
// one of its leaf masters (or, escalated once, to a peer root).  The
// receiver donates back to the *broker* (msg.from) with a SeedTransfer, and
// a root receiving a relay must never re-escalate it — which is what bounds
// the brokering chain and distinguishes the kind from SeedRequest.
struct SeedRelay {};

struct SeedTransfer {
  std::vector<Particle> seeds;
};

// A particle-bearing message that could not be delivered, returned to the
// sender by the (modeled) reliable transport.  `target` is the rank the
// original message was addressed to and `block` the residency of the
// particles, so the sender can re-route.
struct Undeliverable {
  int target = -1;
  BlockId block = kInvalidBlock;
  std::vector<Particle> particles;
};

// --- service control plane (src/service) ----------------------------------
// The StreamlineService's client-facing lifecycle messages.  They share
// the Message envelope so the byte accounting and checker diagnostics
// cover them, but they travel only between the service frontend and its
// clients: rank programs must waive them and the invariant checker
// rejects them on any rank link unconditionally (like ControlAck).

// A new query: seed positions plus the id the service assigned it.
struct QuerySubmit {
  std::uint32_t query = 0;
  std::vector<Vec3> seeds;
};

// Client request to cancel a queued or running query.
struct QueryCancel {
  std::uint32_t query = 0;
};

// Final per-query particle states, in seed order.
struct QueryResult {
  std::uint32_t query = 0;
  std::vector<Particle> particles;
};

// Completion notification: the service clock when the query's last
// particle terminated.
struct QueryDone {
  std::uint32_t query = 0;
  double done_time = 0.0;
};

struct Message {
  int from = -1;
  std::variant<ParticleBatch, StatusUpdate, Command, TerminationCount,
               DoneSignal, SeedRequest, SeedRelay, SeedTransfer,
               Undeliverable, MasterBeacon, ControlAck, QuerySubmit,
               QueryCancel, QueryResult, QueryDone>
      payload;
  // Sequence number stamped by the sender's control transport on sequenced
  // control messages (0 = unsequenced).  Receivers dedup on it, so
  // at-least-once retransmission never double-delivers to a program.
  std::uint32_t ctrl_seq = 0;
};

// Serialized size used by the cost model.
std::size_t message_bytes(const Message& msg, bool carry_geometry);

const char* to_string(Command::Type t);

}  // namespace sf
