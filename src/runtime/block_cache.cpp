#include "runtime/block_cache.hpp"

#include <stdexcept>

namespace sf {

BlockCache::BlockCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ < 1) {
    throw std::invalid_argument("BlockCache: capacity must be >= 1");
  }
}

const StructuredGrid* BlockCache::find(BlockId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return nullptr;
  touch(it->second.pos);
  return it->second.grid.get();
}

void BlockCache::insert(BlockId id, GridPtr grid) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    touch(it->second.pos);
    return;
  }
  if (map_.size() >= capacity_) {
    const BlockId victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++purges_;
  }
  lru_.push_front(id);
  map_.emplace(id, Entry{std::move(grid), lru_.begin()});
  ++loads_;
}

void BlockCache::erase(BlockId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return;
  lru_.erase(it->second.pos);
  map_.erase(it);
}

std::vector<BlockId> BlockCache::resident() const {
  return {lru_.begin(), lru_.end()};
}

}  // namespace sf
