#include "runtime/block_cache.hpp"

#include <stdexcept>

namespace sf {

BlockCache::BlockCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ < 1) {
    throw std::invalid_argument("BlockCache: capacity must be >= 1");
  }
}

const StructuredGrid* BlockCache::find(BlockId id) {
  serial_.assert_held();
  auto it = map_.find(id);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  touch(it->second.pos);
  return it->second.grid.get();
}

void BlockCache::evict_to_capacity() {
  // Scan from the LRU end toward the front, skipping pinned entries.
  auto victim = lru_.rbegin();
  while (map_.size() > capacity_ && victim != lru_.rend()) {
    if (pins_.count(*victim) != 0) {
      ++victim;
      continue;
    }
    map_.erase(*victim);
    // base() points one past the reverse iterator, i.e. at the victim.
    victim = std::make_reverse_iterator(lru_.erase(std::next(victim).base()));
    ++purges_;
  }
}

void BlockCache::insert(BlockId id, GridPtr grid) {
  serial_.assert_held();
  // One probe resolves both "already resident" and the insertion slot.
  auto [it, inserted] = map_.try_emplace(id);
  if (!inserted) {
    touch(it->second.pos);
    return;
  }
  lru_.push_front(id);
  it->second = Entry{std::move(grid), lru_.begin()};
  ++loads_;
  // Evict after inserting: the newcomer sits at the LRU front, so the
  // victim (back) is the same entry the evict-first ordering chose.
  evict_to_capacity();
  check_counters();
}

void BlockCache::pin(BlockId id) {
  serial_.assert_held();
  ++pins_[id];
}

void BlockCache::unpin(BlockId id) {
  serial_.assert_held();
  auto it = pins_.find(id);
  assert(it != pins_.end());
  if (it == pins_.end()) return;
  if (--it->second == 0) pins_.erase(it);
  // Deferred eviction: an all-pinned overflow (see insert()) drains as
  // soon as a pin is released.
  if (map_.size() > capacity_) {
    evict_to_capacity();
    check_counters();
  }
}

bool BlockCache::pinned(BlockId id) const {
  serial_.assert_held();
  return pins_.count(id) != 0;
}

void BlockCache::erase(BlockId id) {
  serial_.assert_held();
  auto it = map_.find(id);
  if (it == map_.end()) return;
  lru_.erase(it->second.pos);
  map_.erase(it);
  ++erased_;
  check_counters();
}

void BlockCache::adopt(BlockId id, GridPtr grid) {
  serial_.assert_held();
  auto [it, inserted] = map_.try_emplace(id);
  if (!inserted) {
    touch(it->second.pos);
    return;
  }
  lru_.push_front(id);
  it->second = Entry{std::move(grid), lru_.begin()};
  ++adopted_;
  evict_to_capacity();
  check_counters();
}

std::vector<BlockId> BlockCache::resident() const {
  serial_.assert_held();
  return {lru_.begin(), lru_.end()};
}

std::vector<std::pair<BlockId, GridPtr>> BlockCache::export_resident() const {
  serial_.assert_held();
  std::vector<std::pair<BlockId, GridPtr>> out;
  out.reserve(map_.size());
  for (BlockId id : lru_) out.emplace_back(id, map_.at(id).grid);
  return out;
}

// ---------------------------------------------------------------------------
// SharedBlockPool
// ---------------------------------------------------------------------------

const std::vector<std::pair<BlockId, GridPtr>> SharedBlockPool::kEmpty;

void SharedBlockPool::capture(int rank, const BlockCache& cache) {
  serial_.assert_held();
  if (rank < 0) return;
  if (ranks_.size() <= static_cast<std::size_t>(rank)) {
    ranks_.resize(static_cast<std::size_t>(rank) + 1);
  }
  ranks_[static_cast<std::size_t>(rank)] = cache.export_resident();
}

void SharedBlockPool::drop(int rank) {
  serial_.assert_held();
  if (rank < 0 || static_cast<std::size_t>(rank) >= ranks_.size()) return;
  ranks_[static_cast<std::size_t>(rank)].clear();
}

const std::vector<std::pair<BlockId, GridPtr>>& SharedBlockPool::blocks(
    int rank) const {
  serial_.assert_held();
  if (rank < 0 || static_cast<std::size_t>(rank) >= ranks_.size()) {
    return kEmpty;
  }
  return ranks_[static_cast<std::size_t>(rank)];
}

std::size_t SharedBlockPool::total_blocks() const {
  serial_.assert_held();
  std::size_t n = 0;
  for (const auto& r : ranks_) n += r.size();
  return n;
}

}  // namespace sf
