#include "runtime/block_cache.hpp"

#include <stdexcept>

namespace sf {

BlockCache::BlockCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ < 1) {
    throw std::invalid_argument("BlockCache: capacity must be >= 1");
  }
}

const StructuredGrid* BlockCache::find(BlockId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return nullptr;
  touch(it->second.pos);
  return it->second.grid.get();
}

void BlockCache::insert(BlockId id, GridPtr grid) {
  // One probe resolves both "already resident" and the insertion slot.
  auto [it, inserted] = map_.try_emplace(id);
  if (!inserted) {
    touch(it->second.pos);
    return;
  }
  lru_.push_front(id);
  it->second = Entry{std::move(grid), lru_.begin()};
  ++loads_;
  // Evict after inserting: the newcomer sits at the LRU front, so the
  // victim (back) is the same entry the evict-first ordering chose.
  if (map_.size() > capacity_) {
    const BlockId victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++purges_;
  }
  check_counters();
}

void BlockCache::erase(BlockId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return;
  lru_.erase(it->second.pos);
  map_.erase(it);
  ++erased_;
  check_counters();
}

std::vector<BlockId> BlockCache::resident() const {
  return {lru_.begin(), lru_.end()};
}

}  // namespace sf
