#include "runtime/metrics.hpp"

namespace sf {

namespace {
template <typename T, typename F>
T accumulate_ranks(const std::vector<RankMetrics>& ranks, F f) {
  T total{};
  for (const RankMetrics& r : ranks) total += f(r);
  return total;
}
}  // namespace

double RunMetrics::total_io_time() const {
  return accumulate_ranks<double>(ranks,
                                  [](const RankMetrics& r) { return r.io_time; });
}
double RunMetrics::total_comm_time() const {
  return accumulate_ranks<double>(
      ranks, [](const RankMetrics& r) { return r.comm_time; });
}
double RunMetrics::total_compute_time() const {
  return accumulate_ranks<double>(
      ranks, [](const RankMetrics& r) { return r.compute_time; });
}
std::uint64_t RunMetrics::total_blocks_loaded() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.blocks_loaded; });
}
std::uint64_t RunMetrics::total_blocks_purged() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.blocks_purged; });
}
std::uint64_t RunMetrics::total_bytes_read() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.bytes_read; });
}
std::uint64_t RunMetrics::total_messages() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.messages_sent; });
}
std::uint64_t RunMetrics::total_bytes_sent() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.bytes_sent; });
}
std::uint64_t RunMetrics::total_steps() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.steps; });
}

std::uint64_t RunMetrics::total_cache_hits() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.cache_hits; });
}
std::uint64_t RunMetrics::total_cache_misses() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.cache_misses; });
}
std::uint64_t RunMetrics::total_prefetches_issued() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.prefetches_issued; });
}
std::uint64_t RunMetrics::total_prefetch_hits() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.prefetch_hits; });
}
std::uint64_t RunMetrics::total_prefetches_wasted() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.prefetches_wasted; });
}
double RunMetrics::total_stall_time() const {
  return accumulate_ranks<double>(
      ranks, [](const RankMetrics& r) { return r.stall_time; });
}

double RunMetrics::block_efficiency() const {
  const std::uint64_t loaded = total_blocks_loaded();
  if (loaded == 0) return 1.0;
  const std::uint64_t purged = total_blocks_purged();
  return static_cast<double>(loaded - purged) / static_cast<double>(loaded);
}

double RunMetrics::cache_hit_rate() const {
  const std::uint64_t hits = total_cache_hits();
  const std::uint64_t misses = total_cache_misses();
  if (hits + misses == 0) return 1.0;
  return static_cast<double>(hits) / static_cast<double>(hits + misses);
}

double RunMetrics::prefetch_accuracy() const {
  const std::uint64_t issued = total_prefetches_issued();
  if (issued == 0) return 0.0;
  return static_cast<double>(total_prefetch_hits()) /
         static_cast<double>(issued);
}

double RunMetrics::mean_utilization() const {
  if (wall_clock <= 0.0 || ranks.empty()) return 0.0;
  return total_compute_time() /
         (wall_clock * static_cast<double>(ranks.size()));
}

double RunMetrics::utilization_imbalance() const {
  if (wall_clock <= 0.0 || ranks.empty()) return 0.0;
  double busiest = 0.0;
  for (const RankMetrics& r : ranks) {
    busiest = std::max(busiest, r.compute_time);
  }
  return busiest / wall_clock - mean_utilization();
}

}  // namespace sf
