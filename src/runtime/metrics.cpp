#include "runtime/metrics.hpp"

#include <algorithm>

namespace sf {

void RankMetrics::accumulate(const RankMetrics& other) {
  compute_time += other.compute_time;
  io_time += other.io_time;
  comm_time += other.comm_time;
  blocks_loaded += other.blocks_loaded;
  blocks_purged += other.blocks_purged;
  bytes_read += other.bytes_read;
  messages_sent += other.messages_sent;
  bytes_sent += other.bytes_sent;
  control_messages_sent += other.control_messages_sent;
  bytes_received += other.bytes_received;
  steps += other.steps;
  bursts += other.bursts;
  peak_particle_bytes = std::max(peak_particle_bytes,
                                 other.peak_particle_bytes);
  oom = oom || other.oom;
  disk_retries += other.disk_retries;
  disk_stall_events += other.disk_stall_events;
  checkpoint_seconds += other.checkpoint_seconds;
  crashed = crashed || other.crashed;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  prefetches_issued += other.prefetches_issued;
  prefetch_hits += other.prefetch_hits;
  prefetches_wasted += other.prefetches_wasted;
  stall_time += other.stall_time;
  blocks_adopted += other.blocks_adopted;
}

namespace {
template <typename T, typename F>
T accumulate_ranks(const std::vector<RankMetrics>& ranks, F f) {
  T total{};
  for (const RankMetrics& r : ranks) total += f(r);
  return total;
}
}  // namespace

double RunMetrics::total_io_time() const {
  return accumulate_ranks<double>(ranks,
                                  [](const RankMetrics& r) { return r.io_time; });
}
double RunMetrics::total_comm_time() const {
  return accumulate_ranks<double>(
      ranks, [](const RankMetrics& r) { return r.comm_time; });
}
double RunMetrics::total_compute_time() const {
  return accumulate_ranks<double>(
      ranks, [](const RankMetrics& r) { return r.compute_time; });
}
std::uint64_t RunMetrics::total_blocks_loaded() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.blocks_loaded; });
}
std::uint64_t RunMetrics::total_blocks_purged() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.blocks_purged; });
}
std::uint64_t RunMetrics::total_bytes_read() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.bytes_read; });
}
std::uint64_t RunMetrics::total_messages() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.messages_sent; });
}
std::uint64_t RunMetrics::total_bytes_sent() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.bytes_sent; });
}
std::uint64_t RunMetrics::total_control_messages() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.control_messages_sent; });
}
std::uint64_t RunMetrics::total_steps() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.steps; });
}

std::uint64_t RunMetrics::total_cache_hits() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.cache_hits; });
}
std::uint64_t RunMetrics::total_cache_misses() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.cache_misses; });
}
std::uint64_t RunMetrics::total_prefetches_issued() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.prefetches_issued; });
}
std::uint64_t RunMetrics::total_prefetch_hits() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.prefetch_hits; });
}
std::uint64_t RunMetrics::total_prefetches_wasted() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.prefetches_wasted; });
}
double RunMetrics::total_stall_time() const {
  return accumulate_ranks<double>(
      ranks, [](const RankMetrics& r) { return r.stall_time; });
}

double RunMetrics::block_efficiency() const {
  const std::uint64_t loaded = total_blocks_loaded();
  if (loaded == 0) return 1.0;
  const std::uint64_t purged = total_blocks_purged();
  return static_cast<double>(loaded - purged) / static_cast<double>(loaded);
}

double RunMetrics::cache_hit_rate() const {
  const std::uint64_t hits = total_cache_hits();
  const std::uint64_t misses = total_cache_misses();
  if (hits + misses == 0) return 1.0;
  return static_cast<double>(hits) / static_cast<double>(hits + misses);
}

double RunMetrics::prefetch_accuracy() const {
  const std::uint64_t issued = total_prefetches_issued();
  if (issued == 0) return 0.0;
  return static_cast<double>(total_prefetch_hits()) /
         static_cast<double>(issued);
}

double RunMetrics::mean_utilization() const {
  if (wall_clock <= 0.0 || ranks.empty()) return 0.0;
  return total_compute_time() /
         (wall_clock * static_cast<double>(ranks.size()));
}

double RunMetrics::utilization_imbalance() const {
  if (wall_clock <= 0.0 || ranks.empty()) return 0.0;
  double busiest = 0.0;
  for (const RankMetrics& r : ranks) {
    busiest = std::max(busiest, r.compute_time);
  }
  return busiest / wall_clock - mean_utilization();
}

void RunMetrics::accumulate(const RunMetrics& epoch) {
  wall_clock += epoch.wall_clock;
  failed_oom = failed_oom || epoch.failed_oom;
  failed_fault = failed_fault || epoch.failed_fault;
  if (!epoch.abort_reason.empty()) abort_reason = epoch.abort_reason;
  num_ranks = std::max(num_ranks, epoch.num_ranks);
  if (ranks.size() < epoch.ranks.size()) ranks.resize(epoch.ranks.size());
  for (std::size_t r = 0; r < epoch.ranks.size(); ++r) {
    ranks[r].accumulate(epoch.ranks[r]);
  }
  particles.insert(particles.end(), epoch.particles.begin(),
                   epoch.particles.end());
  query_completions.insert(query_completions.end(),
                           epoch.query_completions.begin(),
                           epoch.query_completions.end());
  // Structured per-epoch state (crash timelines, checkpoints, timelines)
  // does not sum meaningfully: keep the scalar fault counters additive
  // and the latest epoch's pointers.
  FaultStats& f = fault;
  const FaultStats& e = epoch.fault;
  f.crashes_injected += e.crashes_injected;
  f.oom_crashes += e.oom_crashes;
  f.crashes_survived += e.crashes_survived;
  f.disk_faults += e.disk_faults;
  f.disk_stalls += e.disk_stalls;
  f.messages_dropped += e.messages_dropped;
  f.control_retransmits += e.control_retransmits;
  f.control_duplicates += e.control_duplicates;
  f.particles_recovered += e.particles_recovered;
  f.steps_redone += e.steps_redone;
  f.time_to_recovery += e.time_to_recovery;
  f.checkpoints_taken += e.checkpoints_taken;
  f.checkpoint_overhead += e.checkpoint_overhead;
  f.crash_records.insert(f.crash_records.end(), e.crash_records.begin(),
                         e.crash_records.end());
  if (epoch.last_checkpoint) last_checkpoint = epoch.last_checkpoint;
  if (epoch.timeline) timeline = epoch.timeline;
}

void RunMetrics::reset() { *this = RunMetrics{}; }

}  // namespace sf
