#include "runtime/metrics.hpp"

namespace sf {

namespace {
template <typename T, typename F>
T accumulate_ranks(const std::vector<RankMetrics>& ranks, F f) {
  T total{};
  for (const RankMetrics& r : ranks) total += f(r);
  return total;
}
}  // namespace

double RunMetrics::total_io_time() const {
  return accumulate_ranks<double>(ranks,
                                  [](const RankMetrics& r) { return r.io_time; });
}
double RunMetrics::total_comm_time() const {
  return accumulate_ranks<double>(
      ranks, [](const RankMetrics& r) { return r.comm_time; });
}
double RunMetrics::total_compute_time() const {
  return accumulate_ranks<double>(
      ranks, [](const RankMetrics& r) { return r.compute_time; });
}
std::uint64_t RunMetrics::total_blocks_loaded() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.blocks_loaded; });
}
std::uint64_t RunMetrics::total_blocks_purged() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.blocks_purged; });
}
std::uint64_t RunMetrics::total_bytes_read() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.bytes_read; });
}
std::uint64_t RunMetrics::total_messages() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.messages_sent; });
}
std::uint64_t RunMetrics::total_bytes_sent() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.bytes_sent; });
}
std::uint64_t RunMetrics::total_steps() const {
  return accumulate_ranks<std::uint64_t>(
      ranks, [](const RankMetrics& r) { return r.steps; });
}

double RunMetrics::block_efficiency() const {
  const std::uint64_t loaded = total_blocks_loaded();
  if (loaded == 0) return 1.0;
  const std::uint64_t purged = total_blocks_purged();
  return static_cast<double>(loaded - purged) / static_cast<double>(loaded);
}

double RunMetrics::mean_utilization() const {
  if (wall_clock <= 0.0 || ranks.empty()) return 0.0;
  return total_compute_time() /
         (wall_clock * static_cast<double>(ranks.size()));
}

double RunMetrics::utilization_imbalance() const {
  if (wall_clock <= 0.0 || ranks.empty()) return 0.0;
  double busiest = 0.0;
  for (const RankMetrics& r : ranks) {
    busiest = std::max(busiest, r.compute_time);
  }
  return busiest / wall_clock - mean_utilization();
}

}  // namespace sf
