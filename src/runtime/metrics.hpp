#pragma once

// Per-rank and per-run performance metrics — exactly the quantities §5 of
// the paper plots: wall clock, total I/O time, total communication time,
// and block efficiency, plus supporting counters.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/particle.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault_config.hpp"
#include "runtime/timeline.hpp"

namespace sf {

struct RankMetrics {
  double compute_time = 0.0;  // busy advecting particles
  double io_time = 0.0;       // waiting on block reads (incl. queueing)
  double comm_time = 0.0;     // posting/managing sends and receives
  std::uint64_t blocks_loaded = 0;
  std::uint64_t blocks_purged = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  // Coordination traffic (everything that is not a ParticleBatch): the
  // scalability bench's per-rank control-volume metric (DESIGN.md §15).
  std::uint64_t control_messages_sent = 0;
  // Bytes delivered to this rank; bytes_received at the tree root is the
  // bytes-at-root aggregation-pressure metric.
  std::uint64_t bytes_received = 0;
  std::uint64_t steps = 0;              // accepted integration steps
  std::uint64_t bursts = 0;             // compute bursts executed
  std::size_t peak_particle_bytes = 0;  // high-water resident memory
  bool oom = false;
  // Fault-injection counters.
  std::uint64_t disk_retries = 0;       // failed block reads re-submitted
  std::uint64_t disk_stall_events = 0;  // reads hit by an injected stall
  double checkpoint_seconds = 0.0;      // modeled checkpoint-write share
  bool crashed = false;                 // rank was killed by injection
  // Async block I/O (cache counters are live in sync runs too).
  std::uint64_t cache_hits = 0;    // BlockCache::find hits
  std::uint64_t cache_misses = 0;  // BlockCache::find misses
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetch_hits = 0;      // demands served from staging
  std::uint64_t prefetches_wasted = 0;  // staged-unclaimed/failed/dropped
  double stall_time = 0.0;  // seconds blocked on demand block reads
  // Blocks inherited warm from a previous run's cache (service sharing).
  std::uint64_t blocks_adopted = 0;

  // Merge another run's counters into this rank's (service accumulation).
  void accumulate(const RankMetrics& other);
};

// Per-query completion record produced by the runtimes: the runtime clock
// when the query's last seeded streamline terminated, plus how many
// streamlines it covered.  The service turns these into latency samples.
struct QueryCompletion {
  std::uint32_t query = 0;
  double done_time = 0.0;
  std::uint32_t particles = 0;
};

struct RunMetrics {
  double wall_clock = 0.0;
  bool failed_oom = false;    // run aborted: a rank exceeded its memory
  bool failed_fault = false;  // fault injection made the run unrecoverable
  std::string abort_reason;   // human-readable cause when a run failed
  int num_ranks = 0;
  std::vector<RankMetrics> ranks;
  // Final particle states (terminated streamlines), gathered from all
  // ranks and sorted by id.  On a failed run this holds whatever partial
  // results the ranks had produced by the abort.
  std::vector<Particle> particles;
  // Aggregated fault-injection and recovery statistics (all zero when
  // fault injection is disabled).
  FaultStats fault;
  // Last checkpoint taken during the run (fault mode with a checkpoint
  // interval only); what --checkpoint-out writes and restarts read.
  std::shared_ptr<const Checkpoint> last_checkpoint;
  // Populated when SimRuntimeConfig::record_timeline is set: per-rank
  // compute/I/O spans for utilization and starvation analysis (§8).
  std::shared_ptr<const Timeline> timeline;
  // Per-query completion times (runtime clock), sorted by query id.
  // Empty for runs that seeded no live particles.
  std::vector<QueryCompletion> query_completions;

  double total_io_time() const;
  double total_comm_time() const;
  double total_compute_time() const;
  std::uint64_t total_blocks_loaded() const;
  std::uint64_t total_blocks_purged() const;
  std::uint64_t total_bytes_read() const;
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes_sent() const;
  std::uint64_t total_control_messages() const;
  std::uint64_t total_steps() const;
  std::uint64_t total_cache_hits() const;
  std::uint64_t total_cache_misses() const;
  std::uint64_t total_prefetches_issued() const;
  std::uint64_t total_prefetch_hits() const;
  std::uint64_t total_prefetches_wasted() const;
  double total_stall_time() const;

  // E = (B_loaded - B_purged) / B_loaded, eq. (2).  Defined as 1 when no
  // blocks were loaded.
  double block_efficiency() const;

  // Cache hit rate hits / (hits + misses); 1 when the cache was never
  // consulted (mirrors block_efficiency's empty-run convention).
  double cache_hit_rate() const;

  // Fraction of issued prefetches a later demand actually claimed; 0
  // when none were issued (a sync run prefetches nothing).
  double prefetch_accuracy() const;

  // Mean fraction of the run each rank spent advecting particles —
  // the processor-utilization view of load balance (§8 names processor
  // starvation as the main limit to scalability).  0 when wall is 0.
  double mean_utilization() const;

  // Utilization of the busiest rank minus the mean: a large spread means
  // a few ranks did all the work (Static Allocation's failure mode).
  double utilization_imbalance() const;

  // --- service accumulation (per-query vs. cumulative reporting) ---------

  // Fold one epoch's metrics into this cumulative record: wall clocks and
  // rank counters add, particle results and query completions append.
  // Each epoch's counters start from zero (fresh runtime contexts), so
  // cumulative = sum of epochs with no double-counting.  The latest
  // epoch's fault stats, checkpoint and timeline pointers are kept;
  // failure flags OR together.
  void accumulate(const RunMetrics& epoch);

  // Back to a default-constructed record (a service's counter reset).
  void reset();
};

}  // namespace sf
