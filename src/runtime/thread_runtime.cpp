#include "runtime/thread_runtime.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <variant>

#include "core/rng.hpp"
#include "runtime/block_cache.hpp"

namespace sf {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
struct ThreadAbort {};
}  // namespace

class ThreadRuntime::Context final : public RankContext {
 public:
  Context(ThreadRuntime* runtime, int rank,
          std::chrono::steady_clock::time_point epoch,
          std::atomic<bool>* abort)
      : runtime_(runtime),
        rank_(rank),
        epoch_(epoch),
        abort_(abort),
        cache_(runtime->config_.cache_blocks),
        fuzz_enabled_(runtime->config_.schedule_fuzz_seed != 0) {
    // Derive a distinct per-rank stream from the shared fuzz seed.
    std::uint64_t sm = runtime->config_.schedule_fuzz_seed +
                       0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                  rank + 1);
    fuzz_ = Rng(splitmix64(sm));
  }

  // --- RankContext -------------------------------------------------------

  int rank() const override { return rank_; }
  int num_ranks() const override { return runtime_->config_.num_ranks; }
  double now() const override { return seconds_since(epoch_); }

  const BlockDecomposition& decomposition() const override {
    return *runtime_->decomp_;
  }
  const Tracer& tracer() const override { return runtime_->tracer_; }
  const MachineModel& model() const override {
    return runtime_->config_.model;
  }

  void send(int to, Message msg) override {
    msg.from = rank_;
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_send(rank_, to, msg, seconds_since(epoch_)));
    maybe_perturb();
    const std::size_t bytes =
        message_bytes(msg, runtime_->config_.carry_geometry);
    const auto t0 = std::chrono::steady_clock::now();
    runtime_->contexts_[static_cast<std::size_t>(to)]->deliver(
        std::move(msg));
    metrics.comm_time += seconds_since(t0);
    metrics.messages_sent += 1;
    metrics.bytes_sent += bytes;
  }

  void request_block(BlockId id) override {
    if (cache_.contains(id)) {
      local_.push_back(id);
      return;
    }
    if (pending_.count(id) != 0) return;
    pending_.insert(id);
    maybe_perturb();
    // Real synchronous read; completion is delivered through the local
    // event queue so the program still sees it asynchronously.
    const auto t0 = std::chrono::steady_clock::now();
    GridPtr grid = runtime_->source_->load(id);
    metrics.io_time += seconds_since(t0);
    metrics.bytes_read += runtime_->source_->block_bytes(id);
    cache_.insert(id, std::move(grid));
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_block_insert(rank_, id, cache_.resident(),
                                      seconds_since(epoch_)));
    maybe_perturb();
    pending_.erase(id);
    local_.push_back(id);
  }

  bool block_resident(BlockId id) const override {
    return cache_.contains(id);
  }
  bool block_pending(BlockId id) const override {
    return pending_.count(id) != 0;
  }
  std::vector<BlockId> resident_blocks() const override {
    return cache_.resident();
  }
  const StructuredGrid* block(BlockId id) override {
    const StructuredGrid* grid = cache_.find(id);
    if (grid != nullptr) {
      // find() moved the block to the front of the LRU; mirror it.
      SF_INVARIANT_HOOK(runtime_->checker_, on_block_touch(rank_, id));
    }
    return grid;
  }

  bool log_termination(const Particle& p) override {
    // No fault plane on the thread runtime yet: always a first-time credit.
    SF_INVARIANT_HOOK(
        runtime_->checker_,
        on_terminated(rank_, p, /*first_time=*/true, seconds_since(epoch_)));
    return true;
  }

  void begin_compute(double seconds, std::uint64_t steps) override {
    // The real work already happened inside the handler; record it and
    // queue the completion notification.
    metrics.compute_time += seconds;
    metrics.steps += steps;
    metrics.bursts += 1;
    local_.push_back(ComputeDone{});
  }

  bool busy() const override { return false; }

  void charge_particle_memory(std::int64_t delta_bytes) override {
    particle_bytes_ += delta_bytes;
    if (particle_bytes_ < 0) particle_bytes_ = 0;
    metrics.peak_particle_bytes =
        std::max(metrics.peak_particle_bytes,
                 static_cast<std::size_t>(particle_bytes_));
    if (static_cast<std::size_t>(particle_bytes_) >
        runtime_->config_.model.particle_memory_bytes) {
      metrics.oom = true;
      abort_->store(true);
      throw ThreadAbort{};
    }
  }

  // --- thread driver -------------------------------------------------------

  // Called from the sender's thread; must not touch this rank's Rng.
  void deliver(Message msg) {
    {
      std::lock_guard lock(mailbox_mutex_);
      mailbox_.push_back(std::move(msg));
    }
    mailbox_cv_.notify_one();
  }

  void thread_main() {
    try {
      program->start(*this);
      drain_local();
      while (!program->finished() && !abort_->load()) {
        std::unique_lock lock(mailbox_mutex_);
        mailbox_cv_.wait_for(lock, std::chrono::milliseconds(20), [this] {
          return !mailbox_.empty() || abort_->load();
        });
        if (mailbox_.empty()) continue;
        Message msg = std::move(mailbox_.front());
        mailbox_.pop_front();
        lock.unlock();
        maybe_perturb();
        SF_INVARIANT_HOOK(runtime_->checker_,
                          on_deliver(rank_, msg, seconds_since(epoch_)));
        program->on_message(*this, std::move(msg));
        drain_local();
      }
    } catch (const ThreadAbort&) {
      // OOM: abort_ is set; all threads wind down.
    } catch (...) {
      // Anything else (an InvariantViolation, a program bug) must reach
      // the caller, not std::terminate: park it and stop every thread.
      runtime_->note_failure(std::current_exception());
    }
    metrics.blocks_loaded = cache_.loads();
    metrics.blocks_purged = cache_.purges();
  }

  std::unique_ptr<RankProgram> program;
  RankMetrics metrics;

 private:
  struct ComputeDone {};
  using LocalEvent = std::variant<BlockId, ComputeDone>;

  void drain_local() {
    while (!local_.empty() && !abort_->load()) {
      // Drain the mailbox between local events so commands interleave
      // with compute, like they do under the simulator.
      for (;;) {
        Message msg;
        {
          std::lock_guard lock(mailbox_mutex_);
          if (mailbox_.empty()) break;
          msg = std::move(mailbox_.front());
          mailbox_.pop_front();
        }
        maybe_perturb();
        SF_INVARIANT_HOOK(runtime_->checker_,
                          on_deliver(rank_, msg, seconds_since(epoch_)));
        program->on_message(*this, std::move(msg));
      }
      if (local_.empty()) break;
      LocalEvent ev = local_.front();
      local_.pop_front();
      if (std::holds_alternative<ComputeDone>(ev)) {
        program->on_compute_done(*this);
      } else {
        program->on_block_loaded(*this, std::get<BlockId>(ev));
      }
    }
  }

  // Seeded schedule perturbation: nudge the OS scheduler at the points
  // where rank threads interact (mailboxes, the shared block source) so
  // TSan runs explore many interleavings instead of one.
  void maybe_perturb() {
    if (!fuzz_enabled_) return;
    const std::uint64_t draw = fuzz_.next_below(16);
    if (draw == 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(fuzz_.next_below(200)));
    } else if (draw < 8) {
      std::this_thread::yield();
    }
  }

  ThreadRuntime* runtime_;
  int rank_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool>* abort_;
  BlockCache cache_;
  bool fuzz_enabled_;
  Rng fuzz_;
  std::set<BlockId> pending_;
  std::deque<LocalEvent> local_;
  std::int64_t particle_bytes_ = 0;

  std::mutex mailbox_mutex_;
  std::condition_variable mailbox_cv_;
  std::deque<Message> mailbox_;
};

ThreadRuntime::ThreadRuntime(const ThreadRuntimeConfig& config,
                             const BlockDecomposition* decomp,
                             const BlockSource* source,
                             const IntegratorParams& iparams,
                             const TraceLimits& limits)
    : config_(config),
      decomp_(decomp),
      source_(source),
      tracer_(decomp, iparams, limits) {
  if (config_.num_ranks < 1) {
    throw std::invalid_argument("ThreadRuntime: num_ranks >= 1");
  }
  if (decomp_ == nullptr || source_ == nullptr) {
    throw std::invalid_argument("ThreadRuntime: null decomposition/source");
  }
}

ThreadRuntime::~ThreadRuntime() = default;

void ThreadRuntime::note_failure(std::exception_ptr error) {
  {
    std::lock_guard lock(failure_mutex_);
    if (!failure_) failure_ = std::move(error);
  }
  abort_flag_->store(true);
}

RunMetrics ThreadRuntime::run(const ProgramFactory& factory) {
  const auto epoch = std::chrono::steady_clock::now();
  std::atomic<bool> abort{false};
  abort_flag_ = &abort;
  failure_ = nullptr;

  contexts_.clear();
  for (int r = 0; r < config_.num_ranks; ++r) {
    contexts_.push_back(
        std::make_unique<Context>(this, r, epoch, &abort));
    contexts_.back()->program = factory(r, config_.num_ranks);
  }

  checker_ = make_invariant_checker(
      {.protocol = config_.checked_protocol,
       .num_ranks = config_.num_ranks,
       .num_masters = config_.checker_num_masters,
       .num_blocks = decomp_->num_blocks(),
       .cache_blocks = config_.cache_blocks,
       .fault_mode = false});
  if (checker_) {
    std::vector<Particle> snap;
    for (int r = 0; r < config_.num_ranks; ++r) {
      snap.clear();
      contexts_[static_cast<std::size_t>(r)]->program->snapshot_particles(
          snap);
      checker_->on_seeded(r, snap);
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(contexts_.size());
  for (auto& ctx : contexts_) {
    threads.emplace_back([c = ctx.get()] { c->thread_main(); });
  }
  for (std::thread& t : threads) t.join();
  abort_flag_ = nullptr;
  if (failure_) {
    checker_.reset();
    std::rethrow_exception(std::exchange(failure_, nullptr));
  }

  RunMetrics run_metrics;
  run_metrics.num_ranks = config_.num_ranks;
  run_metrics.wall_clock = seconds_since(epoch);
  run_metrics.failed_oom = abort.load();
  SF_INVARIANT_HOOK(checker_, on_run_end(!run_metrics.failed_oom,
                                         run_metrics.wall_clock));
  checker_.reset();
  for (auto& ctx : contexts_) {
    run_metrics.ranks.push_back(ctx->metrics);
    if (!run_metrics.failed_oom) {
      ctx->program->collect_particles(run_metrics.particles);
    }
  }
  std::sort(run_metrics.particles.begin(), run_metrics.particles.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
  contexts_.clear();
  return run_metrics;
}

}  // namespace sf
