#include "runtime/thread_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <future>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_annotations.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/spsc_ring.hpp"

namespace sf {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
struct ThreadAbort {};
}  // namespace

class ThreadRuntime::Context final : public RankContext {
 public:
  Context(ThreadRuntime* runtime, int rank,
          std::chrono::steady_clock::time_point epoch,
          std::atomic<bool>* abort)
      : runtime_(runtime),
        rank_(rank),
        epoch_(epoch),
        abort_(abort),
        cache_(runtime->config_.cache_blocks),
        fuzz_enabled_(runtime->config_.schedule_fuzz_seed != 0) {
    // Derive a distinct per-rank stream from the shared fuzz seed.
    std::uint64_t sm = runtime->config_.schedule_fuzz_seed +
                       0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                  rank + 1);
    fuzz_ = Rng(splitmix64(sm));
    // One SPSC lane per sender (including self-sends): each lane has
    // exactly one producer (the sender's thread) and one consumer (this
    // thread), which is the whole SPSC contract.  Slots are constructed
    // here, once — steady-state delivery allocates nothing.
    const int n = runtime->config_.num_ranks;
    inboxes_.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      inboxes_.push_back(std::make_unique<SpscChannel<Message>>(
          runtime->config_.mailbox_ring_slots));
    }
  }

  // --- RankContext -------------------------------------------------------

  int rank() const override { return rank_; }
  int num_ranks() const override { return runtime_->config_.num_ranks; }
  double now() const override { return seconds_since(epoch_); }

  const BlockDecomposition& decomposition() const override {
    return *runtime_->decomp_;
  }
  const Tracer& tracer() const override { return runtime_->tracer_; }
  const MachineModel& model() const override {
    return runtime_->config_.model;
  }

  void send(int to, Message msg) override {
    msg.from = rank_;
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_send(rank_, to, msg, seconds_since(epoch_)));
    maybe_perturb();
    const std::size_t bytes =
        message_bytes(msg, runtime_->config_.carry_geometry);
    const bool control = !std::holds_alternative<ParticleBatch>(msg.payload);
    const auto t0 = std::chrono::steady_clock::now();
    runtime_->contexts_[static_cast<std::size_t>(to)]->deliver(
        std::move(msg));
    metrics.comm_time += seconds_since(t0);
    metrics.messages_sent += 1;
    metrics.bytes_sent += bytes;
    if (control) metrics.control_messages_sent += 1;
  }

  void request_block(BlockId id) override {
    if (cache_.contains(id)) {
      local_.push_back(id);
      return;
    }
    if (pending_.count(id) != 0) return;
    // Async staging: a prefetched grid is promoted into the cache at the
    // moment of demand — that is when the load "happens" for LRU order
    // and E-metric purposes, so accounting matches the sync path and
    // the stall is zero.  Unreachable with async I/O off.
    if (claim_staged(id)) {
      local_.push_back(id);
      return;
    }
    auto inflight = prefetch_inflight_.find(id);
    if (inflight != prefetch_inflight_.end()) {
      // Demand overtook an in-flight prefetch: promote it to the demand
      // queue and wait out the remaining read (a partial overlap still
      // beats a cold read).
      runtime_->loader_->request(id, /*demand=*/true);
      const auto t0 = std::chrono::steady_clock::now();
      GridPtr grid;
      try {
        grid = inflight->second.get();
      } catch (...) {
        grid = nullptr;  // exhausted retries: fall back to a cold read
      }
      prefetch_inflight_.erase(inflight);
      const double waited = seconds_since(t0);
      metrics.io_time += waited;
      metrics.stall_time += waited;
      if (grid != nullptr) {
        ++metrics.prefetch_hits;
        SF_INVARIANT_HOOK(
            runtime_->checker_,
            on_prefetch_claimed(rank_, id, seconds_since(epoch_)));
        cache_.insert(id, std::move(grid));
        SF_INVARIANT_HOOK(runtime_->checker_,
                          on_block_insert(rank_, id, cache_.resident(),
                                          seconds_since(epoch_)));
        local_.push_back(id);
        return;
      }
      // The read was cancelled or failed while we waited; the hint is
      // dead — do the demand read synchronously like any other miss.
      ++metrics.prefetches_wasted;
      SF_INVARIANT_HOOK(
          runtime_->checker_,
          on_prefetch_cancelled(rank_, id, seconds_since(epoch_)));
    }
    pending_.insert(id);
    maybe_perturb();
    // Real synchronous read; completion is delivered through the local
    // event queue so the program still sees it asynchronously.
    const auto t0 = std::chrono::steady_clock::now();
    GridPtr grid = runtime_->source_->load(id);
    const double waited = seconds_since(t0);
    metrics.io_time += waited;
    metrics.stall_time += waited;
    metrics.bytes_read += runtime_->source_->block_bytes(id);
    cache_.insert(id, std::move(grid));
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_block_insert(rank_, id, cache_.resident(),
                                      seconds_since(epoch_)));
    maybe_perturb();
    pending_.erase(id);
    local_.push_back(id);
  }

  void prefetch_block(BlockId id) override {
    AsyncBlockLoader* loader = runtime_->loader_.get();
    if (loader == nullptr) return;  // async I/O off
    if (cache_.contains(id) || pending_.count(id) != 0 ||
        staged_.count(id) != 0 || prefetch_inflight_.count(id) != 0) {
      return;
    }
    const AsyncIoConfig& aio = runtime_->config_.async_io;
    if (prefetch_inflight_.size() >=
        static_cast<std::size_t>(std::max(1, aio.prefetch_depth))) {
      return;  // depth-limited; dropping a hint is always legal
    }
    ++metrics.prefetches_issued;
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_prefetch_issued(rank_, id, seconds_since(epoch_)));
    prefetch_inflight_[id] = loader->request(id, /*demand=*/false);
    maybe_perturb();
  }

  int prefetch_capacity() const override {
    const AsyncIoConfig& aio = runtime_->config_.async_io;
    return aio.enabled ? std::max(1, aio.prefetch_depth) : 0;
  }

  void pin_block(BlockId id) override {
    cache_.pin(id);
    SF_INVARIANT_HOOK(runtime_->checker_, on_block_pin(rank_, id));
  }

  void unpin_block(BlockId id) override {
    cache_.unpin(id);  // may run the deferred eviction
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_block_unpin(rank_, id, cache_.resident(),
                                     seconds_since(epoch_)));
  }

  bool block_resident(BlockId id) const override {
    return cache_.contains(id);
  }
  bool block_pending(BlockId id) const override {
    return pending_.count(id) != 0;
  }
  std::vector<BlockId> resident_blocks() const override {
    return cache_.resident();
  }
  const StructuredGrid* block(BlockId id) override {
    const StructuredGrid* grid = cache_.find(id);
    if (grid != nullptr) {
      // find() moved the block to the front of the LRU; mirror it.
      SF_INVARIANT_HOOK(runtime_->checker_, on_block_touch(rank_, id));
    }
    return grid;
  }

  bool log_termination(const Particle& p) override {
    // No fault plane on the thread runtime yet: always a first-time credit.
    SF_INVARIANT_HOOK(
        runtime_->checker_,
        on_terminated(rank_, p, /*first_time=*/true, seconds_since(epoch_)));
    runtime_->note_query_termination(p, seconds_since(epoch_));
    return true;
  }

  void begin_compute(double seconds, std::uint64_t steps) override {
    // The real work already happened inside the handler; record it and
    // queue the completion notification.
    metrics.compute_time += seconds;
    metrics.steps += steps;
    metrics.bursts += 1;
    local_.push_back(ComputeDone{});
  }

  bool busy() const override { return false; }

  void charge_particle_memory(std::int64_t delta_bytes) override {
    particle_bytes_ += delta_bytes;
    if (particle_bytes_ < 0) particle_bytes_ = 0;
    metrics.peak_particle_bytes =
        std::max(metrics.peak_particle_bytes,
                 static_cast<std::size_t>(particle_bytes_));
    if (static_cast<std::size_t>(particle_bytes_) >
        runtime_->config_.model.particle_memory_bytes) {
      metrics.oom = true;
      abort_->store(true);
      throw ThreadAbort{};
    }
  }

  // --- thread driver -------------------------------------------------------

  // Called from the sender's thread; must not touch this rank's Rng.
  // Lock-free in the steady state: a ring push plus the parking-lot
  // fence.  msg.from selects the SPSC lane, so the single-producer
  // contract is exactly "each rank sets from = its own rank", which
  // send() enforces.
  void deliver(Message msg) {
    inboxes_[static_cast<std::size_t>(msg.from)]->push(std::move(msg));
    parking_.unpark();
  }

  void thread_main() {
    try {
      program->start(*this);
      drain_local();
      while (!program->finished() && !abort_->load()) {
        poll_arrivals();
        Message msg;
        bool have = pop_mailbox(msg);
        if (!have && !abort_->load()) {
          // Announce, re-check every lane, then sleep (bounded: the
          // timeout doubles as the abort-flag poll interval, exactly
          // like the old cond-var wait).  A spurious or stale wake just
          // re-enters the outer poll loop.
          parking_.park([this] { return mailbox_nonempty(); },
                        std::chrono::milliseconds(20));
          have = pop_mailbox(msg);
        }
        if (!have) continue;
        maybe_perturb();
        // Receiver-side accounting happens on the owning thread (the
        // sender must not touch this rank's metrics).
        metrics.bytes_received +=
            message_bytes(msg, runtime_->config_.carry_geometry);
        SF_INVARIANT_HOOK(runtime_->checker_,
                          on_deliver(rank_, msg, seconds_since(epoch_)));
        program->on_message(*this, std::move(msg));
        drain_local();
      }
      // Every issued prefetch must be resolved before the run ends:
      // discard staged grids nobody claimed and cancel what is still in
      // flight (best effort — a read a worker already started just
      // completes into the void).
      resolve_outstanding_prefetches();
    } catch (const ThreadAbort&) {
      // OOM: abort_ is set; all threads wind down.
    } catch (...) {
      // Anything else (an InvariantViolation, a program bug) must reach
      // the caller, not std::terminate: park it and stop every thread.
      runtime_->note_failure(std::current_exception());
    }
    metrics.blocks_loaded = cache_.loads();
    metrics.blocks_purged = cache_.purges();
    metrics.cache_hits = cache_.hits();
    metrics.cache_misses = cache_.misses();
    metrics.blocks_adopted = cache_.adopted();
  }

  const BlockCache& cache() const { return cache_; }

  // Warm start from a previous run's captured residency (cross-query
  // sharing).  Runs on the main thread before the rank threads launch,
  // so no locking; `blocks` is MRU first, adopted LRU-last -> MRU-first
  // to rebuild the same recency order under the checker's LRU model.
  void adopt_shared(const std::vector<std::pair<BlockId, GridPtr>>& blocks) {
    const std::size_t n = std::min(blocks.size(), cache_.capacity());
    for (std::size_t i = n; i-- > 0;) {
      cache_.adopt(blocks[i].first, blocks[i].second);
      SF_INVARIANT_HOOK(runtime_->checker_,
                        on_block_insert(rank_, blocks[i].first,
                                        cache_.resident(), 0.0));
    }
    metrics.blocks_adopted = cache_.adopted();
  }

  std::unique_ptr<RankProgram> program;
  RankMetrics metrics;

 private:
  struct ComputeDone {};
  using LocalEvent = std::variant<BlockId, ComputeDone>;

  // Promote a staged prefetched grid into the cache (the demand claim).
  bool claim_staged(BlockId id) {
    auto it = staged_.find(id);
    if (it == staged_.end()) return false;
    ++metrics.prefetch_hits;
    GridPtr grid = std::move(it->second);
    staged_.erase(it);
    staged_order_.erase(
        std::remove(staged_order_.begin(), staged_order_.end(), id),
        staged_order_.end());
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_prefetch_claimed(rank_, id, seconds_since(epoch_)));
    cache_.insert(id, std::move(grid));
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_block_insert(rank_, id, cache_.resident(),
                                      seconds_since(epoch_)));
    return true;
  }

  // Move finished background reads into the staging area.  Futures are
  // polled from the rank thread only, so the cache, the staging store
  // and the checker hooks never race.
  void poll_arrivals() {
    for (auto it = prefetch_inflight_.begin();
         it != prefetch_inflight_.end();) {
      if (it->second.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        ++it;
        continue;
      }
      const BlockId id = it->first;
      GridPtr grid;
      try {
        grid = it->second.get();
      } catch (...) {
        grid = nullptr;  // exhausted retries: abandon the hint
      }
      it = prefetch_inflight_.erase(it);
      if (grid == nullptr || cache_.contains(id)) {
        ++metrics.prefetches_wasted;
        SF_INVARIANT_HOOK(
            runtime_->checker_,
            on_prefetch_cancelled(rank_, id, seconds_since(epoch_)));
        continue;
      }
      staged_[id] = std::move(grid);
      staged_order_.push_back(id);
      SF_INVARIANT_HOOK(
          runtime_->checker_,
          on_prefetch_staged(rank_, id, seconds_since(epoch_)));
      const std::size_t cap = std::max<std::size_t>(
          1, runtime_->config_.async_io.staging_blocks);
      while (staged_.size() > cap) {
        const BlockId oldest = staged_order_.front();
        staged_order_.erase(staged_order_.begin());
        staged_.erase(oldest);
        ++metrics.prefetches_wasted;
        SF_INVARIANT_HOOK(
            runtime_->checker_,
            on_prefetch_cancelled(rank_, oldest, seconds_since(epoch_)));
      }
    }
  }

  void resolve_outstanding_prefetches() {
    for (const BlockId id : staged_order_) {
      ++metrics.prefetches_wasted;
      SF_INVARIANT_HOOK(
          runtime_->checker_,
          on_prefetch_cancelled(rank_, id, seconds_since(epoch_)));
    }
    staged_.clear();
    staged_order_.clear();
    for (const auto& [id, fut] : prefetch_inflight_) {
      runtime_->loader_->cancel(id);
      ++metrics.prefetches_wasted;
      SF_INVARIANT_HOOK(
          runtime_->checker_,
          on_prefetch_cancelled(rank_, id, seconds_since(epoch_)));
    }
    prefetch_inflight_.clear();
  }

  void drain_local() {
    poll_arrivals();
    while (!local_.empty() && !abort_->load()) {
      // Drain the mailbox between local events so commands interleave
      // with compute, like they do under the simulator.
      for (;;) {
        Message msg;
        if (!pop_mailbox(msg)) break;
        maybe_perturb();
        SF_INVARIANT_HOOK(runtime_->checker_,
                          on_deliver(rank_, msg, seconds_since(epoch_)));
        program->on_message(*this, std::move(msg));
      }
      if (local_.empty()) break;
      LocalEvent ev = local_.front();
      local_.pop_front();
      if (std::holds_alternative<ComputeDone>(ev)) {
        program->on_compute_done(*this);
      } else {
        program->on_block_loaded(*this, std::get<BlockId>(ev));
      }
    }
  }

  // Pop the next message off any inbox lane, round-robin across senders
  // so one chatty peer cannot starve the others.  Consumer-thread only
  // (this rank's thread), like every SpscChannel::pop.
  bool pop_mailbox(Message& out) {
    const std::size_t n = inboxes_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t lane = (next_lane_ + i) % n;
      if (inboxes_[lane]->pop(out)) {
        next_lane_ = (lane + 1) % n;
        return true;
      }
    }
    return false;
  }

  // Parking predicate: any lane with a (possibly) pending message.
  bool mailbox_nonempty() const {
    for (const auto& lane : inboxes_) {
      if (!lane->empty()) return true;
    }
    return false;
  }

  // Seeded schedule perturbation: nudge the OS scheduler at the points
  // where rank threads interact (mailboxes, the shared block source) so
  // TSan runs explore many interleavings instead of one.
  void maybe_perturb() {
    if (!fuzz_enabled_) return;
    const std::uint64_t draw = fuzz_.next_below(16);
    if (draw == 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(fuzz_.next_below(200)));
    } else if (draw < 8) {
      std::this_thread::yield();
    }
  }

  ThreadRuntime* runtime_;
  int rank_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool>* abort_;
  BlockCache cache_;
  bool fuzz_enabled_;
  Rng fuzz_;
  std::set<BlockId> pending_;
  // Async-I/O state, touched only from this rank's thread (all empty
  // when async I/O is off).
  std::map<BlockId, std::shared_future<GridPtr>> prefetch_inflight_;
  std::map<BlockId, GridPtr> staged_;   // arrived, not yet claimed
  std::vector<BlockId> staged_order_;   // oldest first (bounded)
  std::deque<LocalEvent> local_;
  std::int64_t particle_bytes_ = 0;

  // Lock-free mailbox (DESIGN.md §14): one SPSC lane per sender, an
  // eventcount to sleep on, and a round-robin drain cursor (owned by
  // this rank's thread).  unique_ptr because channels hold atomics and
  // never move once threads are live.
  std::vector<std::unique_ptr<SpscChannel<Message>>> inboxes_;
  ParkingLot parking_;
  std::size_t next_lane_ = 0;
};

ThreadRuntime::ThreadRuntime(const ThreadRuntimeConfig& config,
                             const BlockDecomposition* decomp,
                             const BlockSource* source,
                             const IntegratorParams& iparams,
                             const TraceLimits& limits)
    : config_(config),
      decomp_(decomp),
      source_(source),
      tracer_(decomp, iparams, limits) {
  if (config_.num_ranks < 1) {
    throw std::invalid_argument("ThreadRuntime: num_ranks >= 1");
  }
  if (decomp_ == nullptr || source_ == nullptr) {
    throw std::invalid_argument("ThreadRuntime: null decomposition/source");
  }
}

ThreadRuntime::~ThreadRuntime() = default;

void ThreadRuntime::note_failure(std::exception_ptr error) {
  {
    MutexLock lock(failure_mutex_);
    if (!failure_) failure_ = std::move(error);
  }
  abort_flag_->store(true);
}

void ThreadRuntime::note_query_termination(const Particle& p, double now) {
  std::uint32_t fire_query = 0;
  std::uint32_t fire_particles = 0;
  bool fire = false;
  {
    MutexLock lock(query_mutex_);
    auto it = query_remaining_.find(p.query);
    if (it == query_remaining_.end() || it->second == 0) return;
    if (--it->second == 0) {
      fire = true;
      fire_query = p.query;
      fire_particles = query_total_[p.query];
      completions_.push_back(QueryCompletion{p.query, now, fire_particles});
    }
  }
  if (fire) {
    SF_INVARIANT_HOOK(checker_, on_query_done(fire_query, now));
  }
}

RunMetrics ThreadRuntime::run(const ProgramFactory& factory) {
  const auto epoch = std::chrono::steady_clock::now();
  std::atomic<bool> abort{false};
  abort_flag_ = &abort;
  failure_ = nullptr;

  loader_.reset();
  if (config_.async_io.enabled) {
    AsyncBlockLoader::Config lcfg;
    lcfg.workers = config_.async_io.workers;
    loader_ = std::make_unique<AsyncBlockLoader>(source_, lcfg);
  }

  contexts_.clear();
  for (int r = 0; r < config_.num_ranks; ++r) {
    contexts_.push_back(
        std::make_unique<Context>(this, r, epoch, &abort));
    contexts_.back()->program = factory(r, config_.num_ranks);
  }

  checker_ = make_invariant_checker(
      {.protocol = config_.checked_protocol,
       .num_ranks = config_.num_ranks,
       .num_masters = config_.checker_num_masters,
       .num_roots = config_.checker_num_roots,
       .num_blocks = decomp_->num_blocks(),
       .cache_blocks = config_.cache_blocks,
       .fault_mode = false,
       .track_queries = true});
  if (checker_) {
    std::vector<Particle> snap;
    for (int r = 0; r < config_.num_ranks; ++r) {
      snap.clear();
      contexts_[static_cast<std::size_t>(r)]->program->snapshot_particles(
          snap);
      checker_->on_seeded(r, snap);
    }
  }

  // Cross-query warm start, on the main thread before any rank runs.
  if (config_.shared_blocks != nullptr) {
    for (int r = 0; r < config_.num_ranks; ++r) {
      contexts_[static_cast<std::size_t>(r)]->adopt_shared(
          config_.shared_blocks->blocks(r));
    }
  }

  // Per-query completion accounting from the seeding snapshots (deduped
  // by particle id), plus the epoch-boundary cancellation set.
  {
    MutexLock lock(query_mutex_);
    query_remaining_.clear();
    query_total_.clear();
    completions_.clear();
    std::vector<Particle> snap;
    std::set<std::uint32_t> seen;
    for (int r = 0; r < config_.num_ranks; ++r) {
      snap.clear();
      contexts_[static_cast<std::size_t>(r)]->program->snapshot_particles(
          snap);
      for (const Particle& p : snap) {
        if (is_terminal(p.status)) continue;
        if (!seen.insert(p.id).second) continue;
        ++query_remaining_[p.query];
      }
    }
    query_total_ = query_remaining_;
  }
  cancel_set_.clear();
  for (std::uint32_t q : config_.cancelled_queries) cancel_set_.cancel(q);
  tracer_.set_cancel_set(&cancel_set_);

  std::vector<std::thread> threads;
  threads.reserve(contexts_.size());
  for (auto& ctx : contexts_) {
    threads.emplace_back([c = ctx.get()] { c->thread_main(); });
  }
  for (std::thread& t : threads) t.join();
  loader_.reset();  // cancels leftover queued reads, joins the workers
  abort_flag_ = nullptr;
  std::exception_ptr failure;
  {
    // The rank threads are joined, but the annotation discipline holds
    // unconditionally: the board is only ever read under its mutex.
    MutexLock lock(failure_mutex_);
    failure = std::exchange(failure_, nullptr);
  }
  if (failure) {
    checker_.reset();
    std::rethrow_exception(failure);
  }

  RunMetrics run_metrics;
  run_metrics.num_ranks = config_.num_ranks;
  run_metrics.wall_clock = seconds_since(epoch);
  run_metrics.failed_oom = abort.load();
  SF_INVARIANT_HOOK(checker_, on_run_end(!run_metrics.failed_oom,
                                         run_metrics.wall_clock));
  checker_.reset();
  for (auto& ctx : contexts_) {
    run_metrics.ranks.push_back(ctx->metrics);
    if (!run_metrics.failed_oom) {
      ctx->program->collect_particles(run_metrics.particles);
    }
  }
  // Capture cross-query residency for the next epoch (threads joined, so
  // the caches are quiescent).
  if (config_.shared_blocks != nullptr) {
    for (int r = 0; r < config_.num_ranks; ++r) {
      config_.shared_blocks->capture(
          r, contexts_[static_cast<std::size_t>(r)]->cache());
    }
  }
  std::sort(run_metrics.particles.begin(), run_metrics.particles.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
  {
    MutexLock lock(query_mutex_);
    std::sort(completions_.begin(), completions_.end(),
              [](const QueryCompletion& a, const QueryCompletion& b) {
                return a.query < b.query;
              });
    run_metrics.query_completions = std::move(completions_);
    completions_.clear();
  }
  contexts_.clear();
  return run_metrics;
}

}  // namespace sf
