#pragma once

// Discrete-event-simulated runtime: runs one RankProgram per simulated
// rank over the machine model of sim/machine_model.hpp.
//
// This is the substitute for the paper's 512-rank MPI runs on JaguarPF
// (DESIGN.md §2): the very same algorithm code performs the real
// numerical integration, while elapsed time, network transfers, shared-
// filesystem contention and memory limits are modelled.  Runs are
// deterministic: same inputs, same metrics, bit for bit.
//
// Fault injection (DESIGN.md §7) is layered on top and strictly opt-in:
// with `fault.enabled == false` every fault hook short-circuits before
// touching the event queue, so fault-free runs remain bit-identical to
// the pre-fault runtime.  When enabled, the runtime kills ranks on the
// injector's schedule, retries faulted block reads with capped
// exponential backoff, bounces undeliverable particle payloads back to
// their senders, maintains the particle ledger that makes crashes
// recoverable, and takes periodic checkpoints of it.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "check/invariants.hpp"
#include "core/dataset.hpp"
#include "core/tracer.hpp"
#include "fault/fault_config.hpp"
#include "fault/injector.hpp"
#include "fault/ledger.hpp"
#include "io/async_loader.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/metrics.hpp"
#include "runtime/rank_context.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "sim/sim_engine.hpp"

namespace sf {

// A timed query cancellation (service control plane): at simulated time
// `at`, every still-active particle of `query` terminates as kCancelled
// at its next advance.
struct QueryCancelAt {
  std::uint32_t query = 0;
  double at = 0.0;
};

struct SimRuntimeConfig {
  int num_ranks = 4;
  MachineModel model{};
  // LRU capacity per rank, in blocks ("user defined upper bound", §5).
  std::size_t cache_blocks = 32;
  // Whether communicated particles carry their recorded trajectory
  // geometry (the paper's behaviour) or only solver state (§8's proposed
  // optimization).
  bool carry_geometry = true;
  // Record per-rank compute/I/O spans into RunMetrics::timeline for
  // utilization and starvation analysis (§8).  Off by default: large
  // runs generate millions of spans.
  bool record_timeline = false;
  // Fault injection, checkpointing and recovery (DESIGN.md §7).
  FaultConfig fault{};
  // Which protocol's legality rules the invariant checker enforces
  // (DESIGN.md §8).  kNone still checks conservation, cache coherence
  // and termination accounting.  Only meaningful in builds with
  // SF_CHECK_INVARIANTS; Release runs ignore it entirely.
  CheckedProtocol checked_protocol = CheckedProtocol::kNone;
  // Hybrid layout input for the protocol model (ranks [0, n) are masters;
  // with a tree layout ranks [0, num_roots) of them are the root tier).
  int checker_num_masters = 0;
  int checker_num_roots = 0;
  // Asynchronous block I/O (DESIGN.md §10).  Off by default: the
  // synchronous path stays bit-identical to the pre-async runtime.
  // When enabled, prefetch_block() overlaps modeled reads with compute;
  // prefetched grids wait in a staging area and only enter the LRU
  // cache (and the load count) when a demand claims them, so the
  // trajectory and load/purge accounting match the sync path exactly.
  AsyncIoConfig async_io{};
  // Cross-query cache sharing (src/service).  Non-owning; nullptr for
  // standalone runs.  At run start each rank adopts the pool's captured
  // blocks into its fresh LRU (counted as adoptions, not loads); at run
  // end the surviving ranks' residency is captured back.
  SharedBlockPool* shared_blocks = nullptr;
  // Timed query cancellations, applied through the tracer's cancel set.
  std::vector<QueryCancelAt> cancels;
};

class SimRuntime {
 public:
  SimRuntime(const SimRuntimeConfig& config, const BlockDecomposition* decomp,
             const BlockSource* source, const IntegratorParams& iparams,
             const TraceLimits& limits);
  ~SimRuntime();  // out of line: Context is incomplete here

  // Instantiate one program per rank and simulate to completion.
  // Terminated particles are gathered from all programs, sorted by id.
  RunMetrics run(const ProgramFactory& factory);

 private:
  class Context;

  // One unacked sequenced control message, kept by the sender's transport
  // for retransmission.
  struct PendingControl {
    std::size_t bytes = 0;
    Message msg;
    int attempts = 0;  // retransmissions so far (first send not counted)
    double rto = 0.0;  // current backoff, doubling up to control_rto_cap
  };

  // Receiver-side dedup window for one directed link.  `low_water` is the
  // highest seq below which everything has been delivered; `seen` holds
  // the delivered seqs above it.  low_water only ever advances, which the
  // invariant checker audits (a regressing window would re-deliver).
  struct DedupWindow {
    std::uint32_t low_water = 0;
    std::set<std::uint32_t> seen;
  };

  using LinkKey = std::pair<int, int>;  // (from, to)

  // All fault-mode state; null when config_.fault.enabled is false, which
  // is what keeps the disabled path bit-identical.
  struct FaultState {
    FaultState(const FaultConfig& config, int num_ranks)
        : injector(config, num_ranks) {}
    FaultInjector injector;
    ParticleLedger ledger;
    FaultStats stats;
    std::vector<char> alive;
    std::vector<double> crash_time;
    std::set<int> immune;
    std::shared_ptr<Checkpoint> last_checkpoint;
    // Gray failures: per-rank compute slowdown multiplier (1.0 = healthy),
    // onset times of pending-detection slowdowns (for the detect-latency
    // stat), ranks already speculated against (one re-issue per
    // straggler), and each speculated streamline's fork-point step count
    // (the baseline for the wasted-duplicate-steps stat).
    std::vector<double> slow_factor;
    std::map<int, double> slowdown_time;
    std::set<int> speculated;
    std::map<std::uint32_t, std::uint32_t> speculated_at_steps;
    // Simulated time when every live rank finished; the fault-mode wall
    // clock (trailing injector/checkpoint events do not extend the run).
    double done_time = -1.0;
    // Reliable control transport (DESIGN.md §11): per-link sender
    // sequence counters, pending unacked messages, and receiver dedup
    // windows.
    std::map<LinkKey, std::uint32_t> ctrl_next_seq;
    std::map<LinkKey, std::map<std::uint32_t, PendingControl>> ctrl_pending;
    std::map<LinkKey, DedupWindow> ctrl_dedup;
  };

  bool rank_alive(int rank) const;
  bool all_live_finished() const;
  // Re-sync `rank`'s cached finished() bit (and the live-unfinished
  // counter) after a program callback may have changed it.  Called at
  // every callback site so quiescence stays O(1) per event.
  void refresh_finished(int rank);
  // Kill `rank` without touching stats (shared by crash paths).
  void kill_rank(int rank);
  // Injected/OOM crash: kill, count, and (kRuntime detector) schedule the
  // recovery a detection latency later.
  void crash_rank(int rank, bool from_oom);
  // kRuntime-detector recovery: deliver the ledger's termination recount
  // to the lowest live rank (the acting counter — which is how a counter
  // successor seeds its board), then hand the dead rank's streamlines to
  // the next live rank as a ParticleBatch.
  void runtime_recover(int dead_rank);
  // kProgram-detector recovery, called by the hybrid master through
  // RankContext::recover_rank.
  RecoveredWork recover_for(int recoverer, int dead_rank);
  // Speculative re-issue against a straggler (gray failure, DESIGN.md
  // §16): copy the straggler's ledger-owned streamlines for `speculator`
  // without transferring ownership.  One re-issue per straggler; the
  // first-terminal-wins ledger dedups the losing copies.
  std::vector<Particle> speculate_for(int speculator, int straggler);
  // Bookkeeping for the per-crash timeline (satellite of DESIGN.md §11).
  CrashRecord* crash_record_of(int rank);
  void note_detected_recovered(int dead_rank);
  // Ledger snooping + drop/dead-rank handling for one sent message.
  void fault_send(int from, int to, SimTime arrive, std::size_t bytes,
                  Message msg);
  // Sequenced at-least-once control path: assign a seq, keep a pending
  // copy, transmit, and arm the retransmit timer.
  void control_send(int from, int to, SimTime arrive, std::size_t bytes,
                    Message msg);
  // One transmission attempt of a pending control message + its
  // retransmit check.
  void transmit_control(int from, int to, std::uint32_t seq, SimTime arrive);
  // Receiver side: ack, dedup, and deliver first arrivals to the program.
  void deliver_control(int from, int to, std::size_t bytes, Message msg);
  // Transport-level ack back to the sender (droppable, never retried —
  // a lost ack just provokes a deduped retransmit).
  void send_control_ack(int acker, int sender, std::uint32_t seq);
  // Deliver (or bounce) a message that reached its destination time.
  void deliver(int to, std::size_t bytes, Message msg);
  // Return a message's particle payload to a live rank as Undeliverable;
  // particle-free payloads vanish (their loss is repaired by the control
  // transport's retransmits or by the failover recount).
  void bounce_undeliverable(int intended, Message msg);
  void checkpoint_tick();
  void schedule_checkpoint(double at);
  // Per-query completion tracking: called on every first-time termination;
  // fires the completion record (and checker hook) when the query's last
  // seeded streamline terminates.
  void note_query_termination(const Particle& p);

  SimRuntimeConfig config_;
  const BlockDecomposition* decomp_;
  const BlockSource* source_;
  Tracer tracer_;
  // Cancelled-query set consulted by the tracer's fast path; populated by
  // the scheduled QueryCancelAt events.
  QueryCancelSet cancel_set_;
  // Per-query live-streamline counts (from the seeding snapshots) and the
  // completion records they produce.
  std::map<std::uint32_t, std::uint32_t> query_remaining_;
  std::map<std::uint32_t, std::uint32_t> query_total_;
  std::vector<QueryCompletion> completions_;
  std::vector<std::unique_ptr<Context>> contexts_;
  // O(1)-per-event coordination state (DESIGN.md §15).  The simulator
  // used to sweep every rank after every event to detect quiescence and
  // to find successors; at 16K ranks those O(R) scans dominated.  Now:
  // `finished_` caches each live rank's program->finished() bit
  // (refreshed at the callback sites that can change it),
  // `live_unfinished_` counts live ranks whose bit is clear, and
  // `live_ranks_` is the ordered live set for successor / acting-counter
  // lookups (O(log R) instead of a cyclic scan).
  std::vector<char> finished_;
  int live_unfinished_ = 0;
  std::set<int> live_ranks_;
  // Scratch for the periodic checkpoint tick's per-rank particle
  // snapshots: reused across ticks so steady-state checkpointing does
  // not reallocate (mirrors the mailbox data plane's fixed-slot rings).
  std::vector<Particle> snapshot_scratch_;
  std::shared_ptr<Timeline> timeline_;
  std::unique_ptr<FaultState> fault_;
  // Live only inside run(); null when compiled out (Release).
  std::unique_ptr<InvariantChecker> checker_;
  // Live only inside run().
  SimEngine* engine_ = nullptr;
  Network* network_ = nullptr;
};

}  // namespace sf
