#pragma once

// Discrete-event-simulated runtime: runs one RankProgram per simulated
// rank over the machine model of sim/machine_model.hpp.
//
// This is the substitute for the paper's 512-rank MPI runs on JaguarPF
// (DESIGN.md §2): the very same algorithm code performs the real
// numerical integration, while elapsed time, network transfers, shared-
// filesystem contention and memory limits are modelled.  Runs are
// deterministic: same inputs, same metrics, bit for bit.
//
// Fault injection (DESIGN.md §7) is layered on top and strictly opt-in:
// with `fault.enabled == false` every fault hook short-circuits before
// touching the event queue, so fault-free runs remain bit-identical to
// the pre-fault runtime.  When enabled, the runtime kills ranks on the
// injector's schedule, retries faulted block reads with capped
// exponential backoff, bounces undeliverable particle payloads back to
// their senders, maintains the particle ledger that makes crashes
// recoverable, and takes periodic checkpoints of it.

#include <memory>
#include <set>
#include <vector>

#include "check/invariants.hpp"
#include "core/dataset.hpp"
#include "core/tracer.hpp"
#include "fault/fault_config.hpp"
#include "fault/injector.hpp"
#include "fault/ledger.hpp"
#include "io/async_loader.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/metrics.hpp"
#include "runtime/rank_context.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "sim/sim_engine.hpp"

namespace sf {

struct SimRuntimeConfig {
  int num_ranks = 4;
  MachineModel model{};
  // LRU capacity per rank, in blocks ("user defined upper bound", §5).
  std::size_t cache_blocks = 32;
  // Whether communicated particles carry their recorded trajectory
  // geometry (the paper's behaviour) or only solver state (§8's proposed
  // optimization).
  bool carry_geometry = true;
  // Record per-rank compute/I/O spans into RunMetrics::timeline for
  // utilization and starvation analysis (§8).  Off by default: large
  // runs generate millions of spans.
  bool record_timeline = false;
  // Fault injection, checkpointing and recovery (DESIGN.md §7).
  FaultConfig fault{};
  // Which protocol's legality rules the invariant checker enforces
  // (DESIGN.md §8).  kNone still checks conservation, cache coherence
  // and termination accounting.  Only meaningful in builds with
  // SF_CHECK_INVARIANTS; Release runs ignore it entirely.
  CheckedProtocol checked_protocol = CheckedProtocol::kNone;
  // Hybrid layout input for the protocol model (ranks [0, n) are masters).
  int checker_num_masters = 0;
  // Asynchronous block I/O (DESIGN.md §10).  Off by default: the
  // synchronous path stays bit-identical to the pre-async runtime.
  // When enabled, prefetch_block() overlaps modeled reads with compute;
  // prefetched grids wait in a staging area and only enter the LRU
  // cache (and the load count) when a demand claims them, so the
  // trajectory and load/purge accounting match the sync path exactly.
  AsyncIoConfig async_io{};
};

class SimRuntime {
 public:
  SimRuntime(const SimRuntimeConfig& config, const BlockDecomposition* decomp,
             const BlockSource* source, const IntegratorParams& iparams,
             const TraceLimits& limits);
  ~SimRuntime();  // out of line: Context is incomplete here

  // Instantiate one program per rank and simulate to completion.
  // Terminated particles are gathered from all programs, sorted by id.
  RunMetrics run(const ProgramFactory& factory);

 private:
  class Context;

  // All fault-mode state; null when config_.fault.enabled is false, which
  // is what keeps the disabled path bit-identical.
  struct FaultState {
    FaultState(const FaultConfig& config, int num_ranks)
        : injector(config, num_ranks) {}
    FaultInjector injector;
    ParticleLedger ledger;
    FaultStats stats;
    std::vector<char> alive;
    std::vector<double> crash_time;
    std::set<int> immune;
    std::shared_ptr<Checkpoint> last_checkpoint;
    // Simulated time when every live rank finished; the fault-mode wall
    // clock (trailing injector/checkpoint events do not extend the run).
    double done_time = -1.0;
  };

  bool rank_alive(int rank) const;
  bool all_live_finished() const;
  // Kill `rank` without touching stats (shared by crash paths).
  void kill_rank(int rank);
  // Injected/OOM crash: kill, count, and (kRuntime detector) schedule the
  // recovery a detection latency later.
  void crash_rank(int rank, bool from_oom);
  // kRuntime-detector recovery: re-report the dead rank's lost
  // termination credits to rank 0, then hand its streamlines to the next
  // live rank as a ParticleBatch.
  void runtime_recover(int dead_rank);
  // kProgram-detector recovery, called by the hybrid master through
  // RankContext::recover_rank.
  RecoveredWork recover_for(int recoverer, int dead_rank);
  // Ledger snooping + drop/dead-rank handling for one sent message.
  void fault_send(int from, int to, SimTime arrive, std::size_t bytes,
                  Message msg);
  // Deliver (or bounce) a message that reached its destination time.
  void deliver(int to, std::size_t bytes, Message msg);
  // Return a message's particle payload to a live rank as Undeliverable;
  // particle-free messages are dropped (the control plane is reliable).
  void bounce_undeliverable(int intended, Message msg);
  void checkpoint_tick();
  void schedule_checkpoint(double at);

  SimRuntimeConfig config_;
  const BlockDecomposition* decomp_;
  const BlockSource* source_;
  Tracer tracer_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::shared_ptr<Timeline> timeline_;
  std::unique_ptr<FaultState> fault_;
  // Live only inside run(); null when compiled out (Release).
  std::unique_ptr<InvariantChecker> checker_;
  // Live only inside run().
  SimEngine* engine_ = nullptr;
  Network* network_ = nullptr;
};

}  // namespace sf
