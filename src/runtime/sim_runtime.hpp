#pragma once

// Discrete-event-simulated runtime: runs one RankProgram per simulated
// rank over the machine model of sim/machine_model.hpp.
//
// This is the substitute for the paper's 512-rank MPI runs on JaguarPF
// (DESIGN.md §2): the very same algorithm code performs the real
// numerical integration, while elapsed time, network transfers, shared-
// filesystem contention and memory limits are modelled.  Runs are
// deterministic: same inputs, same metrics, bit for bit.

#include <memory>
#include <vector>

#include "core/dataset.hpp"
#include "core/tracer.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/metrics.hpp"
#include "runtime/rank_context.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "sim/sim_engine.hpp"

namespace sf {

struct SimRuntimeConfig {
  int num_ranks = 4;
  MachineModel model{};
  // LRU capacity per rank, in blocks ("user defined upper bound", §5).
  std::size_t cache_blocks = 32;
  // Whether communicated particles carry their recorded trajectory
  // geometry (the paper's behaviour) or only solver state (§8's proposed
  // optimization).
  bool carry_geometry = true;
  // Record per-rank compute/I/O spans into RunMetrics::timeline for
  // utilization and starvation analysis (§8).  Off by default: large
  // runs generate millions of spans.
  bool record_timeline = false;
};

class SimRuntime {
 public:
  SimRuntime(const SimRuntimeConfig& config, const BlockDecomposition* decomp,
             const BlockSource* source, const IntegratorParams& iparams,
             const TraceLimits& limits);
  ~SimRuntime();  // out of line: Context is incomplete here

  // Instantiate one program per rank and simulate to completion.
  // Terminated particles are gathered from all programs, sorted by id.
  RunMetrics run(const ProgramFactory& factory);

 private:
  class Context;

  SimRuntimeConfig config_;
  const BlockDecomposition* decomp_;
  const BlockSource* source_;
  Tracer tracer_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::shared_ptr<Timeline> timeline_;
};

}  // namespace sf
