#include "runtime/message.hpp"

namespace sf {

namespace {

constexpr std::size_t kEnvelope = 32;  // type tag, source, lengths

std::size_t particles_bytes(const std::vector<Particle>& ps,
                            bool carry_geometry) {
  std::size_t n = 0;
  for (const Particle& p : ps) n += particle_message_bytes(p, carry_geometry);
  return n;
}

struct ByteSizer {
  bool carry_geometry;

  std::size_t operator()(const ParticleBatch& b) const {
    return kEnvelope + particles_bytes(b.particles, carry_geometry);
  }
  std::size_t operator()(const StatusUpdate& s) const {
    // Trailing 24: workable+terminated_total counters plus the 8-byte
    // steps_total progress watermark and the 8-byte busy_seconds clock
    // (the computing bit rides in the counters' padding).
    return kEnvelope + s.queued_by_block.size() * 8 + s.loaded.size() * 4 +
           s.loading.size() * 4 + 24;
  }
  std::size_t operator()(const Command& c) const {
    return kEnvelope + 16 + particles_bytes(c.particles, carry_geometry) +
           c.hint_blocks.size() * 4;
  }
  std::size_t operator()(const TerminationCount& t) const {
    return kEnvelope + t.totals.size() * 8;
  }
  std::size_t operator()(const DoneSignal&) const { return kEnvelope; }
  std::size_t operator()(const MasterBeacon&) const { return kEnvelope; }
  std::size_t operator()(const ControlAck&) const { return kEnvelope + 4; }
  std::size_t operator()(const SeedRequest&) const { return kEnvelope; }
  std::size_t operator()(const SeedRelay&) const { return kEnvelope; }
  std::size_t operator()(const SeedTransfer& t) const {
    // Seeds have no geometry yet; they are always compact.
    return kEnvelope + particles_bytes(t.seeds, false);
  }
  std::size_t operator()(const Undeliverable& u) const {
    return kEnvelope + 8 + particles_bytes(u.particles, carry_geometry);
  }
  std::size_t operator()(const QuerySubmit& q) const {
    return kEnvelope + 4 + q.seeds.size() * sizeof(Vec3);
  }
  std::size_t operator()(const QueryCancel&) const { return kEnvelope + 4; }
  std::size_t operator()(const QueryResult& q) const {
    return kEnvelope + 4 + particles_bytes(q.particles, carry_geometry);
  }
  std::size_t operator()(const QueryDone&) const { return kEnvelope + 12; }
};

}  // namespace

std::size_t message_bytes(const Message& msg, bool carry_geometry) {
  return std::visit(ByteSizer{carry_geometry}, msg.payload);
}

const char* to_string(Command::Type t) {
  switch (t) {
    case Command::Type::kAssign: return "assign";
    case Command::Type::kSendForce: return "send-force";
    case Command::Type::kSendHint: return "send-hint";
    case Command::Type::kLoad: return "load";
    case Command::Type::kTerminate: return "terminate";
  }
  return "unknown";
}

}  // namespace sf
