#pragma once

// Lock-free shared-memory data plane for the real-thread runtime
// (DESIGN.md §14).
//
// Three pieces, composed by ThreadRuntime's per-rank contexts:
//
//  - SpscRing<T>: a fixed-capacity single-producer/single-consumer ring
//    buffer.  One thread may push, one thread may pop; the two indices
//    are published with release stores and observed with acquire loads,
//    so the slot write always happens-before the index load that makes
//    it visible.  Slots are preconstructed once — steady-state delivery
//    moves a Message into an existing slot and out again, with no
//    allocation and no lock.
//
//  - SpscChannel<T>: one (sender -> receiver) mailbox lane.  The common
//    case is the ring; when the ring is full the producer diverts to a
//    mutex-guarded overflow queue ("overflow mode") so delivery never
//    blocks and never drops.  Per-pair FIFO order survives overflow:
//    while the overflow flag is set the producer never touches the ring,
//    and the consumer drains the (older) ring entries before the
//    overflow queue, clearing the flag only when the queue is empty —
//    both transitions serialized by the overflow mutex.
//
//  - ParkingLot: an eventcount so an idle consumer still sleeps instead
//    of spinning across its (empty) lanes.  The producer's fast path is
//    one fence + one relaxed load; the condvar is touched only when a
//    consumer has actually announced itself.
//
// Everything here is also exercised by tests/test_spsc_ring.cpp (wrap,
// backpressure, fuzzed drain-while-fill) and the TSan job (CI `tsan`).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <linux/membarrier.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "core/thread_annotations.hpp"

namespace sf {

namespace detail {

// Asymmetric Dekker fence for the eventcount (DESIGN.md §14).  The
// parking side runs only when a rank goes idle; the delivering side
// runs on every message.  membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)
// lets the slow side buy the store-load ordering for both sides: the
// kernel interrupts every running thread of the process with a full
// barrier, so the fast side needs only compiler ordering (the IPI
// either lands after the producer's publish retired — then the parking
// thread's post-barrier re-check sees the publish — or the producer's
// waiter load runs after the barrier and sees the announcement).  When
// the syscall is unavailable (non-Linux, seccomp) both sides fall back
// to the symmetric seq_cst fence.
#if defined(__linux__)
inline bool asymmetric_fence_available() {
  static const bool ok = [] {
    const long cmds = ::syscall(__NR_membarrier, MEMBARRIER_CMD_QUERY, 0, 0);
    if (cmds <= 0 ||
        !(cmds & MEMBARRIER_CMD_PRIVATE_EXPEDITED) ||
        !(cmds & MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED)) {
      return false;
    }
    return ::syscall(__NR_membarrier,
                     MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED, 0, 0) == 0;
  }();
  return ok;
}

inline void parking_heavy_fence() {
  if (asymmetric_fence_available()) {
    ::syscall(__NR_membarrier, MEMBARRIER_CMD_PRIVATE_EXPEDITED, 0, 0);
    return;
  }
  // lockfree-lint: spsc — symmetric fallback; pairs with the fence in
  // parking_light_fence so at least one side observes the other
  // (store-load ordering, Dekker happens-before argument in ParkingLot).
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

inline void parking_light_fence() {
  if (asymmetric_fence_available()) {
    // lockfree-lint: spsc — compiler-only ordering: the hardware
    // store-load ordering is supplied by the parker's membarrier IPI,
    // which happens-before the parker's lane re-check (see
    // parking_heavy_fence above).
    std::atomic_signal_fence(std::memory_order_seq_cst);
    return;
  }
  // lockfree-lint: spsc — symmetric fallback; pairs with the fence in
  // parking_heavy_fence (store-load ordering, Dekker) so the publish
  // happens-before the parker's re-check or the announcement is seen.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}
#else
inline void parking_heavy_fence() {
  // lockfree-lint: spsc — seq_cst fence; pairs with parking_light_fence
  // (store-load ordering, Dekker happens-before argument in ParkingLot).
  std::atomic_thread_fence(std::memory_order_seq_cst);
}
inline void parking_light_fence() {
  // lockfree-lint: spsc — seq_cst fence; pairs with parking_heavy_fence
  // (store-load ordering, Dekker happens-before argument in ParkingLot).
  std::atomic_thread_fence(std::memory_order_seq_cst);
}
#endif

}  // namespace detail

// Fixed-capacity single-producer/single-consumer ring.  try_push may be
// called by at most one thread at a time, try_pop by at most one thread
// at a time (they may be the same thread).  Capacity is rounded up to a
// power of two; indices increase monotonically and are mapped to slots
// by masking, so the full/empty distinction needs no wasted slot.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  // Producer side.  Returns false (and does not consume `value`) when
  // the ring is full.
  bool try_push(T&& value) {
    // lockfree-lint: spsc — producer owns tail_; relaxed self-read.
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == slots_.size()) {
      // lockfree-lint: spsc — acquire pairs with the release store in
      // try_pop: the consumer's move-out of slot[head] happens-before
      // this load observing the bumped head, so overwriting the slot
      // below cannot race the consumer's read of it.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    // lockfree-lint: spsc — release publish; pairs with the acquire
    // load in try_pop so the slot write happens-before any consumer
    // read that observes the new tail.
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side.  Returns false when the ring is empty.
  bool try_pop(T& out) {
    // lockfree-lint: spsc — consumer owns head_; relaxed self-read.
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      // lockfree-lint: spsc — acquire pairs with the release store in
      // try_push: the producer's slot write happens-before this load
      // observing the bumped tail, so the move-out below reads a fully
      // constructed value.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    // lockfree-lint: spsc — release publish; pairs with the acquire
    // load in try_push so the slot is only reused after the move-out
    // above happens-before the producer observing the bumped head.
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Callable from any thread; a conservative snapshot (may report
  // non-empty for an instant after the consumer drains).
  bool empty() const {
    // lockfree-lint: spsc — acquire/acquire snapshot of both indices;
    // used only as a parking hint, the consumer re-polls after waking,
    // and the producer-side fence in ParkingLot::unpark orders its
    // release push happens-before the consumer's re-check.
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer cacheline: the producer's index plus its cached view of the
  // consumer's; padded apart so steady-state push/pop never false-share.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  // Consumer cacheline.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
};

// One mailbox lane: SPSC ring with a bounded-ring -> elastic-overflow
// escape hatch.  push() never blocks on the consumer and never drops;
// the overflow queue is mutex-guarded but reached only when the ring is
// full (or still draining from a previous burst), so steady-state
// delivery is lock-free.  FIFO per lane is preserved across overflow —
// see the invariant notes on each member.
template <typename T>
class SpscChannel {
 public:
  explicit SpscChannel(std::size_t ring_slots) : ring_(ring_slots) {}

  std::size_t ring_capacity() const { return ring_.capacity(); }

  // Producer side; single producer thread per channel.
  void push(T&& value) SF_EXCLUDES(overflow_mutex_) {
    // lockfree-lint: spsc — overflowed_ is set only by this (single)
    // producer and cleared only by the consumer, both under
    // overflow_mutex_; the unlock/lock pair makes the clear (and the
    // drain it certifies) happen-before a producer load that sees
    // false, so falling through to the ring cannot overtake queued
    // overflow entries.
    if (overflowed_.load(std::memory_order_acquire)) {
      MutexLock lock(overflow_mutex_);
      if (overflowed_.load(std::memory_order_relaxed)) {
        overflow_.push_back(std::move(value));
        return;
      }
      // The consumer drained the queue and cleared the flag while we
      // waited for the lock: the ring is the FIFO tail again.
    }
    if (ring_.try_push(std::move(value))) return;
    // Ring full: enter overflow mode.  Everything already in the ring
    // is older than `value`, and the consumer always drains the ring
    // before the queue, so appending here preserves lane order.
    MutexLock lock(overflow_mutex_);
    // lockfree-lint: spsc — release store under the mutex pairs with
    // the consumer's acquire load in pop(): the queue append below
    // happens-before any pop that observes the flag.
    overflowed_.store(true, std::memory_order_release);
    overflow_.push_back(std::move(value));
  }

  // Consumer side; single consumer thread per channel.
  bool pop(T& out) SF_EXCLUDES(overflow_mutex_) {
    if (ring_.try_pop(out)) return true;
    // lockfree-lint: spsc — acquire pairs with the producer's release
    // store in push(): the overflow append happens-before this load
    // observing the flag, so the locked drain below sees the entry.
    if (!overflowed_.load(std::memory_order_acquire)) return false;
    MutexLock lock(overflow_mutex_);
    // While the flag is set the producer never pushes to the ring, so
    // any ring residue is strictly older than the queue: drain it
    // first.  (The unlocked try_pop above can race a producer that was
    // still filling the ring right before it flipped to overflow —
    // this locked re-check closes that window.)
    if (ring_.try_pop(out)) return true;
    if (overflow_.empty()) {
      // Possible only on the consumer's stale-flag re-entry after the
      // final drain below already cleared the queue in this same call
      // sequence; treat as empty.
      // lockfree-lint: spsc — release store under the mutex, the same
      // pairing as the drain-clear below: the producer's acquire load
      // in push() observing false happens-after this clear.
      overflowed_.store(false, std::memory_order_release);
      return false;
    }
    out = std::move(overflow_.front());
    overflow_.pop_front();
    if (overflow_.empty()) {
      // lockfree-lint: spsc — release store under the mutex pairs with
      // the producer's acquire load in push(): the drain above
      // happens-before a producer that sees the flag cleared, so its
      // next ring push is ordered after every overflow entry.
      overflowed_.store(false, std::memory_order_release);
    }
    return true;
  }

  // Parking hint; callable from any thread.  May transiently report
  // non-empty, never the reverse (see SpscRing::empty).
  bool empty() const {
    // lockfree-lint: spsc — acquire load; the producer's overflow
    // append happens-before the flag store it pairs with, so a cleared
    // flag plus an empty ring means no queued entries at snapshot time.
    return ring_.empty() && !overflowed_.load(std::memory_order_acquire);
  }

 private:
  SpscRing<T> ring_;
  // true while overflow_ may be non-empty.  Set by the producer (under
  // overflow_mutex_) when the ring fills; cleared by the consumer
  // (under overflow_mutex_) when the queue empties.  While set, the
  // producer appends only to overflow_ — that is the FIFO argument.
  std::atomic<bool> overflowed_{false};
  Mutex overflow_mutex_{LockRank::kMailbox};
  std::deque<T> overflow_ SF_GUARDED_BY(overflow_mutex_);
};

// Eventcount-style parking for a consumer polling several lock-free
// lanes.  The consumer announces intent (waiter_), re-checks its lanes,
// and only then blocks; the producer publishes work, fences, and
// notifies only if a waiter is announced.  The fence pair makes the
// classic Dekker argument: either the producer's load sees the waiter
// (and bumps the wake token under the mutex, which the wait re-checks),
// or the consumer's lane re-check sees the published work — a wakeup
// can be delayed by at most the caller's timeout, never lost entirely.
// The fences are asymmetric where the OS allows (detail::parking_*_
// fence): the rarely-run parking side pays a membarrier syscall so the
// per-message unpark needs only compiler ordering.
class ParkingLot {
 public:
  // Consumer side.  `nonempty` must re-poll the protected queues; when
  // it returns true the park is abandoned without blocking.
  template <typename NonEmptyFn>
  void park(NonEmptyFn&& nonempty, std::chrono::milliseconds timeout)
      SF_EXCLUDES(mutex_) {
    // lockfree-lint: spsc — waiter_ announcement; the heavy fence below
    // orders it before the lane re-check (Dekker pairing with unpark).
    waiter_.store(true, std::memory_order_relaxed);
    // Heavy half of the Dekker pair: the waiter_ store above is ordered
    // before the lane loads in nonempty(), so at least one side
    // observes the other — the producer publish happens-before our
    // re-check or our announcement happens-before its waiter_ load.
    // That is what makes a lost wakeup impossible.
    detail::parking_heavy_fence();
    if (nonempty()) {
      // lockfree-lint: spsc — relaxed retraction: only promptness is at
      // stake (a producer that still sees true pays one spare notify);
      // the mutex below owns the wake token happens-before edges.
      waiter_.store(false, std::memory_order_relaxed);
      return;
    }
    {
      MutexLock lock(mutex_);
      if (!wake_pending_) cv_.wait_for(mutex_, timeout);
      wake_pending_ = false;
    }
    // lockfree-lint: spsc — relaxed retraction, as above: the mutex owns
    // the wake-token happens-before edges; a stale true costs one
    // spurious notify, never a lost wakeup.
    waiter_.store(false, std::memory_order_relaxed);
  }

  // Producer side; call after publishing work to any lane this
  // consumer drains.
  void unpark() SF_EXCLUDES(mutex_) {
    // Light half of the Dekker pair: orders the lane publish (release
    // store in SpscRing/SpscChannel) before the waiter_ load below —
    // the publish happens-before the consumer's lane re-check whenever
    // this load misses the waiter announcement.
    detail::parking_light_fence();
    // lockfree-lint: spsc — relaxed probe; the fence above supplies the
    // store-load ordering (see the Dekker pairing in park()).
    if (!waiter_.load(std::memory_order_relaxed)) return;
    {
      MutexLock lock(mutex_);
      wake_pending_ = true;
    }
    cv_.notify_one();
  }

 private:
  std::atomic<bool> waiter_{false};
  Mutex mutex_{LockRank::kMailbox};
  CondVar cv_;
  // Wake token: set under mutex_ by unpark, consumed under mutex_ by
  // park, so a notify that lands between the consumer's lane re-check
  // and its wait is not lost.  A stale token only costs one spurious
  // (immediately re-polling) pass.
  bool wake_pending_ SF_GUARDED_BY(mutex_) = false;
};

}  // namespace sf
