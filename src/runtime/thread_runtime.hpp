#pragma once

// Real-thread runtime: runs the same RankPrograms as SimRuntime, but with
// one OS thread per rank, real mailboxes and real block I/O.
//
// This demonstrates that the algorithms are not simulator-bound — the
// identical state machines execute end to end on actual threads and
// disks — and it is the execution engine a downstream user would run on a
// real multi-core node.  Timing metrics are measured wall-clock seconds;
// for scaling *studies* use SimRuntime, which models a large machine.

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <vector>

#include "check/invariants.hpp"
#include "core/dataset.hpp"
#include "core/thread_annotations.hpp"
#include "core/tracer.hpp"
#include "io/async_loader.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/metrics.hpp"
#include "runtime/rank_context.hpp"

namespace sf {

struct ThreadRuntimeConfig {
  int num_ranks = 4;
  MachineModel model{};  // memory budgets + per-particle overheads
  std::size_t cache_blocks = 32;
  bool carry_geometry = true;
  // Schedule-perturbation fuzzing (DESIGN.md §8): when non-zero, every
  // rank thread injects seeded random yields/short sleeps at mailbox and
  // cache boundaries so sanitizer runs explore diverse interleavings.
  // 0 disables (the default); results are unaffected either way.
  std::uint64_t schedule_fuzz_seed = 0;
  // Invariant-checker protocol rules (DESIGN.md §8); kNone still checks
  // conservation, cache coherence and termination accounting.
  CheckedProtocol checked_protocol = CheckedProtocol::kNone;
  int checker_num_masters = 0;
  int checker_num_roots = 0;
  // Asynchronous block I/O (DESIGN.md §10).  When enabled, one shared
  // AsyncBlockLoader serves prefetch hints from every rank; reads for
  // the same block are coalesced across ranks.  Completions are polled
  // from the rank thread's event loop, so all cache mutation stays on
  // the owning thread.  Off by default: request_block stays a plain
  // synchronous read.
  AsyncIoConfig async_io{};
  // Cross-query cache sharing (src/service).  Non-owning; nullptr for
  // standalone runs.  Adopted into each rank's cache before the threads
  // start, captured back after they join.
  SharedBlockPool* shared_blocks = nullptr;
  // Queries cancelled before the run starts: their particles terminate
  // as kCancelled at first advance.  Real threads have no deterministic
  // mid-run instant, so the thread runtime applies cancellations only at
  // epoch boundaries (timed mid-flight cancels are a SimRuntime feature).
  std::vector<std::uint32_t> cancelled_queries;
  // Slots per (sender, receiver) mailbox ring (DESIGN.md §14; rounded up
  // to a power of two).  Bursts beyond this spill to the channel's
  // mutex-guarded overflow queue — delivery never blocks and never
  // drops, the spill just pays the old lock price.  Small values are
  // for tests that want to exercise the overflow path.
  std::size_t mailbox_ring_slots = 64;
};

class ThreadRuntime {
 public:
  ThreadRuntime(const ThreadRuntimeConfig& config,
                const BlockDecomposition* decomp, const BlockSource* source,
                const IntegratorParams& iparams, const TraceLimits& limits);
  ~ThreadRuntime();

  RunMetrics run(const ProgramFactory& factory);

 private:
  class Context;

  // First exception a rank thread died on; rethrown from run().
  void note_failure(std::exception_ptr error) SF_EXCLUDES(failure_mutex_);
  // Per-query completion tracking; called from rank threads on every
  // termination, serialized by query_mutex_.  The checker hook fires
  // after the lock is released (checker last in the lock order).
  void note_query_termination(const Particle& p, double now)
      SF_EXCLUDES(query_mutex_);

  ThreadRuntimeConfig config_;
  const BlockDecomposition* decomp_;
  const BlockSource* source_;
  // Shared read-only by every rank thread during run(); the embedded
  // QueryCancelSet is the only mutable member and locks internally.
  Tracer tracer_;
  QueryCancelSet cancel_set_;
  // Per-query termination board: decremented by every rank thread, so
  // the last terminator of a query fires its completion exactly once.
  Mutex query_mutex_{LockRank::kQueryBoard};
  std::map<std::uint32_t, std::uint32_t> query_remaining_
      SF_GUARDED_BY(query_mutex_);
  std::map<std::uint32_t, std::uint32_t> query_total_
      SF_GUARDED_BY(query_mutex_);
  std::vector<QueryCompletion> completions_ SF_GUARDED_BY(query_mutex_);
  std::vector<std::unique_ptr<Context>> contexts_;
  // Live only inside run(), and only when config_.async_io.enabled.
  std::unique_ptr<AsyncBlockLoader> loader_;
  // Live only inside run(); null when compiled out (Release).  The
  // checker serializes internally, so all rank threads share it.
  std::unique_ptr<InvariantChecker> checker_;
  Mutex failure_mutex_{LockRank::kFailureBoard};
  std::exception_ptr failure_ SF_GUARDED_BY(failure_mutex_);
  // Written by run() on the main thread strictly before the rank
  // threads launch and after they join; rank threads only load/store
  // through the pointee atomic.
  std::atomic<bool>* abort_flag_ = nullptr;
};

}  // namespace sf
