#pragma once

// Real-thread runtime: runs the same RankPrograms as SimRuntime, but with
// one OS thread per rank, real mailboxes and real block I/O.
//
// This demonstrates that the algorithms are not simulator-bound — the
// identical state machines execute end to end on actual threads and
// disks — and it is the execution engine a downstream user would run on a
// real multi-core node.  Timing metrics are measured wall-clock seconds;
// for scaling *studies* use SimRuntime, which models a large machine.

#include <memory>

#include "core/dataset.hpp"
#include "core/tracer.hpp"
#include "runtime/metrics.hpp"
#include "runtime/rank_context.hpp"

namespace sf {

struct ThreadRuntimeConfig {
  int num_ranks = 4;
  MachineModel model{};  // memory budgets + per-particle overheads
  std::size_t cache_blocks = 32;
  bool carry_geometry = true;
};

class ThreadRuntime {
 public:
  ThreadRuntime(const ThreadRuntimeConfig& config,
                const BlockDecomposition* decomp, const BlockSource* source,
                const IntegratorParams& iparams, const TraceLimits& limits);
  ~ThreadRuntime();

  RunMetrics run(const ProgramFactory& factory);

 private:
  class Context;

  ThreadRuntimeConfig config_;
  const BlockDecomposition* decomp_;
  const BlockSource* source_;
  Tracer tracer_;
  std::vector<std::unique_ptr<Context>> contexts_;
};

}  // namespace sf
