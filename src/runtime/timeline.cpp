#include "runtime/timeline.hpp"

#include <algorithm>

namespace sf {

std::vector<double> Timeline::rank_utilization(double wall) const {
  std::vector<double> busy(static_cast<std::size_t>(num_ranks_), 0.0);
  if (wall <= 0.0) return busy;
  for (const TimelineSpan& s : spans_) {
    if (s.kind == TimelineSpan::Kind::kCompute) {
      busy[static_cast<std::size_t>(s.rank)] += s.t1 - s.t0;
    }
  }
  for (double& b : busy) b = std::min(b / wall, 1.0);
  return busy;
}

std::vector<double> Timeline::utilization_curve(double wall,
                                                int bins) const {
  std::vector<double> curve(static_cast<std::size_t>(bins), 0.0);
  if (wall <= 0.0 || bins <= 0 || num_ranks_ <= 0) return curve;
  const double bin_width = wall / bins;
  for (const TimelineSpan& s : spans_) {
    if (s.kind != TimelineSpan::Kind::kCompute) continue;
    // Distribute the span's duration over the bins it overlaps.
    const int first = std::clamp(static_cast<int>(s.t0 / bin_width), 0,
                                 bins - 1);
    const int last = std::clamp(static_cast<int>(s.t1 / bin_width), 0,
                                bins - 1);
    for (int b = first; b <= last; ++b) {
      const double lo = std::max(s.t0, b * bin_width);
      const double hi = std::min(s.t1, (b + 1) * bin_width);
      if (hi > lo) curve[static_cast<std::size_t>(b)] += hi - lo;
    }
  }
  const double denom = bin_width * num_ranks_;
  for (double& c : curve) c = std::min(c / denom, 1.0);
  return curve;
}

double Timeline::total_starved_seconds(double wall) const {
  if (wall <= 0.0) return 0.0;
  double active = 0.0;  // compute + I/O rank-seconds
  for (const TimelineSpan& s : spans_) active += s.t1 - s.t0;
  const double total = wall * num_ranks_;
  return std::max(0.0, total - active);
}

}  // namespace sf
