#pragma once

// Per-rank LRU block cache.
//
// "The Load On Demand algorithm makes use of caching of blocks in a LRU
// fashion; old blocks are discarded if available main memory is
// insufficient" (§4.2).  Every algorithm caches through this class, and
// its load/purge counters feed the paper's block-efficiency metric
// E = (B_loaded - B_purged) / B_loaded.

#include <cassert>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "core/dataset.hpp"

namespace sf {

class BlockCache {
 public:
  // `capacity` is the user-defined upper bound on resident blocks (§5).
  explicit BlockCache(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return map_.size(); }

  // Look up a block and mark it most-recently used.
  const StructuredGrid* find(BlockId id);

  // Look up without touching LRU order.
  bool contains(BlockId id) const { return map_.count(id) != 0; }

  // Insert a freshly loaded block as most-recently used, evicting the
  // least-recently used entry if at capacity.  Counts one load (and one
  // purge per eviction).  Re-inserting a resident block just touches it.
  // Single hash probe: insertion and the residency check share one
  // try_emplace instead of find()-then-emplace().
  void insert(BlockId id, GridPtr grid);

  // Drop a block explicitly (not counted as a purge; used by tests).
  void erase(BlockId id);

  // Resident block ids, most-recently used first.
  std::vector<BlockId> resident() const;

  std::uint64_t loads() const { return loads_; }
  std::uint64_t purges() const { return purges_; }

 private:
  void touch(std::list<BlockId>::iterator it) {
    lru_.splice(lru_.begin(), lru_, it);
  }

  // Counter audit: every load is still resident, purged, or explicitly
  // erased — the E-metric E = (loads - purges) / loads depends on it.
  void check_counters() const {
    assert(loads_ == purges_ + erased_ + map_.size());
  }

  std::size_t capacity_;
  std::list<BlockId> lru_;  // front = most recent
  struct Entry {
    GridPtr grid;
    std::list<BlockId>::iterator pos;
  };
  std::unordered_map<BlockId, Entry> map_;
  std::uint64_t loads_ = 0;
  std::uint64_t purges_ = 0;
  std::uint64_t erased_ = 0;  // explicit erase(), not counted as purge
};

}  // namespace sf
