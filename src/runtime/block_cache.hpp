#pragma once

// Per-rank LRU block cache.
//
// "The Load On Demand algorithm makes use of caching of blocks in a LRU
// fashion; old blocks are discarded if available main memory is
// insufficient" (§4.2).  Every algorithm caches through this class, and
// its load/purge counters feed the paper's block-efficiency metric
// E = (B_loaded - B_purged) / B_loaded.

#include <cassert>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dataset.hpp"
#include "core/thread_annotations.hpp"

namespace sf {

// Thread-confined, not thread-safe: a cache belongs to exactly one rank
// thread at a time.  The ThreadChecker capability makes that contract
// visible to the thread-safety analysis — all state is guarded by
// `serial_`, every public method asserts it, so any future attempt to
// call into a cache from a second thread while adding a lock elsewhere
// shows up as a missing-capability error instead of a silent race.
// Ownership hand-off (construction on the main thread, use on the rank
// thread, export after join) happens at quiescent points.
class BlockCache {
 public:
  // `capacity` is the user-defined upper bound on resident blocks (§5).
  explicit BlockCache(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const {
    serial_.assert_held();
    return map_.size();
  }

  // Look up a block and mark it most-recently used.  Counts one hit or
  // one miss; the hit rate hits/(hits+misses) rides next to the
  // E-metric in the per-run metrics.
  const StructuredGrid* find(BlockId id);

  // Look up without touching LRU order (and without counting a hit).
  bool contains(BlockId id) const {
    serial_.assert_held();
    return map_.count(id) != 0;
  }

  // Insert a freshly loaded block as most-recently used, evicting the
  // least-recently used *unpinned* entry if at capacity.  Counts one
  // load (and one purge per eviction).  Re-inserting a resident block
  // just touches it.  Single hash probe: insertion and the residency
  // check share one try_emplace instead of find()-then-emplace().
  //
  // If every resident entry is pinned the cache overflows temporarily:
  // the newcomer stays and the deferred eviction happens on the next
  // unpin().  The invariant checker replays the same policy.
  void insert(BlockId id, GridPtr grid);

  // Pin a block: it cannot be evicted until the matching unpin().  Pins
  // nest (focus-of-round and prefetch-target pins can overlap), and pin
  // intent is independent of residency: pinning before the insert lands
  // protects an in-flight load's target from day one.
  void pin(BlockId id);

  // Drop one pin; when the cache is over capacity (all-pinned overflow,
  // see insert()) the deferred eviction runs here.
  void unpin(BlockId id);

  bool pinned(BlockId id) const;

  // Drop a block explicitly (not counted as a purge; used by tests).
  void erase(BlockId id);

  // Insert a block inherited from another run's cache (cross-query warm
  // start).  Identical LRU behaviour to insert(), but counted as an
  // adoption instead of a load: the E-metric and hit rate measure what
  // *this* run pulled off disk, and a warm start did no I/O.
  void adopt(BlockId id, GridPtr grid);

  // Resident block ids, most-recently used first.
  std::vector<BlockId> resident() const;

  // Resident blocks with their grids, most-recently used first — what a
  // SharedBlockPool captures at run end.
  std::vector<std::pair<BlockId, GridPtr>> export_resident() const;

  std::uint64_t loads() const {
    serial_.assert_held();
    return loads_;
  }
  std::uint64_t purges() const {
    serial_.assert_held();
    return purges_;
  }
  std::uint64_t adopted() const {
    serial_.assert_held();
    return adopted_;
  }
  std::uint64_t hits() const {
    serial_.assert_held();
    return hits_;
  }
  std::uint64_t misses() const {
    serial_.assert_held();
    return misses_;
  }

 private:
  void touch(std::list<BlockId>::iterator it) SF_REQUIRES(serial_) {
    lru_.splice(lru_.begin(), lru_, it);
  }

  // Evict least-recently-used unpinned entries until the size fits the
  // capacity or only pinned entries remain.
  void evict_to_capacity() SF_REQUIRES(serial_);

  // Counter audit: every load or adoption is still resident, purged, or
  // explicitly erased — the E-metric E = (loads - purges) / loads
  // depends on it.
  void check_counters() const SF_REQUIRES(serial_) {
    assert(loads_ + adopted_ == purges_ + erased_ + map_.size());
  }

  // The single-thread-at-a-time capability (see class comment).
  mutable ThreadChecker serial_;

  std::size_t capacity_;
  std::list<BlockId> lru_ SF_GUARDED_BY(serial_);  // front = most recent
  struct Entry {
    GridPtr grid;
    std::list<BlockId>::iterator pos;
  };
  std::unordered_map<BlockId, Entry> map_ SF_GUARDED_BY(serial_);
  // id -> nested pin count
  std::unordered_map<BlockId, int> pins_ SF_GUARDED_BY(serial_);
  std::uint64_t loads_ SF_GUARDED_BY(serial_) = 0;
  std::uint64_t purges_ SF_GUARDED_BY(serial_) = 0;
  // Explicit erase(), not counted as purge.
  std::uint64_t erased_ SF_GUARDED_BY(serial_) = 0;
  // Warm-start inserts (cross-query sharing).
  std::uint64_t adopted_ SF_GUARDED_BY(serial_) = 0;
  std::uint64_t hits_ SF_GUARDED_BY(serial_) = 0;
  std::uint64_t misses_ SF_GUARDED_BY(serial_) = 0;
};

// Cross-query block residency, carried between runs by the streamline
// service: at run end each rank's resident blocks (with their grids and
// LRU order) are captured here; at the next run start they are adopted
// back into the fresh per-rank caches, so overlapping queries hit each
// other's blocks instead of re-reading them from disk.  Epochs run
// sequentially, so the pool needs no locking — the ThreadChecker
// capability documents and enforces the single-context contract the
// same way BlockCache's does.
class SharedBlockPool {
 public:
  // Replace `rank`'s captured residency with the cache's current one.
  void capture(int rank, const BlockCache& cache);

  // Forget `rank`'s captured blocks (the rank crashed; its memory died).
  void drop(int rank);

  // Captured blocks for `rank`, MRU first (empty if none captured).
  const std::vector<std::pair<BlockId, GridPtr>>& blocks(int rank) const;

  std::size_t total_blocks() const;

 private:
  mutable ThreadChecker serial_;
  std::vector<std::vector<std::pair<BlockId, GridPtr>>> ranks_
      SF_GUARDED_BY(serial_);
  static const std::vector<std::pair<BlockId, GridPtr>> kEmpty;
};

}  // namespace sf
