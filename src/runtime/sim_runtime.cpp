#include "runtime/sim_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "io/checkpoint_io.hpp"

namespace sf {

// Per-rank state + the RankContext implementation handed to the program.
class SimRuntime::Context final : public RankContext {
 public:
  Context(SimRuntime* runtime, SimEngine* engine, SharedDisk* disk,
          Network* network, int rank)
      : runtime_(runtime),
        engine_(engine),
        disk_(disk),
        network_(network),
        rank_(rank),
        cache_(runtime->config_.cache_blocks) {}

  // --- RankContext -----------------------------------------------------

  int rank() const override { return rank_; }
  int num_ranks() const override { return runtime_->config_.num_ranks; }
  double now() const override { return engine_->now(); }

  const BlockDecomposition& decomposition() const override {
    return *runtime_->decomp_;
  }
  const Tracer& tracer() const override { return runtime_->tracer_; }
  const MachineModel& model() const override {
    return runtime_->config_.model;
  }

  void send(int to, Message msg) override {
    msg.from = rank_;
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_send(rank_, to, msg, engine_->now()));
    const std::size_t bytes =
        message_bytes(msg, runtime_->config_.carry_geometry);
    metrics.comm_time += network_->endpoint_cost(bytes);
    metrics.messages_sent += 1;
    metrics.bytes_sent += bytes;
    if (!std::holds_alternative<ParticleBatch>(msg.payload)) {
      metrics.control_messages_sent += 1;
    }
    const SimTime arrive = network_->delivery_time(engine_->now(), bytes);
    if (runtime_->fault_) {
      runtime_->fault_send(rank_, to, arrive, bytes, std::move(msg));
      return;
    }
    Context* dest = runtime_->contexts_[static_cast<std::size_t>(to)].get();
    engine_->schedule_at(arrive, [dest, bytes, m = std::move(msg)]() mutable {
      dest->metrics.comm_time += dest->network_->endpoint_cost(bytes);
      dest->metrics.bytes_received += bytes;
      SF_INVARIANT_HOOK(dest->runtime_->checker_,
                        on_deliver(dest->rank_, m, dest->engine_->now()));
      dest->program->on_message(*dest, std::move(m));
      dest->runtime_->refresh_finished(dest->rank_);
    });
  }

  void request_block(BlockId id) override {
    if (cache_.contains(id)) {
      // Hit: re-insert touches LRU; notify at the current instant.
      engine_->schedule_at(engine_->now(), [this, id] {
        if (dead()) return;
        program->on_block_loaded(*this, id);
        runtime_->refresh_finished(rank_);
      });
      return;
    }
    if (pending_.count(id) != 0) return;  // coalesce duplicate requests
    // Async staging: a prefetched block is promoted into the cache at
    // the moment of demand — this is when the load "happens" for LRU
    // order and E-metric purposes, so the accounting stays identical to
    // the sync path (and the stall is zero).  Both branches are
    // unreachable with async I/O off.
    auto st = staged_.find(id);
    if (st != staged_.end()) {
      ++metrics.prefetch_hits;
      GridPtr grid = std::move(st->second);
      staged_.erase(st);
      staged_order_.erase(
          std::remove(staged_order_.begin(), staged_order_.end(), id),
          staged_order_.end());
      SF_INVARIANT_HOOK(runtime_->checker_,
                        on_prefetch_claimed(rank_, id, engine_->now()));
      cache_.insert(id, std::move(grid));
      SF_INVARIANT_HOOK(
          runtime_->checker_,
          on_block_insert(rank_, id, cache_.resident(), engine_->now()));
      sync_cache_counters();
      engine_->schedule_at(engine_->now(), [this, id] {
        if (dead()) return;
        program->on_block_loaded(*this, id);
        runtime_->refresh_finished(rank_);
      });
      return;
    }
    if (prefetch_inflight_.count(id) != 0) {
      // Demand overtook an in-flight prefetch: piggyback on its read.
      // The completion finishes this request; the rank only stalls for
      // the remaining read time (a partial overlap still beats a cold
      // read).
      pending_.insert(id);
      demand_since_[id] = engine_->now();
      return;
    }
    pending_.insert(id);
    start_read(id, /*attempt=*/0);
  }

  void prefetch_block(BlockId id) override {
    const AsyncIoConfig& aio = runtime_->config_.async_io;
    if (!aio.enabled) return;
    if (cache_.contains(id) || pending_.count(id) != 0 ||
        staged_.count(id) != 0 || prefetch_inflight_.count(id) != 0) {
      return;
    }
    if (prefetch_inflight_.size() >=
        static_cast<std::size_t>(std::max(1, aio.prefetch_depth))) {
      return;  // depth-limited; dropping a hint is always legal
    }
    prefetch_inflight_.insert(id);
    ++metrics.prefetches_issued;
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_prefetch_issued(rank_, id, engine_->now()));
    start_prefetch_read(id, /*attempt=*/0);
  }

  int prefetch_capacity() const override {
    const AsyncIoConfig& aio = runtime_->config_.async_io;
    return aio.enabled ? std::max(1, aio.prefetch_depth) : 0;
  }

  void pin_block(BlockId id) override {
    cache_.pin(id);
    SF_INVARIANT_HOOK(runtime_->checker_, on_block_pin(rank_, id));
  }

  void unpin_block(BlockId id) override {
    cache_.unpin(id);  // may run the deferred eviction
    sync_cache_counters();
    SF_INVARIANT_HOOK(
        runtime_->checker_,
        on_block_unpin(rank_, id, cache_.resident(), engine_->now()));
  }

  bool block_resident(BlockId id) const override {
    return cache_.contains(id);
  }
  bool block_pending(BlockId id) const override {
    return pending_.count(id) != 0;
  }

  std::vector<BlockId> resident_blocks() const override {
    return cache_.resident();
  }

  const StructuredGrid* block(BlockId id) override {
    const StructuredGrid* grid = cache_.find(id);
    if (grid != nullptr) {
      // find() moved the block to the front of the LRU; mirror it.
      SF_INVARIANT_HOOK(runtime_->checker_, on_block_touch(rank_, id));
    }
    return grid;
  }

  void begin_compute(double seconds, std::uint64_t steps) override {
    if (busy_) {
      throw std::logic_error("begin_compute while busy (program bug)");
    }
    busy_ = true;
    if (runtime_->fault_) {
      // Gray failure: a slowed rank's bursts take longer in modeled time,
      // but the steps (and hence the trajectories) are untouched.
      seconds *= runtime_->fault_->slow_factor[static_cast<std::size_t>(rank_)];
    }
    metrics.compute_time += seconds;
    metrics.steps += steps;
    metrics.bursts += 1;
    if (runtime_->timeline_ && seconds > 0.0) {
      runtime_->timeline_->add(rank_, TimelineSpan::Kind::kCompute,
                               engine_->now(), engine_->now() + seconds);
    }
    engine_->schedule_after(seconds, [this] {
      if (dead()) return;
      busy_ = false;
      program->on_compute_done(*this);
      runtime_->refresh_finished(rank_);
    });
  }

  bool busy() const override { return busy_; }

  void charge_particle_memory(std::int64_t delta_bytes) override {
    particle_bytes_ += delta_bytes;
    if (particle_bytes_ < 0) particle_bytes_ = 0;  // paranoia
    metrics.peak_particle_bytes =
        std::max(metrics.peak_particle_bytes,
                 static_cast<std::size_t>(particle_bytes_));
    if (static_cast<std::size_t>(particle_bytes_) >
        runtime_->config_.model.particle_memory_bytes) {
      metrics.oom = true;
      throw SimAbort("rank " + std::to_string(rank_) +
                         " exceeded its particle memory budget",
                     rank_);
    }
  }

  // --- fault hooks -------------------------------------------------------

  void set_timer(double seconds) override {
    engine_->schedule_after(seconds, [this] {
      if (dead()) return;
      program->on_timer(*this);
      runtime_->refresh_finished(rank_);
    });
  }

  bool is_alive(int target) const override {
    return runtime_->rank_alive(target);
  }

  bool log_termination(const Particle& p) override {
    const bool first =
        !runtime_->fault_ ||
        runtime_->fault_->ledger.on_terminated(rank_, p);
    if (!first) {
      // Speculation accounting: the losing copy of a speculated streamline
      // re-ran every step past its fork point.  (Crash-recovery re-runs
      // are not in the map and stay uncounted here, as before.)
      FaultState& fs = *runtime_->fault_;
      auto it = fs.speculated_at_steps.find(p.id);
      if (it != fs.speculated_at_steps.end() && p.steps >= it->second) {
        fs.stats.wasted_duplicate_steps += p.steps - it->second;
      }
    }
    SF_INVARIANT_HOOK(runtime_->checker_,
                      on_terminated(rank_, p, first, engine_->now()));
    if (first) runtime_->note_query_termination(p);
    return first;
  }

  RecoveredWork recover_rank(int dead_rank) override {
    return runtime_->recover_for(rank_, dead_rank);
  }

  std::vector<Particle> speculate_rank(int straggler) override {
    return runtime_->speculate_for(rank_, straggler);
  }

  // --- runtime-side ------------------------------------------------------

  void sync_cache_counters() {
    metrics.blocks_loaded = cache_.loads();
    metrics.blocks_purged = cache_.purges();
    metrics.cache_hits = cache_.hits();
    metrics.cache_misses = cache_.misses();
    metrics.blocks_adopted = cache_.adopted();
  }

  const BlockCache& cache() const { return cache_; }

  // Warm start from a previous run's captured residency (cross-query
  // sharing).  `blocks` is MRU first; adopting LRU-last -> MRU-first
  // rebuilds the same recency order, and each adoption replays through
  // the checker's LRU model so coherence checks keep holding.
  void adopt_shared(const std::vector<std::pair<BlockId, GridPtr>>& blocks) {
    const std::size_t n = std::min(blocks.size(), cache_.capacity());
    for (std::size_t i = n; i-- > 0;) {
      cache_.adopt(blocks[i].first, blocks[i].second);
      SF_INVARIANT_HOOK(
          runtime_->checker_,
          on_block_insert(rank_, blocks[i].first, cache_.resident(),
                          engine_->now()));
    }
    sync_cache_counters();
  }

  // Discard whatever the prefetch pipeline still holds (staged grids a
  // demand never claimed, in-flight reads of an aborted run) so every
  // issued prefetch is resolved before the run ends.  Called by run()
  // for live ranks only: a crashed rank's obligations were already
  // cleared by the checker's on_crash.
  void resolve_outstanding_prefetches() {
    for (const BlockId id : staged_order_) {
      ++metrics.prefetches_wasted;
      SF_INVARIANT_HOOK(runtime_->checker_,
                        on_prefetch_cancelled(rank_, id, engine_->now()));
    }
    staged_.clear();
    staged_order_.clear();
    for (const BlockId id : prefetch_inflight_) {
      ++metrics.prefetches_wasted;
      SF_INVARIANT_HOOK(runtime_->checker_,
                        on_prefetch_cancelled(rank_, id, engine_->now()));
    }
    prefetch_inflight_.clear();
  }

  std::unique_ptr<RankProgram> program;
  RankMetrics metrics;

 private:
  bool dead() const { return !runtime_->rank_alive(rank_); }

  void start_read(BlockId id, int attempt) {
    const std::size_t bytes = runtime_->source_->block_bytes(id);
    SimTime done = disk_->submit_read(engine_->now(), bytes);
    bool faulted = false;
    if (runtime_->fault_) {
      FaultState& fs = *runtime_->fault_;
      if (fs.injector.draw_disk_fault()) {
        faulted = true;
        disk_->note_faulted_read();
        ++fs.stats.disk_faults;
      } else if (fs.injector.draw_disk_corrupt()) {
        // Silent payload bit-flip.  The checksum catches it at completion
        // (never delivered to the tracer), so the attempt behaves exactly
        // like a failed read and walks the same capped-backoff ladder.
        faulted = true;
        disk_->note_faulted_read();
        ++fs.stats.corruptions_injected;
        ++fs.stats.corruptions_detected;
      } else if (fs.injector.draw_disk_stall()) {
        done += runtime_->config_.fault.disk_stall_seconds;
        ++fs.stats.disk_stalls;
        ++metrics.disk_stall_events;
      } else if (fs.injector.draw_disk_slow()) {
        // Gray disk: the read completes intact but takes longer (latency
        // inflation without failure).
        done = engine_->now() +
               (done - engine_->now()) * runtime_->config_.fault.disk_slow_factor;
        ++fs.stats.disk_slow_events;
        ++metrics.disk_stall_events;
      }
    }
    metrics.io_time += done - engine_->now();
    metrics.stall_time += done - engine_->now();
    metrics.bytes_read += bytes;
    if (runtime_->timeline_) {
      runtime_->timeline_->add(rank_, TimelineSpan::Kind::kIo,
                               engine_->now(), done);
    }
    if (faulted) {
      // The channel did the work but the payload is garbage: back off and
      // retry, and give up on the rank after disk_max_retries attempts.
      engine_->schedule_at(done, [this, id, attempt] {
        if (dead()) return;
        if (attempt + 1 > runtime_->config_.fault.disk_max_retries) {
          runtime_->crash_rank(rank_, /*from_oom=*/false);
          return;
        }
        const double backoff =
            std::min(runtime_->config_.fault.disk_retry_backoff *
                         std::ldexp(1.0, attempt),
                     runtime_->config_.fault.disk_backoff_cap);
        engine_->schedule_after(backoff, [this, id, attempt] {
          if (dead()) return;
          ++metrics.disk_retries;
          start_read(id, attempt + 1);
        });
      });
      return;
    }
    engine_->schedule_at(done, [this, id] {
      if (dead()) return;
      // The real payload is fetched at completion time (memoized inside
      // the source, so host memory holds each block once).
      cache_.insert(id, runtime_->source_->load(id));
      SF_INVARIANT_HOOK(
          runtime_->checker_,
          on_block_insert(rank_, id, cache_.resident(), engine_->now()));
      pending_.erase(id);
      sync_cache_counters();
      program->on_block_loaded(*this, id);
      runtime_->refresh_finished(rank_);
    });
  }

  // A background read modeling ThreadRuntime's loader pool: it burns
  // disk channel time but charges the rank no io/stall time — the rank
  // keeps computing.  Faults and stalls draw from the same injector
  // streams with the same capped-backoff retry ladder as demand reads;
  // a pure prefetch whose retries are exhausted is abandoned (a later
  // demand re-reads cold), but one a demand already piggybacked on
  // crashes the rank exactly like a failed demand load.
  void start_prefetch_read(BlockId id, int attempt) {
    const std::size_t bytes = runtime_->source_->block_bytes(id);
    SimTime done = disk_->submit_read(engine_->now(), bytes);
    bool faulted = false;
    if (runtime_->fault_) {
      FaultState& fs = *runtime_->fault_;
      if (fs.injector.draw_disk_fault()) {
        faulted = true;
        disk_->note_faulted_read();
        ++fs.stats.disk_faults;
      } else if (fs.injector.draw_disk_corrupt()) {
        faulted = true;
        disk_->note_faulted_read();
        ++fs.stats.corruptions_injected;
        ++fs.stats.corruptions_detected;
      } else if (fs.injector.draw_disk_stall()) {
        done += runtime_->config_.fault.disk_stall_seconds;
        ++fs.stats.disk_stalls;
        ++metrics.disk_stall_events;
      } else if (fs.injector.draw_disk_slow()) {
        done = engine_->now() +
               (done - engine_->now()) * runtime_->config_.fault.disk_slow_factor;
        ++fs.stats.disk_slow_events;
        ++metrics.disk_stall_events;
      }
    }
    metrics.bytes_read += bytes;
    if (faulted) {
      engine_->schedule_at(done, [this, id, attempt] {
        if (dead()) return;
        if (attempt + 1 > runtime_->config_.fault.disk_max_retries) {
          if (pending_.count(id) != 0) {
            runtime_->crash_rank(rank_, /*from_oom=*/false);
            return;
          }
          prefetch_inflight_.erase(id);
          ++metrics.prefetches_wasted;
          SF_INVARIANT_HOOK(
              runtime_->checker_,
              on_prefetch_cancelled(rank_, id, engine_->now()));
          return;
        }
        const double backoff =
            std::min(runtime_->config_.fault.disk_retry_backoff *
                         std::ldexp(1.0, attempt),
                     runtime_->config_.fault.disk_backoff_cap);
        engine_->schedule_after(backoff, [this, id, attempt] {
          if (dead()) return;
          ++metrics.disk_retries;
          start_prefetch_read(id, attempt + 1);
        });
      });
      return;
    }
    engine_->schedule_at(done, [this, id] {
      if (dead()) return;
      prefetch_inflight_.erase(id);
      if (pending_.count(id) != 0) {
        // A demand piggybacked on this read: complete it now.  The rank
        // stalled from the demand until this instant.
        ++metrics.prefetch_hits;
        const double waited = engine_->now() - demand_since_[id];
        demand_since_.erase(id);
        metrics.io_time += waited;
        metrics.stall_time += waited;
        SF_INVARIANT_HOOK(runtime_->checker_,
                          on_prefetch_claimed(rank_, id, engine_->now()));
        cache_.insert(id, runtime_->source_->load(id));
        SF_INVARIANT_HOOK(
            runtime_->checker_,
            on_block_insert(rank_, id, cache_.resident(), engine_->now()));
        pending_.erase(id);
        sync_cache_counters();
        program->on_block_loaded(*this, id);
        runtime_->refresh_finished(rank_);
        return;
      }
      // Stage it: the grid waits outside the cache until a demand
      // claims it.  The staging area is bounded; the oldest staged
      // grid is discarded (a wasted prefetch).
      staged_[id] = runtime_->source_->load(id);
      staged_order_.push_back(id);
      SF_INVARIANT_HOOK(runtime_->checker_,
                        on_prefetch_staged(rank_, id, engine_->now()));
      const std::size_t cap = std::max<std::size_t>(
          1, runtime_->config_.async_io.staging_blocks);
      while (staged_.size() > cap) {
        const BlockId oldest = staged_order_.front();
        staged_order_.erase(staged_order_.begin());
        staged_.erase(oldest);
        ++metrics.prefetches_wasted;
        SF_INVARIANT_HOOK(
            runtime_->checker_,
            on_prefetch_cancelled(rank_, oldest, engine_->now()));
      }
    });
  }

  SimRuntime* runtime_;
  SimEngine* engine_;
  SharedDisk* disk_;
  Network* network_;
  int rank_;
  BlockCache cache_;
  std::set<BlockId> pending_;
  // Async-I/O state (all empty when config_.async_io.enabled is false).
  std::set<BlockId> prefetch_inflight_;
  std::map<BlockId, GridPtr> staged_;      // arrived, not yet claimed
  std::vector<BlockId> staged_order_;      // oldest first (bounded)
  std::map<BlockId, double> demand_since_;  // piggybacked demand times
  bool busy_ = false;
  std::int64_t particle_bytes_ = 0;
};

SimRuntime::SimRuntime(const SimRuntimeConfig& config,
                       const BlockDecomposition* decomp,
                       const BlockSource* source,
                       const IntegratorParams& iparams,
                       const TraceLimits& limits)
    : config_(config),
      decomp_(decomp),
      source_(source),
      tracer_(decomp, iparams, limits) {
  if (config_.num_ranks < 1) {
    throw std::invalid_argument("SimRuntime: num_ranks >= 1");
  }
  if (decomp_ == nullptr || source_ == nullptr) {
    throw std::invalid_argument("SimRuntime: null decomposition or source");
  }
}

SimRuntime::~SimRuntime() = default;

bool SimRuntime::rank_alive(int rank) const {
  return !fault_ || fault_->alive[static_cast<std::size_t>(rank)] != 0;
}

bool SimRuntime::all_live_finished() const {
  const bool fast = live_unfinished_ == 0;
#ifndef NDEBUG
  // Equivalence audit: the incremental counter must always agree with
  // the full-rank sweep it replaced.  Debug-only — the sweep is the
  // O(R)-per-event cost the counter exists to eliminate.
  bool sweep = true;
  for (std::size_t r = 0; r < contexts_.size(); ++r) {
    if (!rank_alive(static_cast<int>(r))) continue;
    if (!contexts_[r]->program->finished()) {
      sweep = false;
      break;
    }
  }
  assert(sweep == fast &&
         "live-unfinished counter diverged from the full-rank sweep");
#endif
  return fast;
}

void SimRuntime::refresh_finished(int rank) {
  if (!rank_alive(rank)) return;  // dead ranks settled at kill time
  const char now_finished =
      contexts_[static_cast<std::size_t>(rank)]->program->finished() ? 1 : 0;
  char& cached = finished_[static_cast<std::size_t>(rank)];
  if (cached == now_finished) return;
  // finished -> unfinished happens too: recovery hand-offs re-open ranks.
  live_unfinished_ += now_finished ? -1 : 1;
  cached = now_finished;
}

void SimRuntime::kill_rank(int rank) {
  SF_INVARIANT_HOOK(checker_, on_crash(rank, engine_->now()));
  // Settle the cached finished() bit while the rank still counts as
  // live: an OOM abort unwinds past the callback-site refresh, so the
  // bit can be stale here.
  refresh_finished(rank);
  live_ranks_.erase(rank);
  if (finished_[static_cast<std::size_t>(rank)] == 0) --live_unfinished_;
  FaultState& fs = *fault_;
  fs.alive[static_cast<std::size_t>(rank)] = 0;
  fs.crash_time[static_cast<std::size_t>(rank)] = engine_->now();
  fs.stats.crash_records.push_back(
      {.rank = rank, .crash_time = engine_->now()});
  Context* c = contexts_[static_cast<std::size_t>(rank)].get();
  c->metrics.crashed = true;
  // Diagnostic: integration work that dies with the rank and will be
  // re-done from the last safe state.
  std::vector<Particle> snap;
  c->program->snapshot_particles(snap);
  for (const Particle& p : snap) {
    if (is_terminal(p.status)) continue;
    const std::uint32_t safe = fs.ledger.steps_of(p.id);
    if (p.steps > safe) fs.stats.steps_redone += p.steps - safe;
  }
}

void SimRuntime::crash_rank(int rank, bool from_oom) {
  if (!fault_ || !rank_alive(rank)) return;
  kill_rank(rank);
  if (from_oom) {
    ++fault_->stats.oom_crashes;
  } else {
    ++fault_->stats.crashes_injected;
  }
  if (config_.fault.detector == FaultConfig::Detector::kRuntime) {
    engine_->schedule_after(config_.fault.failure_detect_seconds,
                            [this, rank] { runtime_recover(rank); });
  }
  // kProgram: the hybrid master notices the missed heartbeats itself.
}

CrashRecord* SimRuntime::crash_record_of(int rank) {
  auto& records = fault_->stats.crash_records;
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->rank == rank) return &*it;
  }
  return nullptr;
}

void SimRuntime::note_detected_recovered(int dead_rank) {
  if (CrashRecord* rec = crash_record_of(dead_rank)) {
    if (rec->detect_time < 0.0) rec->detect_time = engine_->now();
    if (rec->recover_time < 0.0) rec->recover_time = engine_->now();
  }
}

void SimRuntime::runtime_recover(int dead_rank) {
  // Successor: the next live rank after the dead one in cyclic order —
  // one ordered-set lookup, not a scan of every rank.
  if (live_ranks_.empty()) return;  // everything died; the run quiesces
  auto next = live_ranks_.upper_bound(dead_rank);
  const int succ = next != live_ranks_.end() ? *next : *live_ranks_.begin();

  FaultState& fs = *fault_;
  RecoveredWork work = fs.ledger.recover(dead_rank, succ);
  ++fs.stats.crashes_survived;
  fs.stats.particles_recovered += work.active.size();
  fs.stats.time_to_recovery +=
      engine_->now() - fs.crash_time[static_cast<std::size_t>(dead_rank)];
  note_detected_recovered(dead_rank);

  // Termination accounting first: if handing the particles over aborts
  // the run (successor OOM), the global count must already be settled.
  // The ledger's per-rank recount goes to the lowest live rank — the
  // acting counter.  When the dead rank *was* the counter, this is the
  // wake-up that seeds the successor's high-water board; max-merging
  // makes it a no-op in every other case beyond the dead rank's entry.
  {
    const int counter = *live_ranks_.begin();
    Context* c = contexts_[static_cast<std::size_t>(counter)].get();
    Message m;
    m.from = dead_rank;
    m.payload = TerminationCount{fs.ledger.logged_totals()};
    c->program->on_message(*c, std::move(m));
    refresh_finished(counter);
  }
  if (!work.active.empty()) {
    fs.ledger.on_send(work.active, succ);
    // Direct hand-off past the message plane: the checker sees it as a
    // recovery re-owning, not a send/deliver pair.
    SF_INVARIANT_HOOK(
        checker_, on_recover(dead_rank, succ, work.active, engine_->now()));
    Context* s = contexts_[static_cast<std::size_t>(succ)].get();
    Message m;
    m.from = dead_rank;
    m.payload = ParticleBatch{kInvalidBlock, std::move(work.active)};
    s->program->on_message(*s, std::move(m));
    refresh_finished(succ);
  }
}

RecoveredWork SimRuntime::recover_for(int recoverer, int dead_rank) {
  if (!fault_) return {};
  FaultState& fs = *fault_;
  if (rank_alive(dead_rank)) {
    // False positive: the detector declared a live rank dead.  Kill it
    // for real so the system state matches the detector's view (the
    // declared-dead rank must not keep computing and double-report).
    kill_rank(dead_rank);
    ++fs.stats.crashes_injected;
  }
  RecoveredWork work = fs.ledger.recover(dead_rank, recoverer);
  ++fs.stats.crashes_survived;
  fs.stats.particles_recovered += work.active.size();
  fs.stats.time_to_recovery +=
      engine_->now() - fs.crash_time[static_cast<std::size_t>(dead_rank)];
  note_detected_recovered(dead_rank);
  SF_INVARIANT_HOOK(
      checker_,
      on_recover(dead_rank, recoverer, work.active, engine_->now()));
  return work;
}

std::vector<Particle> SimRuntime::speculate_for(int speculator,
                                                int straggler) {
  if (!fault_) return {};
  if (straggler == speculator || !rank_alive(straggler)) return {};
  FaultState& fs = *fault_;
  // One speculative re-issue per straggler: the straggler keeps whatever
  // it already holds, so re-copying would only multiply duplicate work.
  if (!fs.speculated.insert(straggler).second) return {};
  std::vector<Particle> copies = fs.ledger.peek_owned(straggler);
  ++fs.stats.stragglers_flagged;
  auto it = fs.slowdown_time.find(straggler);
  if (it != fs.slowdown_time.end()) {
    // Detection latency only counts flags that answer a real injected
    // slowdown; a false positive has no onset to measure from.
    fs.stats.straggler_detect_latency += engine_->now() - it->second;
    fs.slowdown_time.erase(it);
  }
  fs.stats.particles_speculated += copies.size();
  for (const Particle& p : copies) {
    fs.speculated_at_steps.emplace(p.id, p.steps);
  }
  SF_INVARIANT_HOOK(
      checker_,
      on_speculate(straggler, speculator, copies, engine_->now()));
  return copies;
}

void SimRuntime::fault_send(int from, int to, SimTime arrive,
                            std::size_t bytes, Message msg) {
  FaultState& fs = *fault_;

  // Snoop the payload into the ledger at send time: once a particle is on
  // the wire its state is considered safely logged at the sender.
  bool carries_particles = false;
  if (const auto* b = std::get_if<ParticleBatch>(&msg.payload)) {
    fs.ledger.on_send(b->particles, to);
    carries_particles = !b->particles.empty();
  } else if (const auto* c = std::get_if<Command>(&msg.payload)) {
    if (!c->particles.empty()) {
      fs.ledger.on_send(c->particles, to);
      carries_particles = true;
    }
  } else if (const auto* t = std::get_if<SeedTransfer>(&msg.payload)) {
    fs.ledger.on_send(t->seeds, to);
    carries_particles = !t->seeds.empty();
  } else if (const auto* u = std::get_if<Undeliverable>(&msg.payload)) {
    fs.ledger.on_send(u->particles, to);
    carries_particles = !u->particles.empty();
  }

  // Particle-bearing messages keep the drop -> Undeliverable-bounce
  // semantics: the payload must not be duplicated, so the sender is told
  // and re-routes.  Everything else is control traffic and goes through
  // the sequenced at-least-once transport below — same lossy link, but
  // retransmit-repaired and receiver-deduped.
  if (!carries_particles) {
    control_send(from, to, arrive, bytes, std::move(msg));
    return;
  }

  if (fs.injector.draw_message_drop()) {
    network_->note_dropped(bytes);
    ++fs.stats.messages_dropped;
    engine_->schedule_at(arrive, [this, to, m = std::move(msg)]() mutable {
      bounce_undeliverable(to, std::move(m));
    });
    return;
  }

  engine_->schedule_at(arrive, [this, to, bytes, m = std::move(msg)]() mutable {
    deliver(to, bytes, std::move(m));
  });
}

void SimRuntime::control_send(int from, int to, SimTime arrive,
                              std::size_t bytes, Message msg) {
  FaultState& fs = *fault_;
  const LinkKey link{from, to};
  const std::uint32_t seq = ++fs.ctrl_next_seq[link];
  msg.ctrl_seq = seq;
  PendingControl& pc = fs.ctrl_pending[link][seq];
  pc.bytes = bytes;
  pc.msg = std::move(msg);
  pc.rto = config_.fault.control_rto;
  transmit_control(from, to, seq, arrive);
}

void SimRuntime::transmit_control(int from, int to, std::uint32_t seq,
                                  SimTime arrive) {
  FaultState& fs = *fault_;
  const LinkKey link{from, to};
  auto lit = fs.ctrl_pending.find(link);
  if (lit == fs.ctrl_pending.end()) return;
  auto pit = lit->second.find(seq);
  if (pit == lit->second.end()) return;  // acked meanwhile
  PendingControl& pc = pit->second;

  if (fs.injector.draw_message_drop()) {
    network_->note_dropped(pc.bytes);
    ++fs.stats.messages_dropped;
  } else {
    engine_->schedule_at(
        arrive, [this, from, to, bytes = pc.bytes, m = pc.msg]() mutable {
          if (!fault_) return;
          deliver_control(from, to, bytes, std::move(m));
        });
  }

  // Arm the retransmit check whether or not this attempt was dropped; an
  // arriving ack clears the pending entry and turns the check into a
  // no-op.
  const double rto = pc.rto;
  engine_->schedule_at(arrive + rto, [this, from, to, seq] {
    if (!fault_) return;
    auto lit2 = fault_->ctrl_pending.find(LinkKey{from, to});
    if (lit2 == fault_->ctrl_pending.end()) return;
    auto pit2 = lit2->second.find(seq);
    if (pit2 == lit2->second.end()) return;  // acked
    // Abandon when the peer is dead (failover recovers the content), the
    // sender itself died, or the run is over — this is what lets a lossy
    // run quiesce instead of retransmitting forever.
    if (!rank_alive(to) || !rank_alive(from) || all_live_finished() ||
        pit2->second.attempts >= config_.fault.control_max_retries) {
      lit2->second.erase(pit2);
      return;
    }
    PendingControl& p = pit2->second;
    ++p.attempts;
    p.rto = std::min(p.rto * 2.0, config_.fault.control_rto_cap);
    ++fault_->stats.control_retransmits;
    Context* sender = contexts_[static_cast<std::size_t>(from)].get();
    sender->metrics.comm_time += network_->endpoint_cost(p.bytes);
    sender->metrics.messages_sent += 1;
    sender->metrics.bytes_sent += p.bytes;
    sender->metrics.control_messages_sent += 1;
    transmit_control(from, to, seq,
                     network_->delivery_time(engine_->now(), p.bytes));
  });
}

void SimRuntime::deliver_control(int from, int to, std::size_t bytes,
                                 Message msg) {
  FaultState& fs = *fault_;
  if (!rank_alive(to)) return;  // sender's retransmit check will give up
  // Ack every arrival, duplicates included: the ack for the first copy
  // may itself have been dropped, and re-acking is what stops the
  // retransmit stream.
  send_control_ack(to, from, msg.ctrl_seq);
  if (all_live_finished()) return;  // late retransmit after the run ended
  DedupWindow& win = fs.ctrl_dedup[LinkKey{from, to}];
  const std::uint32_t seq = msg.ctrl_seq;
  if (seq <= win.low_water || win.seen.count(seq) != 0) {
    ++fs.stats.control_duplicates;
    return;
  }
  win.seen.insert(seq);
  while (win.seen.count(win.low_water + 1) != 0) {
    win.seen.erase(win.low_water + 1);
    ++win.low_water;
  }
  SF_INVARIANT_HOOK(checker_,
                    on_dedup_window(from, to, win.low_water, engine_->now()));
  Context* dest = contexts_[static_cast<std::size_t>(to)].get();
  dest->metrics.comm_time += network_->endpoint_cost(bytes);
  dest->metrics.bytes_received += bytes;
  SF_INVARIANT_HOOK(checker_, on_deliver(to, msg, engine_->now()));
  dest->program->on_message(*dest, std::move(msg));
  refresh_finished(to);
}

void SimRuntime::send_control_ack(int acker, int sender, std::uint32_t seq) {
  FaultState& fs = *fault_;
  Message ack;
  ack.from = acker;
  ack.payload = ControlAck{seq};
  const std::size_t bytes = message_bytes(ack, config_.carry_geometry);
  Context* a = contexts_[static_cast<std::size_t>(acker)].get();
  a->metrics.comm_time += network_->endpoint_cost(bytes);
  a->metrics.messages_sent += 1;
  a->metrics.bytes_sent += bytes;
  a->metrics.control_messages_sent += 1;
  // Acks draw from the same lossy link but are never retransmitted: a
  // lost ack just provokes one more (deduped) retransmit of the data.
  if (fs.injector.draw_message_drop()) {
    network_->note_dropped(bytes);
    ++fs.stats.messages_dropped;
    return;
  }
  const SimTime arrive = network_->delivery_time(engine_->now(), bytes);
  engine_->schedule_at(arrive, [this, acker, sender, seq] {
    if (!fault_) return;
    auto lit = fault_->ctrl_pending.find(LinkKey{sender, acker});
    if (lit == fault_->ctrl_pending.end()) return;
    lit->second.erase(seq);
  });
}

void SimRuntime::deliver(int to, std::size_t bytes, Message msg) {
  if (!rank_alive(to)) {
    bounce_undeliverable(to, std::move(msg));
    return;
  }
  Context* dest = contexts_[static_cast<std::size_t>(to)].get();
  dest->metrics.comm_time += network_->endpoint_cost(bytes);
  dest->metrics.bytes_received += bytes;
  SF_INVARIANT_HOOK(checker_, on_deliver(to, msg, engine_->now()));
  dest->program->on_message(*dest, std::move(msg));
  refresh_finished(to);
}

void SimRuntime::bounce_undeliverable(int intended, Message msg) {
  // Extract the particle payload; particle-free messages just vanish —
  // control traffic reaching a dead rank is abandoned by the sender's
  // retransmit check, and anything the dead rank knew is reconstructed
  // through the failover recount.
  std::vector<Particle> particles;
  BlockId block = kInvalidBlock;
  if (auto* b = std::get_if<ParticleBatch>(&msg.payload)) {
    particles = std::move(b->particles);
    block = b->block;
  } else if (auto* c = std::get_if<Command>(&msg.payload)) {
    particles = std::move(c->particles);
    block = c->block;
  } else if (auto* t = std::get_if<SeedTransfer>(&msg.payload)) {
    particles = std::move(t->seeds);
  } else if (auto* u = std::get_if<Undeliverable>(&msg.payload)) {
    particles = std::move(u->particles);
    block = u->block;
  }
  if (particles.empty()) return;

  // Return to sender; if the sender itself is gone, to the lowest live
  // rank — every program treats an Undeliverable it did not originate as
  // adopted work.
  int back = msg.from;
  if (back < 0 || !rank_alive(back)) {
    if (live_ranks_.empty()) return;  // everything died
    back = *live_ranks_.begin();
  }

  fault_->ledger.on_send(particles, back);
  Message nm;
  nm.from = intended;
  nm.payload = Undeliverable{intended, block, std::move(particles)};
  const std::size_t nbytes = message_bytes(nm, config_.carry_geometry);
  const SimTime arrive = network_->delivery_time(engine_->now(), nbytes);
  engine_->schedule_at(arrive,
                       [this, back, nbytes, m = std::move(nm)]() mutable {
                         deliver(back, nbytes, std::move(m));
                       });
}

void SimRuntime::checkpoint_tick() {
  FaultState& fs = *fault_;
  // Refresh the ledger with every live rank's in-memory particles so the
  // snapshot reflects "now", not just the last communication.  The
  // scratch vector is a member: its capacity survives across ticks.
  std::vector<Particle>& snap = snapshot_scratch_;
  for (const int r : live_ranks_) {
    snap.clear();
    contexts_[static_cast<std::size_t>(r)]->program->snapshot_particles(snap);
    fs.ledger.refresh(r, snap);
  }

  auto ck = std::make_shared<Checkpoint>(
      fs.ledger.to_checkpoint(engine_->now(), config_.num_ranks));
  ck->algorithm = config_.fault.algorithm_tag;
  ck->dataset_hash = config_.fault.dataset_hash;
  ck->ranks.reserve(static_cast<std::size_t>(config_.num_ranks));
  for (int r = 0; r < config_.num_ranks; ++r) {
    CheckpointRankState rs;
    rs.rank = r;
    rs.alive = rank_alive(r);
    if (rs.alive) {
      rs.resident =
          contexts_[static_cast<std::size_t>(r)]->resident_blocks();
    }
    ck->ranks.push_back(std::move(rs));
  }

  // Checkpoint cost model: the ledger snapshot is written through the
  // shared filesystem asynchronously (no rank blocks on it), but the
  // write burns I/O service time that is attributed evenly to the live
  // ranks and reported as overhead.
  const double cost = config_.model.io_service_seconds(checkpoint_bytes(*ck));
  if (!live_ranks_.empty()) {
    const double share = cost / static_cast<double>(live_ranks_.size());
    for (const int r : live_ranks_) {
      contexts_[static_cast<std::size_t>(r)]->metrics.checkpoint_seconds +=
          share;
    }
  }
  fs.stats.checkpoint_overhead += cost;
  ++fs.stats.checkpoints_taken;
  fs.last_checkpoint = ck;
  // A checkpoint is a global consistency point: every seeded streamline
  // must still be done or reachable.
  SF_INVARIANT_HOOK(checker_, audit(engine_->now()));
  if (!config_.fault.checkpoint_path.empty()) {
    write_checkpoint(config_.fault.checkpoint_path, *ck);
  }
}

void SimRuntime::schedule_checkpoint(double at) {
  engine_->schedule_at(at, [this, at] {
    if (all_live_finished()) return;  // run is over; let the queue drain
    checkpoint_tick();
    schedule_checkpoint(at + config_.fault.checkpoint_interval);
  });
}

void SimRuntime::note_query_termination(const Particle& p) {
  auto it = query_remaining_.find(p.query);
  // Unknown queries (particles terminated by a test program that never
  // snapshot them) and already-complete queries are not obligations.
  if (it == query_remaining_.end() || it->second == 0) return;
  if (--it->second == 0) {
    completions_.push_back(QueryCompletion{
        p.query, engine_->now(), query_total_[p.query]});
    SF_INVARIANT_HOOK(checker_, on_query_done(p.query, engine_->now()));
  }
}

RunMetrics SimRuntime::run(const ProgramFactory& factory) {
  SimEngine engine;
  // Pre-size the event heap: steady state carries a handful of in-flight
  // events per rank (messages, disk completions, ticks); reserving here
  // means schedule() never reallocates mid-run until an unusual burst.
  engine.reserve_events(64 + 16 * static_cast<std::size_t>(config_.num_ranks));
  SharedDisk disk(config_.model, config_.model.io_channels);
  Network network(config_.model);
  engine_ = &engine;
  network_ = &network;
  timeline_ = config_.record_timeline
                  ? std::make_shared<Timeline>(config_.num_ranks)
                  : nullptr;

  contexts_.clear();
  contexts_.reserve(static_cast<std::size_t>(config_.num_ranks));
  for (int r = 0; r < config_.num_ranks; ++r) {
    auto ctx = std::make_unique<Context>(this, &engine, &disk, &network, r);
    ctx->program = factory(r, config_.num_ranks);
    contexts_.push_back(std::move(ctx));
  }

  // Seed the O(1) quiescence state: all ranks live, cached finished()
  // bits from the freshly built programs.
  finished_.assign(static_cast<std::size_t>(config_.num_ranks), 0);
  live_unfinished_ = 0;
  live_ranks_.clear();
  for (int r = 0; r < config_.num_ranks; ++r) {
    live_ranks_.insert(live_ranks_.end(), r);
    const char done = contexts_[static_cast<std::size_t>(r)]->program->finished()
                          ? 1
                          : 0;
    finished_[static_cast<std::size_t>(r)] = done;
    if (done == 0) ++live_unfinished_;
  }

  checker_ = make_invariant_checker(
      {.protocol = config_.checked_protocol,
       .num_ranks = config_.num_ranks,
       .num_masters = config_.checker_num_masters,
       .num_roots = config_.checker_num_roots,
       .num_blocks = decomp_->num_blocks(),
       .cache_blocks = config_.cache_blocks,
       .fault_mode = config_.fault.enabled,
       .track_queries = true});
  if (checker_) {
    std::vector<Particle> snap;
    for (int r = 0; r < config_.num_ranks; ++r) {
      snap.clear();
      contexts_[static_cast<std::size_t>(r)]->program->snapshot_particles(
          snap);
      checker_->on_seeded(r, snap);
    }
    checker_->on_presettled(config_.fault.presettled);
  }

  // Cross-query warm start: adopt the pool's captured residency before
  // any program runs, so the first demands of an overlapping query hit.
  if (config_.shared_blocks != nullptr) {
    for (int r = 0; r < config_.num_ranks; ++r) {
      contexts_[static_cast<std::size_t>(r)]->adopt_shared(
          config_.shared_blocks->blocks(r));
    }
  }

  // Per-query completion accounting, from the same seeding snapshots the
  // checker and ledger see (deduped by particle id: at t = 0 each live
  // streamline has exactly one owner).
  query_remaining_.clear();
  query_total_.clear();
  completions_.clear();
  {
    std::vector<Particle> snap;
    std::set<std::uint32_t> seen;
    for (int r = 0; r < config_.num_ranks; ++r) {
      snap.clear();
      contexts_[static_cast<std::size_t>(r)]->program->snapshot_particles(
          snap);
      for (const Particle& p : snap) {
        if (is_terminal(p.status)) continue;
        if (!seen.insert(p.id).second) continue;
        ++query_remaining_[p.query];
      }
    }
    query_total_ = query_remaining_;
    // One completion record per query, known up front.
    completions_.reserve(query_total_.size());
  }

  // Query cancellation plumbing: the tracer consults the cancel set at
  // every advance; scheduled cancel events populate it mid-run.
  cancel_set_.clear();
  tracer_.set_cancel_set(&cancel_set_);
  for (const QueryCancelAt& c : config_.cancels) {
    engine.schedule_at(c.at, [this, q = c.query] { cancel_set_.cancel(q); });
  }

  fault_.reset();
  if (config_.fault.enabled) {
    fault_ = std::make_unique<FaultState>(config_.fault, config_.num_ranks);
    fault_->alive.assign(static_cast<std::size_t>(config_.num_ranks), 1);
    fault_->crash_time.assign(static_cast<std::size_t>(config_.num_ranks),
                              0.0);
    fault_->slow_factor.assign(static_cast<std::size_t>(config_.num_ranks),
                               1.0);
    fault_->immune.insert(config_.fault.immune_ranks.begin(),
                          config_.fault.immune_ranks.end());
    // Seed the ledger: already-terminal particles (rejected seeds, a
    // restart's done list), then every rank's initial work.
    fault_->ledger.settle(config_.fault.presettled);
    std::vector<Particle> snap;
    for (int r = 0; r < config_.num_ranks; ++r) {
      snap.clear();
      contexts_[static_cast<std::size_t>(r)]->program->snapshot_particles(
          snap);
      fault_->ledger.init_owned(r, snap);
    }
  }

  // Kick every program off at t = 0 (in rank order, deterministically).
  for (auto& ctx : contexts_) {
    engine.schedule_at(0.0, [this, c = ctx.get()] {
      c->program->start(*c);
      refresh_finished(c->rank());
    });
  }

  if (fault_) {
    for (const CrashEvent& ev : fault_->injector.crash_schedule()) {
      engine.schedule_at(ev.time, [this, rank = ev.rank] {
        if (all_live_finished()) return;  // run already over
        crash_rank(rank, /*from_oom=*/false);
      });
    }
    for (const SlowdownEvent& ev : fault_->injector.slowdown_schedule()) {
      engine.schedule_at(ev.time, [this, ev] {
        if (all_live_finished()) return;  // run already over
        if (!rank_alive(ev.rank)) return;
        fault_->slow_factor[static_cast<std::size_t>(ev.rank)] = ev.factor;
        fault_->slowdown_time.emplace(ev.rank, engine_->now());
        ++fault_->stats.slowdowns_injected;
      });
    }
    if (config_.fault.checkpoint_interval > 0.0) {
      schedule_checkpoint(config_.fault.checkpoint_interval);
    }
  }

  RunMetrics run_metrics;
  run_metrics.num_ranks = config_.num_ranks;
  // Quiescence time of a cancel-bearing fault-free run: a deadline cancel
  // scheduled past completion still fires (and advances engine.now()), but
  // must not stretch the reported wall clock — same trailing-event rule
  // the fault plane applies through done_time.
  double quiesce_time = -1.0;
  for (;;) {
    try {
      if (!engine.step()) break;
    } catch (const SimAbort& abort) {
      // A rank blew its memory budget.  Under fault injection any rank's
      // OOM is a recoverable crash (coordinators included, since
      // failover); only an explicitly immune rank still fails the run.
      const int r = abort.rank;
      if (fault_ && r >= 0 && rank_alive(r) &&
          fault_->immune.count(r) == 0) {
        crash_rank(r, /*from_oom=*/true);
        continue;
      }
      // The abort unwound past a callback-site refresh, and the thrower
      // may not name its rank: resync every cached bit once (O(R) on a
      // failed run only) so post-run accounting stays consistent.
      for (int rr = 0; rr < config_.num_ranks; ++rr) refresh_finished(rr);
      run_metrics.failed_oom = true;
      run_metrics.failed_fault = fault_ != nullptr;
      run_metrics.abort_reason = abort.what();
      break;
    }
    if (fault_) {
      if (all_live_finished()) {
        if (fault_->done_time < 0.0) fault_->done_time = engine.now();
      } else {
        fault_->done_time = -1.0;  // a recovery re-opened some rank
      }
    } else if (!config_.cancels.empty()) {
      if (all_live_finished()) {
        if (quiesce_time < 0.0) quiesce_time = engine.now();
      } else {
        quiesce_time = -1.0;  // a late arrival re-opened some rank
      }
    }
  }
  run_metrics.wall_clock = (fault_ && fault_->done_time >= 0.0)
                               ? fault_->done_time
                               : (quiesce_time >= 0.0 ? quiesce_time
                                                      : engine.now());

  // With no immune ranks a crash (or OOM) cascade can kill every rank;
  // the vacuous "all live ranks finished" must then read as a failed
  // fault run, not a completed one — there is nobody left to finish the
  // remaining streamlines.
  const bool any_alive = fault_ == nullptr || !live_ranks_.empty();
  if (fault_) {
    if (!any_alive) {
      run_metrics.failed_fault = true;
      if (fault_->stats.oom_crashes > 0) run_metrics.failed_oom = true;
      run_metrics.abort_reason = "fault injection: every rank crashed";
    }
  }

  // Post-run quiescence reads the maintained counter; in Debug builds
  // all_live_finished() re-derives it with the full sweep and asserts
  // they agree.
  const bool all_finished = all_live_finished();
  run_metrics.ranks.reserve(contexts_.size());
  for (std::size_t r = 0; r < contexts_.size(); ++r) {
    Context* ctx = contexts_[r].get();
    if (rank_alive(static_cast<int>(r))) {
      ctx->resolve_outstanding_prefetches();
    }
    ctx->sync_cache_counters();
    run_metrics.ranks.push_back(ctx->metrics);
    if (!fault_ && !run_metrics.failed_oom) {
      ctx->program->collect_particles(run_metrics.particles);
    }
  }
  if (!fault_ && run_metrics.failed_oom) {
    // Partial results: gather whatever each rank had terminated by the
    // abort so a failed run is still diagnosable.
    for (auto& ctx : contexts_) {
      ctx->program->collect_particles(run_metrics.particles);
    }
  }
  if (fault_) {
    // The ledger is the authoritative result set: it survives crashes
    // and de-duplicates recovery re-runs.
    run_metrics.particles = fault_->ledger.terminal_particles();
    run_metrics.fault = fault_->stats;
    run_metrics.last_checkpoint = fault_->last_checkpoint;
  }
  if (!run_metrics.failed_oom && !all_finished) {
    // The event queue drained but some live program still expects work: a
    // deadlock in the algorithm (or an unrecovered fault).  Surface it.
    throw std::logic_error(
        "SimRuntime: simulation quiesced before all ranks finished");
  }
  SF_INVARIANT_HOOK(
      checker_,
      on_run_end(!run_metrics.failed_oom && any_alive, engine.now()));
  checker_.reset();

  // Capture cross-query residency for the next epoch; a dead rank's
  // memory died with it.
  if (config_.shared_blocks != nullptr) {
    for (int r = 0; r < config_.num_ranks; ++r) {
      if (rank_alive(r)) {
        config_.shared_blocks->capture(
            r, contexts_[static_cast<std::size_t>(r)]->cache());
      } else {
        config_.shared_blocks->drop(r);
      }
    }
  }

  std::sort(run_metrics.particles.begin(), run_metrics.particles.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
  std::sort(completions_.begin(), completions_.end(),
            [](const QueryCompletion& a, const QueryCompletion& b) {
              return a.query < b.query;
            });
  run_metrics.query_completions = std::move(completions_);
  completions_.clear();
  run_metrics.timeline = std::move(timeline_);
  contexts_.clear();
  engine_ = nullptr;
  network_ = nullptr;
  return run_metrics;
}

}  // namespace sf
