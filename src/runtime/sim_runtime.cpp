#include "runtime/sim_runtime.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace sf {

// Per-rank state + the RankContext implementation handed to the program.
class SimRuntime::Context final : public RankContext {
 public:
  Context(SimRuntime* runtime, SimEngine* engine, SharedDisk* disk,
          Network* network, int rank)
      : runtime_(runtime),
        engine_(engine),
        disk_(disk),
        network_(network),
        rank_(rank),
        cache_(runtime->config_.cache_blocks) {}

  // --- RankContext -----------------------------------------------------

  int rank() const override { return rank_; }
  int num_ranks() const override { return runtime_->config_.num_ranks; }
  double now() const override { return engine_->now(); }

  const BlockDecomposition& decomposition() const override {
    return *runtime_->decomp_;
  }
  const Tracer& tracer() const override { return runtime_->tracer_; }
  const MachineModel& model() const override {
    return runtime_->config_.model;
  }

  void send(int to, Message msg) override {
    msg.from = rank_;
    const std::size_t bytes =
        message_bytes(msg, runtime_->config_.carry_geometry);
    metrics.comm_time += network_->endpoint_cost(bytes);
    metrics.messages_sent += 1;
    metrics.bytes_sent += bytes;
    const SimTime arrive = network_->delivery_time(engine_->now(), bytes);
    Context* dest = runtime_->contexts_[static_cast<std::size_t>(to)].get();
    engine_->schedule_at(arrive, [dest, bytes, m = std::move(msg)]() mutable {
      dest->metrics.comm_time += dest->network_->endpoint_cost(bytes);
      dest->program->on_message(*dest, std::move(m));
    });
  }

  void request_block(BlockId id) override {
    if (cache_.contains(id)) {
      // Hit: re-insert touches LRU; notify at the current instant.
      engine_->schedule_at(engine_->now(), [this, id] {
        program->on_block_loaded(*this, id);
      });
      return;
    }
    if (pending_.count(id) != 0) return;  // coalesce duplicate requests
    pending_.insert(id);

    const std::size_t bytes = runtime_->source_->block_bytes(id);
    const SimTime done = disk_->submit_read(engine_->now(), bytes);
    metrics.io_time += done - engine_->now();
    metrics.bytes_read += bytes;
    if (runtime_->timeline_) {
      runtime_->timeline_->add(rank_, TimelineSpan::Kind::kIo,
                               engine_->now(), done);
    }
    engine_->schedule_at(done, [this, id] {
      // The real payload is fetched at completion time (memoized inside
      // the source, so host memory holds each block once).
      cache_.insert(id, runtime_->source_->load(id));
      pending_.erase(id);
      sync_cache_counters();
      program->on_block_loaded(*this, id);
    });
  }

  bool block_resident(BlockId id) const override {
    return cache_.contains(id);
  }
  bool block_pending(BlockId id) const override {
    return pending_.count(id) != 0;
  }

  std::vector<BlockId> resident_blocks() const override {
    return cache_.resident();
  }

  const StructuredGrid* block(BlockId id) override {
    return cache_.find(id);
  }

  void begin_compute(double seconds, std::uint64_t steps) override {
    if (busy_) {
      throw std::logic_error("begin_compute while busy (program bug)");
    }
    busy_ = true;
    metrics.compute_time += seconds;
    metrics.steps += steps;
    metrics.bursts += 1;
    if (runtime_->timeline_ && seconds > 0.0) {
      runtime_->timeline_->add(rank_, TimelineSpan::Kind::kCompute,
                               engine_->now(), engine_->now() + seconds);
    }
    engine_->schedule_after(seconds, [this] {
      busy_ = false;
      program->on_compute_done(*this);
    });
  }

  bool busy() const override { return busy_; }

  void charge_particle_memory(std::int64_t delta_bytes) override {
    particle_bytes_ += delta_bytes;
    if (particle_bytes_ < 0) particle_bytes_ = 0;  // paranoia
    metrics.peak_particle_bytes =
        std::max(metrics.peak_particle_bytes,
                 static_cast<std::size_t>(particle_bytes_));
    if (static_cast<std::size_t>(particle_bytes_) >
        runtime_->config_.model.particle_memory_bytes) {
      metrics.oom = true;
      throw SimAbort("rank " + std::to_string(rank_) +
                     " exceeded its particle memory budget");
    }
  }

  // --- runtime-side ------------------------------------------------------

  void sync_cache_counters() {
    metrics.blocks_loaded = cache_.loads();
    metrics.blocks_purged = cache_.purges();
  }

  std::unique_ptr<RankProgram> program;
  RankMetrics metrics;

 private:
  SimRuntime* runtime_;
  SimEngine* engine_;
  SharedDisk* disk_;
  Network* network_;
  int rank_;
  BlockCache cache_;
  std::set<BlockId> pending_;
  bool busy_ = false;
  std::int64_t particle_bytes_ = 0;
};

SimRuntime::SimRuntime(const SimRuntimeConfig& config,
                       const BlockDecomposition* decomp,
                       const BlockSource* source,
                       const IntegratorParams& iparams,
                       const TraceLimits& limits)
    : config_(config),
      decomp_(decomp),
      source_(source),
      tracer_(decomp, iparams, limits) {
  if (config_.num_ranks < 1) {
    throw std::invalid_argument("SimRuntime: num_ranks >= 1");
  }
  if (decomp_ == nullptr || source_ == nullptr) {
    throw std::invalid_argument("SimRuntime: null decomposition or source");
  }
}

SimRuntime::~SimRuntime() = default;

RunMetrics SimRuntime::run(const ProgramFactory& factory) {
  SimEngine engine;
  SharedDisk disk(config_.model, config_.model.io_channels);
  Network network(config_.model);
  timeline_ = config_.record_timeline
                  ? std::make_shared<Timeline>(config_.num_ranks)
                  : nullptr;

  contexts_.clear();
  contexts_.reserve(static_cast<std::size_t>(config_.num_ranks));
  for (int r = 0; r < config_.num_ranks; ++r) {
    auto ctx = std::make_unique<Context>(this, &engine, &disk, &network, r);
    ctx->program = factory(r, config_.num_ranks);
    contexts_.push_back(std::move(ctx));
  }

  // Kick every program off at t = 0 (in rank order, deterministically).
  for (auto& ctx : contexts_) {
    engine.schedule_at(0.0, [c = ctx.get()] { c->program->start(*c); });
  }

  RunMetrics run_metrics;
  run_metrics.num_ranks = config_.num_ranks;
  try {
    run_metrics.wall_clock = engine.run();
  } catch (const SimAbort&) {
    run_metrics.failed_oom = true;
    run_metrics.wall_clock = engine.now();
  }

  bool all_finished = true;
  for (auto& ctx : contexts_) {
    ctx->sync_cache_counters();
    run_metrics.ranks.push_back(ctx->metrics);
    if (!ctx->program->finished()) all_finished = false;
    if (!run_metrics.failed_oom) {
      ctx->program->collect_particles(run_metrics.particles);
    }
  }
  if (!run_metrics.failed_oom && !all_finished) {
    // The event queue drained but some program still expects work: a
    // deadlock in the algorithm.  Surface it loudly.
    throw std::logic_error(
        "SimRuntime: simulation quiesced before all ranks finished");
  }

  std::sort(run_metrics.particles.begin(), run_metrics.particles.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
  run_metrics.timeline = std::move(timeline_);
  contexts_.clear();
  return run_metrics;
}

}  // namespace sf
