#include "check/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "algorithms/routing.hpp"

namespace sf {

const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kConservation: return "conservation";
    case ViolationKind::kDoubleAssign: return "double-assign";
    case ViolationKind::kPhantomDelivery: return "phantom-delivery";
    case ViolationKind::kPhantomTermination: return "phantom-termination";
    case ViolationKind::kDuplicateTermination:
      return "duplicate-termination";
    case ViolationKind::kLostParticle: return "lost-particle";
    case ViolationKind::kCacheOverflow: return "cache-overflow";
    case ViolationKind::kCacheMismatch: return "cache-mismatch";
    case ViolationKind::kIllegalMessage: return "illegal-message";
    case ViolationKind::kPrematureTermination:
      return "premature-termination";
    case ViolationKind::kDoubleTermination: return "double-termination";
    case ViolationKind::kSendAfterFinish: return "send-after-finish";
    case ViolationKind::kPinnedPurge: return "pinned-purge";
    case ViolationKind::kPrefetchState: return "prefetch-state";
    case ViolationKind::kUnresolvedPrefetch: return "unresolved-prefetch";
    case ViolationKind::kDedupRegression: return "dedup-regression";
    case ViolationKind::kQueryDoneDouble: return "query-done-double";
    case ViolationKind::kQueryDonePremature: return "query-done-premature";
    case ViolationKind::kQueryDoneMissing: return "query-done-missing";
  }
  return "unknown";
}

namespace {

std::string format_diag(const InvariantDiagnostic& d) {
  std::ostringstream os;
  os << "invariant violation [" << to_string(d.kind) << "] rank " << d.rank
     << " t=" << d.when;
  if (d.particle != InvariantDiagnostic::kNoParticle) {
    os << " particle " << d.particle;
  }
  if (d.block != kInvalidBlock) os << " block " << d.block;
  if (!d.detail.empty()) os << ": " << d.detail;
  return os.str();
}

const char* payload_name(const Message& msg) {
  struct Namer {
    const char* operator()(const ParticleBatch&) { return "ParticleBatch"; }
    const char* operator()(const StatusUpdate&) { return "StatusUpdate"; }
    const char* operator()(const Command&) { return "Command"; }
    const char* operator()(const TerminationCount&) {
      return "TerminationCount";
    }
    const char* operator()(const DoneSignal&) { return "DoneSignal"; }
    const char* operator()(const SeedRequest&) { return "SeedRequest"; }
    const char* operator()(const SeedRelay&) { return "SeedRelay"; }
    const char* operator()(const SeedTransfer&) { return "SeedTransfer"; }
    const char* operator()(const Undeliverable&) { return "Undeliverable"; }
    const char* operator()(const MasterBeacon&) { return "MasterBeacon"; }
    const char* operator()(const ControlAck&) { return "ControlAck"; }
    const char* operator()(const QuerySubmit&) { return "QuerySubmit"; }
    const char* operator()(const QueryCancel&) { return "QueryCancel"; }
    const char* operator()(const QueryResult&) { return "QueryResult"; }
    const char* operator()(const QueryDone&) { return "QueryDone"; }
  };
  return std::visit(Namer{}, msg.payload);
}

// Is the message a terminate broadcast (DoneSignal or Command::kTerminate)?
bool is_finish_broadcast(const Message& msg) {
  if (std::holds_alternative<DoneSignal>(msg.payload)) return true;
  const auto* cmd = std::get_if<Command>(&msg.payload);
  return cmd != nullptr && cmd->type == Command::Type::kTerminate;
}

}  // namespace

InvariantViolation::InvariantViolation(InvariantDiagnostic diag)
    : std::logic_error(format_diag(diag)), diag_(std::move(diag)) {}

InvariantChecker::InvariantChecker(const CheckerConfig& config)
    : config_(config) {
  ranks_.resize(static_cast<std::size_t>(std::max(0, config_.num_ranks)));
}

void InvariantChecker::fail(InvariantDiagnostic diag) const {
  throw InvariantViolation(std::move(diag));
}

const std::vector<Particle>* InvariantChecker::payload_particles(
    const Message& msg) {
  if (const auto* b = std::get_if<ParticleBatch>(&msg.payload)) {
    return &b->particles;
  }
  if (const auto* c = std::get_if<Command>(&msg.payload)) {
    return c->particles.empty() ? nullptr : &c->particles;
  }
  if (const auto* t = std::get_if<SeedTransfer>(&msg.payload)) {
    return t->seeds.empty() ? nullptr : &t->seeds;
  }
  if (const auto* u = std::get_if<Undeliverable>(&msg.payload)) {
    return &u->particles;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void InvariantChecker::on_seeded(int rank,
                                 const std::vector<Particle>& particles) {
  MutexLock lock(mutex_);
  for (const Particle& p : particles) {
    const bool fresh = particles_.count(p.id) == 0;
    ParticleState& s = particles_[p.id];
    if (is_terminal(p.status)) {
      if (!s.done) {
        s.done = true;
        ++done_count_;
      }
      continue;
    }
    if (fresh) {
      // Per-query account: only live seeds count, and only once per
      // streamline (restart re-seeding of a known particle is not a new
      // obligation).
      s.query = p.query;
      ++queries_[p.query].seeded;
    }
    s.holders[rank] += 1;
    ++live_copies_;
  }
}

void InvariantChecker::on_presettled(const std::vector<Particle>& particles) {
  MutexLock lock(mutex_);
  for (const Particle& p : particles) {
    ParticleState& s = particles_[p.id];
    if (!s.done) {
      s.done = true;
      ++done_count_;
    }
  }
}

void InvariantChecker::on_run_end(bool completed, double now) {
  MutexLock lock(mutex_);
  audit_locked(now);
  if (!completed) return;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankState& rs = ranks_[r];
    if (rs.crashed || rs.prefetches.empty()) continue;
    fail({.kind = ViolationKind::kUnresolvedPrefetch,
          .rank = static_cast<int>(r),
          .when = now,
          .block = rs.prefetches.begin()->first,
          .detail = std::to_string(rs.prefetches.size()) +
                    " prefetch(es) neither claimed, discarded nor "
                    "cancelled by run end"});
  }
  for (const auto& [id, s] : particles_) {
    if (!s.done) {
      fail({.kind = ViolationKind::kLostParticle,
            .rank = -1,
            .when = now,
            .particle = id,
            .detail = "run completed but streamline never terminated"});
    }
  }
  if (config_.track_queries) {
    for (const auto& [query, q] : queries_) {
      if (q.seeded > 0 && !q.fired) {
        fail({.kind = ViolationKind::kQueryDoneMissing,
              .rank = -1,
              .when = now,
              .detail = "run completed but query " + std::to_string(query) +
                        " never fired query-done (" +
                        std::to_string(q.done) + "/" +
                        std::to_string(q.seeded) + " streamlines done)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Conservation transitions
// ---------------------------------------------------------------------------

void InvariantChecker::take_from_holder(int rank, const Particle& p,
                                        double now, ViolationKind kind) {
  ParticleState& s = particles_[p.id];
  auto it = s.holders.find(rank);
  if (it == s.holders.end() || it->second <= 0) {
    std::ostringstream os;
    os << "rank does not hold the particle (holders:";
    for (const auto& [r, n] : s.holders) os << ' ' << r << 'x' << n;
    os << ", in-flight " << s.in_flight << ", done "
       << (s.done ? "yes" : "no") << ")";
    fail({.kind = kind,
          .rank = rank,
          .when = now,
          .particle = p.id,
          .detail = os.str()});
  }
  if (--it->second == 0) s.holders.erase(it);
  --live_copies_;
}

void InvariantChecker::on_send(int from, int to, const Message& msg,
                               double now) {
  MutexLock lock(mutex_);
  check_protocol(from, to, msg, now);
  if (is_finish_broadcast(msg)) note_finish_broadcast(from, to, now);

  const std::vector<Particle>* particles = payload_particles(msg);
  if (particles == nullptr) return;
  if (from >= 0 && from < config_.num_ranks &&
      ranks_[static_cast<std::size_t>(from)].told_to_finish) {
    fail({.kind = ViolationKind::kSendAfterFinish,
          .rank = from,
          .when = now,
          .particle = particles->empty()
                          ? InvariantDiagnostic::kNoParticle
                          : particles->front().id,
          .detail = std::string(payload_name(msg)) +
                    " sent after terminate was received"});
  }
  for (const Particle& p : *particles) {
    // The sender must hold the copy it ships: shipping a particle twice
    // (or one that lives on another rank) is the double-assign bug class.
    take_from_holder(from, p, now, ViolationKind::kDoubleAssign);
    ParticleState& s = particles_[p.id];
    s.in_flight += 1;
    ++live_copies_;
  }
}

void InvariantChecker::on_deliver(int to, const Message& msg, double now) {
  MutexLock lock(mutex_);
  if (is_finish_broadcast(msg) && to >= 0 && to < config_.num_ranks) {
    RankState& r = ranks_[static_cast<std::size_t>(to)];
    // Fault mode tolerates duplicate terminates: under coordinator
    // failover a late re-home can be answered with a kTerminate the
    // sweep already sent, and receivers are idempotent by contract.
    if (config_.protocol != CheckedProtocol::kNone && r.told_to_finish &&
        !config_.fault_mode) {
      fail({.kind = ViolationKind::kDoubleTermination,
            .rank = to,
            .when = now,
            .detail = "second terminate broadcast delivered to this rank"});
    }
    r.told_to_finish = true;
  }

  const std::vector<Particle>* particles = payload_particles(msg);
  if (particles == nullptr) return;
  for (const Particle& p : *particles) {
    ParticleState& s = particles_[p.id];
    if (s.in_flight <= 0) {
      fail({.kind = ViolationKind::kPhantomDelivery,
            .rank = to,
            .when = now,
            .particle = p.id,
            .detail = "delivery without a matching in-flight copy"});
    }
    s.in_flight -= 1;
    s.holders[to] += 1;
    // live_copies_ unchanged: one wire copy became one resident copy.
    if (!config_.fault_mode && !s.done &&
        s.in_flight + static_cast<int>(s.holders.size()) != 1) {
      fail({.kind = ViolationKind::kConservation,
            .rank = to,
            .when = now,
            .particle = p.id,
            .detail = "particle resident in more than one place"});
    }
  }
}

void InvariantChecker::on_terminated(int rank, const Particle& p,
                                     bool first_time, double now) {
  MutexLock lock(mutex_);
  take_from_holder(rank, p, now, ViolationKind::kPhantomTermination);
  ParticleState& s = particles_[p.id];
  if (first_time) {
    if (s.done) {
      fail({.kind = ViolationKind::kDuplicateTermination,
            .rank = rank,
            .when = now,
            .particle = p.id,
            .detail = "first-time credit for an already-done streamline"});
    }
    s.done = true;
    ++done_count_;
    ++queries_[s.query].done;
  } else {
    if (!config_.fault_mode) {
      fail({.kind = ViolationKind::kDuplicateTermination,
            .rank = rank,
            .when = now,
            .particle = p.id,
            .detail = "duplicate termination outside fault mode"});
    }
    if (!s.done) {
      fail({.kind = ViolationKind::kConservation,
            .rank = rank,
            .when = now,
            .particle = p.id,
            .detail = "ledger says duplicate but checker never saw the "
                      "first termination"});
    }
  }
}

// ---------------------------------------------------------------------------
// Query plane
// ---------------------------------------------------------------------------

void InvariantChecker::on_query_done(std::uint32_t query, double now) {
  MutexLock lock(mutex_);
  QueryAccount& q = queries_[query];
  if (q.fired) {
    fail({.kind = ViolationKind::kQueryDoneDouble,
          .rank = -1,
          .when = now,
          .detail = "query " + std::to_string(query) +
                    " fired query-done twice"});
  }
  if (q.done < q.seeded) {
    fail({.kind = ViolationKind::kQueryDonePremature,
          .rank = -1,
          .when = now,
          .detail = "query " + std::to_string(query) + " fired with " +
                    std::to_string(q.seeded - q.done) +
                    " streamlines undone"});
  }
  q.fired = true;
}

// ---------------------------------------------------------------------------
// Fault plane
// ---------------------------------------------------------------------------

void InvariantChecker::on_crash(int rank, double now) {
  (void)now;
  MutexLock lock(mutex_);
  if (rank < 0 || rank >= config_.num_ranks) return;
  ranks_[static_cast<std::size_t>(rank)].crashed = true;
  // The rank's resident replicas die with it; they stay reachable through
  // the ledger until a recovery re-owns them.
  for (auto& [id, s] : particles_) {
    auto it = s.holders.find(rank);
    if (it == s.holders.end()) continue;
    s.recoverable += it->second;
    live_copies_ -= static_cast<std::size_t>(it->second);
    s.holders.erase(it);
  }
  // Its cache contents are gone too, and its prefetch obligations die
  // with it (an in-flight completion for a dead rank is discarded).
  ranks_[static_cast<std::size_t>(rank)].lru.clear();
  ranks_[static_cast<std::size_t>(rank)].pins.clear();
  ranks_[static_cast<std::size_t>(rank)].prefetches.clear();
}

void InvariantChecker::on_recover(int dead_rank, int new_owner,
                                  const std::vector<Particle>& particles,
                                  double now) {
  MutexLock lock(mutex_);
  for (const Particle& p : particles) {
    ParticleState& s = particles_[p.id];
    if (s.done) {
      fail({.kind = ViolationKind::kConservation,
            .rank = dead_rank,
            .when = now,
            .particle = p.id,
            .detail = "recovery re-activated a terminated streamline"});
    }
    if (s.recoverable > 0) s.recoverable -= 1;
    s.holders[new_owner] += 1;
    ++live_copies_;
  }
}

void InvariantChecker::on_speculate(int straggler, int speculator,
                                    const std::vector<Particle>& particles,
                                    double now) {
  MutexLock lock(mutex_);
  for (const Particle& p : particles) {
    ParticleState& s = particles_[p.id];
    if (s.done) {
      fail({.kind = ViolationKind::kConservation,
            .rank = speculator,
            .when = now,
            .particle = p.id,
            .detail = "speculation re-issued a terminated streamline"});
    }
    // The ledger transfers ownership at wire time, so a "straggler-owned"
    // entry may still be on the wire toward it — both are legal sources.
    if (s.holders.count(straggler) == 0 && s.in_flight == 0) {
      fail({.kind = ViolationKind::kConservation,
            .rank = speculator,
            .when = now,
            .particle = p.id,
            .detail = "speculation copied a streamline the straggler (rank " +
                      std::to_string(straggler) + ") does not hold"});
    }
    // The straggler keeps its copy and keeps racing; the speculator gets
    // an extra legal replica (fault-mode multi-residency), so its later
    // re-assign send is not a double-assign.
    s.holders[speculator] += 1;
    ++live_copies_;
  }
}

// ---------------------------------------------------------------------------
// Reliable control transport
// ---------------------------------------------------------------------------

void InvariantChecker::on_dedup_window(int from, int to,
                                       std::uint32_t low_water, double now) {
  MutexLock lock(mutex_);
  auto [it, inserted] = dedup_low_.try_emplace({from, to}, low_water);
  if (!inserted) {
    if (low_water < it->second) {
      fail({.kind = ViolationKind::kDedupRegression,
            .rank = to,
            .when = now,
            .detail = "control link " + std::to_string(from) + " -> " +
                      std::to_string(to) + " low-water moved back from " +
                      std::to_string(it->second) + " to " +
                      std::to_string(low_water)});
    }
    it->second = low_water;
  }
}

// ---------------------------------------------------------------------------
// Block-cache coherence
// ---------------------------------------------------------------------------

void InvariantChecker::replay_eviction_and_compare(
    int rank, RankState& rs, BlockId id, const std::vector<BlockId>& actual,
    double now, const char* what) {
  // Same policy as BlockCache::evict_to_capacity: walk from the LRU end
  // skipping pinned ids; stop when at capacity or only pins remain.
  auto victim = rs.lru.rbegin();
  while (rs.lru.size() > config_.cache_blocks && victim != rs.lru.rend()) {
    if (rs.pins.count(*victim) != 0) {
      ++victim;
      continue;
    }
    victim = std::make_reverse_iterator(rs.lru.erase(std::next(victim).base()));
  }

  if (actual.size() > config_.cache_blocks) {
    // Overflow is legal only while every modelled entry is pinned (the
    // all-pinned corner of BlockCache::insert); anything else means the
    // cache kept an evictable block past capacity.
    bool all_pinned = true;
    for (BlockId b : rs.lru) {
      if (rs.pins.count(b) == 0) {
        all_pinned = false;
        break;
      }
    }
    if (rs.lru.size() <= config_.cache_blocks || !all_pinned) {
      fail({.kind = ViolationKind::kCacheOverflow,
            .rank = rank,
            .when = now,
            .block = id,
            .detail = std::string(what) + ": resident " +
                      std::to_string(actual.size()) + " blocks, capacity " +
                      std::to_string(config_.cache_blocks)});
    }
  }
  for (const auto& [b, n] : rs.pins) {
    const bool modelled =
        std::find(rs.lru.begin(), rs.lru.end(), b) != rs.lru.end();
    const bool present =
        std::find(actual.begin(), actual.end(), b) != actual.end();
    if (modelled && !present) {
      fail({.kind = ViolationKind::kPinnedPurge,
            .rank = rank,
            .when = now,
            .block = b,
            .detail = std::string(what) + ": pinned block left the cache"});
    }
  }
  if (!std::equal(rs.lru.begin(), rs.lru.end(), actual.begin(),
                  actual.end())) {
    std::ostringstream os;
    os << what << ": cache residency diverged from the LRU ledger (ledger:";
    for (BlockId b : rs.lru) os << ' ' << b;
    os << "; cache:";
    for (BlockId b : actual) os << ' ' << b;
    os << ")";
    fail({.kind = ViolationKind::kCacheMismatch,
          .rank = rank,
          .when = now,
          .detail = os.str()});
  }
}

void InvariantChecker::on_block_insert(int rank, BlockId id,
                                       const std::vector<BlockId>& actual,
                                       double now) {
  MutexLock lock(mutex_);
  if (rank < 0 || rank >= config_.num_ranks || config_.cache_blocks == 0) {
    return;
  }
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  auto it = std::find(rs.lru.begin(), rs.lru.end(), id);
  if (it != rs.lru.end()) {
    rs.lru.splice(rs.lru.begin(), rs.lru, it);  // re-insert touches
  } else {
    rs.lru.push_front(id);
  }
  replay_eviction_and_compare(rank, rs, id, actual, now, "insert");
}

void InvariantChecker::on_block_touch(int rank, BlockId id) {
  MutexLock lock(mutex_);
  if (rank < 0 || rank >= config_.num_ranks) return;
  std::list<BlockId>& lru = ranks_[static_cast<std::size_t>(rank)].lru;
  auto it = std::find(lru.begin(), lru.end(), id);
  if (it != lru.end()) lru.splice(lru.begin(), lru, it);
}

void InvariantChecker::on_block_pin(int rank, BlockId id) {
  MutexLock lock(mutex_);
  if (rank < 0 || rank >= config_.num_ranks || config_.cache_blocks == 0) {
    return;
  }
  ++ranks_[static_cast<std::size_t>(rank)].pins[id];
}

void InvariantChecker::on_block_unpin(int rank, BlockId id,
                                      const std::vector<BlockId>& actual,
                                      double now) {
  MutexLock lock(mutex_);
  if (rank < 0 || rank >= config_.num_ranks || config_.cache_blocks == 0) {
    return;
  }
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  auto it = rs.pins.find(id);
  if (it == rs.pins.end()) {
    fail({.kind = ViolationKind::kCacheMismatch,
          .rank = rank,
          .when = now,
          .block = id,
          .detail = "unpin without a matching pin"});
  }
  if (--it->second == 0) rs.pins.erase(it);
  // The unpin may run the cache's deferred eviction; replay it.
  replay_eviction_and_compare(rank, rs, id, actual, now, "unpin");
}

// ---------------------------------------------------------------------------
// Async prefetch state machine
// ---------------------------------------------------------------------------

void InvariantChecker::on_prefetch_issued(int rank, BlockId id, double now) {
  MutexLock lock(mutex_);
  if (rank < 0 || rank >= config_.num_ranks) return;
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  if (rs.prefetches.count(id) != 0) {
    fail({.kind = ViolationKind::kPrefetchState,
          .rank = rank,
          .when = now,
          .block = id,
          .detail = "prefetch issued while one is already outstanding"});
  }
  if (std::find(rs.lru.begin(), rs.lru.end(), id) != rs.lru.end()) {
    fail({.kind = ViolationKind::kPrefetchState,
          .rank = rank,
          .when = now,
          .block = id,
          .detail = "prefetch issued for an already-resident block"});
  }
  rs.prefetches[id] = 'i';
}

void InvariantChecker::on_prefetch_staged(int rank, BlockId id, double now) {
  MutexLock lock(mutex_);
  if (rank < 0 || rank >= config_.num_ranks) return;
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  auto it = rs.prefetches.find(id);
  if (it == rs.prefetches.end() || it->second != 'i') {
    fail({.kind = ViolationKind::kPrefetchState,
          .rank = rank,
          .when = now,
          .block = id,
          .detail = "staged a prefetch that was not in flight"});
  }
  it->second = 's';
}

void InvariantChecker::on_prefetch_claimed(int rank, BlockId id, double now) {
  MutexLock lock(mutex_);
  if (rank < 0 || rank >= config_.num_ranks) return;
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  if (rs.prefetches.erase(id) == 0) {
    fail({.kind = ViolationKind::kPrefetchState,
          .rank = rank,
          .when = now,
          .block = id,
          .detail = "claimed a prefetch that was never issued"});
  }
}

void InvariantChecker::on_prefetch_cancelled(int rank, BlockId id,
                                             double now) {
  MutexLock lock(mutex_);
  if (rank < 0 || rank >= config_.num_ranks) return;
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  if (rs.prefetches.erase(id) == 0) {
    fail({.kind = ViolationKind::kPrefetchState,
          .rank = rank,
          .when = now,
          .block = id,
          .detail = "cancelled a prefetch that was never issued"});
  }
}

// ---------------------------------------------------------------------------
// Protocol legality
// ---------------------------------------------------------------------------

void InvariantChecker::note_finish_broadcast(int from, int to, double now) {
  (void)from;
  if (config_.protocol == CheckedProtocol::kNone) return;
  if (to < 0 || to >= config_.num_ranks) return;
  RankState& r = ranks_[static_cast<std::size_t>(to)];
  if (r.finish_sent && !config_.fault_mode) {
    fail({.kind = ViolationKind::kDoubleTermination,
          .rank = to,
          .when = now,
          .detail = "terminate broadcast sent twice to this rank"});
  }
  r.finish_sent = true;
  // Single-fire AND only at global completion: the checker's own done
  // count must already equal the seeded count.
  if (done_count_ != particles_.size()) {
    fail({.kind = ViolationKind::kPrematureTermination,
          .rank = to,
          .when = now,
          .detail = "terminate broadcast with " +
                    std::to_string(particles_.size() - done_count_) +
                    " streamlines undone"});
  }
}

int InvariantChecker::acting_counter() const {
  const int nm =
      config_.protocol == CheckedProtocol::kHybrid ? config_.num_masters : 0;
  for (int r = 0; r < nm; ++r) {
    if (!ranks_[static_cast<std::size_t>(r)].crashed) return r;
  }
  for (int r = nm; r < config_.num_ranks; ++r) {
    if (!ranks_[static_cast<std::size_t>(r)].crashed) return r;
  }
  return 0;
}

void InvariantChecker::check_protocol(int from, int to, const Message& msg,
                                      double now) {
  const auto illegal = [&](const char* why) {
    fail({.kind = ViolationKind::kIllegalMessage,
          .rank = from,
          .when = now,
          .detail = std::string(payload_name(msg)) + " " +
                    std::to_string(from) + " -> " + std::to_string(to) +
                    ": " + why});
  };

  // Undeliverable frames and control acks are minted by the runtime's
  // reliable-transport model, never by a program.
  if (std::holds_alternative<Undeliverable>(msg.payload)) {
    illegal("only the runtime may emit Undeliverable bounces");
  }
  if (std::holds_alternative<ControlAck>(msg.payload)) {
    illegal("only the runtime transport may emit control acks");
  }
  // Service control-plane kinds live between the service frontend and its
  // clients; no rank program or runtime ever puts one on a rank link.
  if (std::holds_alternative<QuerySubmit>(msg.payload) ||
      std::holds_alternative<QueryCancel>(msg.payload) ||
      std::holds_alternative<QueryResult>(msg.payload) ||
      std::holds_alternative<QueryDone>(msg.payload)) {
    illegal("service control-plane kinds never travel on rank links");
  }

  switch (config_.protocol) {
    case CheckedProtocol::kNone:
      return;

    case CheckedProtocol::kLoadOnDemand:
      // §4.2: pure data parallelism — ranks never communicate.  Even
      // under fault injection the recovery hand-off bypasses the send
      // plane, so any program-issued message is a bug.
      illegal("load-on-demand ranks never send messages");
      return;

    case CheckedProtocol::kStaticAllocation: {
      if (const auto* b = std::get_if<ParticleBatch>(&msg.payload)) {
        // §4.1 routing: hand-offs go to the block's static owner.  Under
        // fault injection ownership is redirected past dead ranks, so
        // the exact-owner check only binds in fault-free runs.
        if (!config_.fault_mode && b->block != kInvalidBlock &&
            config_.num_blocks > 0) {
          const int owner =
              contiguous_owner(config_.num_blocks, config_.num_ranks,
                               b->block);
          if (owner != to) illegal("batch routed to a non-owner rank");
        }
        return;
      }
      if (std::holds_alternative<TerminationCount>(msg.payload)) {
        // §4.1 aggregates on rank 0; under fault injection the counter
        // role migrates to the lowest live rank (§11).
        const int counter = config_.fault_mode ? acting_counter() : 0;
        if (to != counter) {
          illegal("termination counts aggregate on the acting counter");
        }
        return;
      }
      if (std::holds_alternative<DoneSignal>(msg.payload)) {
        const int counter = config_.fault_mode ? acting_counter() : 0;
        if (from != counter) {
          illegal("only the acting counter broadcasts the done signal");
        }
        return;
      }
      illegal("payload kind is not part of the static-allocation protocol");
      return;
    }

    case CheckedProtocol::kHybrid: {
      const int nm = config_.num_masters;
      const int nroots = config_.num_roots;
      const auto is_master = [nm](int r) { return r >= 0 && r < nm; };
      const auto is_root = [nroots](int r) { return r >= 0 && r < nroots; };
      // Mirrors of HybridLayout's balanced contiguous splits (slaves over
      // leaf masters, leaf masters over roots).
      const auto master_of = [this, nm, nroots](int slave) {
        const std::int64_t ns = config_.num_ranks - nm;
        const std::int64_t s = slave - nm;
        return nroots + static_cast<int>(((s + 1) * (nm - nroots) - 1) / ns);
      };
      const auto root_of = [nm, nroots](int leaf) {
        const std::int64_t nl = nm - nroots;
        const std::int64_t l = leaf - nroots;
        return static_cast<int>(((l + 1) * nroots - 1) / nl);
      };
      // Fault mode admits the §11 failover edges: an orphaned slave may
      // report to any acting coordinator, a promoted slave (the acting
      // counter once every master is dead) issues commands and beacons,
      // and board publishes follow the migrating counter.
      if (std::holds_alternative<StatusUpdate>(msg.payload)) {
        if (is_master(from)) illegal("masters do not send status updates");
        if (!config_.fault_mode && to != master_of(from)) {
          illegal("status update addressed to a foreign master");
        }
        return;
      }
      if (std::holds_alternative<Command>(msg.payload)) {
        if (!is_master(from) &&
            !(config_.fault_mode && from == acting_counter())) {
          illegal("only masters (or the promoted successor) issue commands");
        }
        if (is_master(to)) illegal("commands go to slaves");
        if (!config_.fault_mode && master_of(to) != from) {
          illegal("command addressed to another master's slave");
        }
        return;
      }
      if (std::holds_alternative<ParticleBatch>(msg.payload)) {
        // Send_force / Send_hint shipments travel slave-to-slave.
        if (is_master(from) || is_master(to)) {
          illegal("particle batches travel between slaves");
        }
        return;
      }
      if (std::holds_alternative<TerminationCount>(msg.payload)) {
        const int counter = config_.fault_mode ? acting_counter() : 0;
        bool ok = is_master(from);
        if (ok && nroots > 0 && !is_root(from)) {
          // Tree reduction: leaf boards climb to the leaf's parent root;
          // a dead parent re-routes them to the acting counter.
          ok = to == root_of(from) || (config_.fault_mode && to == counter);
        } else if (ok) {
          ok = to == counter;
        }
        if (!ok) {
          illegal("termination counts flow up the master tree to the "
                  "acting counter");
        }
        return;
      }
      if (std::holds_alternative<DoneSignal>(msg.payload)) {
        const int counter = config_.fault_mode ? acting_counter() : 0;
        if (from != counter || !is_master(to)) {
          illegal("done signal flows acting counter -> masters");
        }
        return;
      }
      if (std::holds_alternative<SeedRequest>(msg.payload) ||
          std::holds_alternative<SeedTransfer>(msg.payload)) {
        if (!is_master(from) || !is_master(to)) {
          illegal("seed balancing is master-to-master traffic");
        }
        return;
      }
      if (std::holds_alternative<SeedRelay>(msg.payload)) {
        // Only a root brokers: relays go to a child leaf or (escalated
        // once) to a peer root; the donation returns as a SeedTransfer.
        if (nroots == 0) {
          illegal("seed relays only exist in tree layouts");
        }
        if (!is_root(from) || !is_master(to)) {
          illegal("seed relays flow root -> master");
        }
        return;
      }
      if (std::holds_alternative<MasterBeacon>(msg.payload)) {
        if (!config_.fault_mode) {
          illegal("beacons only exist under fault injection");
        }
        if (!(is_master(from) || from == acting_counter()) ||
            is_master(to)) {
          illegal("beacons flow acting coordinator -> slave");
        }
        return;
      }
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Audit
// ---------------------------------------------------------------------------

void InvariantChecker::audit_locked(double now) const {
  for (const auto& [id, s] : particles_) {
    int holders = s.in_flight;
    for (const auto& [rank, n] : s.holders) holders += n;
    if (s.done) continue;
    if (config_.fault_mode) {
      if (holders + s.recoverable < 1) {
        fail({.kind = ViolationKind::kConservation,
              .rank = -1,
              .when = now,
              .particle = id,
              .detail = "undone streamline with no live or recoverable "
                        "copy"});
      }
    } else if (holders != 1) {
      fail({.kind = ViolationKind::kConservation,
            .rank = -1,
            .when = now,
            .particle = id,
            .detail = "undone streamline held " + std::to_string(holders) +
                      " times (want exactly 1)"});
    }
  }
  // Per-query conservation: the done count can never exceed the seeded
  // count, and a query that fired query-done must stay fully drained.
  for (const auto& [query, q] : queries_) {
    if (q.done > q.seeded || (q.fired && q.done != q.seeded)) {
      fail({.kind = ViolationKind::kConservation,
            .rank = -1,
            .when = now,
            .detail = "query " + std::to_string(query) + " accounts " +
                      std::to_string(q.done) + " done of " +
                      std::to_string(q.seeded) + " seeded (fired: " +
                      (q.fired ? "yes" : "no") + ")"});
    }
  }
}

void InvariantChecker::audit(double now) const {
  MutexLock lock(mutex_);
  audit_locked(now);
}

std::size_t InvariantChecker::seeded() const {
  MutexLock lock(mutex_);
  return particles_.size();
}

std::size_t InvariantChecker::done() const {
  MutexLock lock(mutex_);
  return done_count_;
}

std::unique_ptr<InvariantChecker> make_invariant_checker(
    const CheckerConfig& config) {
#if SF_CHECK_INVARIANTS
  return std::make_unique<InvariantChecker>(config);
#else
  (void)config;
  return nullptr;
#endif
}

}  // namespace sf
