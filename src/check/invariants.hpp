#pragma once

// Runtime invariant checker (DESIGN.md §8).
//
// An independent, redundant model of the global protocol state that the
// runtimes update at every observable event — seeding, sends, deliveries,
// terminations, crashes, recoveries, cache traffic — and that throws a
// structured InvariantViolation the moment the system departs from the
// paper's contract:
//
//   * Particle conservation — every seeded streamline is, at every event,
//     accounted for exactly once across the done / rank-resident /
//     in-flight sets (fault mode relaxes "exactly once" to "at least one
//     live replica or recoverable", since sender-based message logging
//     deliberately creates duplicates across recoveries).
//   * Message-protocol legality — a per-rank state machine validates that
//     the hybrid master rules, static-allocation routing and
//     load-on-demand silence never emit an illegal edge: no payload kind
//     on a link the protocol does not use, no particle send by a rank
//     that does not hold the particle (double-assign), no particle-
//     bearing send after a rank was told to terminate, and Undeliverable
//     bounces always re-owned by a live rank.
//   * Block-cache coherence — an independent LRU re-implementation is
//     replayed against every insert/touch; residency must never exceed
//     cache_blocks and must match the checker's ledger exactly.
//   * Single-fire termination — the terminate broadcast (DoneSignal /
//     kTerminate) fires at most once per destination, and only when the
//     checker's own count of undone streamlines is zero.
//
// The checker compiles in only under SF_CHECK_INVARIANTS (CMake option
// STREAMFLOW_CHECK_INVARIANTS, default ON for Debug builds and CI, OFF
// for Release).  Call sites go through the SF_INVARIANT_HOOK macro, which
// expands to nothing when the checker is compiled out, so Release builds
// pay zero cost — not even a null-pointer test.
//
// The class itself is always declared (tests and tooling can name it);
// only construction and the hook expansion are gated.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/block_decomposition.hpp"
#include "core/particle.hpp"
#include "core/thread_annotations.hpp"
#include "runtime/message.hpp"

namespace sf {

// Which protocol's legality rules to enforce.  kNone still checks
// conservation, cache coherence and termination accounting — it is what
// runtimes use when driven by a hand-built factory (unit tests).
enum class CheckedProtocol : std::uint8_t {
  kNone = 0,
  kStaticAllocation,
  kLoadOnDemand,
  kHybrid,
};

struct CheckerConfig {
  CheckedProtocol protocol = CheckedProtocol::kNone;
  int num_ranks = 0;
  // Hybrid layout (ranks [0, num_masters) are masters); 0 outside hybrid.
  int num_masters = 0;
  // Hybrid tree layout: ranks [0, num_roots) of the masters are the root
  // tier (no slave groups; they aggregate boards and broker seeds).
  // 0 models the flat single-tier layout.
  int num_roots = 0;
  // Static-allocation routing table inputs; 0 disables routing checks.
  int num_blocks = 0;
  // Per-rank LRU capacity mirrored by the cache-coherence model.
  std::size_t cache_blocks = 0;
  // Fault injection on: replicas and duplicate terminations are legal,
  // and conservation tracks "at least one safe copy" instead of
  // "exactly one copy".
  bool fault_mode = false;
  // Per-query accounting on: the runtime fires on_query_done exactly when
  // a query's last seeded streamline terminates, and the checker enforces
  // single-fire, non-premature, non-missing completion per query.  Off
  // for checkers driven directly by tests that predate query tracking.
  bool track_queries = false;
};

// What went wrong, in machine-readable form.
enum class ViolationKind : std::uint8_t {
  kConservation,        // seeded != done + active + in-flight
  kDoubleAssign,        // a rank sent a particle it does not hold
  kPhantomDelivery,     // a delivery with no matching in-flight copy
  kPhantomTermination,  // a rank terminated a particle it does not hold
  kDuplicateTermination,  // first-time credit for an already-done particle
  kLostParticle,        // run ended with a seeded streamline unaccounted
  kCacheOverflow,       // residency exceeded cache_blocks
  kCacheMismatch,       // residency diverged from the checker's LRU ledger
  kIllegalMessage,      // payload kind on a link the protocol forbids
  kPrematureTermination,  // terminate broadcast while streamlines undone
  kDoubleTermination,   // a second terminate broadcast to the same rank
  kSendAfterFinish,     // particle-bearing send after terminate received
  kPinnedPurge,         // a pinned block left the cache
  kPrefetchState,       // illegal prefetch transition (issue/stage/claim)
  kUnresolvedPrefetch,  // run ended with a prefetch neither claimed,
                        // discarded nor cancelled
  kDedupRegression,     // a control link's dedup low-water mark moved back
  kQueryDoneDouble,     // a second query-done fire for the same query
  kQueryDonePremature,  // query-done fired with seeded streamlines undone
  kQueryDoneMissing,    // run completed without a query-done fire
};

const char* to_string(ViolationKind k);

// The structured diagnostic carried by every violation.
struct InvariantDiagnostic {
  ViolationKind kind = ViolationKind::kConservation;
  int rank = -1;                     // rank the event happened on
  double when = 0.0;                 // event time (simulated or wall)
  std::uint32_t particle = kNoParticle;  // offending streamline, if any
  BlockId block = kInvalidBlock;     // offending block, if any
  std::string detail;                // human-readable specifics

  static constexpr std::uint32_t kNoParticle = 0xffffffffu;
};

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(InvariantDiagnostic diag);
  const InvariantDiagnostic& diag() const { return diag_; }

 private:
  InvariantDiagnostic diag_;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(const CheckerConfig& config);

  // --- lifecycle ---------------------------------------------------------

  // Rank `rank` starts the run holding `particles` (initial seeds).
  void on_seeded(int rank, const std::vector<Particle>& particles)
      SF_EXCLUDES(mutex_);

  // Particles terminal before the run starts (rejected seeds, a restart
  // checkpoint's done list): done, owned by nobody.
  void on_presettled(const std::vector<Particle>& particles)
      SF_EXCLUDES(mutex_);

  // Run over.  `completed` is false for aborted runs (OOM, unrecoverable
  // fault), where partial state is expected and only consistency — not
  // completeness — is checked.
  void on_run_end(bool completed, double now) SF_EXCLUDES(mutex_);

  // --- message plane ------------------------------------------------------

  void on_send(int from, int to, const Message& msg, double now)
      SF_EXCLUDES(mutex_);
  void on_deliver(int to, const Message& msg, double now) SF_EXCLUDES(mutex_);

  // --- particle lifecycle -------------------------------------------------

  // `first_time` is the ledger's verdict (always true outside fault mode).
  void on_terminated(int rank, const Particle& p, bool first_time,
                     double now) SF_EXCLUDES(mutex_);

  // --- query plane ---------------------------------------------------------

  // The runtime believes `query`'s last seeded streamline just terminated.
  // Cross-checked against the checker's own per-query seeded/done counts:
  // a double fire or a fire with undone streamlines is a violation.
  void on_query_done(std::uint32_t query, double now) SF_EXCLUDES(mutex_);

  // --- fault plane --------------------------------------------------------

  void on_crash(int rank, double now) SF_EXCLUDES(mutex_);
  void on_recover(int dead_rank, int new_owner,
                  const std::vector<Particle>& particles, double now)
      SF_EXCLUDES(mutex_);

  // Speculative re-issue (gray failures): `speculator` took ledger copies
  // of `straggler`'s live streamlines without killing the straggler.  The
  // speculator becomes an extra legal holder of each copy — fault-mode
  // multi-residency — so its later re-assign send is not a double-assign.
  // Only legal in fault mode, on live ranks, for undone streamlines the
  // straggler still holds.
  void on_speculate(int straggler, int speculator,
                    const std::vector<Particle>& particles, double now)
      SF_EXCLUDES(mutex_);

  // --- reliable control transport ------------------------------------------

  // The receiver-side dedup window of one control link advanced (or at
  // least compacted).  The low-water mark must never move backwards: a
  // regression would re-open the window to sequence numbers already
  // delivered, breaking exactly-once dispatch.
  void on_dedup_window(int from, int to, std::uint32_t low_water, double now)
      SF_EXCLUDES(mutex_);

  // --- block-cache coherence ----------------------------------------------

  // A block became resident on `rank`; `actual` is the cache's full
  // resident list (MRU first) after the insert.
  void on_block_insert(int rank, BlockId id,
                       const std::vector<BlockId>& actual, double now)
      SF_EXCLUDES(mutex_);
  // A resident block was looked up (touches LRU recency).
  void on_block_touch(int rank, BlockId id) SF_EXCLUDES(mutex_);
  // Pin/unpin replay: the model's eviction skips pinned ids, and a
  // cache that exceeds capacity while an unpinned victim exists — or
  // that drops a pinned block — is a violation.  `actual` is the
  // resident list after the unpin (whose deferred eviction may purge).
  void on_block_pin(int rank, BlockId id) SF_EXCLUDES(mutex_);
  void on_block_unpin(int rank, BlockId id,
                      const std::vector<BlockId>& actual, double now)
      SF_EXCLUDES(mutex_);

  // --- async prefetch state machine ----------------------------------------

  // A prefetch may be: issued -> staged -> claimed (promoted into the
  // cache by a demand) or discarded; issued -> claimed directly (a
  // demand piggybacked on the in-flight read); or issued/staged ->
  // cancelled (abandoned, failed, evicted from staging, or rank
  // termination/crash).  Every issued prefetch must leave the state
  // machine by run end.
  void on_prefetch_issued(int rank, BlockId id, double now) SF_EXCLUDES(mutex_);
  void on_prefetch_staged(int rank, BlockId id, double now) SF_EXCLUDES(mutex_);
  void on_prefetch_claimed(int rank, BlockId id, double now)
      SF_EXCLUDES(mutex_);
  void on_prefetch_cancelled(int rank, BlockId id, double now)
      SF_EXCLUDES(mutex_);

  // --- audit --------------------------------------------------------------

  // Full conservation sweep: every seeded streamline done or reachable.
  // Cheap enough to run at checkpoint ticks; on_run_end runs it too.
  void audit(double now) const SF_EXCLUDES(mutex_);

  std::size_t seeded() const SF_EXCLUDES(mutex_);
  std::size_t done() const SF_EXCLUDES(mutex_);

 private:
  struct ParticleState {
    std::map<int, int> holders;  // rank -> live replica count
    int in_flight = 0;           // copies on the wire
    int recoverable = 0;         // copies lost to a crash, ledger-restorable
    bool done = false;           // first termination credited
    std::uint32_t query = 0;     // owning query, recorded at seeding
  };

  // Per-query termination accounting (multi-query service runs).
  struct QueryAccount {
    std::size_t seeded = 0;  // live streamlines seeded under this query
    std::size_t done = 0;    // first-time terminations credited
    bool fired = false;      // on_query_done observed
  };

  struct RankState {
    bool crashed = false;
    bool finish_sent = false;     // a terminate broadcast targeted this rank
    bool told_to_finish = false;  // received DoneSignal / kTerminate
    // Independent LRU model: front = most recently used.
    std::list<BlockId> lru;
    // Pin intent (id -> nested count), mirroring BlockCache::pin.
    std::map<BlockId, int> pins;
    // Prefetch state machine: issued-but-not-yet-staged and staged sets.
    std::map<BlockId, char> prefetches;  // 'i' in flight, 's' staged
  };

  [[noreturn]] void fail(InvariantDiagnostic diag) const SF_REQUIRES(mutex_);
  void check_protocol(int from, int to, const Message& msg, double now)
      SF_REQUIRES(mutex_);
  // The acting termination counter / failover successor under the current
  // crash set: lowest live rank (static), lowest live master else lowest
  // live slave (hybrid).  Mirrors the programs' successor_rank formula.
  int acting_counter() const SF_REQUIRES(mutex_);
  void take_from_holder(int rank, const Particle& p, double now,
                        ViolationKind kind) SF_REQUIRES(mutex_);
  void note_finish_broadcast(int from, int to, double now)
      SF_REQUIRES(mutex_);
  // Replay the cache's pinned-aware eviction on the model LRU, then
  // compare against `actual`.
  void replay_eviction_and_compare(int rank, RankState& rs, BlockId id,
                                   const std::vector<BlockId>& actual,
                                   double now, const char* what)
      SF_REQUIRES(mutex_);
  // The particle payload of a message (empty for pure control traffic).
  static const std::vector<Particle>* payload_particles(const Message& msg);
  void audit_locked(double now) const SF_REQUIRES(mutex_);

  CheckerConfig config_;
  // ThreadRuntime hooks race; SimRuntime won't.  Last in the lock order
  // (LockRank::kChecker): every hook is called with no other sf::Mutex
  // held, so a hook can never deadlock against the runtime's own locks.
  mutable Mutex mutex_{LockRank::kChecker};
  std::map<std::uint32_t, ParticleState> particles_ SF_GUARDED_BY(mutex_);
  std::vector<RankState> ranks_ SF_GUARDED_BY(mutex_);
  // Per-(from,to) control-link dedup low-water marks (monotonicity).
  std::map<std::pair<int, int>, std::uint32_t> dedup_low_
      SF_GUARDED_BY(mutex_);
  std::map<std::uint32_t, QueryAccount> queries_ SF_GUARDED_BY(mutex_);
  std::size_t done_count_ SF_GUARDED_BY(mutex_) = 0;
  // Holders + in_flight over all particles.
  std::size_t live_copies_ SF_GUARDED_BY(mutex_) = 0;
};

// Factory used by the runtimes: returns a live checker when the build
// compiles the checker in, nullptr otherwise (so Release call sites that
// do test the pointer still short-circuit).
std::unique_ptr<InvariantChecker> make_invariant_checker(
    const CheckerConfig& config);

}  // namespace sf

// Hook macro: expands to a guarded call when the checker is compiled in,
// and to nothing at all otherwise.
#if SF_CHECK_INVARIANTS
#define SF_INVARIANT_HOOK(checker, call) \
  do {                                   \
    if (checker) (checker)->call;        \
  } while (0)
#else
#define SF_INVARIANT_HOOK(checker, call) \
  do {                                   \
  } while (0)
#endif
