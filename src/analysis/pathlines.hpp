#pragma once

// Pathline integration: dx/dt = v(x, t) through a time-varying field —
// the §8 extension of the paper's streamline setting.  Uses the same
// Dormand–Prince 5(4) scheme via a frozen-time wrapper per stage.

#include <vector>

#include "analysis/time_field.hpp"
#include "core/integrator.hpp"
#include "core/particle.hpp"
#include "core/tracer.hpp"

namespace sf {

struct PathlineResult {
  Particle particle;        // final state (time is the simulation time)
  std::vector<Vec3> path;   // recorded trajectory (seed first)
  std::vector<double> times;
};

// Integrate a pathline from `seed` at time `t0` until `t1`, domain exit,
// or the step budget.  t1 may be < t0 for backward advection (used by
// unsteady FTLE).
PathlineResult trace_pathline(const TimeVectorField& field, const Vec3& seed,
                              double t0, double t1,
                              const IntegratorParams& iparams,
                              std::uint32_t max_steps = 100000);

// Convenience: final position only (the flow map sample).
Vec3 advect(const TimeVectorField& field, const Vec3& seed, double t0,
            double t1, const IntegratorParams& iparams);

}  // namespace sf
