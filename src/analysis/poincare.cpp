#include "analysis/poincare.hpp"

#include <cmath>

namespace sf {

namespace {

// Locate the plane crossing inside one accepted step with a cubic
// Hermite model of the trajectory segment (positions and velocities at
// both endpoints), bisecting on the signed distance.  O(h^4) accurate —
// far better than the linear chord for the step sizes adaptive control
// picks on smooth fields.
Vec3 refine_crossing(const Vec3& p0, const Vec3& v0, const Vec3& p1,
                     const Vec3& v1, double h,
                     const std::function<double(const Vec3&)>& side) {
  auto hermite = [&](double s) {
    const double s2 = s * s, s3 = s2 * s;
    const double h00 = 2 * s3 - 3 * s2 + 1;
    const double h10 = s3 - 2 * s2 + s;
    const double h01 = -2 * s3 + 3 * s2;
    const double h11 = s3 - s2;
    return p0 * h00 + v0 * (h * h10) + p1 * h01 + v1 * (h * h11);
  };
  double lo = 0.0, hi = 1.0;
  double side_lo = side(p0);
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double sm = side(hermite(mid));
    if ((sm < 0.0) == (side_lo < 0.0)) {
      lo = mid;
      side_lo = sm;
    } else {
      hi = mid;
    }
  }
  return hermite(0.5 * (lo + hi));
}

}  // namespace

std::vector<Vec3> poincare_punctures(const VectorField& field,
                                     const Vec3& seed,
                                     const PoincareParams& params) {
  std::vector<Vec3> out;
  if (!field.bounds().contains(seed)) return out;

  const Vec3 n = normalized(params.plane_normal);
  auto side = [&](const Vec3& p) { return dot(p - params.plane_point, n); };

  Vec3 pos = seed;
  double t = 0.0;
  double h = params.integrator.h_init;
  double prev_side = side(pos);
  std::uint32_t steps = 0;

  while (out.size() < params.max_crossings &&
         steps < params.limits.max_steps && t < params.limits.max_time) {
    Vec3 v{};
    if (!field.sample(pos, v)) break;
    if (norm(v) < params.limits.min_speed) break;

    const StepResult step = dopri5_step(field, pos, t, h, params.integrator);
    if (step.status == StepStatus::kSampleFailed) break;

    const double new_side = side(step.p);
    const bool crossed_up = prev_side < 0.0 && new_side >= 0.0;
    const bool crossed_down = prev_side > 0.0 && new_side <= 0.0;
    if (crossed_up || (!params.positive_direction_only && crossed_down)) {
      Vec3 v1{};
      Vec3 hit;
      if (field.sample(step.p, v1)) {
        hit = refine_crossing(pos, v, step.p, v1, step.h_used, side);
      } else {
        const double denom = new_side - prev_side;
        const double w = denom != 0.0 ? -prev_side / denom : 0.0;
        hit = pos + (step.p - pos) * w;
      }
      if (!params.accept || params.accept(hit)) out.push_back(hit);
    }

    pos = step.p;
    t = step.t;
    h = step.h_next;
    prev_side = new_side;
    ++steps;
  }
  return out;
}

}  // namespace sf
