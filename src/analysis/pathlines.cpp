#include "analysis/pathlines.hpp"

#include <algorithm>
#include <cmath>

namespace sf {

PathlineResult trace_pathline(const TimeVectorField& field, const Vec3& seed,
                              double t0, double t1,
                              const IntegratorParams& iparams,
                              std::uint32_t max_steps) {
  PathlineResult result;
  Particle& p = result.particle;
  p.pos = seed;
  p.time = t0;
  p.h = iparams.h_init;
  result.path.push_back(seed);
  result.times.push_back(t0);

  const double dir = (t1 >= t0) ? 1.0 : -1.0;
  const double span = std::abs(t1 - t0);

  if (!field.bounds().contains(seed)) {
    p.status = ParticleStatus::kExitedDomain;
    return result;
  }

  // Integrate the non-autonomous system in the forward parameter
  // tau = dir * (t - t0); the right-hand side maps back to field time.
  const UnsteadySampleFn rhs = [&field, t0, dir](const Vec3& pos, double tau,
                                                 Vec3& out) {
    if (!field.sample(pos, t0 + dir * tau, out)) return false;
    if (dir < 0.0) out = -out;
    return true;
  };

  double tau = 0.0;
  while (tau < span) {
    if (p.steps >= max_steps) {
      p.status = ParticleStatus::kMaxSteps;
      return result;
    }
    Vec3 v{};
    if (!field.sample(p.pos, t0 + dir * tau, v)) {
      p.status = ParticleStatus::kExitedDomain;
      return result;
    }
    if (norm(v) < 1e-12) {
      // Spatially stagnant; time still passes.  Jump to the horizon.
      tau = span;
      break;
    }

    double h = std::min(p.h, span - tau);
    h = std::max(h, iparams.h_min);
    const StepResult step = dopri5_step(rhs, p.pos, tau, h, iparams);
    if (step.status == StepStatus::kSampleFailed) {
      p.status = ParticleStatus::kExitedDomain;
      return result;
    }
    p.pos = step.p;
    tau = step.t;
    p.h = step.h_next;
    p.steps += 1;
    p.geometry_points += 1;
    p.time = t0 + dir * tau;
    result.path.push_back(p.pos);
    result.times.push_back(p.time);
  }
  p.time = t1;
  p.status = ParticleStatus::kMaxTime;  // reached the requested horizon
  return result;
}

Vec3 advect(const TimeVectorField& field, const Vec3& seed, double t0,
            double t1, const IntegratorParams& iparams) {
  return trace_pathline(field, seed, t0, t1, iparams).particle.pos;
}

}  // namespace sf
