#pragma once

// Parallel pathline computation over time-sliced block data — the §8
// future-work extension, realized with the Load On Demand strategy
// (parallelize over pathlines, cache spacetime blocks in LRU order).
//
// A pathline needs *two* resident spacetime blocks at every instant, so
// the same cache and filesystem that comfortably serve streamlines get
// hammered by slice churn; run_pathline_experiment exposes exactly that
// (see bench/pathline_study).

#include <span>

#include "analysis/unsteady_tracer.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sim_runtime.hpp"

namespace sf {

struct PathlineExperimentConfig {
  SimRuntimeConfig runtime{};
  IntegratorParams integrator{};
  TraceLimits limits{};  // max_time caps the pathline horizon
};

// Run Load-On-Demand pathlines over `slices` (with times `slice_times`)
// from `seeds` released at the first slice time.  The returned metrics
// are directly comparable to a streamline run_experiment on the same
// machine model.
RunMetrics run_pathline_experiment(const PathlineExperimentConfig& config,
                                   const BlockDecomposition& decomp,
                                   std::vector<DatasetPtr> slices,
                                   std::vector<double> slice_times,
                                   std::span<const Vec3> seeds,
                                   std::size_t modelled_block_bytes = 0);

}  // namespace sf
