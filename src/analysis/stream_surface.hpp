#pragma once

// Stream surfaces (Figure 4): the surface swept by all streamlines
// emanating from a seed curve, built ring by ring with an advancing
// front.  When adjacent front particles separate beyond a threshold a new
// streamline is inserted between them mid-surface — the "dynamic creation
// of streamlines" §8 identifies as the natural extension of the
// architecture.

#include <span>
#include <vector>

#include "core/field.hpp"
#include "core/integrator.hpp"
#include "io/obj_writer.hpp"

namespace sf {

struct StreamSurfaceParams {
  double ring_dt = 0.05;        // integration time between rings
  std::size_t max_rings = 200;
  double split_distance = 0.05; // insert a streamline beyond this gap
  std::size_t max_front = 4096; // cap on front width
  IntegratorParams integrator{};
};

struct StreamSurface {
  std::vector<Vec3> vertices;
  std::vector<Triangle> triangles;
  std::size_t rings = 0;
  std::size_t inserted_streamlines = 0;  // dynamic seeds added
};

StreamSurface compute_stream_surface(const VectorField& field,
                                     std::span<const Vec3> seed_curve,
                                     const StreamSurfaceParams& params);

}  // namespace sf
