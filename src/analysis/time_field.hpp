#pragma once

// Time-varying vector fields — the substrate for pathlines (§8 of the
// paper lists pathline support as the immediate extension of this work,
// "depending on considerably larger amounts of data since it becomes
// necessary to advance through multiple time steps").

#include <memory>
#include <vector>

#include "core/dataset.hpp"
#include "core/field.hpp"

namespace sf {

class TimeVectorField {
 public:
  virtual ~TimeVectorField() = default;

  // Evaluate at position `p` and time `t`.  False outside the spatial
  // domain or time range.
  virtual bool sample(const Vec3& p, double t, Vec3& out) const = 0;
  virtual AABB bounds() const = 0;
  virtual std::pair<double, double> time_range() const = 0;
};

// A steady field viewed as time varying (valid for all t).
class SteadyAsTimeField final : public TimeVectorField {
 public:
  explicit SteadyAsTimeField(FieldPtr field) : field_(std::move(field)) {}

  bool sample(const Vec3& p, double /*t*/, Vec3& out) const override {
    return field_->sample(p, out);
  }
  AABB bounds() const override { return field_->bounds(); }
  std::pair<double, double> time_range() const override {
    return {-1e300, 1e300};
  }

 private:
  FieldPtr field_;
};

// The classic double-gyre benchmark flow (Shadden et al.), extruded to a
// thin 3D slab: two counter-rotating gyres whose dividing line oscillates
// with amplitude eps at frequency omega.  Standard ground truth for
// unsteady FTLE ridges.
class DoubleGyreField final : public TimeVectorField {
 public:
  DoubleGyreField(double amplitude = 0.1, double eps = 0.25,
                  double omega = 0.62831853071795865)
      : a_(amplitude), eps_(eps), omega_(omega) {}

  bool sample(const Vec3& p, double t, Vec3& out) const override;
  AABB bounds() const override { return {{0, 0, -0.1}, {2, 1, 0.1}}; }
  std::pair<double, double> time_range() const override {
    return {-1e300, 1e300};
  }

 private:
  double a_, eps_, omega_;
};

// Linear interpolation between block-decomposed time slices: the discrete
// form time-varying simulation output takes on disk.  Each slice is a
// full BlockedDataset; sampling interpolates between the two bracketing
// slices ("two blocks that occupy the same space at different times are
// considered independent", §4).
class TimeSliceField final : public TimeVectorField {
 public:
  TimeSliceField(std::vector<DatasetPtr> slices, std::vector<double> times);

  bool sample(const Vec3& p, double t, Vec3& out) const override;
  AABB bounds() const override;
  std::pair<double, double> time_range() const override {
    return {times_.front(), times_.back()};
  }

  std::size_t num_slices() const { return slices_.size(); }
  const DatasetPtr& slice(std::size_t i) const { return slices_[i]; }

 private:
  std::vector<DatasetPtr> slices_;
  std::vector<double> times_;
};

}  // namespace sf
