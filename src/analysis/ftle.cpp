#include "analysis/ftle.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "analysis/pathlines.hpp"

namespace sf {

double symmetric3_max_eigenvalue(const double m[3][3]) {
  // Closed-form symmetric 3x3 eigenvalues (Smith's trigonometric method).
  const double p1 = m[0][1] * m[0][1] + m[0][2] * m[0][2] +
                    m[1][2] * m[1][2];
  const double tr = m[0][0] + m[1][1] + m[2][2];
  if (p1 == 0.0) {
    return std::max({m[0][0], m[1][1], m[2][2]});
  }
  const double q = tr / 3.0;
  const double p2 = (m[0][0] - q) * (m[0][0] - q) +
                    (m[1][1] - q) * (m[1][1] - q) +
                    (m[2][2] - q) * (m[2][2] - q) + 2.0 * p1;
  const double p = std::sqrt(p2 / 6.0);
  // B = (A - qI) / p; r = det(B) / 2 in [-1, 1].
  double b[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      b[i][j] = (m[i][j] - (i == j ? q : 0.0)) / p;
    }
  }
  double r = (b[0][0] * (b[1][1] * b[2][2] - b[1][2] * b[2][1]) -
              b[0][1] * (b[1][0] * b[2][2] - b[1][2] * b[2][0]) +
              b[0][2] * (b[1][0] * b[2][1] - b[1][1] * b[2][0])) /
             2.0;
  r = std::clamp(r, -1.0, 1.0);
  const double phi = std::acos(r) / 3.0;
  return q + 2.0 * p * std::cos(phi);
}

FtleField compute_ftle(const TimeVectorField& field,
                       const FtleParams& params) {
  FtleParams prm = params;
  if (!prm.region.valid()) prm.region = field.bounds();
  if (prm.nx < 2 || prm.ny < 2 || prm.nz < 1) {
    throw std::invalid_argument("compute_ftle: lattice must be >= 2x2x1");
  }

  const int nx = prm.nx, ny = prm.ny, nz = prm.nz;
  const Vec3 e = prm.region.extent();
  const Vec3 d{e.x / (nx - 1), e.y / (ny - 1),
               nz > 1 ? e.z / (nz - 1) : 0.0};

  auto lattice_pos = [&](int i, int j, int k) {
    return Vec3{prm.region.lo.x + i * d.x, prm.region.lo.y + j * d.y,
                prm.region.lo.z + k * d.z};
  };

  // Advect the whole lattice to build the discrete flow map.
  const double t1 = prm.t0 + prm.horizon;
  std::vector<Vec3> flow(static_cast<std::size_t>(nx) * ny * nz);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const std::size_t idx = static_cast<std::size_t>(k) * nx * ny +
                                static_cast<std::size_t>(j) * nx + i;
        flow[idx] =
            advect(field, lattice_pos(i, j, k), prm.t0, t1, prm.integrator);
      }
    }
  }

  FtleField out;
  out.region = prm.region;
  out.nx = nx;
  out.ny = ny;
  out.nz = nz;
  out.values.resize(flow.size());

  auto fm = [&](int i, int j, int k) -> const Vec3& {
    return flow[static_cast<std::size_t>(k) * nx * ny +
                static_cast<std::size_t>(j) * nx + i];
  };

  const double abs_t = std::abs(prm.horizon);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        // Finite-difference flow-map gradient F (one-sided at edges).
        double F[3][3] = {};
        auto diff = [&](int axis) {
          int i0 = i, i1 = i, j0 = j, j1 = j, k0 = k, k1 = k;
          double h2 = 0.0;
          if (axis == 0) {
            i0 = std::max(i - 1, 0);
            i1 = std::min(i + 1, nx - 1);
            h2 = (i1 - i0) * d.x;
          } else if (axis == 1) {
            j0 = std::max(j - 1, 0);
            j1 = std::min(j + 1, ny - 1);
            h2 = (j1 - j0) * d.y;
          } else {
            k0 = std::max(k - 1, 0);
            k1 = std::min(k + 1, nz - 1);
            h2 = (k1 - k0) * d.z;
          }
          const Vec3 g = h2 > 0.0
                             ? (fm(i1, j1, k1) - fm(i0, j0, k0)) / h2
                             : Vec3{};
          F[0][axis] = g.x;
          F[1][axis] = g.y;
          F[2][axis] = g.z;
        };
        diff(0);
        diff(1);
        if (nz > 1) {
          diff(2);
        } else {
          F[2][2] = 1.0;  // planar lattice: identity out of plane
        }

        // Cauchy-Green C = F^T F.
        double C[3][3] = {};
        for (int a = 0; a < 3; ++a) {
          for (int b = 0; b < 3; ++b) {
            for (int c = 0; c < 3; ++c) C[a][b] += F[c][a] * F[c][b];
          }
        }
        const double lmax = std::max(symmetric3_max_eigenvalue(C), 1e-300);
        out.values[static_cast<std::size_t>(k) * nx * ny +
                   static_cast<std::size_t>(j) * nx + i] =
            std::log(std::sqrt(lmax)) / abs_t;
      }
    }
  }
  return out;
}

FtleField compute_ftle(const VectorField& field, const FtleParams& params) {
  // Wrap without taking ownership: the adapter's FieldPtr uses a no-op
  // deleter because `field` outlives this call.
  FieldPtr alias(&field, [](const VectorField*) {});
  SteadyAsTimeField as_time(std::move(alias));
  FtleParams prm = params;
  if (!prm.region.valid()) prm.region = field.bounds();
  return compute_ftle(as_time, prm);
}

}  // namespace sf
