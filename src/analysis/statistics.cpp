#include "analysis/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sf {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
}

void Histogram::add(double value) {
  const double t = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      std::floor(t * static_cast<double>(counts_.size())));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cumulative += static_cast<double>(counts_[b]);
    if (cumulative >= target) {
      return lo_ + (hi_ - lo_) * static_cast<double>(b + 1) /
                       static_cast<double>(counts_.size());
    }
  }
  return hi_;
}

StreamlineStats summarize(std::span<const Particle> particles) {
  StreamlineStats s;
  s.count = particles.size();
  if (particles.empty()) return s;
  double steps = 0.0, time = 0.0, geometry = 0.0;
  for (const Particle& p : particles) {
    s.by_status[static_cast<std::size_t>(p.status)] += 1;
    steps += static_cast<double>(p.steps);
    time += p.time;
    geometry += static_cast<double>(p.geometry_points);
    s.max_steps = std::max(s.max_steps, p.steps);
    s.max_time = std::max(s.max_time, p.time);
    s.total_geometry_bytes +=
        static_cast<std::size_t>(p.geometry_points) * sizeof(Vec3);
  }
  const auto n = static_cast<double>(particles.size());
  s.mean_steps = steps / n;
  s.mean_time = time / n;
  s.mean_geometry_points = geometry / n;
  return s;
}

double polyline_length(std::span<const Vec3> line) {
  double length = 0.0;
  for (std::size_t i = 1; i < line.size(); ++i) {
    length += distance(line[i - 1], line[i]);
  }
  return length;
}

Histogram length_histogram(const std::vector<std::vector<Vec3>>& lines,
                           std::size_t bins) {
  double longest = 0.0;
  std::vector<double> lengths;
  lengths.reserve(lines.size());
  for (const auto& line : lines) {
    lengths.push_back(polyline_length(line));
    longest = std::max(longest, lengths.back());
  }
  Histogram h(0.0, std::max(longest, 1e-300), bins);
  for (const double length : lengths) h.add(length);
  return h;
}

}  // namespace sf
