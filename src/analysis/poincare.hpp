#pragma once

// Poincaré puncture plots (§8 mentions them as the class of problems
// where only solver state needs to travel with a particle).  Records the
// intersections of a streamline with a section plane; for tokamak fields
// the standard section is a poloidal half-plane, visualizing flux
// surfaces, magnetic islands and chaotic layers.

#include <functional>
#include <vector>

#include "core/field.hpp"
#include "core/integrator.hpp"
#include "core/tracer.hpp"

namespace sf {

struct PoincareParams {
  Vec3 plane_point{};            // a point on the section plane
  Vec3 plane_normal{0, 1, 0};    // its normal
  // Optional filter on crossing points (e.g. x > 0 to keep one poloidal
  // half-plane of a torus).  Default accepts everything.
  std::function<bool(const Vec3&)> accept;
  // Count only crossings in the +normal direction (true) or both (false).
  bool positive_direction_only = true;
  std::size_t max_crossings = 500;
  IntegratorParams integrator{};
  TraceLimits limits{.max_time = 1e9, .max_steps = 2000000, .min_speed = 1e-9};
};

// Integrate from `seed` and return the section crossings in order.
// Crossing positions are located by linear interpolation within the
// bracketing accepted step (adequate at integrator tolerances).
std::vector<Vec3> poincare_punctures(const VectorField& field,
                                     const Vec3& seed,
                                     const PoincareParams& params);

}  // namespace sf
