#pragma once

// Streamline statistics — the "statistical analysis of integral curves
// or particle trajectories" workload §3.1 gives as the canonical
// many-streamlines-over-small-data problem class.  Summaries are
// computed from terminated particles and (optionally) their recorded
// polylines.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/particle.hpp"

namespace sf {

// Fixed-width histogram over [lo, hi); values outside clamp into the
// edge bins so totals always match the sample count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t total() const { return total_; }

  // The value below which `q` of the mass lies (bin-resolution accurate;
  // q in [0, 1]).
  double quantile(double q) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

struct StreamlineStats {
  std::size_t count = 0;
  std::array<std::size_t, 6> by_status{};  // indexed by ParticleStatus
  double mean_steps = 0.0;
  std::uint32_t max_steps = 0;
  double mean_time = 0.0;
  double max_time = 0.0;
  double mean_geometry_points = 0.0;
  // Total memory the trajectories would occupy if gathered in one place
  // (the thing that blows up Static Allocation in Figure 13).
  std::size_t total_geometry_bytes = 0;
};

StreamlineStats summarize(std::span<const Particle> particles);

// Arc length of a recorded polyline (sum of segment lengths).
double polyline_length(std::span<const Vec3> line);

// Histogram of arc lengths over a set of polylines, with automatic
// range [0, max-length].
Histogram length_histogram(const std::vector<std::vector<Vec3>>& lines,
                           std::size_t bins = 32);

}  // namespace sf
