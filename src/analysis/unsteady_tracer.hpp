#pragma once

// Pathline advancement over *blocked, time-sliced* data — the §8
// extension of the paper's streamline setting ("the same considerations
// also apply to pathlines, which depend on considerably larger amounts
// of data since it becomes necessary to advance through multiple time
// steps of a simulation as well as space").
//
// The unit of I/O is a spacetime block: spatial block b of time slice s.
// Advancing a particle at time t inside block b requires *two* resident
// spacetime blocks — (s, b) and (s+1, b), the bracketing slices — which
// is exactly why pathlines hit the filesystem so much harder than
// streamlines.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/block_decomposition.hpp"
#include "core/dataset.hpp"
#include "core/integrator.hpp"
#include "core/particle.hpp"
#include "core/tracer.hpp"

namespace sf {

// Identifies spacetime block (slice, spatial) as a single id so the
// existing cache/runtime machinery applies unchanged.
struct SpacetimeId {
  int slice = 0;
  BlockId spatial = kInvalidBlock;
};

class UnsteadyTracer {
 public:
  // `times` are the slice times (ascending, >= 2 entries).  Particle
  // time starts within [times.front(), times.back()].
  UnsteadyTracer(const BlockDecomposition* decomp, std::vector<double> times,
                 const IntegratorParams& iparams, const TraceLimits& limits);

  int num_slices() const { return static_cast<int>(times_.size()); }
  int num_spatial_blocks() const { return decomp_->num_blocks(); }
  int num_spacetime_blocks() const {
    return num_slices() * num_spatial_blocks();
  }

  BlockId encode(const SpacetimeId& id) const {
    return static_cast<BlockId>(id.slice) * num_spatial_blocks() +
           id.spatial;
  }
  SpacetimeId decode(BlockId id) const {
    return {static_cast<int>(id) / num_spatial_blocks(),
            static_cast<BlockId>(static_cast<int>(id) %
                                 num_spatial_blocks())};
  }

  // The two spacetime blocks a particle needs right now (slice bracket
  // of particle.time x owner of particle.pos).  Returns false when the
  // particle is outside the domain or past the last slice.
  bool needs(const Particle& particle, BlockId& lo, BlockId& hi) const;

  // Grid lookup by *encoded spacetime id*; nullptr when not resident.
  using SpacetimeAccessFn = std::function<const StructuredGrid*(BlockId)>;

  // Advance while both bracketing spacetime blocks are available.
  // Status kMaxTime is reported when the particle reaches the end of
  // the time range (or limits.max_time, whichever is first).  On
  // kActive, blocking_block is the encoded spacetime id needed next.
  AdvanceOutcome advance(Particle& particle,
                         const SpacetimeAccessFn& blocks) const;

  const std::vector<double>& times() const { return times_; }
  const BlockDecomposition& decomposition() const { return *decomp_; }

 private:
  // Index of the slice bracket [s, s+1] containing time t.
  int bracket_of(double t) const;

  const BlockDecomposition* decomp_;
  std::vector<double> times_;
  IntegratorParams iparams_;
  TraceLimits limits_;
};

// BlockSource over time slices: spacetime id -> the slice's block grid.
// Every slice load is charged like a full spatial block read (the
// "many small reads that can overwhelm the file system" of §8 appear as
// soon as slices are dense).
class TimeSliceBlockSource final : public BlockSource {
 public:
  TimeSliceBlockSource(std::vector<DatasetPtr> slices,
                       std::size_t modelled_bytes = 0);

  GridPtr load(BlockId id) const override;
  std::size_t block_bytes(BlockId id) const override;
  int num_blocks() const override;

 private:
  std::vector<DatasetPtr> slices_;
  std::size_t modelled_bytes_;
};

}  // namespace sf
