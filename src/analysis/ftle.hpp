#pragma once

// Finite-Time Lyapunov Exponent fields (§2.1 cites FTLE / Lagrangian
// Coherent Structures as the motivating many-thousands-of-streamlines
// workload).  The FTLE at a point is ln(sqrt(lambda_max(C))) / |T| where
// C = F^T F is the Cauchy–Green tensor of the flow map F over horizon T,
// estimated here by central differences of a lattice of advected seeds.

#include <vector>

#include "analysis/time_field.hpp"
#include "core/aabb.hpp"
#include "core/integrator.hpp"

namespace sf {

struct FtleParams {
  AABB region;            // lattice region (defaults to the field bounds)
  int nx = 32, ny = 32, nz = 8;
  double t0 = 0.0;        // release time
  double horizon = 8.0;   // |T|; negative for backward FTLE
  IntegratorParams integrator{};
};

struct FtleField {
  AABB region;
  int nx = 0, ny = 0, nz = 0;
  std::vector<double> values;  // x-fastest lattice of FTLE values

  double at(int i, int j, int k) const {
    return values[static_cast<std::size_t>(k) * nx * ny +
                  static_cast<std::size_t>(j) * nx +
                  static_cast<std::size_t>(i)];
  }
};

// Unsteady FTLE through pathline advection.
FtleField compute_ftle(const TimeVectorField& field, const FtleParams& params);

// Steady-field convenience (advects along streamlines in time
// parameterization).
FtleField compute_ftle(const VectorField& field, const FtleParams& params);

// Largest eigenvalue of a symmetric positive semi-definite 3x3 matrix
// (exposed for tests).
double symmetric3_max_eigenvalue(const double m[3][3]);

}  // namespace sf
