#include "analysis/pathline_lod.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>

#include "algorithms/load_on_demand.hpp"
#include "algorithms/routing.hpp"

namespace sf {

namespace {

// Load On Demand over spacetime blocks.  Mirrors the streamline program
// of algorithms/load_on_demand.cpp, with two-block residency: a particle
// is runnable when both bracketing slice blocks are cached.
class PathlineLodProgram final : public RankProgram {
 public:
  PathlineLodProgram(const UnsteadyTracer* tracer,
                     std::vector<Particle> initial)
      : tracer_(tracer), initial_(std::move(initial)) {}

  void start(RankContext& ctx) override {
    for (Particle& p : initial_) {
      ctx.charge_particle_memory(static_cast<std::int64_t>(
          resident_particle_bytes(p, ctx.model())));
      pool_.push_back(std::move(p));
    }
    initial_.clear();
    try_start(ctx);
  }

  void on_message(RankContext&, Message) override {
    // Pathline Load On Demand is fully communication-free and runs on a
    // single rank, so no message can legally arrive.
    // protocol-lint: ignores ParticleBatch, StatusUpdate, Command
    // protocol-lint: ignores TerminationCount, DoneSignal, SeedRequest
    // protocol-lint: ignores SeedRelay, SeedTransfer, Undeliverable
    // protocol-lint: ignores MasterBeacon, ControlAck
    // protocol-lint: ignores QuerySubmit, QueryCancel, QueryResult
    // protocol-lint: ignores QueryDone
  }

  void on_block_loaded(RankContext& ctx, BlockId) override {
    if (loads_outstanding_ > 0) --loads_outstanding_;
    try_start(ctx);
  }

  void on_compute_done(RankContext& ctx) override {
    // NOLINTNEXTLINE(bugprone-unchecked-optional-access): the runtime
    // only fires on_compute_done for a compute slot this program filled
    // in try_start, which engages in_flight_ first.
    Particle p = std::move(*in_flight_);
    in_flight_.reset();
    if (is_terminal(flight_.status)) {
      done_.push_back(std::move(p));
    } else {
      pool_.push_back(std::move(p));
    }
    try_start(ctx);
  }

  bool finished() const override { return finished_; }

  void collect_particles(std::vector<Particle>& out) const override {
    out.insert(out.end(), done_.begin(), done_.end());
  }

 private:
  void try_start(RankContext& ctx) {
    if (finished_ || ctx.busy() || in_flight_.has_value()) return;

    if (pool_.empty()) {
      finished_ = true;
      return;
    }

    // Runnable = both bracketing spacetime blocks resident.
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      BlockId lo, hi;
      if (!tracer_->needs(pool_[i], lo, hi)) {
        // Past the horizon or outside the domain: finalize in place.
        Particle p = std::move(pool_[i]);
        pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
        p.status = tracer_->decomposition().block_of(p.pos) == kInvalidBlock
                       ? ParticleStatus::kExitedDomain
                       : ParticleStatus::kMaxTime;
        done_.push_back(std::move(p));
        try_start(ctx);
        return;
      }
      if (ctx.block_resident(lo) && ctx.block_resident(hi)) {
        Particle p = std::move(pool_[i]);
        pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
        const std::uint32_t points_before = p.geometry_points;
        flight_ = tracer_->advance(
            p, [&ctx](BlockId id) { return ctx.block(id); });
        const std::uint32_t grown = p.geometry_points - points_before;
        if (grown != 0) {
          ctx.charge_particle_memory(static_cast<std::int64_t>(grown) *
                                     static_cast<std::int64_t>(sizeof(Vec3)));
        }
        in_flight_ = std::move(p);
        ctx.begin_compute(static_cast<double>(flight_.steps) *
                              ctx.model().seconds_per_step,
                          flight_.steps);
        return;
      }
    }

    // No runnable pathline: complete the block *pair* of the first
    // waiting particle, one read at a time (§4.2's only-when-stuck I/O).
    // Touching the already-resident half first pins it as MRU, so the
    // incoming read can never evict it — without this, a small cache
    // livelocks: each half of the pair keeps evicting the other and no
    // particle ever becomes runnable.
    if (loads_outstanding_ == 0) {
      for (const Particle& p : pool_) {
        BlockId lo, hi;
        if (!tracer_->needs(p, lo, hi)) continue;
        const bool have_lo = ctx.block_resident(lo);
        const bool have_hi = ctx.block_resident(hi);
        if (have_lo && have_hi) continue;  // raced; next pass runs it
        if (have_lo) ctx.block(lo);
        if (have_hi) ctx.block(hi);
        const BlockId missing = have_lo ? hi : lo;
        if (!ctx.block_pending(missing)) {
          ++loads_outstanding_;
          ctx.request_block(missing);
        }
        break;
      }
    }
  }

  const UnsteadyTracer* tracer_;
  std::vector<Particle> initial_;
  std::vector<Particle> pool_;
  std::vector<Particle> done_;
  std::optional<Particle> in_flight_;
  AdvanceOutcome flight_{};
  int loads_outstanding_ = 0;
  bool finished_ = false;
};

}  // namespace

RunMetrics run_pathline_experiment(const PathlineExperimentConfig& config,
                                   const BlockDecomposition& decomp,
                                   std::vector<DatasetPtr> slices,
                                   std::vector<double> slice_times,
                                   std::span<const Vec3> seeds,
                                   std::size_t modelled_block_bytes) {
  if (config.runtime.cache_blocks < 2) {
    throw std::invalid_argument(
        "run_pathline_experiment: pathlines need a cache of >= 2 blocks "
        "(both bracketing slices must be resident)");
  }
  const double t0 = slice_times.front();
  UnsteadyTracer tracer(&decomp, slice_times, config.integrator,
                        config.limits);
  TimeSliceBlockSource source(std::move(slices), modelled_block_bytes);

  std::vector<Particle> rejected;
  std::vector<Particle> particles = make_particles(decomp, seeds, rejected);
  for (Particle& p : particles) p.time = t0;
  for (Particle& p : rejected) p.time = t0;

  auto per_rank = partition_evenly_by_block(config.runtime.num_ranks, decomp,
                                            std::move(particles));
  auto shared = std::make_shared<std::vector<std::vector<Particle>>>(
      std::move(per_rank));

  SimRuntime runtime(config.runtime, &decomp, &source, config.integrator,
                     config.limits);
  RunMetrics metrics = runtime.run(
      [&tracer, shared](int rank, int) -> std::unique_ptr<RankProgram> {
        return std::make_unique<PathlineLodProgram>(
            &tracer, std::move((*shared)[static_cast<std::size_t>(rank)]));
      });

  if (!metrics.failed_oom && !rejected.empty()) {
    metrics.particles.insert(metrics.particles.end(), rejected.begin(),
                             rejected.end());
    std::sort(
        metrics.particles.begin(), metrics.particles.end(),
        [](const Particle& a, const Particle& b) { return a.id < b.id; });
  }
  return metrics;
}

}  // namespace sf
