#include "analysis/stream_surface.hpp"

#include <algorithm>
#include <cmath>

namespace sf {

namespace {

struct FrontParticle {
  Vec3 pos{};
  double time = 0.0;
  double h = 0.0;
  bool alive = true;
  std::uint32_t vertex = 0;  // index of its latest surface vertex
};

// Advance one front particle to `target_time`; marks it dead on domain
// exit or stagnation.
void advance_to(const VectorField& field, FrontParticle& fp,
                double target_time, const IntegratorParams& iparams) {
  while (fp.alive && fp.time < target_time) {
    Vec3 v{};
    if (!field.sample(fp.pos, v) || norm(v) < 1e-10) {
      fp.alive = false;
      return;
    }
    double h = std::min(fp.h, target_time - fp.time);
    h = std::max(h, iparams.h_min);
    const StepResult step = dopri5_step(field, fp.pos, fp.time, h, iparams);
    if (step.status == StepStatus::kSampleFailed) {
      fp.alive = false;
      return;
    }
    fp.pos = step.p;
    fp.time = step.t;
    fp.h = step.h_next;
  }
}

// Triangulate the ribbon between two polylines (the previous and current
// front) with the classic greedy shortest-diagonal march.  Indices refer
// to surface vertices.
void stitch(const std::vector<Vec3>& vertices,
            const std::vector<std::uint32_t>& prev,
            const std::vector<std::uint32_t>& cur,
            std::vector<Triangle>& out) {
  if (prev.size() < 2 && cur.size() < 2) return;
  std::size_t i = 0, j = 0;
  while (i + 1 < prev.size() || j + 1 < cur.size()) {
    const bool can_i = i + 1 < prev.size();
    const bool can_j = j + 1 < cur.size();
    bool step_i;
    if (can_i && can_j) {
      const double di = distance(vertices[prev[i + 1]], vertices[cur[j]]);
      const double dj = distance(vertices[prev[i]], vertices[cur[j + 1]]);
      step_i = di <= dj;
    } else {
      step_i = can_i;
    }
    if (step_i) {
      out.push_back({prev[i], prev[i + 1], cur[j]});
      ++i;
    } else {
      out.push_back({prev[i], cur[j + 1], cur[j]});
      ++j;
    }
  }
}

}  // namespace

StreamSurface compute_stream_surface(const VectorField& field,
                                     std::span<const Vec3> seed_curve,
                                     const StreamSurfaceParams& params) {
  StreamSurface surface;
  if (seed_curve.size() < 2) return surface;

  std::vector<FrontParticle> front;
  front.reserve(seed_curve.size());
  for (const Vec3& seed : seed_curve) {
    FrontParticle fp;
    fp.pos = seed;
    fp.h = params.integrator.h_init;
    fp.alive = field.bounds().contains(seed);
    fp.vertex = static_cast<std::uint32_t>(surface.vertices.size());
    surface.vertices.push_back(seed);
    front.push_back(fp);
  }

  for (std::size_t ring = 1; ring <= params.max_rings; ++ring) {
    const double target = static_cast<double>(ring) * params.ring_dt;

    // Previous ring's vertex ids of the still-alive contiguous runs.
    std::vector<std::uint32_t> prev_ids;
    prev_ids.reserve(front.size());
    for (const FrontParticle& fp : front) {
      if (fp.alive) prev_ids.push_back(fp.vertex);
    }
    if (prev_ids.size() < 2) break;  // surface has collapsed

    for (FrontParticle& fp : front) {
      if (fp.alive) advance_to(field, fp, target, params.integrator);
    }

    // Adaptive refinement: fill gaps that opened beyond split_distance
    // by seeding a fresh streamline at the midpoint of the *current*
    // ring (it has no surface history — it starts here).
    if (front.size() < params.max_front) {
      std::vector<FrontParticle> refined;
      refined.reserve(front.size() + 8);
      for (std::size_t i = 0; i < front.size(); ++i) {
        refined.push_back(front[i]);
        if (i + 1 < front.size() && front[i].alive && front[i + 1].alive &&
            refined.size() + (front.size() - i - 1) < params.max_front &&
            distance(front[i].pos, front[i + 1].pos) >
                params.split_distance) {
          FrontParticle mid;
          mid.pos = (front[i].pos + front[i + 1].pos) * 0.5;
          mid.time = target;
          mid.h = params.integrator.h_init;
          mid.alive = field.bounds().contains(mid.pos);
          if (mid.alive) {
            refined.push_back(mid);
            ++surface.inserted_streamlines;
          }
        }
      }
      front = std::move(refined);
    }

    // Emit this ring's vertices and stitch to the previous ring.
    std::vector<std::uint32_t> cur_ids;
    cur_ids.reserve(front.size());
    for (FrontParticle& fp : front) {
      if (!fp.alive) continue;
      fp.vertex = static_cast<std::uint32_t>(surface.vertices.size());
      surface.vertices.push_back(fp.pos);
      cur_ids.push_back(fp.vertex);
    }
    if (cur_ids.size() < 2) break;

    stitch(surface.vertices, prev_ids, cur_ids, surface.triangles);
    surface.rings = ring;
  }
  return surface;
}

}  // namespace sf
