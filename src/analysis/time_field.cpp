#include "analysis/time_field.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sf {

bool DoubleGyreField::sample(const Vec3& p, double t, Vec3& out) const {
  if (!bounds().contains(p)) return false;
  const double pi = 3.14159265358979323846;
  // f(x,t) = eps sin(wt) x^2 + (1 - 2 eps sin(wt)) x
  const double s = eps_ * std::sin(omega_ * t);
  const double f = s * p.x * p.x + (1.0 - 2.0 * s) * p.x;
  const double dfdx = 2.0 * s * p.x + (1.0 - 2.0 * s);
  out = {-pi * a_ * std::sin(pi * f) * std::cos(pi * p.y),
         pi * a_ * std::cos(pi * f) * std::sin(pi * p.y) * dfdx, 0.0};
  return true;
}

TimeSliceField::TimeSliceField(std::vector<DatasetPtr> slices,
                               std::vector<double> times)
    : slices_(std::move(slices)), times_(std::move(times)) {
  if (slices_.size() < 2 || slices_.size() != times_.size()) {
    throw std::invalid_argument(
        "TimeSliceField: need >= 2 slices with matching times");
  }
  if (!std::is_sorted(times_.begin(), times_.end())) {
    throw std::invalid_argument("TimeSliceField: times must be increasing");
  }
}

AABB TimeSliceField::bounds() const { return slices_.front()->bounds(); }

bool TimeSliceField::sample(const Vec3& p, double t, Vec3& out) const {
  if (t < times_.front() || t > times_.back()) return false;
  const auto hi =
      std::upper_bound(times_.begin(), times_.end(), t) - times_.begin();
  const std::size_t i1 =
      std::min(static_cast<std::size_t>(std::max<std::ptrdiff_t>(hi, 1)),
               times_.size() - 1);
  const std::size_t i0 = i1 - 1;

  Vec3 v0, v1;
  if (!slices_[i0]->sample(p, v0) || !slices_[i1]->sample(p, v1)) {
    return false;
  }
  const double span = times_[i1] - times_[i0];
  const double w = span > 0.0 ? (t - times_[i0]) / span : 0.0;
  out = v0 * (1.0 - w) + v1 * w;
  return true;
}

}  // namespace sf
