#include "analysis/unsteady_tracer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sf {

UnsteadyTracer::UnsteadyTracer(const BlockDecomposition* decomp,
                               std::vector<double> times,
                               const IntegratorParams& iparams,
                               const TraceLimits& limits)
    : decomp_(decomp),
      times_(std::move(times)),
      iparams_(iparams),
      limits_(limits) {
  if (decomp_ == nullptr) {
    throw std::invalid_argument("UnsteadyTracer: null decomposition");
  }
  if (times_.size() < 2 || !std::is_sorted(times_.begin(), times_.end())) {
    throw std::invalid_argument(
        "UnsteadyTracer: need >= 2 ascending slice times");
  }
}

int UnsteadyTracer::bracket_of(double t) const {
  const auto hi = std::upper_bound(times_.begin(), times_.end(), t);
  int s = static_cast<int>(hi - times_.begin()) - 1;
  // The last slice time belongs to the final bracket.
  return std::clamp(s, 0, num_slices() - 2);
}

bool UnsteadyTracer::needs(const Particle& particle, BlockId& lo,
                           BlockId& hi) const {
  if (particle.time < times_.front() || particle.time >= times_.back()) {
    return false;
  }
  const BlockId spatial = decomp_->block_of(particle.pos);
  if (spatial == kInvalidBlock) return false;
  const int s = bracket_of(particle.time);
  lo = encode({s, spatial});
  hi = encode({s + 1, spatial});
  return true;
}

AdvanceOutcome UnsteadyTracer::advance(
    Particle& particle, const SpacetimeAccessFn& blocks) const {
  AdvanceOutcome out;
  if (is_terminal(particle.status)) {
    out.status = particle.status;
    return out;
  }
  if (particle.h <= 0.0) particle.h = iparams_.h_init;

  const double t_end = std::min(limits_.max_time, times_.back());

  for (;;) {
    if (particle.time >= t_end) {
      particle.status = ParticleStatus::kMaxTime;
      break;
    }
    if (particle.steps >= limits_.max_steps) {
      particle.status = ParticleStatus::kMaxSteps;
      break;
    }

    const BlockId spatial = decomp_->block_of(particle.pos);
    if (spatial == kInvalidBlock) {
      particle.status = ParticleStatus::kExitedDomain;
      break;
    }

    const int s = bracket_of(particle.time);
    const BlockId id0 = encode({s, spatial});
    const BlockId id1 = encode({s + 1, spatial});
    const StructuredGrid* g0 = blocks(id0);
    const StructuredGrid* g1 = blocks(id1);
    if (g0 == nullptr || g1 == nullptr) {
      out.blocking_block = (g0 == nullptr) ? id0 : id1;
      out.status = ParticleStatus::kActive;
      return out;
    }

    const double t0 = times_[static_cast<std::size_t>(s)];
    const double t1 = times_[static_cast<std::size_t>(s) + 1];
    const double span = t1 - t0;

    // Linear interpolation between the two resident slice grids.  Both
    // grids cover the same ghost-inflated spatial extent, so stage
    // points near faces behave exactly like the steady tracer.
    const UnsteadySampleFn rhs = [&](const Vec3& p, double t, Vec3& v) {
      Vec3 v0, v1;
      out.evals += 1;
      if (!g0->sample(p, v0) || !g1->sample(p, v1)) return false;
      const double w =
          span > 0.0 ? std::clamp((t - t0) / span, 0.0, 1.0) : 0.0;
      v = v0 * (1.0 - w) + v1 * w;
      return true;
    };

    // Don't integrate past the bracket's end (the next bracket needs a
    // different block pair) nor past the global horizon.
    double h = particle.h;
    h = std::min(h, t1 - particle.time);
    h = std::min(h, t_end - particle.time);
    h = std::max(h, iparams_.h_min);

    const StepResult step =
        dopri5_step(rhs, particle.pos, particle.time, h, iparams_);
    if (step.status == StepStatus::kSampleFailed) {
      // At the rim of the data (boundary-block ghost regions clamp, so
      // this is the domain boundary).
      particle.status = ParticleStatus::kExitedDomain;
      break;
    }

    particle.pos = step.p;
    particle.time = step.t;
    particle.h = step.h_next;
    particle.steps += 1;
    particle.geometry_points += 1;
    out.steps += 1;
  }
  out.status = particle.status;
  return out;
}

TimeSliceBlockSource::TimeSliceBlockSource(std::vector<DatasetPtr> slices,
                                           std::size_t modelled_bytes)
    : slices_(std::move(slices)), modelled_bytes_(modelled_bytes) {
  if (slices_.size() < 2) {
    throw std::invalid_argument("TimeSliceBlockSource: need >= 2 slices");
  }
}

GridPtr TimeSliceBlockSource::load(BlockId id) const {
  const int nspatial = slices_.front()->num_blocks();
  const int slice = static_cast<int>(id) / nspatial;
  const BlockId spatial = static_cast<BlockId>(static_cast<int>(id) % nspatial);
  if (slice < 0 || slice >= static_cast<int>(slices_.size())) {
    throw std::out_of_range("TimeSliceBlockSource::load: bad slice");
  }
  return slices_[static_cast<std::size_t>(slice)]->block(spatial);
}

std::size_t TimeSliceBlockSource::block_bytes(BlockId) const {
  return modelled_bytes_ != 0 ? modelled_bytes_
                              : slices_.front()->block_payload_bytes();
}

int TimeSliceBlockSource::num_blocks() const {
  return static_cast<int>(slices_.size()) * slices_.front()->num_blocks();
}

}  // namespace sf
