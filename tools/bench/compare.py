#!/usr/bin/env python3
"""Diff two BENCH_advect.json runs and flag throughput regressions.

Usage:
    tools/bench/compare.py BASELINE.json CURRENT.json [--threshold=0.10]
                           [--warn-only]

Matches results by (kernel, seeding, cache), prints a ratio table, and exits
non-zero if any current rate falls more than --threshold (default 10%)
below the baseline.  --warn-only reports but always exits 0 — the CI
smoke job uses it because shared-runner timing is too noisy to gate on.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for r in doc.get("results", []):
        # Older runs predate the cache-regime axis; treat them as the
        # all-blocks-resident regime so baselines stay comparable.
        out[(r["kernel"], r["seeding"], r.get("cache", "resident"))] = r
    if not out:
        sys.exit(f"{path}: no results")
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed fractional slowdown (default 0.10)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    header = (f"{'cache':12} {'seeding':8} {'kernel':10} "
              f"{'baseline':>14} {'current':>14} {'ratio':>7}")
    print(header)
    print("-" * len(header))
    regressions = []
    for key in sorted(base):
        b = base[key]["particle_steps_per_sec"]
        c_entry = cur.get(key)
        if c_entry is None:
            regressions.append(f"{key}: missing from current run")
            continue
        c = c_entry["particle_steps_per_sec"]
        ratio = c / b
        flag = ""
        if ratio < 1.0 - args.threshold:
            flag = "  <-- REGRESSION"
            regressions.append(
                f"{key[2]}/{key[1]}/{key[0]}: {c:.3g} vs baseline {b:.3g} "
                f"({(1.0 - ratio) * 100:.1f}% slower)")
        print(f"{key[2]:12} {key[1]:8} {key[0]:10} "
              f"{b:14.4g} {c:14.4g} {ratio:7.3f}{flag}")
    for key in sorted(set(cur) - set(base)):
        print(f"{key[2]:12} {key[1]:8} {key[0]:10} {'(new)':>14} "
              f"{cur[key]['particle_steps_per_sec']:14.4g}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold * 100:.0f}%:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        if not args.warn_only:
            sys.exit(1)
        print("(--warn-only: not failing)", file=sys.stderr)
    else:
        print("\nno regressions beyond "
              f"{args.threshold * 100:.0f}% threshold")


if __name__ == "__main__":
    main()
