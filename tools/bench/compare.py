#!/usr/bin/env python3
"""Diff two bench JSON runs and flag regressions.

Usage:
    tools/bench/compare.py BASELINE.json CURRENT.json [--threshold=0.10]
                           [--warn-only] [--fail-on-regression]

Supports the bench schemas below, selected by the "bench" field in the
JSON.  A schema is a case key plus one or more gated metrics, each with
its own improvement direction:

  advect_throughput  keyed (kernel, seeding, cache); compares
                     particle_steps_per_sec, higher is better.
  io_overlap         keyed (algorithm, seeding, cache, mode); compares
                     wall_s, lower is better.
  service_load       keyed (scenario, cache); compares p99_latency_s
                     (lower is better) and hit_rate (higher is better).
  micro_core         google-benchmark JSON (the mailbox transport rows;
                     detected by its top-level "benchmarks" array);
                     keyed by benchmark name, compares items_per_second,
                     higher is better.
  scale_sweep        keyed (procs,); compares wall_s and
                     ctrl_msgs_per_rank, both lower is better.
  fault_straggler    keyed (algorithm, mode); compares wall_s, lower is
                     better — the mitigated row regressing past the
                     unmitigated row means straggler re-issue stopped
                     paying for itself.

Baseline rows marked "optional": true (the host-dependent simd cells)
are skipped with a note, not flagged, when the current run lacks them —
a baseline recorded on an AVX2 host must not fail on a host without.

Prints a ratio table (one row per case and metric) and exits non-zero if
any current value regresses more than --threshold (default 10%) past the
baseline.  --warn-only reports but always exits 0 — the CI smoke job
uses it because shared-runner timing is too noisy to gate on.
--fail-on-regression forces the non-zero exit even when --warn-only is
also given (for deterministic benches, like the simulated io_overlap and
service_load runs, that CAN be gated on).
"""

import argparse
import json
import sys

# bench name -> (key fields, [(metric field, higher is better), ...])
SCHEMAS = {
    "advect_throughput": (("kernel", "seeding", "cache"),
                          [("particle_steps_per_sec", True)]),
    "io_overlap": (("algorithm", "seeding", "cache", "mode"),
                   [("wall_s", False)]),
    "service_load": (("scenario", "cache"),
                     [("p99_latency_s", False), ("hit_rate", True)]),
    "micro_core": (("name",),
                   [("items_per_second", True)]),
    "scale_sweep": (("procs",),
                    [("wall_s", False), ("ctrl_msgs_per_rank", False)]),
    "fault_straggler": (("algorithm", "mode"),
                        [("wall_s", False)]),
}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" in doc and "bench" not in doc:
        # google-benchmark --benchmark_out JSON (bench/micro_core).
        out = {}
        for r in doc["benchmarks"]:
            if r.get("run_type", "iteration") != "iteration":
                continue  # skip aggregate (mean/median/stddev) rows
            out[(r["name"],)] = {"items_per_second": r["items_per_second"]}
        if not out:
            sys.exit(f"{path}: no results")
        return "micro_core", out, set()
    bench = doc.get("bench", "advect_throughput")
    if bench not in SCHEMAS:
        sys.exit(f"{path}: unknown bench kind {bench!r}")
    key_fields, metrics, = SCHEMAS[bench]
    out = {}
    optional = set()
    for r in doc.get("results", []):
        # Older advect runs predate the cache-regime axis; treat them as
        # the all-blocks-resident regime so baselines stay comparable.
        # Key fields may be numeric (scale_sweep keys on procs).
        key = tuple(str(r.get(f, "resident" if f == "cache" else None))
                    for f in key_fields)
        out[key] = {metric: r[metric] for metric, _ in metrics}
        if r.get("optional"):
            optional.add(key)
    if not out:
        sys.exit(f"{path}: no results")
    return bench, out, optional


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed fractional regression (default 0.10)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help="exit non-zero on regression even with --warn-only")
    args = ap.parse_args()

    base_bench, base, base_optional = load(args.baseline)
    cur_bench, cur, _ = load(args.current)
    if base_bench != cur_bench:
        sys.exit(f"bench kinds differ: baseline is {base_bench}, "
                 f"current is {cur_bench}")
    _, metrics = SCHEMAS[base_bench]

    key_width = max(len("/".join(k)) for k in list(base) + list(cur))
    metric_width = max(len(m) for m, _ in metrics)
    header = (f"{'case':{key_width}} {'metric':{metric_width}} "
              f"{'baseline':>14} {'current':>14} {'ratio':>7}")
    print(header)
    print("-" * len(header))
    regressions = []
    for key in sorted(base):
        name = "/".join(key)
        if key not in cur:
            if key in base_optional:
                print(f"{name:{key_width}} (optional, absent here: skipped)")
                continue
            regressions.append(f"{name}: missing from current run")
            continue
        for metric, higher_better in metrics:
            b = base[key][metric]
            c = cur[key][metric]
            ratio = c / b if b != 0 else float("inf")
            bad = (ratio < 1.0 - args.threshold if higher_better
                   else ratio > 1.0 + args.threshold)
            flag = ""
            if bad:
                flag = "  <-- REGRESSION"
                worse = (1.0 - ratio if higher_better else ratio - 1.0) * 100
                regressions.append(
                    f"{name}: {metric} {c:.4g} vs baseline {b:.4g} "
                    f"({worse:.1f}% worse)")
            print(f"{name:{key_width}} {metric:{metric_width}} "
                  f"{b:14.4g} {c:14.4g} {ratio:7.3f}{flag}")
    for key in sorted(set(cur) - set(base)):
        for metric, _ in metrics:
            print(f"{'/'.join(key):{key_width}} {metric:{metric_width}} "
                  f"{'(new)':>14} {cur[key][metric]:14.4g}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold * 100:.0f}%:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        if args.fail_on_regression or not args.warn_only:
            sys.exit(1)
        print("(--warn-only: not failing)", file=sys.stderr)
    else:
        print("\nno regressions beyond "
              f"{args.threshold * 100:.0f}% threshold")


if __name__ == "__main__":
    main()
