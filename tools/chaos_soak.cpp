// chaos_soak — randomized multi-fault soak harness (DESIGN.md §16).
//
// Each soak iteration draws a random fault schedule from a per-run seed:
// an algorithm, a crash MTBF, explicit gray slowdowns, disk fault /
// latency-inflation / corruption rates, message drops and a checkpoint
// cadence — then runs the experiment twice on the simulated machine:
// once fault-free (the oracle) and once under the schedule.  A run
// passes only if
//
//   * it completes (no invariant-checker violation, no unrecovered
//     fault, no OOM),
//   * every terminal streamline is bit-identical to the oracle's —
//     faults may cost time, never trajectories,
//   * every injected corruption was caught by the block checksum.
//
// Failing schedules are dumped as replayable seed files under --out-dir
// (key/value text, fully self-contained); `chaos_soak --replay=FILE`
// re-runs exactly that schedule, so a red nightly soak reproduces in one
// command.  All randomness flows through sf::Rng from --seed, so the
// whole soak is itself deterministic.
//
// Flags:
//   --runs=N       schedules to soak (default 50)
//   --seed=S       master seed (default 0xc4a05)
//   --procs=N      simulated ranks per run (default 16)
//   --count=N      streamlines per run (default 300)
//   --out-dir=DIR  where failing schedules are written (chaos_failures)
//   --replay=FILE  run one dumped schedule instead of soaking
//   --quick        smoke preset: 6 runs, 150 streamlines

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/driver.hpp"
#include "core/analytic_fields.hpp"
#include "core/rng.hpp"
#include "core/seeds.hpp"

namespace {

using namespace sf;

// One fully drawn fault schedule.  Times are stored relative to the
// oracle wall clock T (the oracle is deterministic, so relative times
// replay exactly); the file format below round-trips every field.
struct Schedule {
  std::uint64_t run_seed = 0;
  Algorithm algorithm = Algorithm::kHybridMasterSlave;
  int procs = 16;
  std::size_t num_seeds = 300;
  std::uint32_t max_steps = 400;
  std::size_t cache_blocks = 48;
  double mtbf_rel = 0.0;  // crash MTBF as a fraction of oracle T (0 = off)
  int max_crashes = 1;
  double checkpoint_rel = 0.0;
  std::vector<SlowdownEvent> slowdowns;  // .time is relative to T
  double corrupt_rate = 0.0;
  double disk_fault_rate = 0.0;
  double disk_slow_rate = 0.0;
  double drop_rate = 0.0;
};

Algorithm algorithm_from(const std::string& s) {
  if (s == "static-allocation") return Algorithm::kStaticAllocation;
  if (s == "load-on-demand") return Algorithm::kLoadOnDemand;
  return Algorithm::kHybridMasterSlave;
}

Schedule draw_schedule(std::uint64_t run_seed, int procs,
                       std::size_t num_seeds) {
  Rng rng(run_seed);
  Schedule s;
  s.run_seed = run_seed;
  s.procs = procs;
  s.num_seeds = num_seeds;
  const Algorithm algos[] = {Algorithm::kStaticAllocation,
                             Algorithm::kLoadOnDemand,
                             Algorithm::kHybridMasterSlave};
  s.algorithm = algos[rng.next_below(3)];
  if (rng.next_double() < 0.5) {
    s.mtbf_rel = rng.uniform(0.4, 1.5);
    s.max_crashes = 1 + static_cast<int>(rng.next_below(3));
  }
  if (rng.next_double() < 0.5) s.checkpoint_rel = 0.25;
  const std::uint64_t num_slow = rng.next_below(3);  // 0..2 gray victims
  for (std::uint64_t i = 0; i < num_slow; ++i) {
    SlowdownEvent ev;
    ev.rank = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(procs)));
    ev.time = rng.uniform(0.05, 0.5);  // relative to oracle T
    ev.factor = rng.uniform(2.0, 12.0);
    s.slowdowns.push_back(ev);
  }
  if (rng.next_double() < 0.5) s.corrupt_rate = rng.uniform(5e-4, 5e-3);
  if (rng.next_double() < 0.3) s.disk_fault_rate = 1e-3;
  if (rng.next_double() < 0.3) s.disk_slow_rate = rng.uniform(5e-3, 5e-2);
  if (rng.next_double() < 0.3) s.drop_rate = 1e-3;
  // A schedule with nothing to inject soaks nothing: force one gray
  // slowdown so every iteration exercises the fault plane.
  if (s.mtbf_rel == 0.0 && s.slowdowns.empty() && s.corrupt_rate == 0.0 &&
      s.disk_fault_rate == 0.0 && s.disk_slow_rate == 0.0 &&
      s.drop_rate == 0.0) {
    s.slowdowns.push_back(
        {.time = 0.1,
         .rank = static_cast<int>(rng.next_below(
             static_cast<std::uint64_t>(procs))),
         .factor = 8.0});
  }
  return s;
}

void write_schedule(const Schedule& s, std::ostream& out) {
  out << "run_seed " << s.run_seed << '\n'
      << "algorithm " << to_string(s.algorithm) << '\n'
      << "procs " << s.procs << '\n'
      << "num_seeds " << s.num_seeds << '\n'
      << "max_steps " << s.max_steps << '\n'
      << "cache_blocks " << s.cache_blocks << '\n'
      << "mtbf_rel " << s.mtbf_rel << '\n'
      << "max_crashes " << s.max_crashes << '\n'
      << "checkpoint_rel " << s.checkpoint_rel << '\n'
      << "corrupt_rate " << s.corrupt_rate << '\n'
      << "disk_fault_rate " << s.disk_fault_rate << '\n'
      << "disk_slow_rate " << s.disk_slow_rate << '\n'
      << "drop_rate " << s.drop_rate << '\n';
  for (const SlowdownEvent& ev : s.slowdowns) {
    out << "slowdown " << ev.rank << ' ' << ev.time << ' ' << ev.factor
        << '\n';
  }
}

bool read_schedule(const std::string& path, Schedule& s) {
  std::ifstream in(path);
  if (!in) return false;
  std::string key;
  while (in >> key) {
    if (key == "run_seed") in >> s.run_seed;
    else if (key == "algorithm") {
      std::string v;
      in >> v;
      s.algorithm = algorithm_from(v);
    } else if (key == "procs") in >> s.procs;
    else if (key == "num_seeds") in >> s.num_seeds;
    else if (key == "max_steps") in >> s.max_steps;
    else if (key == "cache_blocks") in >> s.cache_blocks;
    else if (key == "mtbf_rel") in >> s.mtbf_rel;
    else if (key == "max_crashes") in >> s.max_crashes;
    else if (key == "checkpoint_rel") in >> s.checkpoint_rel;
    else if (key == "corrupt_rate") in >> s.corrupt_rate;
    else if (key == "disk_fault_rate") in >> s.disk_fault_rate;
    else if (key == "disk_slow_rate") in >> s.disk_slow_rate;
    else if (key == "drop_rate") in >> s.drop_rate;
    else if (key == "slowdown") {
      SlowdownEvent ev;
      in >> ev.rank >> ev.time >> ev.factor;
      s.slowdowns.push_back(ev);
    } else {
      std::cerr << "unknown schedule key '" << key << "' in " << path
                << '\n';
      return false;
    }
  }
  return true;
}

bool particles_identical(const std::vector<Particle>& a,
                         const std::vector<Particle>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Particle& x = a[i];
    const Particle& y = b[i];
    if (x.id != y.id || x.status != y.status || x.steps != y.steps ||
        x.time != y.time || x.h != y.h || x.pos.x != y.pos.x ||
        x.pos.y != y.pos.y || x.pos.z != y.pos.z) {
      return false;
    }
  }
  return true;
}

struct SoakContext {
  const BlockDecomposition* decomp = nullptr;
  const BlockSource* source = nullptr;
  std::vector<Vec3> seeds;
};

// Run one schedule end to end.  Returns true on pass; `why` explains a
// failure.
bool run_schedule(const SoakContext& ctx, const Schedule& s,
                  std::string& why) {
  ExperimentConfig base;
  base.algorithm = s.algorithm;
  base.runtime.num_ranks = s.procs;
  base.runtime.model = MachineModel::jaguar_like();
  base.runtime.cache_blocks = s.cache_blocks;
  base.limits.max_time = 15.0;
  base.limits.max_steps = s.max_steps;

  RunMetrics oracle;
  try {
    oracle = run_experiment(base, *ctx.decomp, *ctx.source, ctx.seeds);
  } catch (const std::exception& e) {
    why = std::string("oracle run threw: ") + e.what();
    return false;
  }
  const double T = oracle.wall_clock;

  ExperimentConfig cfg = base;
  FaultConfig& fc = cfg.runtime.fault;
  fc.rng_seed = s.run_seed;
  fc.mtbf = s.mtbf_rel * T;
  fc.max_crashes = s.max_crashes;
  fc.checkpoint_interval = s.checkpoint_rel * T;
  for (SlowdownEvent ev : s.slowdowns) {
    ev.time *= T;
    fc.slowdowns.push_back(ev);
  }
  fc.corrupt_rate = s.corrupt_rate;
  fc.disk_fault_rate = s.disk_fault_rate;
  fc.disk_slow_rate = s.disk_slow_rate;
  fc.message_drop_rate = s.drop_rate;

  RunMetrics m;
  try {
    m = run_experiment(cfg, *ctx.decomp, *ctx.source, ctx.seeds);
  } catch (const std::exception& e) {
    why = std::string("fault run threw: ") + e.what();
    return false;
  }
  if (m.failed_oom) {
    why = "fault run aborted: OOM";
    return false;
  }
  if (m.failed_fault) {
    why = "fault run aborted: unrecovered fault";
    return false;
  }
  if (!particles_identical(oracle.particles, m.particles)) {
    why = "terminal streamlines differ from the fault-free oracle";
    return false;
  }
  const FaultStats& fs = m.fault;
  if (fs.corruptions_detected != fs.corruptions_injected) {
    std::ostringstream os;
    os << "corruption slipped past the checksum: injected "
       << fs.corruptions_injected << ", detected " << fs.corruptions_detected;
    why = os.str();
    return false;
  }
  std::ostringstream os;
  os << "wall " << m.wall_clock << "s vs oracle " << T << "s; crashes "
     << fs.crashes_injected << ", slowdowns " << fs.slowdowns_injected
     << ", corruptions " << fs.corruptions_injected << ", drops "
     << fs.messages_dropped << ", flagged " << fs.stragglers_flagged;
  why = os.str();  // pass note, not a failure
  return true;
}

std::string describe(const Schedule& s) {
  std::ostringstream os;
  os << to_string(s.algorithm) << " mtbf_rel=" << s.mtbf_rel << " slow="
     << s.slowdowns.size() << " corrupt=" << s.corrupt_rate << " disk="
     << s.disk_fault_rate << "/" << s.disk_slow_rate << " drop="
     << s.drop_rate << " ckpt=" << s.checkpoint_rel;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  int runs = 50;
  std::uint64_t master_seed = 0xc4a05;
  int procs = 16;
  std::size_t count = 300;
  std::string out_dir = "chaos_failures";
  std::string replay;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--runs=", 0) == 0) {
      runs = std::atoi(arg.substr(7).c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      master_seed =
          static_cast<std::uint64_t>(std::atoll(arg.substr(7).c_str()));
    } else if (arg.rfind("--procs=", 0) == 0) {
      procs = std::atoi(arg.substr(8).c_str());
    } else if (arg.rfind("--count=", 0) == 0) {
      count = static_cast<std::size_t>(std::atoll(arg.substr(8).c_str()));
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(10);
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay = arg.substr(9);
    } else if (arg == "--quick") {
      runs = 6;
      count = 150;
    } else {
      std::cerr << "unknown flag: " << arg << '\n';
      return 2;
    }
  }

  auto field = std::make_shared<SupernovaField>();
  const BlockDecomposition decomp(field->bounds(), 6, 6, 6);  // 216 blocks
  auto dataset = std::make_shared<BlockedDataset>(
      field, decomp, /*nodes_per_axis=*/9, /*ghost_cells=*/2);
  const DatasetBlockSource source(dataset, /*modelled_bytes=*/12u << 20);

  SoakContext ctx;
  ctx.decomp = &decomp;
  ctx.source = &source;
  Rng seed_rng(2026);
  ctx.seeds = random_seeds(field->bounds(), count, seed_rng);

  if (!replay.empty()) {
    Schedule s;
    if (!read_schedule(replay, s)) {
      std::cerr << "cannot read schedule file " << replay << '\n';
      return 2;
    }
    std::cout << "replay " << replay << ": " << describe(s) << '\n';
    std::string why;
    const bool ok = run_schedule(ctx, s, why);
    std::cout << (ok ? "PASS: " : "FAIL: ") << why << '\n';
    return ok ? 0 : 1;
  }

  int failures = 0;
  std::uint64_t mix = master_seed;
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t run_seed = splitmix64(mix);
    const Schedule s = draw_schedule(run_seed, procs, count);
    std::string why;
    const bool ok = run_schedule(ctx, s, why);
    std::cout << (ok ? "pass" : "FAIL") << " run " << i << " seed="
              << run_seed << "  " << describe(s) << "\n      " << why
              << '\n';
    if (!ok) {
      ++failures;
      std::filesystem::create_directories(out_dir);
      const std::string path =
          out_dir + "/chaos_" + std::to_string(run_seed) + ".schedule";
      std::ofstream out(path);
      write_schedule(s, out);
      std::cout << "      schedule dumped; reproduce with: chaos_soak "
                << "--replay=" << path << '\n';
    }
  }
  std::cout << '\n' << (runs - failures) << "/" << runs
            << " schedules survived\n";
  return failures == 0 ? 0 : 1;
}
