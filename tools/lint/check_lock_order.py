#!/usr/bin/env python3
"""Lock-order lint for streamflow.

The runtime enforces a total lock order at Debug time (sf::Mutex ranks,
src/core/thread_annotations.hpp); this lint enforces the same order —
plus the annotation discipline that makes it work — statically, so a
violation fails CI even on paths no test happens to execute.

Rules (waivable per site with `// lock-order-lint: ignores <rule>` on
the offending line or the line above):

  raw-mutex       std::mutex / std::condition_variable / std::lock_guard
                  / std::unique_lock / std::scoped_lock anywhere under
                  src/ outside core/thread_annotations.hpp.  Raw mutexes
                  are invisible to both the thread-safety analysis and
                  the rank checker; all locking goes through sf::Mutex.

  raw-atomic      An explicit memory_order_* argument or a
                  std::atomic_thread_fence / atomic_signal_fence call
                  without an adjacent `// lockfree-lint: spsc` marker
                  (same line or within 8 lines above) whose comment
                  states the happens-before argument (it must mention
                  one of: happens-before, pairs with, owns, Dekker).
                  Raw atomics are the one concurrency tool the rank
                  checker cannot see at all; the marker pins the proof
                  obligation to the site so a reviewer — and this lint —
                  can hold each ordering to its documented pairing.
                  The lock-free mailbox plane (runtime/spsc_ring.hpp)
                  and the cancel-set fast path are the intended users.

  unranked-mutex  An sf::Mutex member constructed without an explicit
                  LockRank.  Unranked mutexes opt out of the runtime
                  order check, which defeats the registry.

  missing-guard   An sf::Mutex member that no SF_GUARDED_BY / SF_REQUIRES
                  in its class refers to.  A mutex that guards nothing is
                  either dead or — worse — guarding state the annotations
                  do not know about.

  order           A lock acquisition (MutexLock site or SF_REQUIRES
                  context) while already holding a mutex of an equal or
                  higher LockRank.  Mirrors the Debug runtime check:
                  ranks must be strictly increasing along any acquisition
                  chain.

  cycle           A cycle in the acquisition graph built from all
                  acquired-while-holding edges (including edges between
                  unranked mutexes, which the rank rule cannot see).

The acquisition graph is built from the sources listed in
build*/compile_commands.json when present (headers always included);
SF_REQUIRES annotations seed the held set of out-of-line definitions via
the declarations in headers.

Exit status 0 when clean, 1 with one line per finding otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

from lintutil import (is_waived, line_of, match_brace, parse_waivers,
                      source_files, strip_comments_and_strings)

FINDINGS: list[str] = []

TOOL = "lock-order"

RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")

RAW_ATOMIC_RE = re.compile(
    r"\bmemory_order_(?:relaxed|consume|acquire|release|acq_rel|seq_cst)\b"
    r"|\batomic_(?:thread|signal)_fence\s*\(")

# The atomics waiver class: an explicit marker within reach of the site,
# plus a stated happens-before rationale somewhere in the marker-to-site
# comment block.
SPSC_MARKER = "lockfree-lint: spsc"
SPSC_MARKER_REACH = 8  # lines above the site the marker may sit
SPSC_RATIONALE_RE = re.compile(
    r"happens?[- ](?:before|after)|pairs? with|pairing|\bowns\b|Dekker",
    re.IGNORECASE)

MUTEX_DECL_RE = re.compile(
    r"\b(?:sf::)?Mutex\s+(\w+)\s*(\{[^;{}]*\}|=[^;]*)?;")

ACQUIRE_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*([\w.\->]+)\s*\)")

REQUIRES_RE = re.compile(r"\bSF_REQUIRES\s*\(([^)]*)\)")


def report(path: pathlib.Path, line: int, msg: str) -> None:
    FINDINGS.append(f"{path}:{line}: {msg}")


def parse_lock_ranks(annotations_hpp: str) -> dict[str, int]:
    """LockRank enumerator -> numeric value, from thread_annotations.hpp."""
    clean = strip_comments_and_strings(annotations_hpp)
    m = re.search(r"enum\s+class\s+LockRank[^{]*\{([^}]*)\}", clean)
    if not m:
        sys.exit("check_lock_order: cannot find LockRank enum in "
                 "thread_annotations.hpp")
    ranks: dict[str, int] = {}
    for item in m.group(1).split(","):
        em = re.match(r"\s*(k\w+)\s*=\s*(-?\d+)", item)
        if em:
            ranks[em.group(1)] = int(em.group(2))
    if not ranks:
        sys.exit("check_lock_order: LockRank enum parsed empty")
    return ranks


def class_ranges(clean: str) -> list[tuple[str, int, int]]:
    """(name, body_open, body_close) for each class/struct definition."""
    out = []
    for m in re.finditer(
            r"\b(?:class|struct)\s+(?:SF_\w+\s*\([^)]*\)\s*)?(\w+)"
            r"[^;{()]*\{", clean):
        out.append((m.group(1), m.end() - 1, match_brace(clean, m.end() - 1)))
    return out


def innermost_class(classes: list[tuple[str, int, int]], pos: int) -> str:
    best = ""
    best_span = None
    for name, lo, hi in classes:
        if lo <= pos < hi:
            span = hi - lo
            if best_span is None or span < best_span:
                best, best_span = name, span
    return best


def member_name(expr: str) -> str:
    """`cache.mu_` / `self->mu_` / `mu_` -> `mu_`."""
    return re.split(r"\.|->", expr)[-1].strip()


class Registry:
    """Accumulates mutex declarations and acquisition edges repo-wide."""

    def __init__(self, ranks: dict[str, int]) -> None:
        self.rank_values = ranks
        # node ("Class::member") -> (rank value or None, decl site)
        self.nodes: dict[str, tuple[int | None, str]] = {}
        # member -> set of owning classes (for cross-class resolution)
        self.by_member: dict[str, set[str]] = {}
        # (held_node, acquired_node) -> first site
        self.edges: dict[tuple[str, str], str] = {}

    def declare(self, owner: str, member: str, rank: int | None,
                site: str) -> None:
        self.nodes[f"{owner}::{member}"] = (rank, site)
        self.by_member.setdefault(member, set()).add(owner)

    def resolve(self, owner: str, expr: str) -> str:
        """Best-effort node id for a lock expression seen inside `owner`."""
        member = member_name(expr)
        if f"{owner}::{member}" in self.nodes:
            return f"{owner}::{member}"
        owners = self.by_member.get(member, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}::{member}"
        return f"?::{member}"

    def rank_of(self, node: str) -> int | None:
        entry = self.nodes.get(node)
        return entry[0] if entry else None


def scan_declarations(reg: Registry, rel: pathlib.Path, raw: str, clean: str,
                      waivers: dict[int, set[str]]) -> None:
    classes = class_ranges(clean)
    for m in MUTEX_DECL_RE.finditer(clean):
        owner = innermost_class(classes, m.start())
        if not owner:
            continue  # local or free mutex; acquisition scan still sees it
        line = line_of(clean, m.start())
        init = m.group(2) or ""
        rank = None
        rm = re.search(r"LockRank::(k\w+)", init)
        if rm and rm.group(1) in reg.rank_values:
            rank = reg.rank_values[rm.group(1)]
        if rank is None and not is_waived(waivers, line, "unranked-mutex"):
            report(rel, line,
                   f"sf::Mutex '{owner}::{m.group(1)}' has no explicit "
                   f"LockRank — unranked mutexes bypass the runtime order "
                   f"check (rule: unranked-mutex)")
        reg.declare(owner, m.group(1), rank, f"{rel}:{line}")
        # missing-guard: some SF_GUARDED_BY/SF_REQUIRES in the class body
        # must name this mutex.
        cls = next((c for c in classes
                    if c[0] == owner and c[1] <= m.start() < c[2]), None)
        if cls is not None:
            body = clean[cls[1]:cls[2]]
            if not re.search(
                    r"SF_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES(?:_SHARED)?|"
                    r"EXCLUDES|ACQUIRE|RELEASE)\s*\(\s*" +
                    re.escape(m.group(1)) + r"\s*\)", body) \
                    and not is_waived(waivers, line, "missing-guard"):
                report(rel, line,
                       f"sf::Mutex '{owner}::{m.group(1)}' guards nothing: "
                       f"no SF_GUARDED_BY / SF_REQUIRES in the class names "
                       f"it (rule: missing-guard)")


def requires_decl_map(files: list[dict]) -> dict[tuple[str, str], list[str]]:
    """(class, method) -> SF_REQUIRES mutexes, from header declarations."""
    out: dict[tuple[str, str], list[str]] = {}
    for f in files:
        clean = f["clean"]
        classes = f["classes"]
        for m in REQUIRES_RE.finditer(clean):
            # Declaration if a ';' comes before any '{' after the REQUIRES.
            tail = clean[m.end():m.end() + 200]
            semi, brace = tail.find(";"), tail.find("{")
            if semi < 0 or (0 <= brace < semi):
                continue
            owner = innermost_class(classes, m.start())
            if not owner:
                continue
            # The method name: last identifier before the '(' preceding
            # this annotation's argument list's matching signature.
            head = clean[:m.start()]
            sig = re.search(r"(\w+)\s*\([^()]*(?:\([^()]*\)[^()]*)*\)"
                            r"(?:\s*const)?\s*$", head)
            if not sig:
                continue
            mutexes = [member_name(x)
                       for x in m.group(1).split(",") if x.strip()]
            out.setdefault((owner, sig.group(1)), []).extend(mutexes)
    return out


def scan_acquisitions(reg: Registry, f: dict,
                      decl_requires: dict[tuple[str, str], list[str]]) -> None:
    """Collect acquired-while-holding edges in one file."""
    clean, classes, rel = f["clean"], f["classes"], f["rel"]

    # Held intervals: (start, end, node) — SF_REQUIRES on definitions and
    # out-of-line definitions of annotated declarations.
    held: list[tuple[int, int, str]] = []

    for m in REQUIRES_RE.finditer(clean):
        tail = clean[m.end():m.end() + 200]
        brace = tail.find("{")
        semi = tail.find(";")
        if brace < 0 or (0 <= semi < brace):
            continue  # declaration, not definition
        open_idx = m.end() + brace
        close = match_brace(clean, open_idx)
        owner = innermost_class(classes, m.start())
        for x in m.group(1).split(","):
            if x.strip():
                held.append((open_idx, close,
                             reg.resolve(owner, member_name(x))))

    for m in re.finditer(r"\b(\w+)::(~?\w+)\s*\([^()]*(?:\([^()]*\)[^()]*)*\)"
                         r"[^;{}]*\{", clean):
        key = (m.group(1), m.group(2))
        if key not in decl_requires:
            continue
        open_idx = m.end() - 1
        close = match_brace(clean, open_idx)
        for mu in decl_requires[key]:
            held.append((open_idx, close, reg.resolve(m.group(1), mu)))

    # MutexLock scopes: held from the acquisition to the end of the
    # innermost enclosing brace.
    braces = [(i, match_brace(clean, i))
              for i, ch in enumerate(clean) if ch == "{"]

    acquisitions = []
    for m in ACQUIRE_RE.finditer(clean):
        pos = m.start()
        owner = ""
        # Owner class: out-of-line `Class::method` context wins over the
        # lexical class (lambdas aside, there is no other nesting).
        head = clean[:pos]
        qm = None
        for qm_i in re.finditer(
                r"\b(\w+)::(~?\w+)\s*\([^()]*(?:\([^()]*\)[^()]*)*\)"
                r"[^;{}]*\{", head):
            qm = qm_i
        if qm is not None and match_brace(clean, qm.end() - 1) > pos:
            owner = qm.group(1)
        if not owner:
            owner = innermost_class(classes, pos)
        node = reg.resolve(owner, m.group(1))
        enclosing = [b for b in braces if b[0] < pos < b[1]]
        end = min((b[1] for b in enclosing), default=len(clean))
        acquisitions.append((pos, end, node))

    for pos, end, node in acquisitions:
        line = line_of(clean, pos)
        site = f"{rel}:{line}"
        for hlo, hhi, hnode in held:
            if hlo <= pos < hhi and hnode != node:
                reg.edges.setdefault((hnode, node), site)
        for apos, aend, anode in acquisitions:
            if apos < pos < aend and anode != node:
                reg.edges.setdefault((anode, node), site)
        f["acquire_sites"].append((line, node))


def check_order(reg: Registry,
                waivers_by_rel: dict[pathlib.Path, dict[int, set[str]]]
                ) -> None:
    for (held, acquired), site in sorted(reg.edges.items()):
        hrank, arank = reg.rank_of(held), reg.rank_of(acquired)
        if hrank is None or arank is None:
            continue
        if arank <= hrank:
            rel_str, line_str = site.rsplit(":", 1)
            waivers = waivers_by_rel.get(pathlib.Path(rel_str), {})
            if is_waived(waivers, int(line_str), "order"):
                continue
            FINDINGS.append(
                f"{site}: acquires '{acquired}' (rank {arank}) while "
                f"holding '{held}' (rank {hrank}) — lock ranks must be "
                f"strictly increasing (rule: order)")


def check_cycles(reg: Registry) -> None:
    graph: dict[str, list[str]] = {}
    for held, acquired in reg.edges:
        graph.setdefault(held, []).append(acquired)

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    stack: list[str] = []

    def dfs(n: str) -> list[str] | None:
        color[n] = GRAY
        stack.append(n)
        for nxt in graph.get(n, []):
            c = color.get(nxt, WHITE)
            if c == GRAY:
                return stack[stack.index(nxt):] + [nxt]
            if c == WHITE:
                color.setdefault(nxt, WHITE)
                cyc = dfs(nxt)
                if cyc is not None:
                    return cyc
        color[n] = BLACK
        stack.pop()
        return None

    for n in list(graph):
        if color.get(n, WHITE) == WHITE:
            cyc = dfs(n)
            if cyc is not None:
                sites = [reg.edges[(cyc[i], cyc[i + 1])]
                         for i in range(len(cyc) - 1)]
                FINDINGS.append(
                    "lock acquisition cycle: " + " -> ".join(cyc) +
                    " (sites: " + ", ".join(sites) + ") (rule: cycle)")
                return  # one cycle is enough to fail; keep output short


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels up)")
    ap.add_argument("--files", nargs="*", type=pathlib.Path, default=None,
                    help="lint exactly these files instead of src/ "
                         "(fixture self-tests)")
    args = ap.parse_args()

    annotations = args.root / "src" / "core" / "thread_annotations.hpp"
    ranks = parse_lock_ranks(annotations.read_text())

    if args.files is not None:
        paths = [p.resolve() for p in args.files]
    else:
        paths = source_files(args.root)

    reg = Registry(ranks)
    files = []
    waivers_by_rel: dict[pathlib.Path, dict[int, set[str]]] = {}
    for path in paths:
        raw = path.read_text()
        clean = strip_comments_and_strings(raw)
        try:
            rel = path.relative_to(args.root)
        except ValueError:
            rel = path
        waivers = parse_waivers(raw, TOOL)
        waivers_by_rel[rel] = waivers
        files.append({"rel": rel, "raw": raw, "clean": clean,
                      "classes": class_ranges(clean),
                      "waivers": waivers, "acquire_sites": []})

        if path != annotations.resolve():
            for m in RAW_MUTEX_RE.finditer(clean):
                line = line_of(clean, m.start())
                if is_waived(waivers, line, "raw-mutex"):
                    continue
                report(rel, line,
                       f"raw std::{m.group(1)} — use sf::Mutex / "
                       f"sf::MutexLock / sf::CondVar so the thread-safety "
                       f"analysis and the rank checker see it "
                       f"(rule: raw-mutex)")

        raw_lines = raw.splitlines()
        for m in RAW_ATOMIC_RE.finditer(clean):
            line = line_of(clean, m.start())
            if is_waived(waivers, line, "raw-atomic"):
                continue
            marker_line = None
            for cand in range(line, max(0, line - SPSC_MARKER_REACH - 1),
                              -1):
                if cand <= len(raw_lines) and \
                        SPSC_MARKER in raw_lines[cand - 1]:
                    marker_line = cand
                    break
            if marker_line is None:
                report(rel, line,
                       f"explicit atomic ordering without a "
                       f"`// {SPSC_MARKER}` marker on the line or within "
                       f"{SPSC_MARKER_REACH} lines above — every raw "
                       f"atomic site must carry its happens-before "
                       f"argument (rule: raw-atomic)")
                continue
            block = "\n".join(raw_lines[marker_line - 1:line])
            if not SPSC_RATIONALE_RE.search(block):
                report(rel, line,
                       f"`// {SPSC_MARKER}` marker at line {marker_line} "
                       f"states no happens-before argument (mention the "
                       f"pairing: happens-before / pairs with / owns / "
                       f"Dekker) (rule: raw-atomic)")

        scan_declarations(reg, rel, raw, clean, waivers)

    decl_requires = requires_decl_map(files)
    for f in files:
        scan_acquisitions(reg, f, decl_requires)

    check_order(reg, waivers_by_rel)
    check_cycles(reg)

    for f in FINDINGS:
        print(f)
    n_sites = sum(len(f["acquire_sites"]) for f in files)
    print(f"check_lock_order: {len(reg.nodes)} mutexes, {n_sites} "
          f"acquisition sites, {len(reg.edges)} order edges, "
          f"{len(FINDINGS)} problem(s)")
    return 1 if FINDINGS else 0


if __name__ == "__main__":
    sys.exit(main())
