#!/usr/bin/env python3
"""Determinism lint for streamflow.

The reproduction's central guarantee is bit-identical results across
runtimes, rank counts and schedules (DESIGN.md §5.1, §9).  This lint
flags the source patterns that silently break that guarantee long before
a golden test catches the drift.

Rules (waivable per site with `// determinism-lint: ignores <rule>` on
the offending line or the line above):

  unordered-iteration   Iterating an unordered_map / unordered_set whose
                        loop body feeds an ordering-sensitive sink —
                        message emission (send/deliver/push_back/
                        emplace_back), journals, metrics or stream
                        output.  Hash-order is unspecified and varies
                        across libc++/libstdc++ and across runs with
                        hardened hashing; anything emitted from such a
                        loop must iterate an ordered container or sort
                        first.

  wall-clock            std::chrono::system_clock, time(), gettimeofday,
                        localtime/gmtime/strftime/ctime/asctime or
                        clock() in src/.  Wall-clock values differ per
                        run; simulated/virtual time or steady_clock
                        durations (allowed) are the deterministic
                        alternatives.

  address-identity      Pointer values used as identity: %p in a format
                        string, ordered containers keyed on pointers
                        (iteration order = allocation order), or
                        reinterpret_cast of a pointer to an integer.
                        ASLR makes addresses differ every run.

  unseeded-rng          std::rand / srand / std::random_device /
                        default-constructible std library engines.  All
                        randomness goes through sf::Rng with an explicit
                        seed.  (Moved here from check_protocol.py —
                        nondeterministic randomness is a determinism bug,
                        not a protocol bug.)

Files come from build*/compile_commands.json when present (headers
always included); see lintutil.source_files.

Exit status 0 when clean, 1 with one line per finding otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

from lintutil import (is_waived, line_of, match_brace, parse_waivers,
                      source_files, strip_comments_and_strings)

FINDINGS: list[str] = []

TOOL = "determinism"

# Sinks that make hash-order observable: anything that emits, orders or
# records. Matched inside the loop body.
SINK_RE = re.compile(
    r"\b(?:send|deliver|push_back|emplace_back|journal\w*|record\w*|"
    r"log\w*|write\w*|print\w*|emit\w*)\s*\(|<<")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;=]*?>\s+(\w+)")

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"),
     "std::chrono::system_clock is wall-clock; use simulated time or "
     "steady_clock durations"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(?:nullptr|NULL|0|&\w+)?\s*\)"),
     "time() reads the wall clock"),
    (re.compile(r"\bgettimeofday\s*\("),
     "gettimeofday reads the wall clock"),
    (re.compile(r"\b(?:localtime|gmtime|strftime|ctime|asctime)\s*\("),
     "calendar-time formatting depends on the wall clock (and locale)"),
    (re.compile(r"(?<![\w.:>])clock\s*\(\s*\)"),
     "clock() measures real CPU time; use simulated time"),
]

# Searched in the RAW text: %p lives inside string literals, which the
# comment/string stripper blanks out.
ADDRESS_RAW_PATTERNS = [
    (re.compile(r"%p\b"),
     "%p prints a pointer value; ASLR changes it every run"),
]

ADDRESS_PATTERNS = [
    (re.compile(r"\b(?:std::)?(?:map|set|multimap|multiset)\s*<\s*"
                r"(?:const\s+)?\w[\w:]*(?:\s*<[^<>]*>)?\s*\*\s*[,>]"),
     "ordered container keyed on a pointer: iteration order follows "
     "allocation addresses"),
    (re.compile(r"reinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"),
     "pointer-to-integer cast creates an address-derived value"),
]

RNG_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*rand\b|(?<![\w:])rand\s*\("),
     "std::rand is unseeded/global; use sf::Rng with an explicit seed"),
    (re.compile(r"\bsrand\s*\("),
     "srand hides the seed in global state; pass a seed to sf::Rng"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic; thread an explicit seed"),
    (re.compile(r"\b(mt19937(_64)?|default_random_engine|minstd_rand0?)\b"),
     "std library engines are banned in src/; use sf::Rng (explicit seed)"),
]


def report(path: pathlib.Path, line: int, msg: str, rule: str) -> None:
    FINDINGS.append(f"{path}:{line}: {msg} (rule: {rule})")


def simple_patterns(rel: pathlib.Path, raw: str, clean: str,
                    waivers: dict[int, set[str]]) -> None:
    for patterns, text, rule in [
            (WALL_CLOCK_PATTERNS, clean, "wall-clock"),
            (ADDRESS_PATTERNS, clean, "address-identity"),
            (ADDRESS_RAW_PATTERNS, raw, "address-identity"),
            (RNG_PATTERNS, clean, "unseeded-rng")]:
        for pattern, why in patterns:
            for m in pattern.finditer(text):
                line = line_of(text, m.start())
                if not is_waived(waivers, line, rule):
                    report(rel, line, why, rule)


def unordered_iteration(rel: pathlib.Path, clean: str,
                        waivers: dict[int, set[str]]) -> None:
    """Loops over unordered containers whose body feeds a sink."""
    # Every name declared as an unordered container anywhere in the file
    # (member or local).  Type-based, so renames stay covered.
    unordered = set(UNORDERED_DECL_RE.findall(clean))

    for m in re.finditer(r"\bfor\s*\(", clean):
        close = match_paren(clean, m.end() - 1)
        if close < 0:
            continue
        header = clean[m.end():close]
        target = None
        # Range-for over the container (with or without .items-style
        # accessor chains) ...
        rm = re.search(r":\s*([\w.\->]+)\s*$", header.strip())
        if rm:
            target = re.split(r"\.|->", rm.group(1))[-1]
        else:
            # ... or an iterator-for: `it = name.begin()`.
            im = re.search(r"=\s*([\w.\->]+)\s*\.\s*c?begin\s*\(", header)
            if im:
                target = re.split(r"\.|->", im.group(1))[-1]
        if target is None or target not in unordered:
            continue
        open_idx = clean.find("{", close)
        if open_idx < 0:
            continue
        body = clean[open_idx:match_brace(clean, open_idx)]
        if not SINK_RE.search(body):
            continue
        line = line_of(clean, m.start())
        if is_waived(waivers, line, "unordered-iteration"):
            continue
        report(rel, line,
               f"iterates unordered container '{target}' into an "
               f"ordering-sensitive sink; iterate an ordered container "
               f"or sort before emitting", "unordered-iteration")


def match_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels up)")
    ap.add_argument("--files", nargs="*", type=pathlib.Path, default=None,
                    help="lint exactly these files instead of src/ "
                         "(fixture self-tests)")
    args = ap.parse_args()

    if args.files is not None:
        paths = [p.resolve() for p in args.files]
    else:
        paths = source_files(args.root)

    scanned = 0
    for path in paths:
        raw = path.read_text()
        clean = strip_comments_and_strings(raw)
        try:
            rel = path.relative_to(args.root)
        except ValueError:
            rel = path
        waivers = parse_waivers(raw, TOOL)
        scanned += 1
        simple_patterns(rel, raw, clean, waivers)
        unordered_iteration(rel, clean, waivers)

    for f in FINDINGS:
        print(f)
    print(f"check_determinism: {scanned} files, {len(FINDINGS)} problem(s)")
    return 1 if FINDINGS else 0


if __name__ == "__main__":
    sys.exit(main())
