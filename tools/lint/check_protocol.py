#!/usr/bin/env python3
"""Protocol lint for streamflow.

Static checks that clang-tidy cannot express, run in CI next to it:

1. Message-dispatch completeness.  The alternatives of the Message payload
   variant are parsed out of src/runtime/message.hpp.  Every on_message()
   *definition* in src/ must either mention each alternative (via
   std::get_if<X> / std::holds_alternative<X>) or carry an explicit waiver
   comment inside the function body:

       // protocol-lint: ignores StatusUpdate, Command

   Waivers are per-function and name the kinds that rank deliberately
   drops, so adding a ninth message kind fails the lint everywhere until
   each dispatcher either handles it or documents why it will not.

2. Command::Type switch exhaustiveness.  Any switch whose body contains
   `case Command::Type::k...` labels must cover every enumerator or have
   a default: label.

3. No naked new / delete in src/ (RAII only; `= delete` declarations and
   comments/strings are excluded).

4. Payload-kind side-table completeness.  Every variant alternative must
   have an operator()(const X&) in message.cpp's ByteSizer (the network
   cost model) and in invariants.cpp's payload Namer (checker
   diagnostics).  Adding a message kind — the failover control plane
   added MasterBeacon and ControlAck — without costing and naming it
   fails the lint, not the first faulted run.

5. Service control-plane coverage.  The streamline service owns every
   Query*-prefixed message kind (QuerySubmit, QueryCancel, QueryResult,
   QueryDone); each must be constructed somewhere under src/service/, so
   a service kind cannot be declared in the variant yet never journalled
   — and conversely a Query* kind constructed outside src/service/ is a
   layering violation (ranks never exchange query control traffic).

6. Tree-coordination coverage.  The master-tree kinds (SeedRelay) belong
   to the hybrid algorithm: each must be constructed in
   src/algorithms/hybrid.cpp and nowhere else — only a root master
   brokers seed demand, so a relay minted by another layer would bypass
   the brokering invariants (single relay in flight, no re-escalation).

Randomness hygiene (unseeded RNG / wall-clock engines) lives in
check_determinism.py, next to the other sources of nondeterminism.

Translation units come from build*/compile_commands.json when present
(headers are always globbed); see lintutil.source_files.

Exit status 0 when clean, 1 with one line per finding otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

from lintutil import (line_of, match_brace, source_files,
                      strip_comments_and_strings)

FINDINGS: list[str] = []


def report(path: pathlib.Path, line: int, msg: str) -> None:
    FINDINGS.append(f"{path}:{line}: {msg}")


def parse_message_alternatives(message_hpp: str) -> list[str]:
    clean = strip_comments_and_strings(message_hpp)
    m = re.search(r"std::variant<([^;]*?)>\s*\n?\s*payload\s*;", clean,
                  re.DOTALL)
    if not m:
        sys.exit("check_protocol: cannot find Message payload variant in "
                 "message.hpp")
    names = [a.strip() for a in m.group(1).split(",")]
    if not all(re.fullmatch(r"\w+", a) for a in names):
        sys.exit(f"check_protocol: unparsable variant alternatives: {names}")
    return names


def parse_command_enumerators(message_hpp: str) -> list[str]:
    clean = strip_comments_and_strings(message_hpp)
    m = re.search(r"enum\s+class\s+Type\s*:[^{]*\{([^}]*)\}", clean)
    if not m:
        sys.exit("check_protocol: cannot find Command::Type enum in "
                 "message.hpp")
    return re.findall(r"\bk\w+", m.group(1))


def parse_load_states(async_loader_hpp: str) -> list[str]:
    clean = strip_comments_and_strings(async_loader_hpp)
    m = re.search(r"enum\s+class\s+LoadState\s*:[^{]*\{([^}]*)\}", clean)
    if not m:
        sys.exit("check_protocol: cannot find LoadState enum in "
                 "async_loader.hpp")
    return re.findall(r"\bk\w+", m.group(1))


def check_dispatch(path: pathlib.Path, raw: str, clean: str,
                   alternatives: list[str]) -> int:
    """Returns the number of on_message definitions found in this file."""
    count = 0
    for m in re.finditer(r"\bon_message\s*\(", clean):
        close = clean.find(")", m.end())
        if close < 0:
            continue
        after = clean[close + 1:close + 120]
        brace_rel = re.match(r"[\s\w]*\{", after)
        if not brace_rel:  # pure-virtual declaration or call site
            continue
        body_open = close + 1 + brace_rel.end() - 1
        body_end = match_brace(clean, body_open)
        body = clean[body_open:body_end]
        # Waivers live in comments (blanked in `clean`), so read them from
        # the raw text of the same region — strip is length-preserving.
        raw_body = raw[body_open:body_end]
        waived: set[str] = set()
        for w in re.finditer(r"protocol-lint:\s*ignores[ \t]+([^\n]*)",
                             raw_body):
            waived.update(x for x in re.split(r"[,\s]+", w.group(1)) if x)
        count += 1
        for alt in alternatives:
            handled = re.search(
                r"(?:get_if|holds_alternative)\s*<\s*" + alt + r"\s*>", body)
            if not handled and alt not in waived:
                report(path, line_of(clean, m.start()),
                       f"on_message neither handles nor waives message kind "
                       f"'{alt}' (add std::get_if<{alt}> handling or a "
                       f"'// protocol-lint: ignores {alt}' comment)")
        for extra in waived - set(alternatives):
            report(path, line_of(clean, m.start()),
                   f"protocol-lint waiver names unknown message kind "
                   f"'{extra}'")
    return count


def check_command_switches(path: pathlib.Path, clean: str,
                           enumerators: list[str]) -> None:
    for m in re.finditer(r"\bswitch\s*\(", clean):
        open_idx = clean.find("{", m.end())
        if open_idx < 0:
            continue
        body = clean[open_idx:match_brace(clean, open_idx)]
        if "Command::Type::" not in body:
            continue
        if re.search(r"\bdefault\s*:", body):
            continue
        covered = set(re.findall(r"case\s+Command::Type::(k\w+)", body))
        for missing in [e for e in enumerators if e not in covered]:
            report(path, line_of(clean, m.start()),
                   f"switch on Command::Type misses case {missing} and has "
                   f"no default")


def check_load_state_switches(path: pathlib.Path, clean: str,
                              states: list[str]) -> None:
    # The async loader's request lifecycle is a state machine; a switch
    # that silently skips a LoadState is how a kCancelled or kFailed
    # request leaks out of the accounting.  Same completeness rule as
    # Command::Type: cover every enumerator or carry a default.
    for m in re.finditer(r"\bswitch\s*\(", clean):
        open_idx = clean.find("{", m.end())
        if open_idx < 0:
            continue
        body = clean[open_idx:match_brace(clean, open_idx)]
        if "LoadState::" not in body:
            continue
        if re.search(r"\bdefault\s*:", body):
            continue
        covered = set(re.findall(r"case\s+LoadState::(k\w+)", body))
        for missing in [s for s in states if s not in covered]:
            report(path, line_of(clean, m.start()),
                   f"switch on LoadState misses case {missing} and has "
                   f"no default")


def check_naked_new_delete(path: pathlib.Path, clean: str) -> None:
    for m in re.finditer(r"\bnew\b(?!\s*\()", clean):
        report(path, line_of(clean, m.start()),
               "naked 'new' (use std::make_unique / containers)")
    for m in re.finditer(r"\bdelete\b(?:\s*\[\s*\])?", clean):
        before = clean[:m.start()].rstrip()
        if before.endswith("="):  # deleted special member function
            continue
        if before.endswith("operator"):
            continue
        report(path, line_of(clean, m.start()),
               "naked 'delete' (use RAII ownership)")


def check_payload_side_table(path: pathlib.Path, clean: str,
                             alternatives: list[str], table: str) -> None:
    """Every payload kind needs an operator()(const X&) overload here."""
    for alt in alternatives:
        if not re.search(r"operator\s*\(\s*\)\s*\(\s*const\s+" + alt + r"\s*&",
                         clean):
            report(path, 1,
                   f"{table} has no operator()(const {alt}&) overload — "
                   f"every Message payload kind must be covered")


def check_service_kinds(files: list[pathlib.Path], root: pathlib.Path,
                        alternatives: list[str]) -> None:
    """Query* payload kinds belong to the service layer, both ways."""
    service_kinds = [a for a in alternatives if a.startswith("Query")]
    if not service_kinds:
        return
    service_dir = root / "src" / "service"
    service_text = "".join(
        strip_comments_and_strings(p.read_text())
        for p in files if service_dir in p.parents)
    for kind in service_kinds:
        if not re.search(r"\b" + kind + r"\s*\{", service_text):
            report(pathlib.Path("src/service"), 1,
                   f"service message kind '{kind}' is never constructed "
                   f"under src/service/ — journal it or drop it from the "
                   f"Message variant")
    for path in files:
        if service_dir in path.parents:
            continue
        if path.name in ("message.hpp", "message.cpp", "invariants.cpp"):
            continue  # variant declaration and the side tables
        clean = strip_comments_and_strings(path.read_text())
        for kind in service_kinds:
            for m in re.finditer(r"\b" + kind + r"\s*\{", clean):
                report(path.relative_to(root), line_of(clean, m.start()),
                       f"service message kind '{kind}' constructed outside "
                       f"src/service/ — query control traffic never rides "
                       f"rank links")


TREE_KINDS = ["SeedRelay"]


def check_tree_kinds(files: list[pathlib.Path], root: pathlib.Path,
                     alternatives: list[str]) -> None:
    """Master-tree payload kinds belong to the hybrid algorithm, both ways."""
    kinds = [a for a in alternatives if a in TREE_KINDS]
    owner = root / "src" / "algorithms" / "hybrid.cpp"
    owner_text = strip_comments_and_strings(owner.read_text())
    for kind in kinds:
        if not re.search(r"\b" + kind + r"\s*\{", owner_text):
            report(pathlib.Path("src/algorithms/hybrid.cpp"), 1,
                   f"tree message kind '{kind}' is never constructed by the "
                   f"hybrid algorithm — wire it up or drop it from the "
                   f"Message variant")
    for path in files:
        if path == owner:
            continue
        if path.name in ("message.hpp", "message.cpp", "invariants.cpp"):
            continue  # variant declaration and the side tables
        clean = strip_comments_and_strings(path.read_text())
        for kind in kinds:
            for m in re.finditer(r"\b" + kind + r"\s*\{", clean):
                report(path.relative_to(root), line_of(clean, m.start()),
                       f"tree message kind '{kind}' constructed outside "
                       f"src/algorithms/hybrid.cpp — only root masters "
                       f"broker seed demand")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels up)")
    args = ap.parse_args()

    src = args.root / "src"
    message_hpp = (src / "runtime" / "message.hpp").read_text()
    alternatives = parse_message_alternatives(message_hpp)
    enumerators = parse_command_enumerators(message_hpp)
    load_states = parse_load_states(
        (src / "io" / "async_loader.hpp").read_text())

    files = source_files(args.root)
    dispatchers = 0
    for path in files:
        raw = path.read_text()
        clean = strip_comments_and_strings(raw)
        rel = path.relative_to(args.root)
        dispatchers += check_dispatch(rel, raw, clean, alternatives)
        check_command_switches(rel, clean, enumerators)
        check_load_state_switches(rel, clean, load_states)
        check_naked_new_delete(rel, clean)

    for rel_path, table in [
        (pathlib.Path("src/runtime/message.cpp"), "ByteSizer"),
        (pathlib.Path("src/check/invariants.cpp"), "payload Namer"),
    ]:
        clean = strip_comments_and_strings((args.root / rel_path).read_text())
        check_payload_side_table(rel_path, clean, alternatives, table)

    check_service_kinds(files, args.root, alternatives)
    check_tree_kinds(files, args.root, alternatives)

    if dispatchers == 0:
        FINDINGS.append("check_protocol: found no on_message definitions — "
                        "the dispatch scan is broken")

    for f in FINDINGS:
        print(f)
    print(f"check_protocol: {dispatchers} dispatchers, "
          f"{len(alternatives)} message kinds, "
          f"{len(enumerators)} command types, "
          f"{len(load_states)} load states, "
          f"{len(FINDINGS)} problem(s)")
    return 1 if FINDINGS else 0


if __name__ == "__main__":
    sys.exit(main())
