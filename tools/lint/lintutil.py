"""Shared plumbing for the streamflow lint scripts.

check_protocol.py, check_lock_order.py and check_determinism.py all walk
the same C++ sources with the same comment-stripper; this module keeps
one copy of that machinery:

 - strip_comments_and_strings / match_brace / line_of: the lightweight
   length-preserving C++ scanners,
 - source_files: the shared file loader — the .cpp list comes from the
   compilation database (build/compile_commands.json) when one exists,
   so generated or excluded sources cannot drift out of lint coverage,
   with a plain rglob fallback for a fresh checkout,
 - parse_waivers / is_waived: the per-site waiver comment syntax shared
   by every lint (`// <tool>-lint: ignores <rule>[, <rule>...]`, on the
   offending line or the line directly above it).
"""

from __future__ import annotations

import json
import pathlib
import re


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals with spaces.

    Length-preserving (newlines kept), so an offset into the result is the
    same offset into the original text.  Good enough for lint purposes;
    does not handle raw strings with custom delimiters (none in this
    codebase).
    """
    out = list(text)

    def blank(lo: int, hi: int) -> None:
        for j in range(lo, min(hi, len(out))):
            if out[j] != "\n":
                out[j] = " "

    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            start = i
            while i < n and text[i] != "\n":
                i += 1
            blank(start, i)
        elif c == "/" and nxt == "*":
            start = i
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                i += 1
            i += 2
            blank(start, i)
        elif c in "\"'":
            quote = c
            start = i
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
            blank(start + 1, i - 1)
        else:
            i += 1
    return "".join(out)


def match_brace(text: str, open_idx: int) -> int:
    """Index one past the brace that closes text[open_idx] == '{'."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def line_of(text: str, idx: int) -> int:
    return text.count("\n", 0, idx) + 1


def compile_commands_sources(root: pathlib.Path) -> set[pathlib.Path] | None:
    """The src/ .cpp files listed in a compilation database, or None.

    Looks for build*/compile_commands.json and a root-level copy; the
    first parsable database containing src/ entries wins.
    """
    src = (root / "src").resolve()
    candidates = sorted(root.glob("build*/compile_commands.json"))
    candidates.append(root / "compile_commands.json")
    for cand in candidates:
        if not cand.is_file():
            continue
        try:
            entries = json.loads(cand.read_text())
        except ValueError:
            continue
        found: set[pathlib.Path] = set()
        for entry in entries:
            f = pathlib.Path(entry.get("file", ""))
            if not f.is_absolute():
                f = pathlib.Path(entry.get("directory", ".")) / f
            try:
                f = f.resolve()
            except OSError:
                continue
            if src in f.parents and f.suffix == ".cpp" and f.is_file():
                found.add(f)
        if found:
            return found
    return None


def source_files(root: pathlib.Path) -> list[pathlib.Path]:
    """Every lintable source under root/src, sorted.

    Translation units come from the compilation database when one exists
    (so the lints see exactly what the compiler sees); headers are not in
    the database and are always globbed.  Without a database — fresh
    checkout, no configure yet — everything is globbed.
    """
    src = root / "src"
    cpps = compile_commands_sources(root)
    if cpps is None:
        cpps = set(src.rglob("*.cpp"))
    return sorted(cpps | set(src.rglob("*.hpp")))


def parse_waivers(raw: str, tool: str) -> dict[int, set[str]]:
    """Per-line waiver comments for one lint tool.

    `// <tool>-lint: ignores rule-a, rule-b` maps that line number to the
    named rules.  Matches anywhere in the line, so both trailing comments
    and whole-line comments work.
    """
    waived: dict[int, set[str]] = {}
    pattern = re.compile(re.escape(tool) + r"-lint:\s*ignores[ \t]+(.+)")
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = pattern.search(line)
        if m:
            rules = {x for x in re.split(r"[,\s]+", m.group(1)) if x}
            waived.setdefault(lineno, set()).update(rules)
    return waived


def is_waived(waivers: dict[int, set[str]], line: int, rule: str) -> bool:
    """A finding is waived by a comment on its line or the line above."""
    return any(rule in waivers.get(ln, set()) for ln in (line, line - 1))
