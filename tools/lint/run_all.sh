#!/usr/bin/env bash
# Run every streamflow lint in one shot — the entry point both CI jobs
# and developers use, so the two can never drift apart:
#
#   tools/lint/run_all.sh [build-dir]
#
# Runs the three python lints (protocol, lock-order, determinism), their
# fixture self-test, and — when run-clang-tidy and a compile database
# are available — clang-tidy over src/.  The python lints read the
# translation-unit list from <build-dir>/compile_commands.json when
# present and fall back to globbing src/ otherwise, so the script works
# on a fresh checkout too.  Exit 0 iff everything passed.

set -u
root="$(cd "$(dirname "$0")/../.." && pwd)"
build="${1:-$root/build}"
fail=0

for lint in check_protocol check_lock_order check_determinism; do
  echo "== $lint =="
  python3 "$root/tools/lint/$lint.py" --root "$root" || fail=1
done

echo "== lint fixture self-test =="
python3 "$root/tests/lint/test_lints.py" || fail=1

if command -v run-clang-tidy >/dev/null 2>&1 \
    && [ -f "$build/compile_commands.json" ]; then
  echo "== clang-tidy =="
  run-clang-tidy -quiet -p "$build" "$root/src/.*" || fail=1
else
  echo "== clang-tidy skipped (need run-clang-tidy on PATH and" \
       "$build/compile_commands.json) =="
fi

exit $fail
