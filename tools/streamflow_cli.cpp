// streamflow — command-line front end to the library.
//
// Subcommands:
//   make-dataset  sample an analytic field onto a block store on disk
//   info          print a block store's manifest and block census
//   trace         trace streamlines over a block store, write VTK
//   experiment    run one parallel-algorithm experiment on the simulated
//                 machine and print its metrics
//
// Run `streamflow <subcommand> --help` for the flags of each.

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "algorithms/driver.hpp"
#include "core/analytic_fields.hpp"
#include "core/seeds.hpp"
#include "core/tracer.hpp"
#include "io/block_store.hpp"
#include "io/csv.hpp"
#include "io/vtk_writer.hpp"

namespace {

using sf::Vec3;

// ---------------------------------------------------------------------------
// Tiny flag parser: --key=value pairs plus positional arguments.
// ---------------------------------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const auto eq = arg.find('=');
        const std::string key =
            eq == std::string::npos ? std::string(arg, 2)
                                    : std::string(arg, 2, eq - 2);
        std::string value =
            eq == std::string::npos ? std::string("1")
                                    : std::string(arg, eq + 1);
        values_[key] = std::move(value);
      } else {
        positional_.push_back(arg);
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  long get_long(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }
  bool has(const std::string& key) const { return values_.count(key) != 0; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

sf::FieldPtr make_field(const std::string& name) {
  if (name == "supernova") return std::make_shared<sf::SupernovaField>();
  if (name == "tokamak") return std::make_shared<sf::TokamakField>();
  if (name == "thermal") {
    return std::make_shared<sf::ThermalHydraulicsField>();
  }
  if (name == "abc") return std::make_shared<sf::ABCField>();
  if (name == "rotor") return std::make_shared<sf::RotorField>();
  std::cerr << "unknown field '" << name
            << "' (expected supernova|tokamak|thermal|abc|rotor)\n";
  std::exit(2);
}

std::vector<Vec3> make_seeds(const Flags& flags, const sf::AABB& bounds) {
  const std::string kind = flags.get("seeds", "random");
  const auto count = static_cast<std::size_t>(flags.get_long("count", 100));
  sf::Rng rng(static_cast<std::uint64_t>(flags.get_long("seed", 7)));
  if (kind == "random") return sf::random_seeds(bounds, count, rng);
  if (kind == "grid") {
    const int n = std::max(1, static_cast<int>(std::cbrt(
                                  static_cast<double>(count))));
    return sf::uniform_grid_seeds(bounds, n, n, n);
  }
  if (kind == "cluster") {
    const Vec3 c = bounds.center();
    return sf::cluster_seeds(c, flags.get_double("sigma", 0.1), count, rng,
                             bounds);
  }
  std::cerr << "unknown seeds '" << kind
            << "' (expected random|grid|cluster)\n";
  std::exit(2);
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

int cmd_make_dataset(const Flags& flags) {
  if (flags.has("help")) {
    std::cout << "streamflow make-dataset --out=DIR [--field=supernova] "
                 "[--blocks=4] [--nodes=9] [--ghost=2]\n";
    return 0;
  }
  const std::string out = flags.get("out", "");
  if (out.empty()) {
    std::cerr << "make-dataset: --out=DIR is required\n";
    return 2;
  }
  const auto field = make_field(flags.get("field", "supernova"));
  const int blocks = static_cast<int>(flags.get_long("blocks", 4));
  const int nodes = static_cast<int>(flags.get_long("nodes", 9));
  const int ghost = static_cast<int>(flags.get_long("ghost", 2));

  const sf::BlockDecomposition decomp(field->bounds(), blocks, blocks,
                                      blocks);
  const sf::BlockedDataset dataset(field, decomp, nodes, ghost);
  sf::BlockStore::write(out, dataset);
  std::cout << "wrote " << decomp.num_blocks() << " blocks ("
            << dataset.block_payload_bytes() / 1024 << " KiB each) to "
            << out << '\n';
  return 0;
}

int cmd_info(const Flags& flags) {
  if (flags.has("help") || flags.positional().empty()) {
    std::cout << "streamflow info STORE_DIR\n";
    return flags.has("help") ? 0 : 2;
  }
  const sf::BlockStore store(flags.positional()[0]);
  const auto& d = store.decomposition();
  std::cout << "block store: " << flags.positional()[0] << '\n'
            << "  domain:   " << d.domain().lo << " .. " << d.domain().hi
            << '\n'
            << "  blocks:   " << d.nbx() << " x " << d.nby() << " x "
            << d.nbz() << " = " << d.num_blocks() << '\n'
            << "  nodes:    " << store.nodes_per_axis() << " per axis + "
            << store.ghost_cells() << " ghost cells\n"
            << "  block[0]: " << store.block_file_bytes(0) << " bytes on disk\n";
  return 0;
}

int cmd_trace(const Flags& flags) {
  if (flags.has("help")) {
    std::cout << "streamflow trace --store=DIR | --field=NAME "
                 "[--seeds=random|grid|cluster] [--count=100] "
                 "[--max-time=10] [--max-steps=5000] [--tol=1e-6] "
                 "[--out=lines.vtk]\n";
    return 0;
  }
  if (flags.has("store")) {
    // The store is pure data (no analytic field to rebuild a
    // BlockedDataset from), so trace directly over its blocks.
    const auto store =
        std::make_shared<sf::BlockStore>(flags.get("store", ""));
    const auto& d = store->decomposition();
    std::vector<sf::GridPtr> grids;
    for (sf::BlockId b = 0; b < d.num_blocks(); ++b) {
      grids.push_back(store->load_block(b));
    }
    sf::IntegratorParams iparams;
    iparams.tol = flags.get_double("tol", 1e-6);
    sf::TraceLimits limits;
    limits.max_time = flags.get_double("max-time", 10.0);
    limits.max_steps =
        static_cast<std::uint32_t>(flags.get_long("max-steps", 5000));
    sf::Tracer t(&d, iparams, limits);

    const auto seeds = make_seeds(flags, d.domain());
    sf::PolylineRecorder recorder(seeds.size());
    std::size_t terminated = 0;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      sf::Particle p;
      p.id = static_cast<std::uint32_t>(i);
      p.pos = seeds[i];
      if (d.block_of(p.pos) == sf::kInvalidBlock) continue;
      const auto out = t.advance(
          p, [&grids](sf::BlockId b) { return grids[b].get(); }, &recorder);
      if (is_terminal(out.status)) ++terminated;
    }
    const std::string out = flags.get("out", "lines.vtk");
    sf::write_vtk_polylines(out, recorder.lines());
    std::cout << "traced " << terminated << "/" << seeds.size()
              << " streamlines from store -> " << out << '\n';
    return 0;
  }

  const auto field = make_field(flags.get("field", "supernova"));
  const int blocks = static_cast<int>(flags.get_long("blocks", 4));
  const auto dataset2 = std::make_shared<sf::BlockedDataset>(
      field, sf::BlockDecomposition(field->bounds(), blocks, blocks, blocks),
      static_cast<int>(flags.get_long("nodes", 9)),
      static_cast<int>(flags.get_long("ghost", 2)));

  sf::IntegratorParams iparams;
  iparams.tol = flags.get_double("tol", 1e-6);
  sf::TraceLimits limits;
  limits.max_time = flags.get_double("max-time", 10.0);
  limits.max_steps =
      static_cast<std::uint32_t>(flags.get_long("max-steps", 5000));

  const auto seeds = make_seeds(flags, field->bounds());
  sf::PolylineRecorder recorder(seeds.size());
  const auto particles =
      sf::trace_all(*dataset2, seeds, iparams, limits, &recorder);
  const std::string out = flags.get("out", "lines.vtk");
  sf::write_vtk_polylines(out, recorder.lines());
  std::cout << "traced " << particles.size() << " streamlines -> " << out
            << '\n';
  return 0;
}

int cmd_experiment(const Flags& flags) {
  if (flags.has("help")) {
    std::cout << "streamflow experiment [--field=supernova] "
                 "[--algorithm=hybrid|static|lod] [--procs=64] "
                 "[--blocks=8] [--count=2000] [--seeds=random] "
                 "[--cache=48] [--block-mb=12] [--max-steps=1500] "
                 "[--max-time=15] [--no-geometry]\n"
                 "  runtime selection:\n"
                 "    --runtime=sim|threads   simulated machine (default) or\n"
                 "                            one OS thread per rank\n"
                 "  asynchronous block I/O (DESIGN.md §10):\n"
                 "    --async-io              overlap block reads with compute\n"
                 "    --io-workers=N          loader threads (threads runtime)\n"
                 "    --prefetch-depth=N      in-flight prefetches per rank\n"
                 "    --staging=N             staged prefetched grids per rank\n"
                 "    --schedule-fuzz=SEED    threads only: seeded random\n"
                 "                            yields/sleeps at mailbox and\n"
                 "                            cache boundaries (0 = off)\n"
                 "  fault injection / checkpoint / restart:\n"
                 "    --mtbf=SECONDS          mean time between rank crashes\n"
                 "    --max-crashes=N         cap on random crashes (default 1)\n"
                 "    --crash=R@T[,R@T...]    explicit crashes: rank R at time T\n"
                 "    --disk-fault-rate=P     per-read failure probability\n"
                 "    --drop-rate=P           particle-message drop probability\n"
                 "  gray failures (slow-but-alive, DESIGN.md §16):\n"
                 "    --slow-rank=R@T@F[,...] rank R computes F times slow "
                 "from time T\n"
                 "    --gray-mtbf=SECONDS     mean time between random "
                 "slowdowns\n"
                 "    --corrupt-rate=P        per-read silent bit-flip "
                 "probability\n"
                 "    --disk-slow-rate=P      per-read latency-inflation "
                 "probability\n"
                 "    --heartbeat=SECONDS     slave status period; straggler\n"
                 "                            detection needs ~3 periods of "
                 "progress\n"
                 "    --checkpoint-interval=S checkpoint every S simulated secs\n"
                 "    --checkpoint-out=FILE   write the latest checkpoint here\n"
                 "    --restart-from=FILE     resume from a checkpoint file\n"
                 "    --fault-seed=N          fault injector RNG seed\n";
    return 0;
  }
  const auto field = make_field(flags.get("field", "supernova"));
  const int blocks = static_cast<int>(flags.get_long("blocks", 8));
  const sf::BlockDecomposition decomp(field->bounds(), blocks, blocks,
                                      blocks);
  const auto dataset = std::make_shared<sf::BlockedDataset>(
      field, decomp, static_cast<int>(flags.get_long("nodes", 9)),
      static_cast<int>(flags.get_long("ghost", 2)));
  const sf::DatasetBlockSource source(
      dataset,
      static_cast<std::size_t>(flags.get_long("block-mb", 12)) << 20);

  sf::ExperimentConfig cfg;
  const std::string algo = flags.get("algorithm", "hybrid");
  if (algo == "hybrid") {
    cfg.algorithm = sf::Algorithm::kHybridMasterSlave;
  } else if (algo == "static") {
    cfg.algorithm = sf::Algorithm::kStaticAllocation;
  } else if (algo == "lod") {
    cfg.algorithm = sf::Algorithm::kLoadOnDemand;
  } else {
    std::cerr << "unknown algorithm '" << algo << "'\n";
    return 2;
  }
  cfg.runtime.num_ranks = static_cast<int>(flags.get_long("procs", 64));
  cfg.runtime.model = sf::MachineModel::jaguar_like();
  cfg.runtime.cache_blocks =
      static_cast<std::size_t>(flags.get_long("cache", 48));
  cfg.runtime.carry_geometry = !flags.has("no-geometry");
  cfg.runtime.async_io.enabled = flags.has("async-io");
  cfg.runtime.async_io.workers =
      static_cast<int>(flags.get_long("io-workers", 2));
  cfg.runtime.async_io.prefetch_depth =
      static_cast<int>(flags.get_long("prefetch-depth", 2));
  cfg.runtime.async_io.staging_blocks =
      static_cast<std::size_t>(flags.get_long("staging", 4));
  cfg.limits.max_time = flags.get_double("max-time", 15.0);
  cfg.limits.max_steps =
      static_cast<std::uint32_t>(flags.get_long("max-steps", 1500));

  sf::FaultConfig& fc = cfg.runtime.fault;
  fc.mtbf = flags.get_double("mtbf", 0.0);
  fc.max_crashes = static_cast<int>(flags.get_long("max-crashes", 1));
  fc.disk_fault_rate = flags.get_double("disk-fault-rate", 0.0);
  fc.message_drop_rate = flags.get_double("drop-rate", 0.0);
  fc.checkpoint_interval = flags.get_double("checkpoint-interval", 0.0);
  fc.checkpoint_path = flags.get("checkpoint-out", "");
  fc.gray_mtbf = flags.get_double("gray-mtbf", 0.0);
  fc.corrupt_rate = flags.get_double("corrupt-rate", 0.0);
  fc.disk_slow_rate = flags.get_double("disk-slow-rate", 0.0);
  fc.heartbeat_period = flags.get_double("heartbeat", fc.heartbeat_period);
  fc.rng_seed =
      static_cast<std::uint64_t>(flags.get_long("fault-seed", 0xfa017LL));
  cfg.restart_from = flags.get("restart-from", "");
  // --crash=rank@time[,rank@time...] — deterministic crash schedule.
  const std::string crash_list = flags.get("crash", "");
  for (std::size_t at = 0; at < crash_list.size();) {
    const std::size_t comma = crash_list.find(',', at);
    const std::string item = crash_list.substr(
        at, comma == std::string::npos ? std::string::npos : comma - at);
    const std::size_t sep = item.find('@');
    try {
      if (sep == std::string::npos) throw std::invalid_argument(item);
      fc.crashes.push_back({.time = std::stod(item.substr(sep + 1)),
                            .rank = std::stoi(item.substr(0, sep))});
    } catch (const std::exception&) {
      std::cerr << "bad --crash entry '" << item << "' (want rank@time)\n";
      return 2;
    }
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  // --slow-rank=rank@time@factor[,...] — deterministic gray slowdowns.
  const std::string slow_list = flags.get("slow-rank", "");
  for (std::size_t at = 0; at < slow_list.size();) {
    const std::size_t comma = slow_list.find(',', at);
    const std::string item = slow_list.substr(
        at, comma == std::string::npos ? std::string::npos : comma - at);
    const std::size_t sep1 = item.find('@');
    const std::size_t sep2 =
        sep1 == std::string::npos ? std::string::npos
                                  : item.find('@', sep1 + 1);
    try {
      if (sep2 == std::string::npos) throw std::invalid_argument(item);
      fc.slowdowns.push_back(
          {.time = std::stod(item.substr(sep1 + 1, sep2 - sep1 - 1)),
           .rank = std::stoi(item.substr(0, sep1)),
           .factor = std::stod(item.substr(sep2 + 1))});
    } catch (const std::exception&) {
      std::cerr << "bad --slow-rank entry '" << item
                << "' (want rank@time@factor)\n";
      return 2;
    }
    if (comma == std::string::npos) break;
    at = comma + 1;
  }

  cfg.schedule_fuzz_seed =
      static_cast<std::uint64_t>(flags.get_long("schedule-fuzz", 0));
  const std::string runtime_kind = flags.get("runtime", "sim");
  if (runtime_kind != "sim" && runtime_kind != "threads") {
    std::cerr << "unknown runtime '" << runtime_kind
              << "' (expected sim|threads)\n";
    return 2;
  }

  const auto seeds = make_seeds(flags, field->bounds());
  sf::RunMetrics m;
  try {
    m = runtime_kind == "threads"
            ? run_experiment_threads(cfg, decomp, source, seeds)
            : run_experiment(cfg, decomp, source, seeds);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';  // e.g. a bad checkpoint
    return 1;
  }

  sf::Table table({"metric", "value"});
  table.add_row({std::string("status"),
                 std::string(m.failed_oom   ? "OOM"
                             : m.failed_fault ? "failed"
                                              : "ok")});
  table.add_row({std::string("wall clock [s]"), m.wall_clock});
  table.add_row({std::string("total I/O time [s]"), m.total_io_time()});
  table.add_row({std::string("total comm time [s]"), m.total_comm_time()});
  table.add_row(
      {std::string("total compute time [s]"), m.total_compute_time()});
  table.add_row({std::string("block efficiency E"), m.block_efficiency()});
  table.add_row({std::string("cache hit rate"), m.cache_hit_rate()});
  table.add_row({std::string("total stall time [s]"), m.total_stall_time()});
  table.add_row({std::string("blocks loaded"),
                 static_cast<long long>(m.total_blocks_loaded())});
  table.add_row({std::string("blocks purged"),
                 static_cast<long long>(m.total_blocks_purged())});
  if (cfg.runtime.async_io.enabled) {
    table.add_row({std::string("prefetches issued"),
                   static_cast<long long>(m.total_prefetches_issued())});
    table.add_row({std::string("prefetch hits"),
                   static_cast<long long>(m.total_prefetch_hits())});
    table.add_row({std::string("prefetches wasted"),
                   static_cast<long long>(m.total_prefetches_wasted())});
    table.add_row({std::string("prefetch accuracy"), m.prefetch_accuracy()});
  }
  table.add_row({std::string("messages"),
                 static_cast<long long>(m.total_messages())});
  table.add_row({std::string("bytes sent [MB]"),
                 static_cast<double>(m.total_bytes_sent()) / (1 << 20)});
  table.add_row({std::string("integration steps"),
                 static_cast<long long>(m.total_steps())});
  table.add_row({std::string("streamlines"),
                 static_cast<long long>(m.particles.size())});
  const sf::FaultStats& fs = m.fault;
  const bool gray_active = !fc.slowdowns.empty() || fc.gray_mtbf > 0.0 ||
                           fc.corrupt_rate > 0.0 || fc.disk_slow_rate > 0.0;
  const bool fault_active = fc.mtbf > 0.0 || !fc.crashes.empty() ||
                            fc.disk_fault_rate > 0.0 ||
                            fc.message_drop_rate > 0.0 ||
                            fc.checkpoint_interval > 0.0 ||
                            !cfg.restart_from.empty() || gray_active;
  if (fault_active) {
    table.add_row({std::string("crashes injected"),
                   static_cast<long long>(fs.crashes_injected)});
    table.add_row({std::string("crashes survived"),
                   static_cast<long long>(fs.crashes_survived)});
    table.add_row({std::string("OOM crashes"),
                   static_cast<long long>(fs.oom_crashes)});
    table.add_row({std::string("disk faults"),
                   static_cast<long long>(fs.disk_faults)});
    table.add_row({std::string("disk stalls"),
                   static_cast<long long>(fs.disk_stalls)});
    table.add_row({std::string("messages dropped"),
                   static_cast<long long>(fs.messages_dropped)});
    table.add_row({std::string("control retransmits"),
                   static_cast<long long>(fs.control_retransmits)});
    table.add_row({std::string("control duplicates deduped"),
                   static_cast<long long>(fs.control_duplicates)});
    table.add_row({std::string("particles recovered"),
                   static_cast<long long>(fs.particles_recovered)});
    table.add_row({std::string("steps redone"),
                   static_cast<long long>(fs.steps_redone)});
    table.add_row({std::string("time to recovery [s]"),
                   fs.time_to_recovery});
    // Per-crash timeline: how long the survivors took to notice each
    // death (detection latency) and to re-own its work (recovery wall).
    for (const sf::CrashRecord& rec : fs.crash_records) {
      const std::string who = "crash rank " + std::to_string(rec.rank);
      table.add_row({who + " detect latency [s]",
                     rec.detect_time < 0.0 ? -1.0
                                           : rec.detect_time - rec.crash_time});
      table.add_row({who + " recovery wall [s]",
                     rec.recover_time < 0.0
                         ? -1.0
                         : rec.recover_time - rec.crash_time});
    }
    table.add_row({std::string("checkpoints taken"),
                   static_cast<long long>(fs.checkpoints_taken)});
    table.add_row({std::string("checkpoint overhead [s]"),
                   fs.checkpoint_overhead});
  }
  if (gray_active) {
    table.add_row({std::string("slowdowns injected"),
                   static_cast<long long>(fs.slowdowns_injected)});
    table.add_row({std::string("slow disk reads"),
                   static_cast<long long>(fs.disk_slow_events)});
    table.add_row({std::string("corruptions injected"),
                   static_cast<long long>(fs.corruptions_injected)});
    table.add_row({std::string("corruptions detected"),
                   static_cast<long long>(fs.corruptions_detected)});
    table.add_row({std::string("stragglers flagged"),
                   static_cast<long long>(fs.stragglers_flagged)});
    table.add_row({std::string("particles speculated"),
                   static_cast<long long>(fs.particles_speculated)});
    table.add_row({std::string("wasted duplicate steps"),
                   static_cast<long long>(fs.wasted_duplicate_steps)});
    table.add_row({std::string("straggler detect latency [s]"),
                   fs.straggler_detect_latency});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cout << "usage: streamflow <make-dataset|info|trace|experiment> "
                 "[flags]\n";
    return 2;
  }
  const std::string cmd = argv[1];
  const Flags flags(argc, argv, 2);
  if (cmd == "make-dataset") return cmd_make_dataset(flags);
  if (cmd == "info") return cmd_info(flags);
  if (cmd == "trace") return cmd_trace(flags);
  if (cmd == "experiment") return cmd_experiment(flags);
  std::cerr << "unknown subcommand '" << cmd << "'\n";
  return 2;
}
