#include "core/structured_grid.hpp"

#include <gtest/gtest.h>

#include "core/analytic_fields.hpp"
#include "core/rng.hpp"

namespace sf {
namespace {

const AABB kBox{{0, 0, 0}, {1, 1, 1}};

TEST(StructuredGrid, ConstructionValidation) {
  EXPECT_THROW(StructuredGrid(kBox, 1, 2, 2), std::invalid_argument);
  EXPECT_THROW(StructuredGrid(AABB{{1, 0, 0}, {0, 1, 1}}, 2, 2, 2),
               std::invalid_argument);
  const StructuredGrid g(kBox, 3, 4, 5);
  EXPECT_EQ(g.num_nodes(), 60u);
  EXPECT_EQ(g.cell_size(), Vec3(0.5, 1.0 / 3, 0.25));
}

TEST(StructuredGrid, NodePositions) {
  const StructuredGrid g(kBox, 2, 2, 2);
  EXPECT_EQ(g.node_position(0, 0, 0), Vec3(0, 0, 0));
  EXPECT_EQ(g.node_position(1, 1, 1), Vec3(1, 1, 1));
}

TEST(StructuredGrid, SampleAtNodesIsExact) {
  StructuredGrid g(kBox, 4, 4, 4);
  const UniformField f({2, -1, 3}, kBox);
  g.sample_from(f);
  Vec3 v;
  ASSERT_TRUE(g.sample({0, 0, 0}, v));
  EXPECT_EQ(v, Vec3(2, -1, 3));
  ASSERT_TRUE(g.sample({1, 1, 1}, v));
  EXPECT_EQ(v, Vec3(2, -1, 3));
}

TEST(StructuredGrid, TrilinearReproducesLinearFieldsExactly) {
  // Trilinear interpolation is exact for fields linear in each
  // coordinate; the saddle field is linear.
  StructuredGrid g(AABB{{-1, -1, -1}, {1, 1, 1}}, 5, 5, 5);
  const SaddleField f(1.7, AABB{{-1, -1, -1}, {1, 1, 1}});
  g.sample_from(f);
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    Vec3 gi, fi;
    ASSERT_TRUE(g.sample(p, gi));
    ASSERT_TRUE(f.sample(p, fi));
    EXPECT_NEAR(gi.x, fi.x, 1e-12);
    EXPECT_NEAR(gi.y, fi.y, 1e-12);
    EXPECT_NEAR(gi.z, fi.z, 1e-12);
  }
}

TEST(StructuredGrid, InterpolationErrorShrinksQuadratically) {
  // For a smooth field the trilinear error is O(h^2): refining the grid
  // 2x should cut the max error by about 4x.
  const ABCField f;
  const AABB box{{1, 1, 1}, {5, 5, 5}};
  auto max_err = [&](int n) {
    StructuredGrid g(box, n, n, n);
    g.sample_from(f);
    Rng rng(21);
    double worst = 0.0;
    for (int i = 0; i < 500; ++i) {
      const Vec3 p{rng.uniform(1, 5), rng.uniform(1, 5), rng.uniform(1, 5)};
      Vec3 gi, fi;
      EXPECT_TRUE(g.sample(p, gi));
      EXPECT_TRUE(f.sample(p, fi));
      worst = std::max(worst, norm(gi - fi));
    }
    return worst;
  };
  const double e16 = max_err(17);
  const double e32 = max_err(33);
  EXPECT_LT(e32, e16 / 2.5);  // allow slack off the asymptotic factor 4
}

TEST(StructuredGrid, SampleFailsOutside) {
  StructuredGrid g(kBox, 2, 2, 2);
  Vec3 v;
  EXPECT_FALSE(g.sample({1.01, 0.5, 0.5}, v));
  EXPECT_FALSE(g.sample({0.5, -0.01, 0.5}, v));
}

TEST(StructuredGrid, GhostNodesClampOutsideDomain) {
  // Grid extends beyond the field's domain: sample_from must clamp, not
  // leave garbage.
  const AABB field_box{{0, 0, 0}, {1, 1, 1}};
  const UniformField f({4, 5, 6}, field_box);
  StructuredGrid g(field_box.inflated(0.25), 6, 6, 6);
  g.sample_from(f);
  Vec3 v;
  ASSERT_TRUE(g.sample({-0.2, -0.2, -0.2}, v));
  EXPECT_EQ(v, Vec3(4, 5, 6));
}

TEST(StructuredGrid, PayloadBytes) {
  const StructuredGrid g(kBox, 4, 4, 4);
  EXPECT_EQ(g.payload_bytes(), 64u * sizeof(Vec3));
}

TEST(StructuredGrid, ImplementsVectorFieldInterface) {
  StructuredGrid g(kBox, 3, 3, 3);
  const VectorField& as_field = g;
  EXPECT_EQ(as_field.bounds(), kBox);
}

}  // namespace
}  // namespace sf
