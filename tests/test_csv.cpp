#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sf {
namespace {

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
  EXPECT_NO_THROW(t.add_row({1.0, std::string("x")}));
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, CsvOutput) {
  Table t({"algo", "procs", "wall"});
  t.add_row({std::string("static"), 64ll, 1.5});
  t.add_row({std::string("hybrid"), 128ll, 0.25});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "algo,procs,wall\n"
            "static,64,1.5\n"
            "hybrid,128,0.25\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"name"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("say \"hi\"")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "name\n"
            "\"a,b\"\n"
            "\"say \"\"hi\"\"\"\n");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"x", "longer"});
  t.add_row({1ll, 2ll});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("| x | longer |"), std::string::npos);
  EXPECT_NE(text.find("| 1 | 2      |"), std::string::npos);
  // Separator lines on top, under header and at bottom.
  std::size_t separator_lines = 0;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) {
    if (!line.empty() && line.front() == '+') ++separator_lines;
  }
  EXPECT_EQ(separator_lines, 3u);
}

TEST(Table, DoubleFormatting) {
  Table t({"v"});
  t.add_row({0.000123456});
  t.add_row({123456789.0});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("0.000123456"), std::string::npos);
  EXPECT_NE(os.str().find("1.23457e+08"), std::string::npos);
}

}  // namespace
}  // namespace sf
