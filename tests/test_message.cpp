#include "runtime/message.hpp"

#include <gtest/gtest.h>

namespace sf {
namespace {

Particle particle_with_geometry(std::uint32_t points) {
  Particle p;
  p.geometry_points = points;
  return p;
}

TEST(Message, ParticleBatchBytesScaleWithGeometry) {
  Message m;
  m.payload = ParticleBatch{0, {particle_with_geometry(1000)}};
  const std::size_t with = message_bytes(m, /*carry_geometry=*/true);
  const std::size_t without = message_bytes(m, /*carry_geometry=*/false);
  // Geometry dominates when carried (the §8 observation).
  EXPECT_GT(with, without + 1000 * sizeof(Vec3) - 1);
  EXPECT_LT(without, 128u);
}

TEST(Message, BatchBytesSumOverParticles) {
  Message one, two;
  one.payload = ParticleBatch{0, {particle_with_geometry(10)}};
  two.payload = ParticleBatch{
      0, {particle_with_geometry(10), particle_with_geometry(10)}};
  const std::size_t b1 = message_bytes(one, true);
  const std::size_t b2 = message_bytes(two, true);
  EXPECT_EQ(b2 - b1, particle_message_bytes(particle_with_geometry(10), true));
}

TEST(Message, ControlMessagesAreSmall) {
  for (Message m : {Message{-1, TerminationCount{{{0, 5u}}}},
                    Message{-1, DoneSignal{}}, Message{-1, SeedRequest{}},
                    Message{-1, MasterBeacon{}}, Message{-1, ControlAck{7}}}) {
    EXPECT_LT(message_bytes(m, true), 64u);
  }
}

TEST(Message, TerminationBoardBytesScaleWithEntries) {
  TerminationCount tc;
  for (int r = 0; r < 32; ++r) {
    tc.totals.emplace_back(r, static_cast<std::uint32_t>(r + 1));
  }
  Message m;
  m.payload = std::move(tc);
  const std::size_t big = message_bytes(m, true);
  m.payload = TerminationCount{};
  EXPECT_GE(big, message_bytes(m, true) + 32 * 8);
}

TEST(Message, StatusBytesScaleWithCensus) {
  StatusUpdate s;
  for (BlockId b = 0; b < 100; ++b) s.queued_by_block.emplace_back(b, 1u);
  Message m;
  m.payload = s;
  const std::size_t big = message_bytes(m, true);
  m.payload = StatusUpdate{};
  EXPECT_GT(big, message_bytes(m, true) + 700);
}

TEST(Message, CommandCarriesAssignmentPayload) {
  Command cmd;
  cmd.type = Command::Type::kAssign;
  cmd.particles.push_back(particle_with_geometry(1));
  Message m;
  m.payload = std::move(cmd);
  EXPECT_GT(message_bytes(m, true), 64u);
}

TEST(Message, SeedTransferNeverChargesGeometry) {
  SeedTransfer t;
  t.seeds.push_back(particle_with_geometry(100000));  // absurd, ignored
  Message m;
  m.payload = std::move(t);
  EXPECT_LT(message_bytes(m, true), 256u);
}

TEST(Message, CommandTypeNames) {
  EXPECT_STREQ(to_string(Command::Type::kAssign), "assign");
  EXPECT_STREQ(to_string(Command::Type::kSendForce), "send-force");
  EXPECT_STREQ(to_string(Command::Type::kSendHint), "send-hint");
  EXPECT_STREQ(to_string(Command::Type::kLoad), "load");
  EXPECT_STREQ(to_string(Command::Type::kTerminate), "terminate");
}

TEST(Particle, MessageBytesFormula) {
  Particle p;
  p.geometry_points = 4;
  EXPECT_EQ(particle_message_bytes(p, false), 64u);
  EXPECT_EQ(particle_message_bytes(p, true), 64u + 4 * sizeof(Vec3));
}

}  // namespace
}  // namespace sf
